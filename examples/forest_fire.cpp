/**
 * @file
 * Forest fire monitoring — the paper's independent-power deployment
 * (§5.2.1).
 *
 * Part 1 runs the fog-offloaded computation for real: scattered
 * temperature point samples are gridded into a volumetric map (IDW
 * reconstruction), and a hotspot is detected from the map.
 *
 * Part 2 simulates the 10-node chain for 5 hours under strongly
 * independent (canopy/wind) power, sweeping the three systems and the
 * balancing policies — an ablation of where NEOFog's gains come from.
 */

#include <algorithm>
#include <cstdio>

#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "kernels/volumetric.hh"
#include "sim/rng.hh"

using namespace neofog;

namespace {

void
runVolumetricReconstruction()
{
    std::printf("== In-fog volumetric temperature map ==\n");
    Rng rng(7);

    // The true field: ambient 18 C with a fire plume at (0.75, 0.25).
    auto field = [](double x, double y, double z) {
        const double dx = x - 0.75, dy = y - 0.25;
        const double core =
            55.0 * std::exp(-10.0 * (dx * dx + dy * dy));
        return 18.0 + core * (1.0 - 0.4 * z);
    };

    // 120 motes report their point samples.
    std::vector<kernels::PointSample> samples;
    for (int i = 0; i < 120; ++i) {
        kernels::PointSample s;
        s.x = rng.uniform();
        s.y = rng.uniform();
        s.z = rng.uniform(0.0, 0.3); // near-ground sensors
        s.value = field(s.x, s.y, s.z) + rng.normal(0.0, 0.4);
        samples.push_back(s);
    }

    const auto grid = kernels::reconstructVolume(samples, 12, 12, 2);

    // Detect the hotspot cell.
    std::size_t hx = 0, hy = 0;
    double peak = -1e18;
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
        for (std::size_t iy = 0; iy < grid.ny; ++iy) {
            if (grid.at(ix, iy, 0) > peak) {
                peak = grid.at(ix, iy, 0);
                hx = ix;
                hy = iy;
            }
        }
    }
    std::printf("  reconstructed %zux%zux%zu map from %zu samples\n",
                grid.nx, grid.ny, grid.nz, samples.size());
    std::printf("  hotspot at cell (%zu,%zu) -> (%.2f, %.2f), "
                "peak %.1f C (true plume at 0.75, 0.25)\n\n",
                hx, hy,
                (static_cast<double>(hx) + 0.5) / 12.0,
                (static_cast<double>(hy) + 0.5) / 12.0, peak);
}

void
runPolicyAblation()
{
    std::printf("== 5 h chain simulation, independent power: policy "
                "ablation ==\n");
    struct Row
    {
        const char *label;
        OperatingMode mode;
        const char *policy;
    };
    const Row rows[] = {
        {"NOS-VP, no LB", OperatingMode::NosVp, "none"},
        {"NOS-NVP, no LB", OperatingMode::NosNvp, "none"},
        {"NOS-NVP, tree LB", OperatingMode::NosNvp, "tree"},
        {"FIOS, cluster LB", OperatingMode::FiosNvMote, "cluster"},
        {"FIOS, no LB", OperatingMode::FiosNvMote, "none"},
        {"FIOS, tree LB", OperatingMode::FiosNvMote, "tree"},
        {"FIOS, distributed LB", OperatingMode::FiosNvMote,
         "distributed"},
    };

    for (const Row &row : rows) {
        presets::SystemUnderTest sut{row.mode, row.policy, row.label};
        ScenarioConfig cfg = presets::fig10(sut, 0);
        FogSystem system(cfg);
        const SystemReport r = system.run();
        std::printf("  %-22s total %5llu  fog %5llu  balanced %4llu  "
                    "yield %5.1f%%\n",
                    row.label,
                    static_cast<unsigned long long>(r.totalProcessed()),
                    static_cast<unsigned long long>(r.packagesInFog),
                    static_cast<unsigned long long>(r.tasksBalancedAway),
                    r.yield() * 100.0);
    }
    std::printf("\nEach NEOFog ingredient contributes: nonvolatility "
                "cuts the RF tax, the FIOS\nfront end feeds computation "
                "directly, and the distributed balancer exploits\nthe "
                "large node-to-node income variance of a wind-blown "
                "canopy.\n");
}

} // namespace

int
main()
{
    std::printf("NEOFog example: forest fire monitoring\n\n");
    runVolumetricReconstruction();
    runPolicyAblation();
    return 0;
}
