/**
 * @file
 * Wearable heartbeat monitor — the paper's most compute-intensive
 * Table 2 workload (pattern matching, 59.5% compute share even in the
 * naive strategy).
 *
 * Runs the real ECG pipeline (template correlation, beat detection,
 * rate estimation, compression) on synthetic signals, then compares the
 * two node strategies of Table 2 — naive sensing-computing-transmission
 * vs sensing-buffering-computing-compression-transmission — with the
 * paper's measured energy model.
 */

#include <cstdio>

#include "hw/processor.hh"
#include "kernels/compress.hh"
#include "kernels/pattern_match.hh"
#include "kernels/signal_gen.hh"
#include "sim/rng.hh"
#include "workload/app_profile.hh"
#include "workload/fog_task.hh"

using namespace neofog;

namespace {

void
runEcgPipeline()
{
    std::printf("== On-node heartbeat pattern matching ==\n");
    Rng rng(60601);
    const double rate_hz = 250.0;

    for (double true_bpm : {58.0, 72.0, 96.0}) {
        const auto ecg =
            kernels::ecgSignal(rng, 7500, rate_hz, true_bpm, 0.03);
        const auto beat =
            static_cast<std::size_t>(60.0 / true_bpm * rate_hz);
        const auto tmpl = kernels::ecgBeatTemplate(beat * 3 / 4);
        const auto matches = kernels::findMatches(ecg, tmpl, 0.45);
        const double est_bpm =
            60.0 * static_cast<double>(matches.size()) /
            (7500.0 / rate_hz);

        // The node ships beat positions, not the waveform.
        std::vector<double> record{est_bpm};
        for (const auto &m : matches)
            record.push_back(static_cast<double>(m.position));
        const auto payload = kernels::compress(
            kernels::quantize16(record, 0.0, 10000.0));

        std::printf("  true %5.1f bpm -> detected %zu beats, est "
                    "%5.1f bpm, payload %zu B (raw %zu B)\n",
                    true_bpm, matches.size(), est_bpm, payload.size(),
                    ecg.size() * 2);
    }
    std::printf("\n");
}

void
compareStrategies()
{
    std::printf("== Strategy comparison (Table 2 model, pattern "
                "matching) ==\n");
    const AppProfile p = appProfile(AppKind::PatternMatching);

    const double naive_per_sample =
        p.naiveComputeEnergy().nanojoules() +
        p.naiveTxEnergy().nanojoules();
    const double naive_batch =
        naive_per_sample * static_cast<double>(p.samplesPerBatch());
    const double buffered_batch =
        p.bufferedComputeEnergy().nanojoules() +
        p.bufferedTxEnergy().nanojoules();

    std::printf("  naive:    %.1f nJ/sample -> %.1f mJ per 64 kB of "
                "data (compute share %.1f%%)\n",
                naive_per_sample, naive_batch * 1e-6,
                p.naiveComputeRatio() * 100.0);
    std::printf("  buffered: %.1f mJ per 64 kB batch (compute share "
                "%.1f%%, compression to %.1f%%)\n",
                buffered_batch * 1e-6, p.bufferedComputeRatio() * 100.0,
                p.compressionRatio * 100.0);
    std::printf("  energy saved by buffering: %.1f%% (paper: -24.1%%)\n",
                -p.energySavedRatio() * 100.0);

    // How long does the batch take on the fabricated 1 MHz NVP?
    NvProcessor nvp;
    const auto inst = p.bufferedInstructionsFor(AppProfile::kBatchBytes);
    std::printf("  batch compute on the 1 MHz NVP: %.1f s of "
                "(intermittent) execution, %.1f mJ\n\n",
                secondsFromTicks(nvp.computeTime(inst)),
                nvp.computeEnergy(inst).millijoules());
}

void
runKernelBackedTask()
{
    std::printf("== Kernel-backed fog task (what the simulator "
                "abstracts) ==\n");
    Rng rng(5);
    auto task = makeFogTask(AppKind::PatternMatching);
    const FogOutput out = task->processBatch(16 * 1024, rng);
    std::printf("  processed %zu raw bytes with %llu ops -> %zu B "
                "payload (%.2f%%), heart rate %.1f bpm\n",
                out.rawBytes,
                static_cast<unsigned long long>(out.opsExecuted),
                out.payload.size(), out.achievedRatio() * 100.0,
                out.metric);
}

} // namespace

int
main()
{
    std::printf("NEOFog example: wearable heartbeat monitor\n\n");
    runEcgPipeline();
    compareStrategies();
    runKernelBackedTask();
    return 0;
}
