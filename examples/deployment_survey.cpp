/**
 * @file
 * Deployment survey — Table 1 of the paper brought to life.
 *
 * Prints the catalog of the five deployed energy-harvesting WSN
 * systems the paper surveys, then simulates each under its typical
 * conditions twice: as the original NOS-VP design (what was actually
 * fielded) and as a NEOFog retrofit.  The final column answers the
 * paper's motivating question for every system at once: how much more
 * useful output would nonvolatility-exploiting optimizations deliver
 * from the same harvested energy?
 */

#include <cstdio>
#include <string>

#include "fog/deployments.hh"
#include "fog/fog_system.hh"

using namespace neofog;

int
main()
{
    std::printf("NEOFog example: deployment survey (Table 1)\n\n");

    std::printf("%-34s %-18s %-28s %s\n", "System", "Energy",
                "Topology", "Transmitted data");
    for (int i = 0; i < 100; ++i)
        std::putchar('-');
    std::printf("\n");
    for (DeploymentKind kind : kAllDeployments) {
        const DeploymentSpec spec = deploymentSpec(kind);
        std::string energy;
        for (std::size_t i = 0; i < spec.energySources.size(); ++i) {
            if (i)
                energy += ", ";
            energy += energySourceName(spec.energySources[i]);
        }
        std::printf("%-34s %-18s %-28s %s\n", spec.name.c_str(),
                    energy.c_str(), topologyName(spec.topology).c_str(),
                    spec.transmittedData.c_str());
    }

    std::printf("\nRetrofit study: 5 h of typical income per "
                "deployment\n\n");
    std::printf("%-34s %10s %10s %8s   %s\n", "System", "as built",
                "NEOFog", "gain", "energy split (NEOFog)");
    for (int i = 0; i < 100; ++i)
        std::putchar('-');
    std::printf("\n");

    for (DeploymentKind kind : kAllDeployments) {
        const DeploymentSpec spec = deploymentSpec(kind);

        ScenarioConfig as_built =
            deploymentScenario(kind, presets::nosVp(), 21);
        FogSystem vp(as_built);
        const SystemReport vp_r = vp.run();

        ScenarioConfig retrofit =
            deploymentScenario(kind, presets::fiosNeofog(), 21);
        FogSystem neo(retrofit);
        const SystemReport neo_r = neo.run();

        const double gain = vp_r.totalProcessed()
            ? static_cast<double>(neo_r.totalProcessed()) /
              static_cast<double>(vp_r.totalProcessed())
            : 0.0;
        std::printf("%-34s %10llu %10llu %7.2fx   compute %.0f%%, "
                    "radio %.0f%%\n",
                    spec.name.c_str(),
                    static_cast<unsigned long long>(
                        vp_r.totalProcessed()),
                    static_cast<unsigned long long>(
                        neo_r.totalProcessed()),
                    gain, neo_r.computeRatio() * 100.0,
                    neo_r.radioRatio() * 100.0);
    }

    std::printf("\nEvery fielded design shipped raw data because "
                "computation used to be the\nrisky part; with NV-motes "
                "the energy moves into local processing and the\nsame "
                "harvest delivers a multiple of the useful output.\n");
    return 0;
}
