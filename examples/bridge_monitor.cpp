/**
 * @file
 * Bridge health monitoring — the paper's flagship deployment (§3.1).
 *
 * Part 1 runs the *actual* in-fog pipeline on synthetic cable
 * vibration: 3-axis combination, noise removal, FFT, three tension
 * models, temperature compensation, and compression — exactly the work
 * NEOFog moves from the cloud to the mote.
 *
 * Part 2 simulates a 10-node chain on the bridge for a day segment
 * under dependent solar power, comparing the NOS-VP baseline with the
 * FIOS NEOFog system.
 */

#include <cstdio>

#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "kernels/bridge_model.hh"
#include "kernels/compress.hh"
#include "kernels/signal_gen.hh"
#include "sim/rng.hh"

using namespace neofog;

namespace {

void
runStrengthPipeline()
{
    std::printf("== In-fog cable strength pipeline ==\n");
    Rng rng(2024);
    kernels::CableSpec spec;
    spec.lengthM = 120.0;
    spec.massPerMeterKg = 75.0;

    // Healthy cable: fundamental at 1.1 Hz.  Calibrate the nominal
    // tension to the healthy state.
    spec.nominalTensionN = kernels::tensionFromHarmonic(1.1, 1, spec);

    const std::array<double, 3> dir{0.10, 0.06, 0.99};
    const double rate_hz = 100.0;

    struct Case
    {
        const char *label;
        double fundamentalHz;
        double temperatureC;
    };
    const Case cases[] = {
        {"healthy, mild day", 1.10, 18.0},
        {"healthy, hot day", 1.10, 38.0},
        {"slackened cable (-10% f)", 0.99, 18.0},
        {"damaged cable (-25% f)", 0.83, 18.0},
    };

    for (const Case &c : cases) {
        auto axes = kernels::threeAxisVibration(rng, 4096, rate_hz,
                                                c.fundamentalHz, dir,
                                                0.12);
        const auto est = kernels::estimateStrength(
            axes[0], axes[1], axes[2], dir, rate_hz, spec,
            c.temperatureC);

        // What actually leaves the node: the compressed record.
        std::vector<double> record{est.fundamentalHz, est.tensionN,
                                   est.strengthRatio};
        const auto payload = kernels::compress(
            kernels::quantize16(record, -1.0e7, 1.0e8));

        std::printf("  %-26s f0=%.2f Hz  tension=%.2f MN  "
                    "strength=%.2f  payload=%zu B\n",
                    c.label, est.fundamentalHz, est.tensionN / 1e6,
                    est.strengthRatio, payload.size());
    }
    std::printf("\n");
}

void
runChainSimulation()
{
    std::printf("== One day segment on the bridge chain "
                "(dependent power) ==\n");
    const presets::SystemUnderTest systems[] = {
        presets::nosVp(),
        presets::fiosNeofog(),
    };
    for (const auto &sut : systems) {
        ScenarioConfig cfg = presets::fig11(sut, 2);
        FogSystem system(cfg);
        const SystemReport r = system.run();
        std::printf("  %-16s processed %5llu / %llu packages "
                    "(%.1f%%), in-fog %llu, balanced %llu\n",
                    sut.label.c_str(),
                    static_cast<unsigned long long>(r.totalProcessed()),
                    static_cast<unsigned long long>(r.idealPackages),
                    r.yield() * 100.0,
                    static_cast<unsigned long long>(r.packagesInFog),
                    static_cast<unsigned long long>(
                        r.tasksBalancedAway));
    }
    std::printf("\nThe FIOS NV-motes turn the same harvested energy "
                "into several times more\nstructural-health records, "
                "almost all of them processed in the fog.\n");
}

} // namespace

int
main()
{
    std::printf("NEOFog example: bridge health monitoring\n\n");
    runStrengthPipeline();
    runChainSimulation();
    return 0;
}
