/**
 * @file
 * neofog_cli — command-line driver for arbitrary system scenarios.
 *
 * Lets a user run any deployment without writing C++:
 *
 *   neofog_cli --mode fios --balancer distributed --trace forest \
 *              --income-mw 2.6 --nodes 10 --chains 1 --hours 5 \
 *              --mux 1 --seed 1 [--format json] [--out results.json] \
 *              [--probes] [--dump-energy node]
 *
 * Every result flows through the report_io exporter: text (aligned
 * tables), json (schema-tagged, machine-readable), or csv.  --probes
 * enables the per-chain time-series probes and exports their streams;
 * --dump-energy exports one node's stored-energy series the same way.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "balance/policy_registry.hh"
#include "dist/coordinator.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "sim/logging.hh"
#include "sim/report_io.hh"

using namespace neofog;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --mode vp|nvp|fios        node architecture (default fios)\n"
        "  --balancer SPEC           offloading policy, as NAME or\n"
        "                            NAME:key=val,key=val "
        "(default distributed;\n"
        "                            --list-balancers documents all "
        "policies\n"
        "                            and their parameters)\n"
        "  --list-balancers          print the policy registry and "
        "exit\n"
        "  --trace forest|bridge|mountain|rain|constant "
        "(default forest)\n"
        "  --income-mw X             mean ambient income (default 2.6)\n"
        "  --nodes N                 logical nodes per chain "
        "(default 10;\n"
        "                            --nodes-per-chain is an alias)\n"
        "  --chains N                independent chains (default 1)\n"
        "  --hours X                 horizon (default 5)\n"
        "  --slot-s X                slot interval seconds "
        "(default 12)\n"
        "  --mux K                   NVD4Q multiplexing (default 1)\n"
        "  --profile P               day profile 0-4 (default 0)\n"
        "  --seed S                  RNG seed (default 1)\n"
        "  --threads N               worker threads for the chain "
        "loop\n"
        "                            (default 1; 0 = all hardware "
        "threads;\n"
        "                            results identical for any N)\n"
        "  --workers N               shard the chains across N forked\n"
        "                            worker processes (0 = all "
        "hardware\n"
        "                            threads; composes with --threads "
        "inside\n"
        "                            each worker and with "
        "--snapshot-every /\n"
        "                            --resume; results identical for "
        "any N)\n"
        "  --incidental              enable incidental computing\n"
        "  --relay                   hop-by-hop relaying to the sink\n"
        "  --rt-chance P             real-time request probability\n"
        "  --freq-scaling            Spendthrift clock scaling\n"
        "  --format text|json|csv    output format (default text)\n"
        "  --out FILE                write results to FILE instead of "
        "stdout\n"
        "  --probes                  per-chain time-series probes "
        "(stored\n"
        "                            energy, yield, balancer, "
        "depletion)\n"
        "  --probe-cap N             probe ring capacity "
        "(default 4096)\n"
        "  --no-energy-cache         disable the shared prefix-sum "
        "energy\n"
        "                            cache (per-node reference "
        "integration)\n"
        "  --cache-grid-s N          energy-cache grid seconds "
        "(default 1)\n"
        "  --no-batch-kernel         per-node slot stepping instead "
        "of the\n"
        "                            batched SoA slot kernel (results "
        "are\n"
        "                            identical either way)\n"
        "  --no-simd-kernel          scalar slot banking instead of "
        "the\n"
        "                            vectorized lane-per-node shard "
        "kernel\n"
        "                            (results are identical either "
        "way)\n"
        "  --pin-threads             pin chain-loop workers to CPUs "
        "so\n"
        "                            first-touch shard pages stay "
        "local\n"
        "                            (Linux; never affects results)\n"
        "  --dump-energy I           export node I's stored-energy "
        "series\n"
        "  --snapshot-every N        checkpoint every N slots "
        "(default off)\n"
        "  --snapshot-dir D          checkpoint directory "
        "(default .)\n"
        "  --resume PATH             resume from a snapshot file, or "
        "from the\n"
        "                            newest valid snapshot in a "
        "directory\n"
        "                            (scenario flags are ignored: the "
        "snapshot\n"
        "                            carries its own config)\n"
        "  --version                 print version and schema tags\n"
        "  --help\n",
        argv0);
}

#ifndef NEOFOG_VERSION
#define NEOFOG_VERSION "0.0.0"
#endif

void
printVersion()
{
    std::printf("neofog_cli %s\n"
                "schemas:\n"
                "  neofog-report-v1\n"
                "  neofog-aggregate-v1\n"
                "  neofog-run-v1\n"
                "  neofog-series-v1\n"
                "  neofog-bench-v1\n"
                "  neofog-snapshot-v1\n",
                NEOFOG_VERSION);
}

bool
parseMode(const std::string &v, OperatingMode &out)
{
    if (v == "vp") {
        out = OperatingMode::NosVp;
    } else if (v == "nvp") {
        out = OperatingMode::NosNvp;
    } else if (v == "fios") {
        out = OperatingMode::FiosNvMote;
    } else {
        return false;
    }
    return true;
}

bool
parseTrace(const std::string &v, TraceKind &out)
{
    if (v == "forest") {
        out = TraceKind::ForestIndependent;
    } else if (v == "bridge") {
        out = TraceKind::BridgeDependent;
    } else if (v == "mountain") {
        out = TraceKind::MountainSunny;
    } else if (v == "rain") {
        out = TraceKind::RainLow;
    } else if (v == "constant") {
        out = TraceKind::Constant;
    } else {
        return false;
    }
    return true;
}

/** One-line scenario summary used by the text format and JSON meta. */
std::string
scenarioLine(const ScenarioConfig &cfg)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s, %s balancer, %s @ %.2f mW, %zux%zu nodes, "
                  "mux %d, %.1f h",
                  operatingModeName(cfg.mode).c_str(),
                  cfg.balancerPolicy.c_str(),
                  traceKindName(cfg.traceKind).c_str(),
                  cfg.meanIncome.milliwatts(), cfg.chains,
                  cfg.nodesPerChain, cfg.multiplexing,
                  secondsFromTicks(cfg.horizon) / 3600.0);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioConfig cfg;
    cfg.nodesPerChain = 10;
    cfg.chains = 1;
    cfg.horizon = 5 * kHour;
    cfg.slotInterval = 12 * kSec;
    cfg.traceKind = TraceKind::ForestIndependent;
    cfg.meanIncome = Power::fromMilliwatts(2.6);
    cfg.mode = OperatingMode::FiosNvMote;
    cfg.balancerPolicy = "distributed";
    cfg.nodeTemplate = presets::systemNodeTemplate();
    cfg.seed = 1;

    int dump_energy = -1;
    report_io::Format format = report_io::Format::Text;
    std::string out_path;
    std::string resume_path;
    bool use_workers = false;
    long long workers = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--version") {
            printVersion();
            return 0;
        } else if (arg == "--list-balancers") {
            std::cout << "registered offloading policies "
                         "(--balancer NAME or "
                         "NAME:key=val,key=val):\n\n";
            PolicyRegistry::instance().describe(std::cout);
            return 0;
        } else if (arg == "--mode") {
            if (!parseMode(next(), cfg.mode)) {
                std::fprintf(stderr, "bad --mode\n");
                return 2;
            }
        } else if (arg == "--balancer") {
            cfg.balancerPolicy = next();
        } else if (arg == "--trace") {
            if (!parseTrace(next(), cfg.traceKind)) {
                std::fprintf(stderr, "bad --trace\n");
                return 2;
            }
        } else if (arg == "--income-mw") {
            cfg.meanIncome =
                Power::fromMilliwatts(std::atof(next().c_str()));
        } else if (arg == "--nodes" || arg == "--nodes-per-chain") {
            cfg.nodesPerChain =
                static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (arg == "--chains") {
            cfg.chains =
                static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (arg == "--hours") {
            cfg.horizon = ticksFromSeconds(
                std::atof(next().c_str()) * 3600.0);
        } else if (arg == "--slot-s") {
            cfg.slotInterval =
                ticksFromSeconds(std::atof(next().c_str()));
        } else if (arg == "--mux") {
            cfg.multiplexing = std::atoi(next().c_str());
        } else if (arg == "--profile") {
            cfg.profileIndex = std::atoi(next().c_str());
        } else if (arg == "--seed") {
            cfg.seed =
                static_cast<std::uint64_t>(std::atoll(next().c_str()));
        } else if (arg == "--threads") {
            cfg.threads =
                static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--workers") {
            use_workers = true;
            workers = std::atoll(next().c_str());
        } else if (arg == "--incidental") {
            cfg.nodeTemplate.enableIncidentalComputing = true;
        } else if (arg == "--relay") {
            cfg.hopByHopRelay = true;
        } else if (arg == "--rt-chance") {
            cfg.realTimeRequestChance = std::atof(next().c_str());
        } else if (arg == "--freq-scaling") {
            cfg.nodeTemplate.enableFrequencyScaling = true;
        } else if (arg == "--format") {
            if (!report_io::parseFormat(next(), format)) {
                std::fprintf(stderr,
                             "bad --format (text|json|csv)\n");
                return 2;
            }
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--probes") {
            cfg.probes.enabled = true;
        } else if (arg == "--probe-cap") {
            cfg.probes.capacity =
                static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (arg == "--no-energy-cache") {
            cfg.energyCache.enabled = false;
        } else if (arg == "--no-batch-kernel") {
            cfg.batchSlotKernel = false;
        } else if (arg == "--no-simd-kernel") {
            cfg.simdKernel = false;
        } else if (arg == "--pin-threads") {
            cfg.pinThreads = true;
        } else if (arg == "--cache-grid-s") {
            cfg.energyCache.grid =
                ticksFromSeconds(std::atof(next().c_str()));
        } else if (arg == "--dump-energy") {
            dump_energy = std::atoi(next().c_str());
        } else if (arg == "--snapshot-every") {
            cfg.snapshot.everySlots = std::atoll(next().c_str());
        } else if (arg == "--snapshot-dir") {
            cfg.snapshot.dir = next();
        } else if (arg == "--resume") {
            resume_path = next();
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (use_workers && (cfg.probes.enabled || dump_energy >= 0)) {
        // Series live inside the worker processes; only report shards
        // travel the wire.
        std::fprintf(stderr, "--probes/--dump-energy need an "
                             "in-process run; drop --workers\n");
        return 2;
    }

    try {
        SystemReport report;
        std::vector<report_io::LabeledSeries> series;

        if (use_workers) {
            // Multi-process sharding (src/dist/): fork workers, run
            // the chain partitions, merge the shards in chain order.
            // A resumed distributed run rebuilds its scenario from
            // worker 0's newest checkpoint under the --resume base
            // directory and continues every partition from its own.
            dist::DistOptions opt;
            opt.workersRequested = workers;
            opt.snapshotEvery = cfg.snapshot.everySlots;
            opt.snapshotDir = resume_path.empty() ? cfg.snapshot.dir
                                                  : resume_path;
            dist::DistResult res = resume_path.empty()
                ? dist::runDistributed(cfg, opt)
                : dist::resumeDistributed(cfg, opt);
            cfg = res.config;
            report = res.report;
        } else {
            // A resumed run rebuilds its scenario from the snapshot's
            // own config section; only the host-local knobs (threads,
            // the checkpoint schedule, the kernel/pinning selection)
            // carry over from the command line.
            std::unique_ptr<FogSystem> system = resume_path.empty()
                ? std::make_unique<FogSystem>(cfg)
                : FogSystem::resume(resume_path, cfg.threads,
                                    cfg.snapshot, cfg.simdKernel,
                                    cfg.pinThreads);
            cfg = system->config();
            report = system->run();

            // Collect every requested time-series stream; they all
            // leave through the same exporter as the report.
            series = system->probeSeries();
            if (dump_energy >= 0) {
                const auto idx = static_cast<std::size_t>(dump_energy);
                if (idx >= system->physicalPerChain()) {
                    std::fprintf(stderr, "node index out of range\n");
                    return 2;
                }
                series.push_back(system->nodeEnergySeries(0, idx));
            }
        }

        std::ofstream file;
        if (!out_path.empty()) {
            file.open(out_path);
            if (!file) {
                std::fprintf(stderr, "cannot open %s\n",
                             out_path.c_str());
                return 2;
            }
        }
        std::ostream &os = out_path.empty() ? std::cout : file;

        switch (format) {
          case report_io::Format::Text:
            os << "scenario: " << scenarioLine(cfg) << "\n\n";
            report.print(os, "result");
            if (!series.empty()) {
                os << '\n';
                report_io::writeSeriesCsv(os, series);
            }
            break;
          case report_io::Format::Json: {
            report_io::JsonWriter w(os);
            w.beginObject();
            w.key("schema").value("neofog-run-v1");
            w.key("scenario").value(scenarioLine(cfg));
            w.key("seed").value(cfg.seed);
            w.key("report");
            report_io::writeMetricsJson(w, report.snapshot());
            if (!series.empty()) {
                w.key("series").beginArray();
                for (const auto &s : series) {
                    w.beginObject();
                    w.key("name").value(s.name);
                    w.key("unit").value(s.unit);
                    w.key("points").beginArray();
                    for (const auto &pt : s.points) {
                        w.beginArray();
                        w.value(secondsFromTicks(pt.when));
                        w.value(pt.value);
                        w.endArray();
                    }
                    w.endArray();
                    w.endObject();
                }
                w.endArray();
            }
            w.endObject();
            os << '\n';
            break;
          }
          case report_io::Format::Csv:
            report.toCsv(os);
            if (!series.empty()) {
                os << '\n';
                report_io::writeSeriesCsv(os, series);
            }
            break;
        }
        if (!out_path.empty())
            std::printf("results -> %s\n", out_path.c_str());
    } catch (const FatalError &err) {
        std::fprintf(stderr, "fatal: %s\n", err.what());
        return 1;
    }
    return 0;
}
