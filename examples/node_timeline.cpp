/**
 * @file
 * Node timeline — Figure 1, live.
 *
 * Attaches a NodeObserver to one NOS-VP node and one FIOS NV-mote,
 * drives them through the same five slots of harvested power, and
 * prints every phase each node actually executed with its timing and
 * energy.  Where bench/fig4_node_timing tabulates the *constants*,
 * this example shows the *behaviour*: the VP burning its burst on
 * radio setup, the NV-mote spending the same slots computing.
 */

#include <cstdio>
#include <memory>

#include "energy/power_trace.hh"
#include "fog/presets.hh"
#include "node/node.hh"

using namespace neofog;

namespace {

class PrintingObserver : public NodeObserver
{
  public:
    void
    onPhase(std::uint32_t node_id, Phase phase, Tick start,
            Tick duration, Energy energy) override
    {
        std::printf("    [%8.3f s] node %u  %-10s %9.2f ms  %8.3f mJ\n",
                    secondsFromTicks(start), node_id,
                    phaseName(phase).c_str(), msFromTicks(duration),
                    energy.millijoules());
        _total += energy;
    }

    Energy total() const { return _total; }

  private:
    Energy _total;
};

void
runNode(OperatingMode mode, std::uint32_t id, const char *label)
{
    std::printf("  %s:\n", label);
    Node::Config cfg = presets::systemNodeTemplate();
    cfg.id = id;
    cfg.mode = mode;
    cfg.cap.initial = Energy::fromMillijoules(120.0);

    Node node(cfg, std::make_unique<ConstantTrace>(
                       Power::fromMilliwatts(6.0)),
              Rng(5));
    PrintingObserver obs;
    node.setObserver(&obs);

    const Tick slot = 12 * kSec;
    int delivered = 0;
    for (int s = 0; s < 5; ++s) {
        node.beginSlot(s * slot, slot);
        if (!node.tryWake()) {
            std::printf("    [%8.3f s] node %u  (slept: below "
                        "activation threshold)\n",
                        secondsFromTicks(s * slot), id);
            continue;
        }
        if (mode == OperatingMode::NosVp) {
            const EnergyClass cls = node.classify();
            if (cls != EnergyClass::Ready && cls != EnergyClass::Extra)
                continue;
        }
        node.samplePackage();
        while (node.pendingPackages() > 0 &&
               node.canCompleteOnePackage()) {
            if (node.executeTasks(1) == 0)
                break;
            if (node.payTransmit(
                    mode == OperatingMode::NosVp
                        ? cfg.rawPackageBytes
                        : cfg.compressedPackageBytes))
                ++delivered;
        }
    }
    std::printf("    -> %d package(s) delivered, %.1f mJ spent, "
                "%.1f mJ still stored\n\n",
                delivered, obs.total().millijoules(),
                node.stored().millijoules());
}

} // namespace

int
main()
{
    std::printf("NEOFog example: live node timelines (5 slots, 6 mW "
                "harvest)\n\n");
    runNode(OperatingMode::NosVp, 1, "NOS-VP (normally-off volatile)");
    runNode(OperatingMode::FiosNvMote, 2,
            "FIOS NV-mote (NVP + NVRF, direct-channel compute)");
    std::printf("The VP's budget disappears into radio setup and raw "
                "transmission; the\nNV-mote turns the same harvest "
                "into fog computation and ships bytes, not\nbatches.\n");
    return 0;
}
