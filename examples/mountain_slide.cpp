/**
 * @file
 * Mountain slide monitoring with NVD4Q node virtualization (§3.3,
 * §5.3).
 *
 * Slides happen during heavy rain — exactly when solar-powered motes
 * starve.  This example shows the Algorithm 2 machinery directly
 * (clone-group formation, NVRF state cloning, slot rotation) and then
 * sweeps the multiplexing factor in the rainy scenario, reproducing the
 * Fig 13 behaviour: gains rise until ~3x and saturate.
 */

#include <cstdio>

#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "net/topology.hh"
#include "sim/rng.hh"
#include "virt/nvd4q.hh"

using namespace neofog;

namespace {

void
demonstrateCloning()
{
    std::printf("== Algorithm 2: joining the network by cloning NVRF "
                "state ==\n");

    // An established node with live network state.
    NvRfController veteran;
    veteran.configure();
    veteran.state().channel = 17;
    veteran.state().routeVersion = 9;
    veteran.state().associatedDevList = {12, 14};

    // A freshly air-dropped node joins by cloning it.
    NvRfController rookie;
    const JoinCost cost = Nvd4qManager::joinCost(rookie, veteran);
    std::printf("  join took %.1f ms and %.3f mJ; channel %d and %zu "
                "neighbours inherited,\n  no network reconstruction "
                "needed\n",
                msFromTicks(cost.duration), cost.energy.millijoules(),
                rookie.state().channel,
                rookie.state().associatedDevList.size());

    // Clone groups over a dense deployment.
    Rng rng(3);
    const ChainMesh mesh = ChainMesh::makeDenseChain(5, 3, 15.0, 4.0,
                                                     rng);
    const auto groups = Nvd4qManager::formGroups(mesh, 5, 3);
    std::printf("  formed %zu logical nodes from %zu physical; slot "
                "rotation of logical node 2:",
                groups.size(), mesh.size());
    for (std::int64_t s = 0; s < 6; ++s)
        std::printf(" %zu", groups[2].memberForSlot(s));
    std::printf(" ...\n\n");
}

void
sweepMultiplexing()
{
    std::printf("== Rainy-day QoS vs multiplexing (Fig 13 scenario) "
                "==\n");

    FogSystem vp(presets::fig13(presets::nosVp(), 1));
    const SystemReport vp_r = vp.run();
    std::printf("  %-22s %5llu packages\n", "VP baseline",
                static_cast<unsigned long long>(vp_r.totalProcessed()));

    double ref = 0.0;
    for (int mux = 1; mux <= 4; ++mux) {
        FogSystem sys(presets::fig13(presets::fiosNeofog(), mux));
        const SystemReport r = sys.run();
        if (mux == 1)
            ref = static_cast<double>(r.totalProcessed());
        std::printf("  NEOFog @ %dx mux       %5llu packages "
                    "(%.1fx VP, %.2fx of 1x)\n",
                    mux,
                    static_cast<unsigned long long>(r.totalProcessed()),
                    static_cast<double>(r.totalProcessed()) /
                        static_cast<double>(vp_r.totalProcessed()),
                    static_cast<double>(r.totalProcessed()) / ref);
    }
    std::printf("\nEach physical clone wakes 1/k of the slots, so it "
                "accumulates k slots of rain\ntrickle before serving — "
                "until the shared dark stretches, not node energy,\n"
                "bound the yield (saturation near 3x).\n");
}

} // namespace

int
main()
{
    std::printf("NEOFog example: mountain slide monitoring with "
                "NVD4Q\n\n");
    demonstrateCloning();
    sweepMultiplexing();
    return 0;
}
