/**
 * @file
 * Quickstart: simulate one 10-node energy-harvesting chain for 5 hours
 * under the three node architectures the paper compares, and print what
 * each delivered.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [mean_income_mw] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "fog/fog_system.hh"
#include "fog/presets.hh"

using namespace neofog;

int
main(int argc, char **argv)
{
    double mean_mw = 2.6;
    std::uint64_t seed = 1;
    if (argc > 1)
        mean_mw = std::atof(argv[1]);
    if (argc > 2)
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "NEOFog quickstart: 10-node chain, 5 h horizon, "
              << "forest (independent) solar @ " << mean_mw
              << " mW mean income\n\n";

    const presets::SystemUnderTest systems[] = {
        presets::nosVp(),
        presets::nosNvpBaseline(),
        presets::fiosNeofog(),
    };

    for (const auto &sut : systems) {
        ScenarioConfig cfg = presets::fig10(sut, 0);
        cfg.meanIncome = Power::fromMilliwatts(mean_mw);
        cfg.seed = seed;
        FogSystem system(cfg);
        const SystemReport report = system.run();
        report.print(std::cout, sut.label);
        std::cout << "\n";
    }
    return 0;
}
