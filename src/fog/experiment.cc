#include "fog/experiment.hh"

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace neofog {

void
AggregateReport::print(std::ostream &os, const std::string &label) const
{
    auto row = [&](const char *name, const ScalarStat &s) {
        os << "  " << name << " " << s.mean() << " +- " << s.stddev()
           << " [" << s.min() << ", " << s.max() << "]\n";
    };
    os << label << " (" << runs << " seeds):\n";
    row("total processed ", totalProcessed);
    row("fog processed   ", packagesInFog);
    row("cloud processed ", packagesToCloud);
    row("incidental      ", packagesIncidental);
    row("wakeups         ", wakeups);
    row("failures        ", depletionFailures);
    row("balanced tasks  ", tasksBalancedAway);
    row("yield           ", yield);
    row("compute ratio   ", computeRatio);
}

AggregateReport
ExperimentRunner::runSeeds(const ScenarioConfig &cfg, int runs,
                           std::uint64_t base_seed, unsigned threads)
{
    if (runs < 1)
        fatal("experiment needs at least one run");
    AggregateReport agg;
    agg.runs = runs;
    agg.reports.resize(static_cast<std::size_t>(runs));

    // Each seed is an independent FogSystem; run them concurrently
    // and deposit each report in its seed-indexed slot, then fold the
    // statistics serially in seed order so the aggregate is identical
    // to the serial run.
    std::unique_ptr<ThreadPool> pool;
    if (runs > 1 && threads != 1)
        pool = std::make_unique<ThreadPool>(threads);
    parallelFor(pool.get(), static_cast<std::size_t>(runs),
                [&](std::size_t i) {
        ScenarioConfig run_cfg = cfg;
        run_cfg.seed = base_seed + static_cast<std::uint64_t>(i);
        FogSystem sys(run_cfg);
        agg.reports[i] = sys.run();
    });

    for (const SystemReport &r : agg.reports) {
        agg.totalProcessed.sample(
            static_cast<double>(r.totalProcessed()));
        agg.packagesInFog.sample(static_cast<double>(r.packagesInFog));
        agg.packagesToCloud.sample(
            static_cast<double>(r.packagesToCloud));
        agg.packagesIncidental.sample(
            static_cast<double>(r.packagesIncidental));
        agg.wakeups.sample(static_cast<double>(r.wakeups));
        agg.depletionFailures.sample(
            static_cast<double>(r.depletionFailures));
        agg.tasksBalancedAway.sample(
            static_cast<double>(r.tasksBalancedAway));
        agg.yield.sample(r.yield());
        agg.computeRatio.sample(r.computeRatio());
    }
    return agg;
}

ScalarStat
ExperimentRunner::compareTotals(const ScenarioConfig &a,
                                const ScenarioConfig &b, int runs,
                                std::uint64_t base_seed)
{
    ScalarStat ratios;
    for (int i = 0; i < runs; ++i) {
        ScenarioConfig ca = a;
        ScenarioConfig cb = b;
        ca.seed = cb.seed = base_seed + static_cast<std::uint64_t>(i);
        const auto ra = FogSystem(ca).run();
        const auto rb = FogSystem(cb).run();
        if (ra.totalProcessed() > 0) {
            ratios.sample(static_cast<double>(rb.totalProcessed()) /
                          static_cast<double>(ra.totalProcessed()));
        }
    }
    return ratios;
}

} // namespace neofog
