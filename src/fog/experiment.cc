#include "fog/experiment.hh"

#include <sstream>

#include "sim/logging.hh"
#include "sim/report_io.hh"
#include "sim/thread_pool.hh"

namespace neofog {

const ScalarStat &
AggregateReport::stat(std::string_view metric) const
{
    const auto &defs = SystemReport::metrics().metrics();
    NEOFOG_ASSERT(stats.size() == defs.size(),
                  "aggregate not filled by runSeeds");
    for (std::size_t i = 0; i < defs.size(); ++i) {
        if (metric == defs[i].name)
            return stats[i];
    }
    fatal("unknown aggregate metric '", std::string(metric), "'");
}

void
AggregateReport::print(std::ostream &os, const std::string &label) const
{
    os << label << " (" << runs << " seeds):\n";
    const auto &defs = SystemReport::metrics().metrics();
    report_io::TextTable table(os, {2, 24, 1});
    for (std::size_t i = 0; i < defs.size(); ++i) {
        const ScalarStat &s = stats[i];
        std::ostringstream cell;
        cell << s.mean() << " +- " << s.stddev() << " [" << s.min()
             << ", " << s.max() << "]";
        table.row({"", defs[i].label, cell.str()});
    }
}

void
AggregateReport::toJson(std::ostream &os, const std::string &label) const
{
    report_io::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("neofog-aggregate-v1");
    w.key("label").value(label);
    w.key("runs").value(runs);
    w.key("metrics").beginObject();
    const auto &defs = SystemReport::metrics().metrics();
    for (std::size_t i = 0; i < defs.size(); ++i) {
        const ScalarStat &s = stats[i];
        w.key(defs[i].name).beginObject();
        w.key("count").value(s.count());
        w.key("mean").value(s.mean());
        w.key("stddev").value(s.stddev());
        w.key("min").value(s.min());
        w.key("max").value(s.max());
        w.endObject();
    }
    w.endObject();
    w.endObject();
    os << '\n';
}

void
AggregateReport::toCsv(std::ostream &os) const
{
    os << "metric,count,mean,stddev,min,max\n";
    const auto &defs = SystemReport::metrics().metrics();
    for (std::size_t i = 0; i < defs.size(); ++i) {
        const ScalarStat &s = stats[i];
        os << defs[i].name << ',' << s.count() << ','
           << report_io::formatDouble(s.mean()) << ','
           << report_io::formatDouble(s.stddev()) << ','
           << report_io::formatDouble(s.min()) << ','
           << report_io::formatDouble(s.max()) << '\n';
    }
}

AggregateReport
ExperimentRunner::runSeeds(const ScenarioConfig &cfg,
                           const RunOptions &opt)
{
    if (opt.runs < 1)
        fatal("experiment needs at least one run");
    AggregateReport agg;
    agg.runs = opt.runs;
    agg.reports.resize(static_cast<std::size_t>(opt.runs));

    // Each seed is an independent FogSystem; run them concurrently
    // and deposit each report in its seed-indexed slot, then fold the
    // statistics serially in seed order so the aggregate is identical
    // to the serial run.
    std::unique_ptr<ThreadPool> pool;
    if (opt.runs > 1 && opt.seedThreads != 1)
        pool = std::make_unique<ThreadPool>(opt.seedThreads);
    parallelFor(pool.get(), static_cast<std::size_t>(opt.runs),
                [&](std::size_t i) {
        ScenarioConfig run_cfg = cfg;
        run_cfg.seed = opt.baseSeed + static_cast<std::uint64_t>(i);
        FogSystem sys(run_cfg);
        agg.reports[i] = sys.run();
    });

    // Registry-derived aggregation: every metric (stored and derived)
    // gets a ScalarStat fed in seed order.
    const auto &defs = SystemReport::metrics().metrics();
    agg.stats.resize(defs.size());
    for (const SystemReport &r : agg.reports) {
        for (std::size_t m = 0; m < defs.size(); ++m)
            agg.stats[m].sample(defs[m].get(r));
    }
    return agg;
}

ScalarStat
ExperimentRunner::compareTotals(const ScenarioConfig &a,
                                const ScenarioConfig &b,
                                const RunOptions &opt)
{
    ScalarStat ratios;
    for (int i = 0; i < opt.runs; ++i) {
        ScenarioConfig ca = a;
        ScenarioConfig cb = b;
        ca.seed = cb.seed =
            opt.baseSeed + static_cast<std::uint64_t>(i);
        const auto ra = FogSystem(ca).run();
        const auto rb = FogSystem(cb).run();
        if (ra.totalProcessed() > 0) {
            ratios.sample(static_cast<double>(rb.totalProcessed()) /
                          static_cast<double>(ra.totalProcessed()));
        }
    }
    return ratios;
}

} // namespace neofog
