/**
 * @file
 * Calibrated scenario presets for every system-level figure.
 *
 * Each preset fixes the deployment and power regime of one paper
 * experiment; the bench binaries sweep modes/policies/multiplexing on
 * top.  Calibration targets (see EXPERIMENTS.md): the VP baseline
 * lands near the paper's absolute package counts, and the NVP/NEOFog
 * systems are then *predicted* by the model, reproducing the ordering
 * and approximate factors.
 */

#ifndef NEOFOG_FOG_PRESETS_HH
#define NEOFOG_FOG_PRESETS_HH

#include <cstdint>
#include <string>

#include "fog/scenario.hh"

namespace neofog::presets {

/** Common node template used by the system experiments. */
Node::Config systemNodeTemplate();

/**
 * One of the three compared systems (Fig 10/11 legend).
 */
struct SystemUnderTest
{
    OperatingMode mode;
    std::string balancerPolicy;
    std::string label;
};

/** NOS-VP without load balance. */
SystemUnderTest nosVp();
/** NOS-NVP with the baseline tree load balance. */
SystemUnderTest nosNvpBaseline();
/** FIOS NEOFog with the distributed load balance. */
SystemUnderTest fiosNeofog();

/**
 * Fig 10: forest fire monitoring, ample independent power.
 * @param profile 0-4 selects the power profile (seeds the traces).
 */
ScenarioConfig fig10(const SystemUnderTest &sut, int profile);

/** Fig 11: bridge monitoring, ample dependent power (5 day profiles). */
ScenarioConfig fig11(const SystemUnderTest &sut, int profile);

/**
 * Fig 12: mountain-slide monitoring on a sunny day (high power, large
 * independent variance) at a given multiplexing (1 = 100% ... 5 = 500%).
 */
ScenarioConfig fig12(const SystemUnderTest &sut, int multiplexing);

/** Fig 13: the same system in heavy rain (very low dependent power). */
ScenarioConfig fig13(const SystemUnderTest &sut, int multiplexing);

/**
 * Fig 9: stored-energy time series of 3 consecutive nodes over 300
 * minutes of daytime solar.
 */
ScenarioConfig fig9(const SystemUnderTest &sut);

} // namespace neofog::presets

#endif // NEOFOG_FOG_PRESETS_HH
