#include "fog/chain_engine.hh"

#include <algorithm>

#include "balance/policy_registry.hh"
#include "energy/power_trace.hh"
#include "net/mac.hh"
#include "net/packet.hh"
#include "sim/logging.hh"

namespace neofog {

ChainEngine::ChainEngine(const ScenarioConfig &cfg,
                         std::size_t chain_index,
                         std::uint32_t first_node_id, Rng rng,
                         std::shared_ptr<const PowerTrace> shared_trace)
    : _cfg(cfg), _chainIndex(chain_index), _rng(rng), _loss(cfg.loss),
      _balancer(PolicyRegistry::instance().make(cfg.balancerPolicy)),
      _sharedTrace(std::move(shared_trace))
{
    const auto mux = static_cast<std::size_t>(_cfg.multiplexing);
    std::uint32_t next_id = first_node_id;
    _nodes.reserve(_cfg.nodesPerChain * mux);
    // All mutable node state lives in the chain's shard; size it for
    // the whole chain up front so node construction never reallocates
    // (the facades keep raw row pointers into these arrays).
    _soa.reserveRows(_cfg.nodesPerChain * mux,
                     static_cast<std::size_t>(std::max(
                         1, _cfg.nodeTemplate.packageDeadlineSlots)));
    for (std::size_t l = 0; l < _cfg.nodesPerChain; ++l) {
        std::vector<std::size_t> members;
        for (std::size_t m = 0; m < mux; ++m) {
            Node::Config ncfg = _cfg.nodeTemplate;
            ncfg.id = next_id++;
            ncfg.mode = _cfg.mode;
            ncfg.rtc.interval = _cfg.slotInterval;
            members.push_back(_nodes.size());
            _nodes.push_back(std::make_unique<Node>(
                ncfg, makeTrace(), _rng.fork(), _soa));
        }
        _groups.emplace_back(l, std::move(members));
    }
    _aliveLastSlot.assign(_cfg.nodesPerChain, true);
    _scheduled.reserve(_groups.size());
    _lbStates.reserve(_groups.size());
    _lbOutcome.moves.reserve(_groups.size());
    _windowMemo.reserve(4);
    _balancerIsNoop = _balancer->name() == "none";

    // What the batched slot kernel can hoist: identical constant
    // levels, or per-node scalings of the scenario's shared stream.
    if (_cfg.traceKind == TraceKind::Constant)
        _hoist = IncomeHoist::Constant;
    else if (_cfg.traceKind == TraceKind::RainLow && _sharedTrace)
        _hoist = IncomeHoist::SharedScaled;

#if !defined(NEOFOG_NO_SIMD_KERNEL)
    // Vectorized slot kernel: every node of a chain shares the same
    // template-derived banking constants (only id / rtc.interval vary,
    // and neither feeds the banking arithmetic), so one parameter set
    // serves the whole shard.  Scalar fallback: leave _kernel null.
    if (_hoist != IncomeHoist::None && _cfg.simdKernel &&
        !_nodes.empty()) {
        _kernel = std::make_unique<ShardSlotKernel>(
            ShardSlotKernelParams::fromConfigs(
                _cfg.nodeTemplate.cap, _cfg.nodeTemplate.rtc,
                _nodes.front()->frontend().config(),
                _cfg.mode == OperatingMode::FiosNvMote));
        _kernelLanes.reserve(_groups.size());
    }
#endif

    // Each logical slot schedules exactly one clone, so a physical
    // node records ~horizon/slotInterval/mux energy points; pre-size
    // the series so the hot loop never grows it.
    const std::size_t slots = static_cast<std::size_t>(
        _cfg.slotInterval > 0 ? _cfg.horizon / _cfg.slotInterval : 0);
    for (auto &n : _nodes)
        n->stats().storedEnergyMj.reserve(slots / mux + 2);

    if (_cfg.probes.enabled) {
        _probe.storedEnergyMj.reset(_cfg.probes.capacity);
        _probe.yieldFrac.reset(_cfg.probes.capacity);
        _probe.balancedTasks.reset(_cfg.probes.capacity);
        _probe.depletionFailures.reset(_cfg.probes.capacity);
    }
}

std::unique_ptr<PowerTrace>
ChainEngine::makeTrace()
{
    const Tick span = _cfg.horizon + 2 * _cfg.slotInterval;
    switch (_cfg.traceKind) {
      case TraceKind::ForestIndependent:
        return traces::makeForestTrace(_rng, span, _cfg.meanIncome);
      case TraceKind::BridgeDependent:
        return traces::makeBridgeTrace(_cfg.profileIndex, _rng, span,
                                       _cfg.meanIncome);
      case TraceKind::MountainSunny:
        return traces::makeMountainTrace(_rng, span, _cfg.meanIncome);
      case TraceKind::RainLow:
        // Dependent: all nodes share the deployment's spell schedule.
        // With the energy cache on, FogSystem built (and prefix-
        // summed) that stream once; each node only adds its gain.
        if (_sharedTrace) {
            return std::make_unique<ScaledTrace>(
                _cfg.meanIncome.watts() * traces::rainNodeGain(_rng),
                _sharedTrace);
        }
        return traces::makeRainTrace(_cfg.seed * 131 + 7, _rng, span,
                                     _cfg.meanIncome);
      case TraceKind::Constant:
        return std::make_unique<ConstantTrace>(_cfg.meanIncome);
    }
    NEOFOG_PANIC("unknown trace kind");
}

const Node &
ChainEngine::node(std::size_t physical_idx) const
{
    NEOFOG_ASSERT(physical_idx < _nodes.size(), "node index");
    return *_nodes[physical_idx];
}

void
ChainEngine::updateMembership(std::int64_t slot_index)
{
    // NVD4Q membership update (Algorithm 2 line 9-10): rotate the
    // clone schedules at the programmer-defined frequency before
    // resolving who serves this slot.  State travels via the NVRF
    // clone mechanism, so no network reconstruction is needed.
    if (_cfg.membershipUpdateInterval <= 0 || slot_index == 0)
        return;
    const std::int64_t every =
        _cfg.membershipUpdateInterval / _cfg.slotInterval;
    if (every > 0 && slot_index % every == 0) {
        for (CloneGroup &g : _groups) {
            if (g.multiplier() > 1) {
                g.rotateMembership();
                ++_shard.membershipUpdates;
            }
        }
    }
}

void
ChainEngine::runSlot(std::int64_t slot_index)
{
    const Tick t = slot_index * _cfg.slotInterval;

    updateMembership(slot_index);

    // One physical clone of every logical node is scheduled this slot.
    // _scheduled is engine-owned scratch: reusing its capacity keeps
    // the per-slot loop allocation-free.
    std::vector<Node *> &scheduled = _scheduled;
    scheduled.clear();
    for (const CloneGroup &g : _groups)
        scheduled.push_back(_nodes[g.memberForSlot(slot_index)].get());

    if (_cfg.batchSlotKernel && _hoist != IncomeHoist::None) {
        beginSlotBatch(scheduled, t);
    } else {
        for (Node *n : scheduled)
            n->beginSlot(t, _cfg.slotInterval);
    }
    for (Node *n : scheduled) {
        n->recordEnergyPoint(t);
        // A volatile node loses buffered-but-unprocessed data at
        // power-off; NV buffers persist.
        if (_cfg.mode == OperatingMode::NosVp)
            n->discardPendingPackages();
    }

    for (Node *n : scheduled) {
        if (!n->tryWake())
            continue;
        if (_cfg.mode == OperatingMode::NosVp) {
            // A normally-off VP only performs its burst when the
            // capacitor holds a complete unit of work; otherwise the
            // wake was just the RTC check.
            const EnergyClass cls = n->classify();
            if (cls == EnergyClass::Ready || cls == EnergyClass::Extra)
                n->samplePackage();
        } else {
            // NVP modes bank samples in the NV buffer whenever they
            // can; processing happens when energy allows.
            n->samplePackage();
        }
    }

    heal(scheduled);
    balance(scheduled);

    for (std::size_t l = 0; l < scheduled.size(); ++l) {
        if (!scheduled[l]->awake())
            continue;
        maybeServeRealTimeRequest(*scheduled[l], scheduled, l);
        executeAndTransmit(*scheduled[l], scheduled, l);
    }

    if (_cfg.probes.enabled)
        sampleProbe(slot_index, t);
}

void
ChainEngine::beginSlotBatch(const std::vector<Node *> &scheduled, Tick t)
{
    const Tick slot_end = t + _cfg.slotInterval;
    _windowMemo.clear();

    // Integral of the shared unit stream (SharedScaled) or of the one
    // constant level every node sees (Constant) over a window.  A slot
    // produces only a handful of distinct windows — the slot itself
    // plus the accrual gaps of multiplexed clones — so a linear scan
    // of the memo beats any hashing.
    const auto unitIntegral = [&](Tick from, Tick to) -> Energy {
        for (const IncomeWindow &w : _windowMemo)
            if (w.from == from && w.to == to)
                return w.unit;
        const Energy u = _hoist == IncomeHoist::SharedScaled
            ? _sharedTrace->integrate(from, to)
            : scheduled.front()->trace().integrate(from, to);
        _windowMemo.push_back({from, to, u});
        return u;
    };
    // Exactly what the node's own trace would integrate: ConstantTrace
    // integration is a pure function of the shared level, and
    // ScaledTrace::integrate is base-integral * scale by definition.
    const auto nodeIncome = [&](const Node &n, Tick from,
                                Tick to) -> Energy {
        const Energy u = unitIntegral(from, to);
        if (_hoist == IncomeHoist::SharedScaled)
            return u * static_cast<const ScaledTrace &>(n.trace())
                           .scale();
        return u;
    };

    if (_kernel) {
        // Vectorized path: feed the kernel the same income integrals
        // the scalar calls below would receive, then run the scalar
        // rollover tail per node (see Node::rolloverSlotState).
        _kernelLanes.clear();
        for (Node *n : scheduled) {
            ShardSlotKernel::Lane lane;
            lane.row = n->shardRow();
            const Tick last = n->lastAccrualTime();
            if (t > last) {
                lane.gapTicks = t - last;
                lane.gapJoules = nodeIncome(*n, last, t).joules();
            }
            lane.slotJoules = nodeIncome(*n, t, slot_end).joules();
            _kernelLanes.push_back(lane);
        }
        _kernel->run(_soa, _kernelLanes, t, _cfg.slotInterval);
        for (Node *n : scheduled)
            n->rolloverSlotState();
        return;
    }

    for (Node *n : scheduled) {
        Energy gap = Energy::zero();
        const Tick last = n->lastAccrualTime();
        if (t > last)
            gap = nodeIncome(*n, last, t);
        n->beginSlotWithIncome(t, _cfg.slotInterval, gap,
                               nodeIncome(*n, t, slot_end));
    }
}

void
ChainEngine::sampleProbe(std::int64_t slot_index, Tick now)
{
    const std::int64_t every =
        _cfg.probes.everySlots < 1 ? 1 : _cfg.probes.everySlots;
    if (slot_index % every != 0)
        return;

    // Everything read here is owned by this engine: node state, the
    // report shard, and cumulative node counters.  No RNG draws.
    double stored_mj = 0.0;
    std::uint64_t depletions = 0;
    for (const auto &node : _nodes) {
        stored_mj += node->capacitor().stored().millijoules();
        depletions += node->stats().depletionFailures.value();
    }
    const double chain_ideal =
        static_cast<double>(_cfg.nodesPerChain) *
        static_cast<double>(_cfg.slotCount());
    const double delivered = static_cast<double>(
        _shard.packagesToCloud + _shard.packagesInFog);

    _probe.storedEnergyMj.push(now, stored_mj);
    _probe.yieldFrac.push(
        now, chain_ideal > 0.0 ? delivered / chain_ideal : 0.0);
    _probe.balancedTasks.push(
        now, static_cast<double>(_shard.tasksBalancedAway));
    _probe.depletionFailures.push(
        now, static_cast<double>(depletions));
}

void
ChainEngine::maybeServeRealTimeRequest(
    Node &node, const std::vector<Node *> &scheduled,
    std::size_t logical_idx)
{
    if (_cfg.realTimeRequestChance <= 0.0 ||
        !_rng.chance(_cfg.realTimeRequestChance))
        return;
    // The control node wants this node's current sample immediately:
    // raw, unbuffered, no fog processing (paper §5.1).
    const std::size_t raw = _cfg.nodeTemplate.rawPackageBytes;
    if (node.pendingPackages() == 0) {
        ++_shard.rtRequestsMissed;
        return;
    }
    const int attempts = _loss.deliver(_rng);
    const int paid =
        attempts == 0 ? _loss.config().maxRetries + 1 : attempts;
    if (!node.payTransmit(raw, paid) || attempts == 0) {
        ++_shard.rtRequestsMissed;
        return;
    }
    if (!relayToSink(scheduled, logical_idx, raw)) {
        ++_shard.rtRequestsMissed;
        return;
    }
    node.addPendingPackages(-1);
    node.stats().packagesToCloud.increment();
    ++_shard.packagesToCloud;
    ++_shard.rtRequestsServed;
}

bool
ChainEngine::relayToSink(const std::vector<Node *> &scheduled,
                         std::size_t src, std::size_t payload_bytes)
{
    if (!_cfg.hopByHopRelay || src == 0)
        return true; // MAC-abstracted direct delivery (paper default)

    // The packet walks the chain src-1, src-2, ..., 0.  Each awake
    // intermediate pays an RX and a TX; dead intermediates are skipped
    // (the orphan-scan bypass already re-linked the chain).  The final
    // receive at the sink is free (the sink is mains-powered in the
    // deployments the paper surveys).
    for (std::size_t hop = src; hop-- > 1;) {
        Node *relay = scheduled[hop];
        if (!relay->awake())
            continue; // bypassed
        if (!relay->payReceive(payload_bytes) ||
            !relay->payTransmit(payload_bytes)) {
            ++_shard.relayDrops;
            return false;
        }
        if (!_loss.attempt(_rng)) {
            ++_shard.relayDrops;
            return false;
        }
        ++_shard.relayHops;
    }
    return true;
}

void
ChainEngine::heal(const std::vector<Node *> &scheduled)
{
    // Zigbee self-healing (§4): when B in A->B->C fails to start, A
    // broadcasts orphan_scan, C confirms, and the AssociatedDevList
    // updates so traffic bypasses B.  When B recovers it broadcasts
    // and the neighbours re-associate it.  Both handshakes cost the
    // *neighbours* (and the recovering node) short control exchanges.
    const std::size_t n = scheduled.size();

    auto neighbor = [&](std::size_t idx, int dir) -> Node * {
        // Nearest awake neighbour in the given direction.
        std::size_t j = idx;
        while (true) {
            if (dir < 0 && j == 0)
                return nullptr;
            if (dir > 0 && j + 1 >= n)
                return nullptr;
            j = dir < 0 ? j - 1 : j + 1;
            if (scheduled[j]->awake())
                return scheduled[j];
        }
    };

    for (std::size_t l = 0; l < n; ++l) {
        const bool now = scheduled[l]->awake();
        const bool before = _aliveLastSlot[l];
        if (before && !now) {
            // Newly dead: the upstream neighbour scans, the
            // downstream one confirms.
            Node *left = neighbor(l, -1);
            Node *right = neighbor(l, +1);
            if (left && right) {
                left->payControlMessage(
                    Mac::Config{}.orphanScanBytes);
                left->payReceive(Mac::Config{}.scanConfirmBytes);
                right->payReceive(Mac::Config{}.orphanScanBytes);
                right->payControlMessage(
                    Mac::Config{}.scanConfirmBytes);
                ++_shard.orphanScans;
            }
        } else if (!before && now) {
            // Recovered: broadcast presence, neighbours re-associate.
            Node *left = neighbor(l, -1);
            scheduled[l]->payControlMessage(
                Mac::Config{}.orphanScanBytes);
            if (left) {
                left->payReceive(Mac::Config{}.orphanScanBytes);
                left->payControlMessage(
                    Mac::Config{}.devListEntryBytes);
            }
            scheduled[l]->payReceive(
                Mac::Config{}.devListEntryBytes);
            ++_shard.rejoins;
        }
        _aliveLastSlot[l] = now;
    }
}

void
ChainEngine::balance(std::vector<Node *> &scheduled)
{
    // The no-op policy costs nothing and moves nothing.
    if (_balancerIsNoop)
        return;

    // Engine-owned scratch: reuse the capacity, reset the values.
    std::vector<LbNodeState> &states = _lbStates;
    states.assign(scheduled.size(), LbNodeState{});
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
        Node *n = scheduled[i];
        LbNodeState &s = states[i];
        s.alive = n->awake();
        s.pendingTasks = n->pendingPackages();
        // Capacity = own queued work the node can actually complete
        // right now, plus headroom for received tasks.  A node only
        // becomes a donor when it genuinely cannot fund its own queue.
        // A node with a nearly drained capacitor offloads even work
        // it could technically fund: saving scarce stored energy for
        // future slots beats spending it now when a neighbour has
        // surplus (the efficiency-oriented goal of §3.2).
        const bool scarce = n->fillFraction() < 0.15;
        const bool can_own = !scarce &&
            n->pendingPackages() > 0 && n->canCompleteOnePackage();
        s.capacityTasks =
            n->spareTaskCapacity() +
            (can_own ? static_cast<double>(n->pendingPackages()) : 0.0);
        s.taskCost = n->relativeTaskCost();
    }

    // Every awake participant shares its state once per round.  The
    // share piggybacks on the slot-synchronization beacon the node
    // already exchanges, so it costs one short control transmission.
    for (Node *n : scheduled) {
        if (!n->awake())
            continue;
        n->payControlMessage(4);
    }

    Rng lb_rng = _rng.fork();
    // Engine-owned scratch outcome: balanceInto reuses the moves
    // capacity across slots instead of allocating a fresh vector.
    _balancer->balanceInto(states, lb_rng, _lbOutcome);
    const LbOutcome &outcome = _lbOutcome;
    _shard.lbMessages +=
        static_cast<std::uint64_t>(outcome.messagesExchanged);
    _shard.lbFailedRegions +=
        static_cast<std::uint64_t>(outcome.failedRegions);

    const std::size_t raw = _cfg.nodeTemplate.rawPackageBytes;
    for (const TaskMove &m : outcome.moves) {
        Node *from = scheduled[m.from];
        Node *to = scheduled[m.to];
        if (!from->awake() || !to->awake())
            continue;
        int shipped = 0;
        for (int k = 0; k < m.tasks; ++k) {
            if (from->pendingPackages() == 0)
                break;
            // Ship the raw package over the chain (virtual buffers,
            // loss applies per transfer).
            const int attempts = _loss.deliver(_rng);
            const int paid = attempts == 0
                ? _loss.config().maxRetries + 1 : attempts;
            if (!from->payTransmit(raw, paid))
                break;
            if (attempts == 0) {
                ++_shard.txLost;
                from->stats().txFailures.increment();
                from->addPendingPackages(-1);
                continue; // raw data lost in transit
            }
            if (!to->payReceive(raw))
                break;
            from->addPendingPackages(-1);
            to->addPendingPackages(1);
            ++shipped;
        }
        if (shipped > 0) {
            from->stats().tasksShipped.increment(
                static_cast<std::uint64_t>(shipped));
            to->stats().tasksReceived.increment(
                static_cast<std::uint64_t>(shipped));
            _shard.tasksBalancedAway +=
                static_cast<std::uint64_t>(shipped);
        }
    }
}

void
ChainEngine::executeAndTransmit(Node &node,
                                const std::vector<Node *> &scheduled,
                                std::size_t logical_idx)
{
    const bool vp = _cfg.mode == OperatingMode::NosVp;
    const std::size_t result_bytes = vp
        ? _cfg.nodeTemplate.rawPackageBytes
        : _cfg.nodeTemplate.compressedPackageBytes;

    // Process as many queued packages as energy and slot time allow,
    // transmitting each result.  The node only starts a task when the
    // whole process-and-ship pipeline is affordable, so compute energy
    // is never wasted on unshippable results.
    while (node.pendingPackages() > 0) {
        if (!vp && !node.canCompleteOnePackage())
            break;
        if (node.executeTasks(1) == 0)
            break;
        const int attempts = _loss.deliver(_rng);
        const int paid = attempts == 0
            ? _loss.config().maxRetries + 1 : attempts;
        if (!node.payTransmit(result_bytes, paid)) {
            // Processed but unshippable this slot.
            ++_shard.txAborted;
            break;
        }
        if (attempts == 0) {
            node.stats().txFailures.increment();
            ++_shard.txLost;
            continue;
        }
        if (!relayToSink(scheduled, logical_idx, result_bytes))
            continue;
        if (vp) {
            node.stats().packagesToCloud.increment();
            ++_shard.packagesToCloud;
        } else {
            node.stats().packagesInFog.increment();
            ++_shard.packagesInFog;
        }
    }

    // Incidental computing (if enabled): packages that cannot get the
    // full fog treatment are summarized at reduced fidelity rather
    // than discarded (paper §5.1, citing [47]).
    while (!vp && node.pendingPackages() > 0 &&
           node.canCompleteIncidental()) {
        if (node.executeIncidentalTasks(1) == 0)
            break;
        const int attempts = _loss.deliver(_rng);
        const int paid = attempts == 0
            ? _loss.config().maxRetries + 1 : attempts;
        if (!node.payTransmit(result_bytes, paid)) {
            ++_shard.txAborted;
            break;
        }
        if (attempts == 0) {
            node.stats().txFailures.increment();
            ++_shard.txLost;
            continue;
        }
        if (!relayToSink(scheduled, logical_idx, result_bytes))
            continue;
        ++_shard.packagesIncidental;
    }

    // An NVP node with leftover transmit energy but no compute budget
    // (slot time exhausted, or income too bursty to fund a whole task)
    // falls back to shipping one raw package to the cloud — the small
    // cloud component of the NVP bars in Fig 10/11.  It requires
    // surplus energy so it never starves future fog work.
    if (!vp && node.pendingPackages() > 0 &&
        node.classify() == EnergyClass::Extra &&
        !node.canCompleteOnePackage()) {
        const int attempts = _loss.deliver(_rng);
        const int paid = attempts == 0
            ? _loss.config().maxRetries + 1 : attempts;
        if (node.payTransmit(_cfg.nodeTemplate.rawPackageBytes, paid) &&
            attempts != 0 &&
            relayToSink(scheduled, logical_idx,
                        _cfg.nodeTemplate.rawPackageBytes)) {
            node.addPendingPackages(-1);
            node.stats().packagesToCloud.increment();
            ++_shard.packagesToCloud;
        }
    }
}

void
ChainEngine::finalizeShard()
{
    for (const auto &node : _nodes) {
        const NodeStats &st = node->stats();
        _shard.wakeups += st.wakeups.value();
        _shard.depletionFailures += st.depletionFailures.value();
        _shard.packagesSampled += st.packagesSampled.value();
        _shard.rtcResyncs += st.rtcResyncs.value();
        _shard.capOverflowMj +=
            node->capacitor().overflowTotal().millijoules();
        _shard.spentComputeMj += st.spentCompute.millijoules();
        _shard.spentTxMj += st.spentTx.millijoules();
        _shard.spentRxMj += st.spentRx.millijoules();
        _shard.spentSampleMj += st.spentSample.millijoules();
        _shard.spentWakeMj += st.spentWake.millijoules();
        _shard.harvestedMj += st.harvestedTotal.millijoules();
    }
}

} // namespace neofog
