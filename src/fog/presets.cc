#include "fog/presets.hh"

#include "hw/sensor.hh"

namespace neofog::presets {

Node::Config
systemNodeTemplate()
{
    Node::Config cfg;
    cfg.cap.capacity = Energy::fromMillijoules(250.0);
    cfg.cap.initial = Energy::fromMillijoules(60.0);
    cfg.cap.leakage = Power::fromMicrowatts(15.0);
    cfg.sensor = sensors::lis331dlh();
    // System experiments model a modern ReRAM-class NVP clocked well
    // above the fabricated 1 MHz part (see DESIGN.md); per-instruction
    // energy stays at the measured 2.508 nJ.
    cfg.processorMhz = 120.0;
    cfg.rawPackageBytes = 256;
    cfg.compressedPackageBytes = 16;
    cfg.samplesPerPackage = 64;
    cfg.fogInstructionsPerPackage = 20'000'000;
    cfg.naiveInstructionsPerPackage = 20'000;
    return cfg;
}

SystemUnderTest
nosVp()
{
    return {OperatingMode::NosVp, "none", "NOS-VP"};
}

SystemUnderTest
nosNvpBaseline()
{
    return {OperatingMode::NosNvp, "tree", "NOS-NVP+treeLB"};
}

SystemUnderTest
fiosNeofog()
{
    return {OperatingMode::FiosNvMote, "distributed", "FIOS-NEOFog"};
}

namespace {

ScenarioConfig
baseScenario(const SystemUnderTest &sut)
{
    ScenarioConfig cfg;
    cfg.nodesPerChain = 10;
    cfg.chains = 1;
    cfg.horizon = 5 * kHour;
    cfg.slotInterval = 12 * kSec;
    cfg.mode = sut.mode;
    cfg.balancerPolicy = sut.balancerPolicy;
    cfg.nodeTemplate = systemNodeTemplate();
    return cfg;
}

} // namespace

ScenarioConfig
fig10(const SystemUnderTest &sut, int profile)
{
    ScenarioConfig cfg = baseScenario(sut);
    cfg.traceKind = TraceKind::ForestIndependent;
    cfg.profileIndex = profile;
    cfg.meanIncome = Power::fromMilliwatts(2.6);
    cfg.seed = 1000 + static_cast<std::uint64_t>(profile);
    return cfg;
}

ScenarioConfig
fig11(const SystemUnderTest &sut, int profile)
{
    ScenarioConfig cfg = baseScenario(sut);
    cfg.traceKind = TraceKind::BridgeDependent;
    cfg.profileIndex = profile;
    cfg.meanIncome = Power::fromMilliwatts(2.4);
    cfg.seed = 2000 + static_cast<std::uint64_t>(profile);
    return cfg;
}

ScenarioConfig
fig12(const SystemUnderTest &sut, int multiplexing)
{
    ScenarioConfig cfg = baseScenario(sut);
    cfg.traceKind = TraceKind::MountainSunny;
    cfg.meanIncome = Power::fromMilliwatts(7.0);
    cfg.multiplexing = multiplexing;
    cfg.seed = 3000 + static_cast<std::uint64_t>(multiplexing);
    return cfg;
}

ScenarioConfig
fig13(const SystemUnderTest &sut, int multiplexing)
{
    ScenarioConfig cfg = baseScenario(sut);
    cfg.traceKind = TraceKind::RainLow;
    cfg.meanIncome = Power::fromMilliwatts(0.75);
    cfg.multiplexing = multiplexing;
    // Rain also degrades links (the measured loss was weather-driven).
    cfg.loss.weatherFactor = 0.97;
    cfg.seed = 4000 + static_cast<std::uint64_t>(multiplexing);
    return cfg;
}

ScenarioConfig
fig9(const SystemUnderTest &sut)
{
    ScenarioConfig cfg = baseScenario(sut);
    cfg.traceKind = TraceKind::ForestIndependent;
    cfg.horizon = 300 * kMin;
    cfg.meanIncome = Power::fromMilliwatts(2.8);
    cfg.seed = 954;
    return cfg;
}

} // namespace neofog::presets
