/**
 * @file
 * Scenario configuration for system-level NEOFog experiments.
 *
 * A scenario fixes: deployment (nodes, chains, multiplexing), the
 * ambient-power regime (trace kind, mean income), the node operating
 * mode, and the balancing policy.  The figure-specific presets live in
 * fog/presets.hh.
 */

#ifndef NEOFOG_FOG_SCENARIO_HH
#define NEOFOG_FOG_SCENARIO_HH

#include <cstdint>
#include <string>

#include "net/loss.hh"
#include "node/node.hh"
#include "sim/metrics.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/** Which synthetic power-trace family drives the nodes. */
enum class TraceKind
{
    ForestIndependent, ///< Fig 10: large independent variance
    BridgeDependent,   ///< Fig 11: shared day profile, 30% node variance
    MountainSunny,     ///< Fig 12: high power, large variance
    RainLow,           ///< Fig 13: very low power, dependent
    Constant,          ///< testing
};

/** Display name of a trace kind. */
std::string traceKindName(TraceKind kind);

/**
 * Full description of one system-level run.
 */
struct ScenarioConfig
{
    /** Logical chain length (the paper presents 10-node chains). */
    std::size_t nodesPerChain = 10;
    /** Number of independent chains simulated (results aggregate). */
    std::size_t chains = 1;
    /** NVD4Q multiplexing: physical clones per logical node. */
    int multiplexing = 1;

    Tick horizon = 5 * kHour;
    Tick slotInterval = 12 * kSec;

    TraceKind traceKind = TraceKind::ForestIndependent;
    /** Day profile index for dependent traces (0-4). */
    int profileIndex = 0;
    /** Mean ambient income per node. */
    Power meanIncome = Power::fromMilliwatts(2.2);

    OperatingMode mode = OperatingMode::FiosNvMote;
    /**
     * Offloading-policy spec, `policy` or `policy:key=val,...`
     * (see balance/policy_registry.hh; `neofog_cli --list-balancers`
     * prints the registered policies and their parameters).
     * FogSystem canonicalizes this field on construction — name plus
     * non-default parameters only — and the canonical spec is part of
     * the snapshot config fingerprint.
     */
    std::string balancerPolicy = "none";

    LossModel::Config loss{};
    Node::Config nodeTemplate{};

    /**
     * NVD4Q membership-update interval (Algorithm 2): clone groups
     * rotate their phase assignment this often, and the newly active
     * clone re-syncs its NVRF state (a bridge monitor would keep this
     * at 0 = never; a mountain-slide monitor updates at low frequency;
     * moving-object networks update often).
     */
    Tick membershipUpdateInterval = 0;

    /**
     * Real-time requests (§5.1): per logical node per slot, the
     * probability that the control node demands the current sample
     * immediately — the node must ship it raw, bypassing buffering
     * and fog processing.  Served/missed counts are a QoS metric.
     */
    double realTimeRequestChance = 0.0;

    /**
     * Hop-by-hop relay mode: instead of the paper's MAC-abstracted
     * direct delivery, every data packet is relayed along the chain to
     * the sink (logical node 0), charging RX+TX at each intermediate
     * hop and applying the loss model per hop.  Exposes the classic
     * WSN funnel effect near the sink.  Off by default (the paper
     * "mimics communication by direct data transmission").
     */
    bool hopByHopRelay = false;

    /**
     * Opt-in per-chain time-series probes (stored energy, yield,
     * balancer shipments, depletion), ring-buffered and sampled on
     * the slot grid.  Chain-local by construction, so enabling them
     * never changes simulation results or their thread-count
     * determinism (probes never touch the RNG streams).
     */
    ProbeConfig probes{};

    /**
     * Prefix-sum energy-trace cache (see energy/trace_cache.hh).
     * When enabled, scenario-wide shared streams (the rain front) are
     * built once per FogSystem and wrapped in a CumulativeTrace, so
     * every node answers its slot-window integrals from one immutable
     * O(1) table instead of re-walking trapezoid substeps.  Disabling
     * it reverts to per-node traces and the canonical stepped
     * integrator — the reference path perf_hotpath measures against.
     */
    struct EnergyCacheConfig
    {
        bool enabled = true;
        /** Canonical grid cell width; slot-aligned at the default. */
        Tick grid = kSec;

        /** Snapshot support (see src/snapshot/). */
        template <class Archive>
        void
        serialize(Archive &ar)
        {
            ar.io("enabled", enabled);
            ar.io("grid", grid);
        }
    };
    EnergyCacheConfig energyCache{};

    std::uint64_t seed = 1;

    /**
     * Checkpointing (see src/snapshot/): write a full-state snapshot
     * every N slots into `dir`.  0 disables.  Like `threads`, this is
     * host-local operational configuration: it is excluded from the
     * scenario fingerprint, may be changed on resume, and writing
     * snapshots never perturbs simulation results.
     */
    struct SnapshotConfig
    {
        std::int64_t everySlots = 0;
        std::string dir = ".";
    };
    SnapshotConfig snapshot{};

    /**
     * Worker threads for the per-slot chain loop: chains of a slot run
     * concurrently on this many threads (0 = all hardware threads).
     * Results are bit-identical for any value — every chain draws from
     * its own pre-forked RNG stream and shards merge in chain order
     * (see DESIGN.md, "Threading and determinism model").
     */
    unsigned threads = 1;

    /**
     * Batched slot kernel: when a chain's node traces share structure
     * (one constant level, or per-node scalings of one shared stream),
     * ChainEngine hoists the per-slot trace integration out of the
     * per-node loop and feeds every node the shared closed-form
     * integral (see DESIGN.md, "Memory layout: chain shards and the
     * batched slot kernel").  The hoisted arithmetic is bit-identical
     * to the per-node path, so — like `threads` — this is host-local
     * operational configuration: excluded from the scenario
     * fingerprint, changeable on resume, never affects results.
     */
    bool batchSlotKernel = true;

    /**
     * Vectorized (lane-per-node) slot kernel: when the batched slot
     * kernel is active, ChainEngine runs the slot-boundary banking
     * arithmetic through ShardSlotKernel's contiguous column loops
     * instead of per-node calls (see DESIGN.md, "Vectorization &
     * memory placement").  Each node's own floating-point op order is
     * unchanged — vectorization happens *across* independent nodes —
     * so the result is bit-identical to the scalar path and this is,
     * like `threads`/`batchSlotKernel`, host-local operational
     * configuration: excluded from the scenario fingerprint,
     * changeable on resume, never affects results.  Ignored by
     * NEOFOG_SIMD=OFF builds (which compile the dispatch out).
     */
    bool simdKernel = true;

    /**
     * Pin each worker thread of the chain loop to one CPU (Linux
     * only; a no-op elsewhere).  Combined with the chunked static
     * chain partition and first-touch shard construction, pinning
     * keeps each chain's shard pages on the worker that sweeps them.
     * Host-local operational configuration like `threads`: excluded
     * from the scenario fingerprint, never affects results.
     */
    bool pinThreads = false;

    /** Ideal package count: logical nodes x chains x slots. */
    std::uint64_t idealPackages() const;
    /** Slots in the horizon. */
    std::int64_t slotCount() const;
};

} // namespace neofog

#endif // NEOFOG_FOG_SCENARIO_HH
