/**
 * @file
 * Deployment catalog — the real systems of the paper's Table 1.
 *
 * Table 1 surveys five deployed energy-harvesting WSN applications.
 * This module encodes them as structured specifications and can build
 * a ready-to-run ScenarioConfig for each, so users start from a
 * realistic deployment rather than bare parameters:
 *
 *  - Bridge Health Monitor: solar + piezo, accelerometers and piezo
 *    pickups, Zigbee chain mesh, ships raw sampled data.
 *  - Wearable UV Meter: solar, UV sensor, star topology, raw data.
 *  - Joint-less Railway Temperature Monitor: solar, multiple
 *    temperature sensors, Zigbee chain mesh + GPRS uplink.
 *  - Machine Health Monitor: piezo/thermal/RF, 3-axis accelerometer +
 *    vibration + temperature, star/bus/tree.
 *  - RF-Powered Camera (WispCam): RF harvesting, image sensor,
 *    point-to-point backscatter.
 */

#ifndef NEOFOG_FOG_DEPLOYMENTS_HH
#define NEOFOG_FOG_DEPLOYMENTS_HH

#include <string>
#include <vector>

#include "fog/presets.hh"
#include "fog/scenario.hh"
#include "workload/app_profile.hh"

namespace neofog {

/** The five deployed systems of Table 1. */
enum class DeploymentKind
{
    BridgeHealthMonitor,
    WearableUvMeter,
    RailwayTempMonitor,
    MachineHealthMonitor,
    RfPoweredCamera,
};

/** All catalog entries. */
inline constexpr DeploymentKind kAllDeployments[] = {
    DeploymentKind::BridgeHealthMonitor,
    DeploymentKind::WearableUvMeter,
    DeploymentKind::RailwayTempMonitor,
    DeploymentKind::MachineHealthMonitor,
    DeploymentKind::RfPoweredCamera,
};

/** Energy sources a deployment harvests (Table 1 column 2). */
enum class EnergySource
{
    Solar,
    Piezoelectric,
    Thermal,
    Rf,
    Wifi,
};

/** Network topology of the deployment (Table 1 column 4). */
enum class TopologyKind
{
    ZigbeeChainMesh,
    Star,
    StarBusOrTree,
    PointToPointBackscatter,
};

/** Structured Table 1 row. */
struct DeploymentSpec
{
    DeploymentKind kind;
    std::string name;
    std::vector<EnergySource> energySources;
    std::string sensors;
    TopologyKind topology;
    std::string transmittedData;
    /** Which Table 2 workload the deployment runs. */
    AppKind app;
    /** Typical mean income the harvesters see. */
    Power typicalIncome;
    /** Typical logical node count in the field deployment. */
    std::size_t typicalNodes;
    /** Which trace family best matches the siting. */
    TraceKind traceKind;
};

/** Catalog lookup. */
DeploymentSpec deploymentSpec(DeploymentKind kind);

/** Display name of an energy source. */
std::string energySourceName(EnergySource source);

/** Display name of a topology kind. */
std::string topologyName(TopologyKind kind);

/**
 * Build a runnable scenario for a cataloged deployment under a given
 * node architecture, with the deployment's income, trace family, node
 * count, and sensor plugged in.
 */
ScenarioConfig deploymentScenario(DeploymentKind kind,
                                  const presets::SystemUnderTest &sut,
                                  std::uint64_t seed = 1);

} // namespace neofog

#endif // NEOFOG_FOG_DEPLOYMENTS_HH
