#include "fog/scenario.hh"

namespace neofog {

std::string
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::ForestIndependent: return "forest-independent";
      case TraceKind::BridgeDependent: return "bridge-dependent";
      case TraceKind::MountainSunny: return "mountain-sunny";
      case TraceKind::RainLow: return "rain-low";
      case TraceKind::Constant: return "constant";
    }
    return "?";
}

std::uint64_t
ScenarioConfig::idealPackages() const
{
    return static_cast<std::uint64_t>(nodesPerChain) * chains *
           static_cast<std::uint64_t>(slotCount());
}

std::int64_t
ScenarioConfig::slotCount() const
{
    return horizon / slotInterval;
}

} // namespace neofog
