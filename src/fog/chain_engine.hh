/**
 * @file
 * ChainEngine: one chain's worth of the system simulation.
 *
 * The paper's framework "starts thousands of node simulators at a
 * time" (§4); chains are mutually independent (results aggregate, no
 * cross-chain traffic), so each chain is an independently executable
 * unit.  A ChainEngine owns everything one chain touches during a
 * slot — its physical nodes, NVD4Q clone groups, heal/relay/real-time
 * logic, a private Rng stream forked from the scenario seed in chain
 * order, private LossModel state, a private LoadBalancer, and a
 * SystemReport shard.  Because no two engines share mutable state,
 * FogSystem can run the engines of one slot on any number of threads
 * and still produce bit-identical results (see DESIGN.md, "Threading
 * and determinism model").
 */

#ifndef NEOFOG_FOG_CHAIN_ENGINE_HH
#define NEOFOG_FOG_CHAIN_ENGINE_HH

#include <memory>
#include <vector>

#include "balance/balancer.hh"
#include "fog/scenario.hh"
#include "fog/system_report.hh"
#include "net/loss.hh"
#include "node/node.hh"
#include "node/shard_kernel.hh"
#include "sim/metrics.hh"
#include "virt/nvd4q.hh"

namespace neofog {

/**
 * Opt-in ring-buffered time-series samplers for one chain (see
 * ScenarioConfig::probes).  Fed at the end of each sampled slot from
 * chain-local state only — no RNG draws, no cross-chain reads — so
 * the samples are bit-identical for any thread count and enabling the
 * probe never perturbs the simulation.
 */
struct ChainProbe
{
    RingSeries storedEnergyMj;     ///< total stored energy, all nodes
    RingSeries yieldFrac;          ///< cumulative delivered / chain ideal
    RingSeries balancedTasks;      ///< cumulative balancer shipments
    RingSeries depletionFailures;  ///< cumulative failed wakes

    bool operator==(const ChainProbe &other) const = default;

    /** Snapshot support (see src/snapshot/). */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("stored_energy_mj", storedEnergyMj);
        ar.io("yield_frac", yieldFrac);
        ar.io("balanced_tasks", balancedTasks);
        ar.io("depletion_failures", depletionFailures);
    }
};

/**
 * Simulator for one independent chain of an energy-harvesting WSN.
 */
class ChainEngine
{
  public:
    /**
     * Build the chain's physical nodes and clone groups.
     *
     * @param cfg Scenario shared by all chains (must outlive this).
     * @param chain_index Position of this chain in the scenario.
     * @param first_node_id Global id of this chain's first physical
     *        node (ids stay contiguous across chains).
     * @param rng Private stream, pre-forked from the scenario root in
     *        chain order so results never depend on which thread runs
     *        which chain.
     */
    ChainEngine(const ScenarioConfig &cfg, std::size_t chain_index,
                std::uint32_t first_node_id, Rng rng,
                std::shared_ptr<const PowerTrace> shared_trace = nullptr);

    ChainEngine(const ChainEngine &) = delete;
    ChainEngine &operator=(const ChainEngine &) = delete;

    /** Execute one slot.  Touches only this engine's state. */
    void runSlot(std::int64_t slot_index);

    /** Fold the chain's node counters into the report shard. */
    void finalizeShard();

    /** This engine's report shard (valid after finalizeShard). */
    const SystemReport &shard() const { return _shard; }

    /** This chain's probe series (empty unless cfg.probes.enabled). */
    const ChainProbe &probe() const { return _probe; }

    std::size_t chainIndex() const { return _chainIndex; }

    /** Physical nodes, in id order. */
    const std::vector<std::unique_ptr<Node>> &nodes() const
    { return _nodes; }

    /** NVD4Q clone groups, in logical-node order. */
    const std::vector<CloneGroup> &groups() const { return _groups; }

    /** The chain's SoA state arrays (memory accounting, diagnostics). */
    const NodeShard &soa() const { return _soa; }

    const Node &node(std::size_t physical_idx) const;

    /**
     * Snapshot support (see src/snapshot/): archives every field that
     * mutates after construction.  The config reference, the balancer
     * (stateless policy object), the shared trace, and the per-slot
     * scratch vectors are reconstruction-derived and not archived.
     */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("rng", _rng);
        ar.io("loss", _loss);
        ar.io("alive_last_slot", _aliveLastSlot);
        for (std::size_t i = 0; i < _groups.size(); ++i)
            ar.io("group" + std::to_string(i), _groups[i]);
        ar.io("shard", _shard);
        ar.io("probe", _probe);
        for (std::size_t i = 0; i < _nodes.size(); ++i)
            ar.io("node" + std::to_string(i), *_nodes[i]);
    }

  private:
    /** Build the trace for one physical node. */
    std::unique_ptr<PowerTrace> makeTrace();

    /**
     * What the batched slot kernel can hoist out of the per-node
     * beginSlot loop, decided once at construction from the trace
     * shape (see beginSlotBatch).
     */
    enum class IncomeHoist
    {
        None,         ///< per-node traces are unrelated: no hoist
        Constant,     ///< every node sees one identical constant level
        SharedScaled, ///< per-node ScaledTrace views of one shared base
    };

    /**
     * Batched beginSlot over the scheduled nodes: integrate each
     * distinct accrual window once (per chain, per slot) and feed
     * every node the shared integral through beginSlotWithIncome.
     * Bit-identical to calling node->beginSlot(t, slotInterval) per
     * node — Constant hoisting reuses the same pure integral every
     * node would compute, SharedScaled multiplies the shared base
     * integral by the node's scale exactly as ScaledTrace::integrate
     * does.  Only called when _hoist != None and cfg.batchSlotKernel.
     */
    void beginSlotBatch(const std::vector<Node *> &scheduled, Tick t);

    /** Rotate NVD4Q clone groups at the configured frequency. */
    void updateMembership(std::int64_t slot_index);

    /** Heal the chain around dead nodes (orphan scan / rejoin). */
    void heal(const std::vector<Node *> &scheduled);

    /** Run the load-balancing round over the scheduled nodes. */
    void balance(std::vector<Node *> &scheduled);

    /** Serve a possible real-time request at this node. */
    void maybeServeRealTimeRequest(Node &node,
                                   const std::vector<Node *> &scheduled,
                                   std::size_t logical_idx);

    /** Execute tasks and transmit results for one node. */
    void executeAndTransmit(Node &node,
                            const std::vector<Node *> &scheduled,
                            std::size_t logical_idx);

    /**
     * Deliver @p payload_bytes from logical node @p src toward the
     * sink: direct (MAC-abstracted) by default, hop-by-hop when
     * configured.  The sender has already paid its own transmission.
     * @return true if the packet reached the sink.
     */
    bool relayToSink(const std::vector<Node *> &scheduled,
                     std::size_t src, std::size_t payload_bytes);

    /** Feed the probe rings from this slot's chain-local state. */
    void sampleProbe(std::int64_t slot_index, Tick now);

    const ScenarioConfig &_cfg;
    std::size_t _chainIndex; // neofog-lint: allow(snapshot): chain position is construction-derived from the scenario layout
    Rng _rng;
    LossModel _loss;
    std::unique_ptr<LoadBalancer> _balancer; // neofog-lint: allow(snapshot): the balancer is re-built from the scenario policy spec on resume; stateful policies archive via LbState
    /** Cached `_balancer->name() == "none"` (checked every slot). */
    bool _balancerIsNoop = false; // neofog-lint: allow(snapshot): cached predicate over the rebuilt balancer (recomputed at construction)

    /**
     * Scenario-wide shared stream (see FogSystem::_sharedTrace); node
     * traces wrap it in a per-node ScaledTrace when set.  Read-only.
     */
    std::shared_ptr<const PowerTrace> _sharedTrace;

    /** Hoist the batched slot kernel can apply (set at construction). */
    IncomeHoist _hoist = IncomeHoist::None; // neofog-lint: allow(snapshot): construction-time kernel selection (pure function of the trace shape)

    /**
     * SoA state of every node in this chain (see node_soa.hh).  Must
     * be declared before _nodes: the Node facades point into these
     * arrays and must be destroyed first.
     */
    NodeShard _soa; // neofog-lint: allow(snapshot): the SoA shard rows are archived through the Node facades (*_nodes[i] below walks every row)

    /** Physical nodes of this chain, in id order. */
    std::vector<std::unique_ptr<Node>> _nodes;
    /** Clone groups (size nodesPerChain). */
    std::vector<CloneGroup> _groups;
    /** Whether each logical position was alive last slot. */
    std::vector<bool> _aliveLastSlot;

    /**
     * Per-slot scratch, kept as members so the hot loop reuses their
     * capacity instead of reallocating every slot.  Valid only within
     * one runSlot/balance invocation.
     */
    std::vector<Node *> _scheduled; // neofog-lint: allow(snapshot): per-slot scratch, valid only within one runSlot; reconstructed empty on resume
    std::vector<LbNodeState> _lbStates; // neofog-lint: allow(snapshot): per-slot scratch, valid only within one runSlot; reconstructed empty on resume
    LbOutcome _lbOutcome; // neofog-lint: allow(snapshot): per-slot scratch, valid only within one runSlot; reconstructed empty on resume

    /** One accrual window the batched slot kernel integrated. */
    struct IncomeWindow
    {
        Tick from;
        Tick to;
        Energy unit; ///< shared-trace (or constant-level) integral
    };
    /** Windows integrated this slot (scratch for beginSlotBatch). */
    std::vector<IncomeWindow> _windowMemo; // neofog-lint: allow(snapshot): per-slot scratch, valid only within one beginSlotBatch; reconstructed empty on resume

    /**
     * Vectorized slot kernel (null when disabled — scalar fallback;
     * see ScenarioConfig::simdKernel).  Bit-identical to the per-node
     * path, so it carries no archived state of its own.
     */
    std::unique_ptr<ShardSlotKernel> _kernel; // neofog-lint: allow(snapshot): construction-time kernel selection plus per-slot scratch columns; no simulation state
    /** Per-slot kernel input scratch (rows + income integrals). */
    std::vector<ShardSlotKernel::Lane> _kernelLanes; // neofog-lint: allow(snapshot): per-slot scratch, valid only within one beginSlotBatch; reconstructed empty on resume

    SystemReport _shard;
    ChainProbe _probe;
};

} // namespace neofog

#endif // NEOFOG_FOG_CHAIN_ENGINE_HH
