/**
 * @file
 * Scenario <-> snapshot glue: the archive walk over ScenarioConfig.
 *
 * The serialized scenario blob doubles as the snapshot's *fingerprint*:
 * a resume rebuilds the ScenarioConfig from the snapshot's own config
 * section, and the container layer (snapshot/snapshot.hh) hashes that
 * section so a header/config mismatch is rejected loudly.  Host-local
 * operational knobs — worker threads and the snapshot cadence itself —
 * are deliberately NOT part of the walk: they never influence results
 * (see DESIGN.md, "Threading and determinism model"), so a run may be
 * resumed under a different thread count or checkpoint schedule and
 * still reproduce the uninterrupted run bit for bit.
 */

#ifndef NEOFOG_FOG_SNAPSHOT_IO_HH
#define NEOFOG_FOG_SNAPSHOT_IO_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "fog/scenario.hh"
#include "snapshot/archive.hh"

namespace neofog {

/**
 * Archive every result-relevant Node::Config field.  Enums travel as
 * their integer values; size_t fields widen to u64 on the wire.
 */
template <class Archive>
void
serializeNodeConfig(Archive &ar, Node::Config &n)
{
    ar.io("id", n.id);
    int mode = static_cast<int>(n.mode);
    ar.io("mode", mode);
    if constexpr (Archive::isLoading)
        n.mode = static_cast<OperatingMode>(mode);
    ar.io("cap", n.cap);
    ar.io("rtc", n.rtc);
    ar.io("sensor", n.sensor);
    ar.io("processor_mhz", n.processorMhz);
    std::uint64_t raw = n.rawPackageBytes;
    std::uint64_t compressed = n.compressedPackageBytes;
    std::uint64_t samples = n.samplesPerPackage;
    ar.io("raw_package_bytes", raw);
    ar.io("compressed_package_bytes", compressed);
    ar.io("samples_per_package", samples);
    if constexpr (Archive::isLoading) {
        n.rawPackageBytes = static_cast<std::size_t>(raw);
        n.compressedPackageBytes = static_cast<std::size_t>(compressed);
        n.samplesPerPackage = static_cast<std::size_t>(samples);
    }
    ar.io("fog_instructions_per_package", n.fogInstructionsPerPackage);
    ar.io("naive_instructions_per_package",
          n.naiveInstructionsPerPackage);
    ar.io("package_deadline_slots", n.packageDeadlineSlots);
    ar.io("enable_incidental_computing", n.enableIncidentalComputing);
    ar.io("incidental_fraction", n.incidentalFraction);
    ar.io("enable_frequency_scaling", n.enableFrequencyScaling);
    ar.io("buffer", n.buffer);
}

/**
 * Archive every result-relevant ScenarioConfig field (everything
 * except the host-local `threads` and `snapshot` knobs).
 */
template <class Archive>
void
serializeScenario(Archive &ar, ScenarioConfig &cfg)
{
    std::uint64_t nodes = cfg.nodesPerChain;
    std::uint64_t chains = cfg.chains;
    ar.io("nodes_per_chain", nodes);
    ar.io("chains", chains);
    if constexpr (Archive::isLoading) {
        cfg.nodesPerChain = static_cast<std::size_t>(nodes);
        cfg.chains = static_cast<std::size_t>(chains);
    }
    ar.io("multiplexing", cfg.multiplexing);
    ar.io("horizon", cfg.horizon);
    ar.io("slot_interval", cfg.slotInterval);
    int trace = static_cast<int>(cfg.traceKind);
    ar.io("trace_kind", trace);
    if constexpr (Archive::isLoading)
        cfg.traceKind = static_cast<TraceKind>(trace);
    ar.io("profile_index", cfg.profileIndex);
    ar.io("mean_income", cfg.meanIncome);
    int mode = static_cast<int>(cfg.mode);
    ar.io("mode", mode);
    if constexpr (Archive::isLoading)
        cfg.mode = static_cast<OperatingMode>(mode);
    // The full balancer spec — policy name plus non-default
    // parameters, canonicalized by the FogSystem constructor — so a
    // resume under a differently *tuned* policy (not just a
    // different name) fails the fingerprint check.
    ar.io("balancer_policy", cfg.balancerPolicy);
    ar.io("loss", cfg.loss);
    ar.pushScope("node_template");
    serializeNodeConfig(ar, cfg.nodeTemplate);
    ar.popScope();
    ar.io("membership_update_interval", cfg.membershipUpdateInterval);
    ar.io("real_time_request_chance", cfg.realTimeRequestChance);
    ar.io("hop_by_hop_relay", cfg.hopByHopRelay);
    ar.io("probes", cfg.probes);
    ar.io("energy_cache", cfg.energyCache);
    ar.io("seed", cfg.seed);
}

/** The scenario's canonical wire encoding (the fingerprint input). */
std::string serializeScenarioBlob(const ScenarioConfig &cfg);

/**
 * Rebuild a ScenarioConfig from a config-section blob.  Fatal when the
 * blob does not decode as exactly one scenario (version skew,
 * corruption).  The host-local knobs come back at their defaults.
 */
ScenarioConfig deserializeScenarioBlob(std::string_view blob);

/** FNV-1a hash of the canonical encoding (the config fingerprint). */
std::uint64_t scenarioFingerprint(const ScenarioConfig &cfg);

} // namespace neofog

#endif // NEOFOG_FOG_SNAPSHOT_IO_HH
