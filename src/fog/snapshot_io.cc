#include "fog/snapshot_io.hh"

#include "sim/logging.hh"

namespace neofog {

std::string
serializeScenarioBlob(const ScenarioConfig &cfg)
{
    // The walk is symmetric, so serializing needs a mutable copy.
    ScenarioConfig copy = cfg;
    snapshot::OutArchive ar;
    serializeScenario(ar, copy);
    return ar.take();
}

ScenarioConfig
deserializeScenarioBlob(std::string_view blob)
{
    snapshot::InArchive ar(blob);
    ScenarioConfig cfg;
    serializeScenario(ar, cfg);
    if (!ar.atEnd())
        fatal("snapshot config section has trailing records "
              "(format/version skew?)");
    return cfg;
}

std::uint64_t
scenarioFingerprint(const ScenarioConfig &cfg)
{
    return snapshot::fnv1a(serializeScenarioBlob(cfg));
}

} // namespace neofog
