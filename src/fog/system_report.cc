#include "fog/system_report.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace neofog {

namespace {

using Def = MetricDef<SystemReport>;
using R = SystemReport;

constexpr MetricKind kCounter = MetricKind::Counter;
constexpr MetricKind kEnergy = MetricKind::EnergyMj;
constexpr MetricKind kRatio = MetricKind::Ratio;
constexpr MergeRule kSum = MergeRule::Sum;
constexpr MergeRule kConfig = MergeRule::Config;

/** Counter stored in a uint64 member. */
constexpr Def
counter(const char *name, const char *label, std::uint64_t R::*field,
        const char *desc, MergeRule rule = kSum)
{
    return Def{name, label, kCounter, rule, desc, field, nullptr,
               nullptr};
}

/** Millijoule gauge stored in a double member. */
constexpr Def
gaugeMj(const char *name, const char *label, double R::*field,
        const char *desc)
{
    return Def{name, label, kEnergy, kSum, desc, nullptr, field,
               nullptr};
}

/** Metric computed from the rest of the report (never merged). */
constexpr Def
derivedMetric(const char *name, const char *label, MetricKind kind,
              double (*fn)(const R &), const char *desc)
{
    return Def{name, label, kind, kSum, desc, nullptr, nullptr, fn};
}

} // namespace

const MetricRegistry<SystemReport> &
SystemReport::metrics()
{
    // THE declaration site: every SystemReport field appears exactly
    // once below, and merge/==/print/JSON/CSV/aggregation all derive
    // from this list.  Keep declaration order == struct field order.
    static const MetricRegistry<SystemReport> registry({
        counter("ideal_packages", "ideal packages", &R::idealPackages,
                "scenario ideal: logical nodes x chains x slots",
                kConfig),
        counter("wakeups", "wakeups", &R::wakeups,
                "slots any node woke"),
        counter("depletion_failures", "depletion failures",
                &R::depletionFailures,
                "slots a node could not wake for lack of energy"),
        counter("packages_sampled", "packages sampled",
                &R::packagesSampled, "raw packages captured"),
        counter("packages_to_cloud", "cloud processed",
                &R::packagesToCloud,
                "raw packages shipped for cloud processing"),
        counter("packages_in_fog", "fog processed", &R::packagesInFog,
                "packages fully fog-processed then shipped"),
        counter("packages_incidental", "incidental",
                &R::packagesIncidental,
                "reduced-fidelity summaries (incidental computing)"),
        counter("tasks_balanced_away", "balanced tasks",
                &R::tasksBalancedAway,
                "tasks shipped to a neighbour by load balancing"),
        counter("lb_messages", "lb messages", &R::lbMessages,
                "load-balancer control messages exchanged"),
        counter("lb_failed_regions", "lb failed regions",
                &R::lbFailedRegions,
                "balancer regions with no viable donor/recipient"),
        counter("tx_lost", "tx lost (radio)", &R::txLost,
                "packets lost on the radio after all retries"),
        counter("tx_aborted", "tx aborted (energy)", &R::txAborted,
                "transmissions unaffordable in energy or slot time"),
        counter("orphan_scans", "orphan scans", &R::orphanScans,
                "Zigbee bypass handshakes run"),
        counter("rejoins", "rejoins", &R::rejoins,
                "nodes re-associated after recovery"),
        counter("membership_updates", "membership updates",
                &R::membershipUpdates, "NVD4Q clone rotations"),
        counter("rt_requests_served", "rt requests served",
                &R::rtRequestsServed, "real-time queries answered"),
        counter("rt_requests_missed", "rt requests missed",
                &R::rtRequestsMissed, "real-time queries unmet"),
        counter("relay_hops", "relay hops", &R::relayHops,
                "hop-by-hop relays performed"),
        counter("relay_drops", "relay drops", &R::relayDrops,
                "packets lost mid-chain"),
        counter("rtc_resyncs", "rtc resyncs", &R::rtcResyncs,
                "RTC resynchronizations paid"),
        gaugeMj("cap_overflow_mj", "cap overflow (mJ)",
                &R::capOverflowMj,
                "energy rejected by full capacitors"),
        gaugeMj("spent_compute_mj", "compute spend (mJ)",
                &R::spentComputeMj, "energy spent computing"),
        gaugeMj("spent_tx_mj", "tx spend (mJ)", &R::spentTxMj,
                "energy spent transmitting"),
        gaugeMj("spent_rx_mj", "rx spend (mJ)", &R::spentRxMj,
                "energy spent receiving"),
        gaugeMj("spent_sample_mj", "sample spend (mJ)",
                &R::spentSampleMj, "energy spent sampling"),
        gaugeMj("spent_wake_mj", "wake spend (mJ)", &R::spentWakeMj,
                "energy spent on wake transitions"),
        gaugeMj("harvested_mj", "harvested (mJ)", &R::harvestedMj,
                "ambient energy seen"),
        derivedMetric("total_processed", "total processed", kCounter,
                      [](const R &r) {
                          return static_cast<double>(
                              r.totalProcessed());
                      },
                      "packages delivered (cloud + fog)"),
        derivedMetric("yield", "yield", kRatio,
                      [](const R &r) { return r.yield(); },
                      "delivered fraction of the ideal"),
        derivedMetric("spent_total_mj", "total spend (mJ)", kEnergy,
                      [](const R &r) { return r.spentTotalMj(); },
                      "energy spent across all categories"),
        derivedMetric("compute_ratio", "energy: compute share", kRatio,
                      [](const R &r) { return r.computeRatio(); },
                      "compute share of the energy spend"),
        derivedMetric("radio_ratio", "energy: radio share", kRatio,
                      [](const R &r) { return r.radioRatio(); },
                      "radio (TX+RX) share of the energy spend"),
    });
    return registry;
}

void
SystemReport::merge(const SystemReport &shard)
{
    metrics().merge(*this, shard);
}

bool
SystemReport::operator==(const SystemReport &other) const
{
    return metrics().equal(*this, other);
}

void
SystemReport::print(std::ostream &os, const std::string &label) const
{
    os << label << ":\n";
    report_io::TextTable table(os, {2, 24, 16});
    for (const MetricValue &m : snapshot()) {
        std::string text;
        if (m.integral) {
            text = std::to_string(m.u64);
        } else if (m.kind == MetricKind::Ratio) {
            text = report_io::fmtPct(m.value, 2);
        } else {
            text = report_io::fmtFixed(m.value, 3);
        }
        table.row({"", m.label, text});
    }
}

void
SystemReport::toJson(std::ostream &os, const std::string &label) const
{
    report_io::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("neofog-report-v1");
    w.key("label").value(label);
    w.key("metrics");
    report_io::writeMetricsJson(w, snapshot());
    w.endObject();
    os << '\n';
}

SystemReport
SystemReport::fromJson(const report_io::JsonValue &doc)
{
    const report_io::JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != "neofog-report-v1") {
        fatal("report JSON: missing or wrong schema tag "
              "(want neofog-report-v1)");
    }
    const report_io::JsonValue *ms = doc.find("metrics");
    if (!ms || !ms->isObject())
        fatal("report JSON: missing metrics object");

    SystemReport r;
    for (const auto &d : metrics().metrics()) {
        if (d.derived())
            continue; // recomputed from storage
        const report_io::JsonValue *v = ms->find(d.name);
        if (!v || !v->isNumber())
            fatal("report JSON: metric '", d.name,
                  "' missing or not a number");
        if (d.integral())
            d.setU64(r, v->asU64());
        else
            d.set(r, v->asNumber());
    }
    return r;
}

void
SystemReport::toCsv(std::ostream &os, bool with_header) const
{
    const auto snap = snapshot();
    if (with_header)
        report_io::writeMetricsCsvHeader(os, snap);
    report_io::writeMetricsCsvRow(os, snap);
}

SystemReport
SystemReport::fromCsv(std::istream &is)
{
    std::string header_line, row_line;
    if (!std::getline(is, header_line) || !std::getline(is, row_line))
        fatal("report CSV: need a header line and a value line");
    const auto names = report_io::splitCsvLine(header_line);
    const auto values = report_io::splitCsvLine(row_line);
    if (names.size() != values.size())
        fatal("report CSV: header/value column mismatch");

    SystemReport r;
    std::size_t filled = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto *d = metrics().find(names[i]);
        if (!d)
            fatal("report CSV: unknown metric '", names[i], "'");
        if (d->derived())
            continue;
        if (d->integral())
            d->setU64(r, std::strtoull(values[i].c_str(), nullptr, 10));
        else
            d->set(r, std::strtod(values[i].c_str(), nullptr));
        ++filled;
    }
    if (filled != metrics().storedCount())
        fatal("report CSV: not every stored metric present");
    return r;
}

} // namespace neofog
