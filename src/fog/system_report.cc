#include "fog/system_report.hh"

namespace neofog {

void
SystemReport::merge(const SystemReport &shard)
{
    wakeups += shard.wakeups;
    depletionFailures += shard.depletionFailures;
    packagesSampled += shard.packagesSampled;
    packagesToCloud += shard.packagesToCloud;
    packagesInFog += shard.packagesInFog;
    packagesIncidental += shard.packagesIncidental;
    tasksBalancedAway += shard.tasksBalancedAway;
    lbMessages += shard.lbMessages;
    lbFailedRegions += shard.lbFailedRegions;
    txLost += shard.txLost;
    txAborted += shard.txAborted;
    orphanScans += shard.orphanScans;
    rejoins += shard.rejoins;
    membershipUpdates += shard.membershipUpdates;
    rtRequestsServed += shard.rtRequestsServed;
    rtRequestsMissed += shard.rtRequestsMissed;
    relayHops += shard.relayHops;
    relayDrops += shard.relayDrops;
    rtcResyncs += shard.rtcResyncs;
    capOverflowMj += shard.capOverflowMj;
    spentComputeMj += shard.spentComputeMj;
    spentTxMj += shard.spentTxMj;
    spentRxMj += shard.spentRxMj;
    spentSampleMj += shard.spentSampleMj;
    spentWakeMj += shard.spentWakeMj;
    harvestedMj += shard.harvestedMj;
}

void
SystemReport::print(std::ostream &os, const std::string &label) const
{
    os << label << ":\n"
       << "  wakeups            " << wakeups << "\n"
       << "  depletion failures " << depletionFailures << "\n"
       << "  packages sampled   " << packagesSampled << "\n"
       << "  cloud processed    " << packagesToCloud << "\n"
       << "  fog processed      " << packagesInFog << "\n"
       << "  incidental         " << packagesIncidental << "\n"
       << "  total processed    " << totalProcessed() << " ("
       << yield() * 100.0 << "% of ideal " << idealPackages << ")\n"
       << "  balanced tasks     " << tasksBalancedAway << "\n"
       << "  lb messages        " << lbMessages << "\n"
       << "  lb failed regions  " << lbFailedRegions << "\n"
       << "  tx lost (radio)    " << txLost << "\n"
       << "  tx aborted (energy)" << txAborted << "\n"
       << "  orphan scans       " << orphanScans << "\n"
       << "  rejoins            " << rejoins << "\n"
       << "  membership updates " << membershipUpdates << "\n"
       << "  rt requests        " << rtRequestsServed << " served, "
       << rtRequestsMissed << " missed\n"
       << "  relay              " << relayHops << " hops, "
       << relayDrops << " drops\n"
       << "  rtc resyncs        " << rtcResyncs << "\n"
       << "  cap overflow (mJ)  " << capOverflowMj << "\n"
       << "  energy: compute " << computeRatio() * 100.0
       << "%, radio " << radioRatio() * 100.0 << "% of "
       << (spentComputeMj + spentTxMj + spentRxMj + spentSampleMj +
           spentWakeMj)
       << " mJ spent (" << harvestedMj << " mJ ambient)\n";
}

} // namespace neofog
