#include "fog/fog_system.hh"

#include "energy/trace_cache.hh"
#include "sim/logging.hh"

namespace neofog {

FogSystem::FogSystem(const ScenarioConfig &cfg)
    : _cfg(cfg), _sim(cfg.seed)
{
    if (_cfg.nodesPerChain == 0 || _cfg.chains == 0)
        fatal("scenario needs at least one node and one chain");
    if (_cfg.multiplexing < 1)
        fatal("multiplexing must be >= 1");
    if (_cfg.slotInterval <= 0 || _cfg.horizon < _cfg.slotInterval)
        fatal("bad slot interval / horizon");

    // With the energy cache enabled, deployment-wide streams are
    // built once here and shared read-only by every chain: the rain
    // front is the same for all nodes up to a scalar gain, so one
    // prefix table answers every node's slot-window integrals.
    if (_cfg.energyCache.enabled &&
        _cfg.traceKind == TraceKind::RainLow) {
        const Tick span = _cfg.horizon + 2 * _cfg.slotInterval;
        _sharedTrace = std::make_shared<CumulativeTrace>(
            traces::makeRainUnitStream(_cfg.seed * 131 + 7, span),
            span, _cfg.energyCache.grid);
    }

    // Fork the per-chain streams up front, in chain order, from a
    // root derived only from the seed.  Every stochastic draw a chain
    // makes afterwards comes from its own stream, so neither the
    // number of chains executing concurrently nor their interleaving
    // can perturb any chain's results.
    Rng root(_cfg.seed ^ 0xF06F06ULL);
    const auto mux = static_cast<std::size_t>(_cfg.multiplexing);
    _engines.reserve(_cfg.chains);
    for (std::size_t c = 0; c < _cfg.chains; ++c) {
        const auto first_id =
            static_cast<std::uint32_t>(c * _cfg.nodesPerChain * mux);
        _engines.push_back(std::make_unique<ChainEngine>(
            _cfg, c, first_id, root.fork(), _sharedTrace));
    }

    const unsigned threads = _cfg.threads == 0
        ? ThreadPool::hardwareThreads() : _cfg.threads;
    if (threads > 1 && _cfg.chains > 1)
        _pool = std::make_unique<ThreadPool>(threads);
}

void
FogSystem::slotTick(std::int64_t slot_index)
{
    // Chains are mutually independent, so the order (and thread) in
    // which they execute a slot is irrelevant to the outcome.
    parallelFor(_pool.get(), _engines.size(), [&](std::size_t c) {
        _engines[c]->runSlot(slot_index);
    });

    // Self-rescheduling slot event: keeps the event queue O(1) in the
    // horizon instead of pre-allocating every slot up front.
    const std::int64_t next = slot_index + 1;
    if (next < _cfg.slotCount()) {
        _sim.schedule(next * _cfg.slotInterval,
                      [this, next] { slotTick(next); });
    }
}

SystemReport
FogSystem::run()
{
    NEOFOG_ASSERT(!_ran, "FogSystem::run called twice");
    _ran = true;
    _report = SystemReport{};
    _report.idealPackages = _cfg.idealPackages();

    if (_cfg.slotCount() > 0)
        _sim.schedule(0, [this] { slotTick(0); });
    _sim.runAll();

    // Merge the shards serially in chain order: uint64 sums commute,
    // but double sums do not, and a fixed order keeps the energy
    // totals bit-identical across thread counts.
    for (auto &engine : _engines) {
        engine->finalizeShard();
        _report.merge(engine->shard());
    }
    return _report;
}

void
FogSystem::dumpStats(std::ostream &os) const
{
    StatRegistry registry;
    for (std::size_t c = 0; c < _engines.size(); ++c) {
        const auto &nodes = _engines[c]->nodes();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const NodeStats &st = nodes[i]->stats();
            const std::string prefix = "chain" + std::to_string(c) +
                                       ".node" + std::to_string(i) +
                                       ".";
            registry.registerCounter(prefix + "wakeups", &st.wakeups);
            registry.registerCounter(prefix + "depletionFailures",
                                     &st.depletionFailures);
            registry.registerCounter(prefix + "packagesSampled",
                                     &st.packagesSampled);
            registry.registerCounter(prefix + "packagesToCloud",
                                     &st.packagesToCloud);
            registry.registerCounter(prefix + "packagesInFog",
                                     &st.packagesInFog);
            registry.registerCounter(prefix + "tasksExecuted",
                                     &st.tasksExecuted);
            registry.registerCounter(prefix + "incidentalTasks",
                                     &st.incidentalTasks);
            registry.registerCounter(prefix + "tasksReceived",
                                     &st.tasksReceived);
            registry.registerCounter(prefix + "tasksShipped",
                                     &st.tasksShipped);
            registry.registerCounter(prefix + "txFailures",
                                     &st.txFailures);
            registry.registerCounter(prefix + "samplesDiscarded",
                                     &st.samplesDiscarded);
            registry.registerCounter(prefix + "rtcResyncs",
                                     &st.rtcResyncs);
            registry.registerSeries(prefix + "storedEnergyMj",
                                    &st.storedEnergyMj);
        }
    }
    registry.dump(os);
}

std::vector<report_io::LabeledSeries>
FogSystem::probeSeries() const
{
    std::vector<report_io::LabeledSeries> out;
    if (!_cfg.probes.enabled)
        return out;
    out.reserve(_engines.size() * 4);
    for (std::size_t c = 0; c < _engines.size(); ++c) {
        const ChainProbe &p = _engines[c]->probe();
        const std::string prefix = "chain" + std::to_string(c) + ".";
        out.push_back({prefix + "stored_mj", "mJ",
                       p.storedEnergyMj.snapshot()});
        out.push_back({prefix + "yield", "ratio",
                       p.yieldFrac.snapshot()});
        out.push_back({prefix + "balanced_tasks", "",
                       p.balancedTasks.snapshot()});
        out.push_back({prefix + "depletion_failures", "",
                       p.depletionFailures.snapshot()});
    }
    return out;
}

report_io::LabeledSeries
FogSystem::nodeEnergySeries(std::size_t chain, std::size_t physical_idx,
                            std::size_t max_points) const
{
    const Node &n = node(chain, physical_idx);
    return {"chain" + std::to_string(chain) + ".node" +
                std::to_string(physical_idx) + ".stored_mj",
            "mJ", n.stats().storedEnergyMj.downsampled(max_points)};
}

const Node &
FogSystem::node(std::size_t chain, std::size_t physical_idx) const
{
    NEOFOG_ASSERT(chain < _engines.size(), "chain index");
    return _engines[chain]->node(physical_idx);
}

std::size_t
FogSystem::physicalPerChain() const
{
    return _cfg.nodesPerChain *
           static_cast<std::size_t>(_cfg.multiplexing);
}

} // namespace neofog
