#include "fog/fog_system.hh"

#include <algorithm>

#include "energy/power_trace.hh"
#include "net/mac.hh"
#include "net/packet.hh"
#include "sim/logging.hh"

namespace neofog {

void
SystemReport::print(std::ostream &os, const std::string &label) const
{
    os << label << ":\n"
       << "  wakeups            " << wakeups << "\n"
       << "  depletion failures " << depletionFailures << "\n"
       << "  packages sampled   " << packagesSampled << "\n"
       << "  cloud processed    " << packagesToCloud << "\n"
       << "  fog processed      " << packagesInFog << "\n"
       << "  incidental         " << packagesIncidental << "\n"
       << "  total processed    " << totalProcessed() << " ("
       << yield() * 100.0 << "% of ideal " << idealPackages << ")\n"
       << "  balanced tasks     " << tasksBalancedAway << "\n"
       << "  lb messages        " << lbMessages << "\n"
       << "  lb failed regions  " << lbFailedRegions << "\n"
       << "  tx lost (radio)    " << txLost << "\n"
       << "  tx aborted (energy)" << txAborted << "\n"
       << "  orphan scans       " << orphanScans << "\n"
       << "  rejoins            " << rejoins << "\n"
       << "  membership updates " << membershipUpdates << "\n"
       << "  rt requests        " << rtRequestsServed << " served, "
       << rtRequestsMissed << " missed\n"
       << "  relay              " << relayHops << " hops, "
       << relayDrops << " drops\n"
       << "  rtc resyncs        " << rtcResyncs << "\n"
       << "  cap overflow (mJ)  " << capOverflowMj << "\n"
       << "  energy: compute " << computeRatio() * 100.0
       << "%, radio " << radioRatio() * 100.0 << "% of "
       << (spentComputeMj + spentTxMj + spentRxMj + spentSampleMj +
           spentWakeMj)
       << " mJ spent (" << harvestedMj << " mJ ambient)\n";
}

FogSystem::FogSystem(const ScenarioConfig &cfg)
    : _cfg(cfg), _sim(cfg.seed), _rng(cfg.seed ^ 0xF06F06ULL),
      _loss(cfg.loss), _balancer(makeBalancer(cfg.balancerPolicy))
{
    if (_cfg.nodesPerChain == 0 || _cfg.chains == 0)
        fatal("scenario needs at least one node and one chain");
    if (_cfg.multiplexing < 1)
        fatal("multiplexing must be >= 1");
    if (_cfg.slotInterval <= 0 || _cfg.horizon < _cfg.slotInterval)
        fatal("bad slot interval / horizon");

    const auto mux = static_cast<std::size_t>(_cfg.multiplexing);
    _nodes.resize(_cfg.chains);
    _groups.resize(_cfg.chains);
    std::uint32_t next_id = 0;
    for (std::size_t c = 0; c < _cfg.chains; ++c) {
        _nodes[c].reserve(_cfg.nodesPerChain * mux);
        for (std::size_t l = 0; l < _cfg.nodesPerChain; ++l) {
            std::vector<std::size_t> members;
            for (std::size_t m = 0; m < mux; ++m) {
                Node::Config ncfg = _cfg.nodeTemplate;
                ncfg.id = next_id++;
                ncfg.mode = _cfg.mode;
                ncfg.rtc.interval = _cfg.slotInterval;
                members.push_back(_nodes[c].size());
                _nodes[c].push_back(std::make_unique<Node>(
                    ncfg, makeTrace(_rng), _rng.fork()));
            }
            _groups[c].emplace_back(l, std::move(members));
        }
        _aliveLastSlot.emplace_back(_cfg.nodesPerChain, true);
    }
}

std::unique_ptr<PowerTrace>
FogSystem::makeTrace(Rng &rng)
{
    const Tick span = _cfg.horizon + 2 * _cfg.slotInterval;
    switch (_cfg.traceKind) {
      case TraceKind::ForestIndependent:
        return traces::makeForestTrace(rng, span, _cfg.meanIncome);
      case TraceKind::BridgeDependent:
        return traces::makeBridgeTrace(_cfg.profileIndex, rng, span,
                                       _cfg.meanIncome);
      case TraceKind::MountainSunny:
        return traces::makeMountainTrace(rng, span, _cfg.meanIncome);
      case TraceKind::RainLow:
        // Dependent: all nodes share the deployment's spell schedule.
        return traces::makeRainTrace(_cfg.seed * 131 + 7, rng, span,
                                     _cfg.meanIncome);
      case TraceKind::Constant:
        return std::make_unique<ConstantTrace>(_cfg.meanIncome);
    }
    NEOFOG_PANIC("unknown trace kind");
}

SystemReport
FogSystem::run()
{
    NEOFOG_ASSERT(!_ran, "FogSystem::run called twice");
    _ran = true;
    _report = SystemReport{};
    _report.idealPackages = _cfg.idealPackages();

    const std::int64_t slots = _cfg.slotCount();
    for (std::int64_t s = 0; s < slots; ++s) {
        const Tick when = s * _cfg.slotInterval;
        _sim.schedule(when, [this, s] {
            for (std::size_t c = 0; c < _cfg.chains; ++c)
                runChainSlot(c, s);
        });
    }
    _sim.runAll();

    // Aggregate node counters.
    for (const auto &chain : _nodes) {
        for (const auto &node : chain) {
            const NodeStats &st = node->stats();
            _report.wakeups += st.wakeups.value();
            _report.depletionFailures += st.depletionFailures.value();
            _report.packagesSampled += st.packagesSampled.value();
            _report.rtcResyncs += st.rtcResyncs.value();
            _report.capOverflowMj +=
                node->capacitor().overflowTotal().millijoules();
            _report.spentComputeMj += st.spentCompute.millijoules();
            _report.spentTxMj += st.spentTx.millijoules();
            _report.spentRxMj += st.spentRx.millijoules();
            _report.spentSampleMj += st.spentSample.millijoules();
            _report.spentWakeMj += st.spentWake.millijoules();
            _report.harvestedMj += st.harvestedTotal.millijoules();
        }
    }
    return _report;
}

void
FogSystem::dumpStats(std::ostream &os) const
{
    StatRegistry registry;
    for (std::size_t c = 0; c < _nodes.size(); ++c) {
        for (std::size_t i = 0; i < _nodes[c].size(); ++i) {
            const NodeStats &st = _nodes[c][i]->stats();
            const std::string prefix = "chain" + std::to_string(c) +
                                       ".node" + std::to_string(i) +
                                       ".";
            registry.registerCounter(prefix + "wakeups", &st.wakeups);
            registry.registerCounter(prefix + "depletionFailures",
                                     &st.depletionFailures);
            registry.registerCounter(prefix + "packagesSampled",
                                     &st.packagesSampled);
            registry.registerCounter(prefix + "packagesToCloud",
                                     &st.packagesToCloud);
            registry.registerCounter(prefix + "packagesInFog",
                                     &st.packagesInFog);
            registry.registerCounter(prefix + "tasksExecuted",
                                     &st.tasksExecuted);
            registry.registerCounter(prefix + "incidentalTasks",
                                     &st.incidentalTasks);
            registry.registerCounter(prefix + "tasksReceived",
                                     &st.tasksReceived);
            registry.registerCounter(prefix + "tasksShipped",
                                     &st.tasksShipped);
            registry.registerCounter(prefix + "txFailures",
                                     &st.txFailures);
            registry.registerCounter(prefix + "samplesDiscarded",
                                     &st.samplesDiscarded);
            registry.registerCounter(prefix + "rtcResyncs",
                                     &st.rtcResyncs);
            registry.registerSeries(prefix + "storedEnergyMj",
                                    &st.storedEnergyMj);
        }
    }
    registry.dump(os);
}

const Node &
FogSystem::node(std::size_t chain, std::size_t physical_idx) const
{
    NEOFOG_ASSERT(chain < _nodes.size(), "chain index");
    NEOFOG_ASSERT(physical_idx < _nodes[chain].size(), "node index");
    return *_nodes[chain][physical_idx];
}

std::size_t
FogSystem::physicalPerChain() const
{
    return _cfg.nodesPerChain *
           static_cast<std::size_t>(_cfg.multiplexing);
}

void
FogSystem::runChainSlot(std::size_t chain, std::int64_t slot_index)
{
    const Tick t = slot_index * _cfg.slotInterval;
    auto &nodes = _nodes[chain];
    auto &groups = _groups[chain];

    // NVD4Q membership update (Algorithm 2 line 9-10): rotate the
    // clone schedules at the programmer-defined frequency before
    // resolving who serves this slot.  State travels via the NVRF
    // clone mechanism, so no network reconstruction is needed.
    if (_cfg.membershipUpdateInterval > 0 && slot_index > 0) {
        const std::int64_t every =
            _cfg.membershipUpdateInterval / _cfg.slotInterval;
        if (every > 0 && slot_index % every == 0) {
            for (CloneGroup &g : groups) {
                if (g.multiplier() > 1) {
                    g.rotateMembership();
                    ++_report.membershipUpdates;
                }
            }
        }
    }

    // One physical clone of every logical node is scheduled this slot.
    std::vector<Node *> scheduled;
    scheduled.reserve(groups.size());
    for (const CloneGroup &g : groups)
        scheduled.push_back(nodes[g.memberForSlot(slot_index)].get());

    for (Node *n : scheduled) {
        n->beginSlot(t, _cfg.slotInterval);
        n->recordEnergyPoint(t);
        // A volatile node loses buffered-but-unprocessed data at
        // power-off; NV buffers persist.
        if (_cfg.mode == OperatingMode::NosVp)
            n->discardPendingPackages();
    }

    for (Node *n : scheduled) {
        if (!n->tryWake())
            continue;
        if (_cfg.mode == OperatingMode::NosVp) {
            // A normally-off VP only performs its burst when the
            // capacitor holds a complete unit of work; otherwise the
            // wake was just the RTC check.
            const EnergyClass cls = n->classify();
            if (cls == EnergyClass::Ready || cls == EnergyClass::Extra)
                n->samplePackage();
        } else {
            // NVP modes bank samples in the NV buffer whenever they
            // can; processing happens when energy allows.
            n->samplePackage();
        }
    }

    healChain(chain, scheduled);
    balanceChain(scheduled);

    for (std::size_t l = 0; l < scheduled.size(); ++l) {
        if (!scheduled[l]->awake())
            continue;
        maybeServeRealTimeRequest(*scheduled[l], scheduled, l);
        executeAndTransmit(*scheduled[l], scheduled, l);
    }
}

void
FogSystem::maybeServeRealTimeRequest(
    Node &node, const std::vector<Node *> &scheduled,
    std::size_t logical_idx)
{
    if (_cfg.realTimeRequestChance <= 0.0 ||
        !_rng.chance(_cfg.realTimeRequestChance))
        return;
    // The control node wants this node's current sample immediately:
    // raw, unbuffered, no fog processing (paper §5.1).
    const std::size_t raw = _cfg.nodeTemplate.rawPackageBytes;
    if (node.pendingPackages() == 0) {
        ++_report.rtRequestsMissed;
        return;
    }
    const int attempts = _loss.deliver(_rng);
    const int paid =
        attempts == 0 ? _loss.config().maxRetries + 1 : attempts;
    if (!node.payTransmit(raw, paid) || attempts == 0) {
        ++_report.rtRequestsMissed;
        return;
    }
    if (!relayToSink(scheduled, logical_idx, raw)) {
        ++_report.rtRequestsMissed;
        return;
    }
    node.addPendingPackages(-1);
    node.stats().packagesToCloud.increment();
    ++_report.packagesToCloud;
    ++_report.rtRequestsServed;
}

bool
FogSystem::relayToSink(const std::vector<Node *> &scheduled,
                       std::size_t src, std::size_t payload_bytes)
{
    if (!_cfg.hopByHopRelay || src == 0)
        return true; // MAC-abstracted direct delivery (paper default)

    // The packet walks the chain src-1, src-2, ..., 0.  Each awake
    // intermediate pays an RX and a TX; dead intermediates are skipped
    // (the orphan-scan bypass already re-linked the chain).  The final
    // receive at the sink is free (the sink is mains-powered in the
    // deployments the paper surveys).
    for (std::size_t hop = src; hop-- > 1;) {
        Node *relay = scheduled[hop];
        if (!relay->awake())
            continue; // bypassed
        if (!relay->payReceive(payload_bytes) ||
            !relay->payTransmit(payload_bytes)) {
            ++_report.relayDrops;
            return false;
        }
        if (!_loss.attempt(_rng)) {
            ++_report.relayDrops;
            return false;
        }
        ++_report.relayHops;
    }
    return true;
}

void
FogSystem::healChain(std::size_t chain,
                     const std::vector<Node *> &scheduled)
{
    // Zigbee self-healing (§4): when B in A->B->C fails to start, A
    // broadcasts orphan_scan, C confirms, and the AssociatedDevList
    // updates so traffic bypasses B.  When B recovers it broadcasts
    // and the neighbours re-associate it.  Both handshakes cost the
    // *neighbours* (and the recovering node) short control exchanges.
    auto &alive_last = _aliveLastSlot[chain];
    const std::size_t n = scheduled.size();

    auto neighbor = [&](std::size_t idx, int dir) -> Node * {
        // Nearest awake neighbour in the given direction.
        std::size_t j = idx;
        while (true) {
            if (dir < 0 && j == 0)
                return nullptr;
            if (dir > 0 && j + 1 >= n)
                return nullptr;
            j = dir < 0 ? j - 1 : j + 1;
            if (scheduled[j]->awake())
                return scheduled[j];
        }
    };

    for (std::size_t l = 0; l < n; ++l) {
        const bool now = scheduled[l]->awake();
        const bool before = alive_last[l];
        if (before && !now) {
            // Newly dead: the upstream neighbour scans, the
            // downstream one confirms.
            Node *left = neighbor(l, -1);
            Node *right = neighbor(l, +1);
            if (left && right) {
                left->payControlMessage(
                    Mac::Config{}.orphanScanBytes);
                left->payReceive(Mac::Config{}.scanConfirmBytes);
                right->payReceive(Mac::Config{}.orphanScanBytes);
                right->payControlMessage(
                    Mac::Config{}.scanConfirmBytes);
                ++_report.orphanScans;
            }
        } else if (!before && now) {
            // Recovered: broadcast presence, neighbours re-associate.
            Node *left = neighbor(l, -1);
            scheduled[l]->payControlMessage(
                Mac::Config{}.orphanScanBytes);
            if (left) {
                left->payReceive(Mac::Config{}.orphanScanBytes);
                left->payControlMessage(
                    Mac::Config{}.devListEntryBytes);
            }
            scheduled[l]->payReceive(
                Mac::Config{}.devListEntryBytes);
            ++_report.rejoins;
        }
        alive_last[l] = now;
    }
}

void
FogSystem::balanceChain(std::vector<Node *> &scheduled)
{
    // The no-op policy costs nothing and moves nothing.
    if (_balancer->name() == "none")
        return;

    std::vector<LbNodeState> states(scheduled.size());
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
        Node *n = scheduled[i];
        LbNodeState &s = states[i];
        s.alive = n->awake();
        s.pendingTasks = n->pendingPackages();
        // Capacity = own queued work the node can actually complete
        // right now, plus headroom for received tasks.  A node only
        // becomes a donor when it genuinely cannot fund its own queue.
        // A node with a nearly drained capacitor offloads even work
        // it could technically fund: saving scarce stored energy for
        // future slots beats spending it now when a neighbour has
        // surplus (the efficiency-oriented goal of §3.2).
        const bool scarce = n->fillFraction() < 0.15;
        const bool can_own = !scarce &&
            n->pendingPackages() > 0 && n->canCompleteOnePackage();
        s.capacityTasks =
            n->spareTaskCapacity() +
            (can_own ? static_cast<double>(n->pendingPackages()) : 0.0);
        s.taskCost = n->relativeTaskCost();
    }

    // Every awake participant shares its state once per round.  The
    // share piggybacks on the slot-synchronization beacon the node
    // already exchanges, so it costs one short control transmission.
    for (Node *n : scheduled) {
        if (!n->awake())
            continue;
        n->payControlMessage(4);
    }

    Rng lb_rng = _rng.fork();
    const LbOutcome outcome = _balancer->balance(states, lb_rng);
    _report.lbMessages +=
        static_cast<std::uint64_t>(outcome.messagesExchanged);
    _report.lbFailedRegions +=
        static_cast<std::uint64_t>(outcome.failedRegions);

    const std::size_t raw = _cfg.nodeTemplate.rawPackageBytes;
    for (const TaskMove &m : outcome.moves) {
        Node *from = scheduled[m.from];
        Node *to = scheduled[m.to];
        if (!from->awake() || !to->awake())
            continue;
        int shipped = 0;
        for (int k = 0; k < m.tasks; ++k) {
            if (from->pendingPackages() == 0)
                break;
            // Ship the raw package over the chain (virtual buffers,
            // loss applies per transfer).
            const int attempts = _loss.deliver(_rng);
            const int paid = attempts == 0
                ? _loss.config().maxRetries + 1 : attempts;
            if (!from->payTransmit(raw, paid))
                break;
            if (attempts == 0) {
                ++_report.txLost;
                from->stats().txFailures.increment();
                from->addPendingPackages(-1);
                continue; // raw data lost in transit
            }
            if (!to->payReceive(raw))
                break;
            from->addPendingPackages(-1);
            to->addPendingPackages(1);
            ++shipped;
        }
        if (shipped > 0) {
            from->stats().tasksShipped.increment(
                static_cast<std::uint64_t>(shipped));
            to->stats().tasksReceived.increment(
                static_cast<std::uint64_t>(shipped));
            _report.tasksBalancedAway +=
                static_cast<std::uint64_t>(shipped);
        }
    }
}

void
FogSystem::executeAndTransmit(Node &node,
                              const std::vector<Node *> &scheduled,
                              std::size_t logical_idx)
{
    const bool vp = _cfg.mode == OperatingMode::NosVp;
    const std::size_t result_bytes = vp
        ? _cfg.nodeTemplate.rawPackageBytes
        : _cfg.nodeTemplate.compressedPackageBytes;

    // Process as many queued packages as energy and slot time allow,
    // transmitting each result.  The node only starts a task when the
    // whole process-and-ship pipeline is affordable, so compute energy
    // is never wasted on unshippable results.
    while (node.pendingPackages() > 0) {
        if (!vp && !node.canCompleteOnePackage())
            break;
        if (node.executeTasks(1) == 0)
            break;
        const int attempts = _loss.deliver(_rng);
        const int paid = attempts == 0
            ? _loss.config().maxRetries + 1 : attempts;
        if (!node.payTransmit(result_bytes, paid)) {
            // Processed but unshippable this slot.
            ++_report.txAborted;
            break;
        }
        if (attempts == 0) {
            node.stats().txFailures.increment();
            ++_report.txLost;
            continue;
        }
        if (!relayToSink(scheduled, logical_idx, result_bytes))
            continue;
        if (vp) {
            node.stats().packagesToCloud.increment();
            ++_report.packagesToCloud;
        } else {
            node.stats().packagesInFog.increment();
            ++_report.packagesInFog;
        }
    }

    // Incidental computing (if enabled): packages that cannot get the
    // full fog treatment are summarized at reduced fidelity rather
    // than discarded (paper §5.1, citing [47]).
    while (!vp && node.pendingPackages() > 0 &&
           node.canCompleteIncidental()) {
        if (node.executeIncidentalTasks(1) == 0)
            break;
        const int attempts = _loss.deliver(_rng);
        const int paid = attempts == 0
            ? _loss.config().maxRetries + 1 : attempts;
        if (!node.payTransmit(result_bytes, paid)) {
            ++_report.txAborted;
            break;
        }
        if (attempts == 0) {
            node.stats().txFailures.increment();
            ++_report.txLost;
            continue;
        }
        if (!relayToSink(scheduled, logical_idx, result_bytes))
            continue;
        ++_report.packagesIncidental;
    }

    // An NVP node with leftover transmit energy but no compute budget
    // (slot time exhausted, or income too bursty to fund a whole task)
    // falls back to shipping one raw package to the cloud — the small
    // cloud component of the NVP bars in Fig 10/11.  It requires
    // surplus energy so it never starves future fog work.
    if (!vp && node.pendingPackages() > 0 &&
        node.classify() == EnergyClass::Extra &&
        !node.canCompleteOnePackage()) {
        const int attempts = _loss.deliver(_rng);
        const int paid = attempts == 0
            ? _loss.config().maxRetries + 1 : attempts;
        if (node.payTransmit(_cfg.nodeTemplate.rawPackageBytes, paid) &&
            attempts != 0 &&
            relayToSink(scheduled, logical_idx,
                        _cfg.nodeTemplate.rawPackageBytes)) {
            node.addPendingPackages(-1);
            node.stats().packagesToCloud.increment();
            ++_report.packagesToCloud;
        }
    }
}

} // namespace neofog
