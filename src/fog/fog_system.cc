#include "fog/fog_system.hh"

#include "balance/policy_registry.hh"
#include "energy/trace_cache.hh"
#include "fog/snapshot_io.hh"
#include "sim/logging.hh"
#include "snapshot/archive.hh"
#include "snapshot/snapshot.hh"

namespace neofog {

FogSystem::FogSystem(const ScenarioConfig &cfg)
    : FogSystem(cfg, 0, cfg.chains)
{}

FogSystem::FogSystem(const ScenarioConfig &cfg, std::size_t chain_lo,
                     std::size_t chain_hi)
    : _cfg(cfg), _sim(cfg.seed), _chainLo(chain_lo), _chainHi(chain_hi)
{
    if (_cfg.nodesPerChain == 0 || _cfg.chains == 0)
        fatal("scenario needs at least one node and one chain");
    if (_cfg.multiplexing < 1)
        fatal("multiplexing must be >= 1");
    if (_cfg.slotInterval <= 0 || _cfg.horizon < _cfg.slotInterval)
        fatal("bad slot interval / horizon");
    if (_chainLo >= _chainHi || _chainHi > _cfg.chains)
        fatal("chain partition [", _chainLo, ", ", _chainHi,
              ") is not a non-empty subrange of ", _cfg.chains,
              " chains");

    // Canonicalize the balancer spec up front: one registry walk
    // validates the policy name and every parameter (failing with
    // did-you-mean diagnostics before any chain is built), and the
    // canonical form — name + non-default params only — is what
    // serializeScenario() then carries into the snapshot config
    // fingerprint, so a resume under a differently tuned policy is
    // rejected loudly instead of silently diverging.
    _cfg.balancerPolicy =
        PolicyRegistry::instance().canonicalSpec(_cfg.balancerPolicy);

    // With the energy cache enabled, deployment-wide streams are
    // built once here and shared read-only by every chain: the rain
    // front is the same for all nodes up to a scalar gain, so one
    // prefix table answers every node's slot-window integrals.
    if (_cfg.energyCache.enabled &&
        _cfg.traceKind == TraceKind::RainLow) {
        const Tick span = _cfg.horizon + 2 * _cfg.slotInterval;
        _sharedTrace = std::make_shared<CumulativeTrace>(
            traces::makeRainUnitStream(_cfg.seed * 131 + 7, span),
            span, _cfg.energyCache.grid);
    }

    // Fork the per-chain streams up front, in chain order, from a
    // root derived only from the seed — all *global* chains, even
    // when this system simulates only a partition slice: chain c's
    // stream must be the c-th fork no matter which process runs it.
    // Every stochastic draw a chain makes afterwards comes from its
    // own stream, so neither the number of chains executing
    // concurrently nor their interleaving can perturb any chain's
    // results.
    Rng root(_cfg.seed ^ 0xF06F06ULL);
    std::vector<Rng> streams;
    streams.reserve(_cfg.chains);
    for (std::size_t c = 0; c < _cfg.chains; ++c)
        streams.push_back(root.fork());

    // The pool exists before the engines so construction itself can
    // run under the *chunked* partition: chain c's shard arrays are
    // allocated and first-written by the same pool thread that will
    // sweep them every slot (slotTick below uses the same stable
    // chunk→thread mapping), so with --pin-threads the OS places each
    // shard's pages on the worker's own core/NUMA node (first-touch).
    const std::size_t owned = _chainHi - _chainLo;
    const unsigned threads = _cfg.threads == 0
        ? ThreadPool::hardwareThreads() : _cfg.threads;
    if (threads > 1 && owned > 1)
        _pool = std::make_unique<ThreadPool>(threads, _cfg.pinThreads);

    // Engine construction is chain-parallel for the same reason the
    // slot loop is: engine c writes only its own slot (distinct
    // unique_ptr elements), reads only the shared config, the
    // read-only shared trace, and its own pre-forked RNG stream.
    // Node ids stay globally contiguous (first id derives from the
    // global chain index), so a partition's chain c is
    // indistinguishable from the full system's.
    const auto mux = static_cast<std::size_t>(_cfg.multiplexing);
    _engines.resize(owned);
    parallelForChunked(_pool.get(), owned, [&](std::size_t i) {
        const std::size_t c = _chainLo + i;
        const auto first_id =
            static_cast<std::uint32_t>(c * _cfg.nodesPerChain * mux);
        _engines[i] = std::make_unique<ChainEngine>(
            _cfg, c, first_id, streams[c], _sharedTrace);
    });
}

void
FogSystem::runOneSlot(std::int64_t slot_index)
{
    // Chains are mutually independent, so the order (and thread) in
    // which they execute a slot is irrelevant to the outcome.  The
    // chunked partition (not dynamic claiming) keeps chain c on the
    // pool thread that constructed its shard, every slot — see the
    // first-touch note in the constructor.
    parallelForChunked(_pool.get(), _engines.size(),
                       [&](std::size_t c) {
        _engines[c]->runSlot(slot_index);
    });
}

void
FogSystem::runWindow(std::int64_t from, std::int64_t to)
{
    NEOFOG_ASSERT(from >= 0 && to <= _cfg.slotCount() && from <= to,
                  "runWindow range");
    for (std::int64_t s = from; s < to; ++s)
        runOneSlot(s);
}

void
FogSystem::slotTick(std::int64_t slot_index)
{
    runOneSlot(slot_index);

    // Checkpoint at the upcoming boundary: the state right now is
    // "after slots [0, next)", exactly what a resume starting at
    // `next` needs.  Writing is read-only with respect to simulation
    // state, so it can never perturb results.
    const std::int64_t next = slot_index + 1;
    if (_cfg.snapshot.everySlots > 0 && next < _cfg.slotCount() &&
        next % _cfg.snapshot.everySlots == 0)
        saveSnapshot(next);

    // Self-rescheduling slot event: keeps the event queue O(1) in the
    // horizon instead of pre-allocating every slot up front.
    if (next < _cfg.slotCount()) {
        _sim.schedule(next * _cfg.slotInterval,
                      [this, next] { slotTick(next); });
    }
}

SystemReport
FogSystem::run()
{
    NEOFOG_ASSERT(!_ran, "FogSystem::run called twice");
    NEOFOG_ASSERT(_chainLo == 0 && _chainHi == _cfg.chains,
                  "run() needs the full chain range; partition systems "
                  "are driven via runWindow + shardBlob");
    _ran = true;
    _report = SystemReport{};
    _report.idealPackages = _cfg.idealPackages();

    // The only event alive at a slot boundary is the self-rescheduling
    // slot tick, so a resumed run re-materializes the queue by
    // scheduling the first outstanding slot (0 for a fresh system).
    if (_resumeSlot < _cfg.slotCount()) {
        const std::int64_t first = _resumeSlot;
        _sim.schedule(first * _cfg.slotInterval,
                      [this, first] { slotTick(first); });
    }
    _sim.runAll();

    // Merge the shards serially in chain order: uint64 sums commute,
    // but double sums do not, and a fixed order keeps the energy
    // totals bit-identical across thread counts.
    finalizeShards();
    for (auto &engine : _engines)
        _report.merge(engine->shard());
    return _report;
}

void
FogSystem::finalizeShards()
{
    if (_finalized)
        return;
    _finalized = true;
    for (auto &engine : _engines)
        engine->finalizeShard();
}

std::string
FogSystem::shardBlob(std::size_t engine_idx) const
{
    NEOFOG_ASSERT(engine_idx < _engines.size(), "shard index");
    NEOFOG_ASSERT(_finalized, "shardBlob before finalizeShards");
    // serialize() mutates nothing but takes non-const refs; archive a
    // copy so the engine's shard stays untouched.
    SystemReport shard = _engines[engine_idx]->shard();
    snapshot::OutArchive ar;
    ar.pushScope("shard");
    shard.serialize(ar);
    ar.popScope();
    return ar.take();
}

std::uint64_t
FogSystem::rotationDigest() const
{
    std::string bytes;
    for (const auto &engine : _engines) {
        snapshot::appendLe64(
            bytes, static_cast<std::uint64_t>(engine->chainIndex()));
        for (const CloneGroup &g : engine->groups())
            snapshot::appendLe32(
                bytes, static_cast<std::uint32_t>(g.rotation()));
    }
    return snapshot::fnv1a(bytes);
}

void
FogSystem::saveSnapshot(std::int64_t slot)
{
    snapshot::Snapshot snap;
    snap.slot = slot;
    snap.seed = _cfg.seed;
    snap.chains = _cfg.chains;

    snapshot::Section config;
    config.name = "config";
    config.data = serializeScenarioBlob(_cfg);
    snap.configHash = snapshot::fnv1a(config.data);

    snapshot::Section system;
    system.name = "system";
    {
        snapshot::OutArchive ar;
        std::int64_t s = slot;
        ar.io("slot", s);
        system.data = ar.take();
    }

    // Chain shards serialize concurrently — each walk touches only its
    // own engine's state, draws nothing from any RNG, and writes into
    // its own buffer — then land in the snapshot in chain order, so
    // the byte stream is identical for any thread count.  Sections are
    // named by *global* chain index: a partition system (distributed
    // worker) writes exactly its [chainLo, chainHi) slice, and the
    // union of the workers' files covers the same sections a
    // single-process snapshot holds.
    std::vector<snapshot::Section> chain_sections(_engines.size());
    parallelForChunked(_pool.get(), _engines.size(),
                       [&](std::size_t i) {
        const std::string name =
            "chain" + std::to_string(_engines[i]->chainIndex());
        snapshot::OutArchive ar;
        ar.pushScope(name);
        _engines[i]->serialize(ar);
        ar.popScope();
        chain_sections[i].name = name;
        chain_sections[i].data = ar.take();
    });

    snap.sections.reserve(2 + chain_sections.size());
    snap.sections.push_back(std::move(config));
    snap.sections.push_back(std::move(system));
    for (auto &s : chain_sections)
        snap.sections.push_back(std::move(s));

    const std::string &dir = _cfg.snapshot.dir;
    const std::string path = (dir.empty() ? std::string(".") : dir) +
                             "/" + snapshot::snapshotFileName(slot);
    snapshot::writeSnapshot(path, snap);
}

std::unique_ptr<FogSystem>
FogSystem::resume(const std::string &path, unsigned threads,
                  ScenarioConfig::SnapshotConfig snap_cfg,
                  bool simd_kernel, bool pin_threads)
{
    const std::string file = snapshot::resolveSnapshotPath(path);
    const snapshot::Snapshot snap = snapshot::readSnapshot(file);

    const snapshot::Section *config = snap.find("config");
    if (config == nullptr)
        fatal("snapshot ", file, " has no config section");
    ScenarioConfig cfg = deserializeScenarioBlob(config->data);
    cfg.threads = threads;
    cfg.snapshot = std::move(snap_cfg);
    cfg.simdKernel = simd_kernel;
    cfg.pinThreads = pin_threads;

    if (snap.chains != cfg.chains)
        fatal("snapshot ", file, " header claims ", snap.chains,
              " chains but its config section has ", cfg.chains);
    if (snap.slot < 0 || snap.slot > cfg.slotCount())
        fatal("snapshot ", file, " slot ", snap.slot,
              " lies outside the scenario horizon of ",
              cfg.slotCount(), " slots");
    if (snap.seed != cfg.seed)
        fatal("snapshot ", file, " header seed ", snap.seed,
              " does not match its config section seed ", cfg.seed);

    // Reconstruct-then-overwrite: the constructor deterministically
    // rebuilds traces, engines, and nodes exactly as the original run
    // did (same seed, same fork order), and the archived state then
    // replaces every mutable field.  Restoring is chain-parallel for
    // the same reason serializing is; a corrupt section throws out of
    // parallelFor and the half-built system is discarded whole.
    auto system = std::make_unique<FogSystem>(cfg);
    parallelForChunked(system->_pool.get(), system->_engines.size(),
                       [&](std::size_t c) {
        const std::string name = "chain" + std::to_string(c);
        const snapshot::Section *sec = snap.find(name);
        if (sec == nullptr)
            fatal("snapshot ", file, " is missing section '", name,
                  "'");
        snapshot::InArchive ar(sec->data);
        ar.pushScope(name);
        system->_engines[c]->serialize(ar);
        ar.popScope();
        if (!ar.atEnd())
            fatal("snapshot ", file, " section '", name,
                  "' has trailing records (format/version skew?)");
    });
    system->_resumeSlot = snap.slot;
    return system;
}

std::unique_ptr<FogSystem>
FogSystem::resumePartition(const std::string &path,
                           const ScenarioConfig &host,
                           std::size_t chain_lo, std::size_t chain_hi)
{
    const std::string file = snapshot::resolveSnapshotPath(path);
    const snapshot::Snapshot snap = snapshot::readSnapshot(file);

    const snapshot::Section *config = snap.find("config");
    if (config == nullptr)
        fatal("snapshot ", file, " has no config section");
    ScenarioConfig cfg = deserializeScenarioBlob(config->data);

    // The worker already validated its scenario against the
    // coordinator's fingerprint at HELLO time; cross-check the
    // snapshot's archived scenario against the same fingerprint so a
    // stale directory (earlier run, different scenario) is rejected
    // before any engine state is overwritten.
    if (scenarioFingerprint(cfg) != scenarioFingerprint(host))
        fatal("partition snapshot ", file, " archives a different "
              "scenario than this worker was assigned — stale "
              "snapshot directory?");

    cfg.threads = host.threads;
    cfg.snapshot = host.snapshot;
    cfg.batchSlotKernel = host.batchSlotKernel;
    cfg.simdKernel = host.simdKernel;
    cfg.pinThreads = host.pinThreads;

    if (snap.chains != cfg.chains)
        fatal("snapshot ", file, " header claims ", snap.chains,
              " chains but its config section has ", cfg.chains);
    if (snap.slot < 0 || snap.slot > cfg.slotCount())
        fatal("snapshot ", file, " slot ", snap.slot,
              " lies outside the scenario horizon of ",
              cfg.slotCount(), " slots");
    if (snap.seed != cfg.seed)
        fatal("snapshot ", file, " header seed ", snap.seed,
              " does not match its config section seed ", cfg.seed);

    // Reconstruct-then-overwrite over the partition slice, exactly as
    // the full resume does over all chains.
    auto system =
        std::make_unique<FogSystem>(cfg, chain_lo, chain_hi);
    parallelForChunked(system->_pool.get(), system->_engines.size(),
                       [&](std::size_t i) {
        const std::string name =
            "chain" +
            std::to_string(system->_engines[i]->chainIndex());
        const snapshot::Section *sec = snap.find(name);
        if (sec == nullptr)
            fatal("partition snapshot ", file, " is missing section '",
                  name, "' — written by a different chain range?");
        snapshot::InArchive ar(sec->data);
        ar.pushScope(name);
        system->_engines[i]->serialize(ar);
        ar.popScope();
        if (!ar.atEnd())
            fatal("snapshot ", file, " section '", name,
                  "' has trailing records (format/version skew?)");
    });
    system->_resumeSlot = snap.slot;
    return system;
}

void
FogSystem::dumpStats(std::ostream &os) const
{
    StatRegistry registry;
    for (std::size_t c = 0; c < _engines.size(); ++c) {
        const auto &nodes = _engines[c]->nodes();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const NodeStats &st = nodes[i]->stats();
            const std::string prefix =
                "chain" + std::to_string(_engines[c]->chainIndex()) +
                ".node" + std::to_string(i) + ".";
            registry.registerCounter(prefix + "wakeups", &st.wakeups);
            registry.registerCounter(prefix + "depletionFailures",
                                     &st.depletionFailures);
            registry.registerCounter(prefix + "packagesSampled",
                                     &st.packagesSampled);
            registry.registerCounter(prefix + "packagesToCloud",
                                     &st.packagesToCloud);
            registry.registerCounter(prefix + "packagesInFog",
                                     &st.packagesInFog);
            registry.registerCounter(prefix + "tasksExecuted",
                                     &st.tasksExecuted);
            registry.registerCounter(prefix + "incidentalTasks",
                                     &st.incidentalTasks);
            registry.registerCounter(prefix + "tasksReceived",
                                     &st.tasksReceived);
            registry.registerCounter(prefix + "tasksShipped",
                                     &st.tasksShipped);
            registry.registerCounter(prefix + "txFailures",
                                     &st.txFailures);
            registry.registerCounter(prefix + "samplesDiscarded",
                                     &st.samplesDiscarded);
            registry.registerCounter(prefix + "rtcResyncs",
                                     &st.rtcResyncs);
            registry.registerSeries(prefix + "storedEnergyMj",
                                    &st.storedEnergyMj);
        }
    }
    registry.dump(os);
}

std::vector<report_io::LabeledSeries>
FogSystem::probeSeries() const
{
    std::vector<report_io::LabeledSeries> out;
    if (!_cfg.probes.enabled)
        return out;
    out.reserve(_engines.size() * 4);
    for (std::size_t c = 0; c < _engines.size(); ++c) {
        const ChainProbe &p = _engines[c]->probe();
        const std::string prefix =
            "chain" + std::to_string(_engines[c]->chainIndex()) + ".";
        out.push_back({prefix + "stored_mj", "mJ",
                       p.storedEnergyMj.snapshot()});
        out.push_back({prefix + "yield", "ratio",
                       p.yieldFrac.snapshot()});
        out.push_back({prefix + "balanced_tasks", "",
                       p.balancedTasks.snapshot()});
        out.push_back({prefix + "depletion_failures", "",
                       p.depletionFailures.snapshot()});
    }
    return out;
}

report_io::LabeledSeries
FogSystem::nodeEnergySeries(std::size_t chain, std::size_t physical_idx,
                            std::size_t max_points) const
{
    const Node &n = node(chain, physical_idx);
    return {"chain" + std::to_string(chain) + ".node" +
                std::to_string(physical_idx) + ".stored_mj",
            "mJ", n.stats().storedEnergyMj.downsampled(max_points)};
}

const Node &
FogSystem::node(std::size_t chain, std::size_t physical_idx) const
{
    NEOFOG_ASSERT(chain < _engines.size(), "chain index");
    return _engines[chain]->node(physical_idx);
}

std::size_t
FogSystem::physicalPerChain() const
{
    return _cfg.nodesPerChain *
           static_cast<std::size_t>(_cfg.multiplexing);
}

} // namespace neofog
