/**
 * @file
 * FogSystem: the system-level WSN simulator.
 *
 * Mirrors the paper's two-level simulation framework (§4): node-level
 * behaviour is captured by the Node model (calibrated per-phase
 * latency/energy), and the system level "starts thousands of node
 * simulators at a time", drives them on the RTC slot grid, performs
 * intra-chain load balancing and inter-chain virtualization, and
 * mimics communication as direct transfers through virtual buffers
 * under a success probability.
 *
 * The per-chain simulation lives in ChainEngine; FogSystem is the
 * orchestrator: it forks one RNG stream per chain (in chain order),
 * schedules the slot grid, dispatches the chains of each slot across
 * a ThreadPool, and merges the per-chain report shards in chain order
 * so results are bit-identical for any thread count.
 */

#ifndef NEOFOG_FOG_FOG_SYSTEM_HH
#define NEOFOG_FOG_FOG_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "fog/chain_engine.hh"
#include "fog/scenario.hh"
#include "fog/system_report.hh"
#include "sim/report_io.hh"
#include "sim/simulator.hh"
#include "sim/thread_pool.hh"

namespace neofog {

/**
 * One simulated deployment.
 */
class FogSystem
{
  public:
    explicit FogSystem(const ScenarioConfig &cfg);

    /**
     * Partition constructor (the distributed worker's entry point,
     * see src/dist/): build engines only for the contiguous global
     * chain range [chain_lo, chain_hi).  The RNG root still forks one
     * stream per *global* chain in chain order — the partition takes
     * its slice — and node ids stay globally contiguous, so chain c
     * behaves bit-identically whether it runs in a full system or in
     * any partition containing it.
     */
    FogSystem(const ScenarioConfig &cfg, std::size_t chain_lo,
              std::size_t chain_hi);

    /**
     * Reconstruct a system from a snapshot (see src/snapshot/): @p path
     * names either a snapshot file or a directory, which resolves to
     * its newest fully valid snapshot.  The scenario is rebuilt from
     * the snapshot's own config section; @p threads, @p snap,
     * @p simd_kernel, and @p pin_threads replace the host-local knobs
     * (none influences results).  run() on the returned system
     * continues at the snapshot's slot and produces a report
     * bit-identical to the uninterrupted run.  Fatal on any
     * corruption or config mismatch — a resume applies completely or
     * not at all.
     */
    static std::unique_ptr<FogSystem>
    resume(const std::string &path, unsigned threads = 1,
           ScenarioConfig::SnapshotConfig snap = {},
           bool simd_kernel = true, bool pin_threads = false);

    /**
     * Partition resume: reconstruct the chain range [chain_lo,
     * chain_hi) from a *partition snapshot* (one whose chain sections
     * cover exactly that range; see the partition constructor and the
     * distributed worker loop).  The scenario is rebuilt from the
     * snapshot's config section; @p host supplies the host-local
     * knobs (threads, snapshot, batchSlotKernel, simdKernel,
     * pinThreads — none influences results) and must otherwise match
     * the archived scenario fingerprint.  Fatal on any corruption,
     * range, or config mismatch.
     */
    static std::unique_ptr<FogSystem>
    resumePartition(const std::string &path, const ScenarioConfig &host,
                    std::size_t chain_lo, std::size_t chain_hi);

    /**
     * Write a full-state checkpoint into the configured snapshot
     * directory.  @p slot is the first slot a resume will execute, so
     * the archived state is "after slots [0, slot)".  Chain shards
     * serialize in parallel (read-only, no RNG draws) and land in the
     * file in chain order, so the bytes are thread-count independent.
     */
    void saveSnapshot(std::int64_t slot);

    /** First slot run() will execute (0 unless resumed). */
    std::int64_t resumeSlot() const { return _resumeSlot; }

    /** Run the full horizon and return aggregated results. */
    SystemReport run();

    /**
     * Run slots [from, to) over this system's chain range, outside
     * the event queue.  ChainEngine never touches the Simulator, so a
     * plain slot loop is bit-identical to the event-driven run() —
     * this is the distributed worker's stepping primitive (the
     * coordinator drives barriers and checkpoints explicitly).
     * Leaves the report un-merged; see shardBlob().
     */
    void runWindow(std::int64_t from, std::int64_t to);

    /** Chain range this system simulates: [chainLo, chainHi). */
    std::size_t chainLo() const { return _chainLo; }
    std::size_t chainHi() const { return _chainHi; }

    /**
     * Fold node counters into every engine's report shard (idempotent
     * wrapper; finalizeShard itself must run exactly once per chain).
     * Workers call this after the horizon, before shipping shards.
     */
    void finalizeShards();

    /**
     * One chain's finalized report shard as an archive record stream
     * (scope "shard") — the payload of the wire SHARD message.
     * @p engine_idx indexes this system's engines (0-based within the
     * partition), not global chains.
     */
    std::string shardBlob(std::size_t engine_idx) const;

    /**
     * FNV-1a digest of the partition's NVD4Q clone rotations: per
     * chain, the global chain index (LE64) then each group's rotation
     * (LE32).  Matches dist::expectedRotationDigest when the partition
     * is exactly on the slot grid — the distributed barrier check.
     */
    std::uint64_t rotationDigest() const;

    /** Per-(physical)-node access after run() for figure series. */
    const Node &node(std::size_t chain, std::size_t physical_idx) const;

    /** Number of physical nodes per chain. */
    std::size_t physicalPerChain() const;

    const ScenarioConfig &config() const { return _cfg; }

    /** The per-chain engines, in chain order. */
    const std::vector<std::unique_ptr<ChainEngine>> &chains() const
    { return _engines; }

    /**
     * Dump every node's counters and series sizes as "name value"
     * lines (gem5-style), e.g. `chain0.node3.wakeups 117`.
     */
    void dumpStats(std::ostream &os) const;

    /**
     * Snapshot every chain's probe series for export, in chain order
     * (names like "chain0.stored_mj").  Empty unless the scenario
     * enabled probes (ScenarioConfig::probes).
     */
    std::vector<report_io::LabeledSeries> probeSeries() const;

    /**
     * One physical node's stored-energy series, export-ready (the
     * path behind the CLI's --dump-energy), downsampled to at most
     * @p max_points.
     */
    report_io::LabeledSeries
    nodeEnergySeries(std::size_t chain, std::size_t physical_idx,
                     std::size_t max_points = 400) const;

    /** The simulator context (time, event queue, stats). */
    Simulator &sim() { return _sim; }

  private:
    /** Run one slot across every chain, then schedule the next. */
    void slotTick(std::int64_t slot_index);

    /** The chain-parallel body of one slot (no scheduling). */
    void runOneSlot(std::int64_t slot_index);

    ScenarioConfig _cfg;
    Simulator _sim;

    /** Global chain range simulated here (full system: [0, chains)). */
    std::size_t _chainLo = 0;
    std::size_t _chainHi = 0;
    /** Whether finalizeShards() has already folded the counters. */
    bool _finalized = false;

    /**
     * Scenario-wide shared power stream (rain front), prefix-summed
     * when the energy cache is enabled.  Immutable after the
     * constructor, so chains read it concurrently without
     * synchronization.  Null for per-node trace kinds.
     */
    std::shared_ptr<const PowerTrace> _sharedTrace;

    /** One engine per chain; no two share mutable state. */
    std::vector<std::unique_ptr<ChainEngine>> _engines;

    /** Worker pool for the per-slot chain loop (null when serial). */
    std::unique_ptr<ThreadPool> _pool;

    SystemReport _report;
    bool _ran = false;
    /** First slot run() executes; nonzero after resume(). */
    std::int64_t _resumeSlot = 0;
};

} // namespace neofog

#endif // NEOFOG_FOG_FOG_SYSTEM_HH
