/**
 * @file
 * FogSystem: the system-level WSN simulator.
 *
 * Mirrors the paper's two-level simulation framework (§4): node-level
 * behaviour is captured by the Node model (calibrated per-phase
 * latency/energy), and the system level "starts thousands of node
 * simulators at a time", drives them on the RTC slot grid, performs
 * intra-chain load balancing and inter-chain virtualization, and
 * mimics communication as direct transfers through virtual buffers
 * under a success probability.
 */

#ifndef NEOFOG_FOG_FOG_SYSTEM_HH
#define NEOFOG_FOG_FOG_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "balance/balancer.hh"
#include "fog/scenario.hh"
#include "net/loss.hh"
#include "node/node.hh"
#include "sim/simulator.hh"
#include "virt/nvd4q.hh"

namespace neofog {

/** Aggregated results of one run. */
struct SystemReport
{
    std::uint64_t idealPackages = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t depletionFailures = 0;
    std::uint64_t packagesSampled = 0;
    std::uint64_t packagesToCloud = 0;
    std::uint64_t packagesInFog = 0;
    /** Reduced-fidelity summaries (incidental computing, if enabled). */
    std::uint64_t packagesIncidental = 0;
    std::uint64_t tasksBalancedAway = 0;
    std::uint64_t lbMessages = 0;
    std::uint64_t lbFailedRegions = 0;
    std::uint64_t txLost = 0;    ///< packets lost on the radio
    std::uint64_t txAborted = 0; ///< transmissions unaffordable (energy/time)
    std::uint64_t orphanScans = 0; ///< Zigbee bypass handshakes run
    std::uint64_t rejoins = 0;     ///< nodes re-associated after recovery
    std::uint64_t membershipUpdates = 0; ///< NVD4Q clone rotations
    std::uint64_t rtRequestsServed = 0;  ///< real-time queries answered
    std::uint64_t rtRequestsMissed = 0;  ///< real-time queries unmet
    std::uint64_t relayHops = 0;         ///< hop-by-hop relays performed
    std::uint64_t relayDrops = 0;        ///< packets lost mid-chain
    std::uint64_t rtcResyncs = 0;
    double capOverflowMj = 0.0; ///< energy rejected by full capacitors

    /** System-wide spend by category (mJ), summed over all nodes. */
    double spentComputeMj = 0.0;
    double spentTxMj = 0.0;
    double spentRxMj = 0.0;
    double spentSampleMj = 0.0;
    double spentWakeMj = 0.0;
    double harvestedMj = 0.0;

    /** Compute share of the spend — the paper's "compute ratio". */
    double
    computeRatio() const
    {
        const double total = spentComputeMj + spentTxMj + spentRxMj +
                             spentSampleMj + spentWakeMj;
        return total > 0.0 ? spentComputeMj / total : 0.0;
    }

    /** Radio (TX+RX) share of the spend. */
    double
    radioRatio() const
    {
        const double total = spentComputeMj + spentTxMj + spentRxMj +
                             spentSampleMj + spentWakeMj;
        return total > 0.0 ? (spentTxMj + spentRxMj) / total : 0.0;
    }

    /** Total packages delivered (cloud + fog). */
    std::uint64_t totalProcessed() const
    { return packagesToCloud + packagesInFog; }

    /** Delivered fraction of the ideal. */
    double yield() const
    {
        return idealPackages == 0
            ? 0.0
            : static_cast<double>(totalProcessed()) /
              static_cast<double>(idealPackages);
    }

    /** Print a human-readable summary. */
    void print(std::ostream &os, const std::string &label) const;
};

/**
 * One simulated deployment.
 */
class FogSystem
{
  public:
    explicit FogSystem(const ScenarioConfig &cfg);

    /** Run the full horizon and return aggregated results. */
    SystemReport run();

    /** Per-(physical)-node access after run() for figure series. */
    const Node &node(std::size_t chain, std::size_t physical_idx) const;

    /** Number of physical nodes per chain. */
    std::size_t physicalPerChain() const;

    const ScenarioConfig &config() const { return _cfg; }

    /**
     * Dump every node's counters and series sizes as "name value"
     * lines (gem5-style), e.g. `chain0.node3.wakeups 117`.
     */
    void dumpStats(std::ostream &os) const;

    /** The simulator context (time, event queue, stats). */
    Simulator &sim() { return _sim; }

  private:
    /** Execute one slot for one chain. */
    void runChainSlot(std::size_t chain, std::int64_t slot_index);

    /** Build the trace for one physical node. */
    std::unique_ptr<PowerTrace> makeTrace(Rng &rng);

    /** Run the load-balancing round over a chain's scheduled nodes. */
    void balanceChain(std::vector<Node *> &scheduled);

    /** Execute tasks and transmit results for one node. */
    void executeAndTransmit(Node &node,
                            const std::vector<Node *> &scheduled,
                            std::size_t logical_idx);

    /**
     * Deliver @p payload_bytes from logical node @p src toward the
     * sink: direct (MAC-abstracted) by default, hop-by-hop when
     * configured.  The sender has already paid its own transmission.
     * @return true if the packet reached the sink.
     */
    bool relayToSink(const std::vector<Node *> &scheduled,
                     std::size_t src, std::size_t payload_bytes);

    /** Serve a possible real-time request at this node. */
    void maybeServeRealTimeRequest(Node &node,
                                   const std::vector<Node *> &scheduled,
                                   std::size_t logical_idx);

    ScenarioConfig _cfg;
    Simulator _sim;
    Rng _rng;
    LossModel _loss;
    std::unique_ptr<LoadBalancer> _balancer;

    /** Heal the chain around dead nodes (orphan scan / rejoin). */
    void healChain(std::size_t chain,
                   const std::vector<Node *> &scheduled);

    /** _nodes[chain][physical index within chain]. */
    std::vector<std::vector<std::unique_ptr<Node>>> _nodes;
    /** Clone groups per chain (size nodesPerChain each). */
    std::vector<std::vector<CloneGroup>> _groups;
    /** Per chain: whether each logical position was alive last slot. */
    std::vector<std::vector<bool>> _aliveLastSlot;

    SystemReport _report;
    bool _ran = false;
};

} // namespace neofog

#endif // NEOFOG_FOG_FOG_SYSTEM_HH
