#include "fog/deployments.hh"

#include "hw/sensor.hh"
#include "sim/logging.hh"

namespace neofog {

DeploymentSpec
deploymentSpec(DeploymentKind kind)
{
    DeploymentSpec spec;
    spec.kind = kind;
    switch (kind) {
      case DeploymentKind::BridgeHealthMonitor:
        spec.name = "Bridge Health Monitor";
        spec.energySources = {EnergySource::Solar,
                              EnergySource::Piezoelectric};
        spec.sensors = "Accelerometers, piezo-sensors";
        spec.topology = TopologyKind::ZigbeeChainMesh;
        spec.transmittedData = "Raw sampled data";
        spec.app = AppKind::BridgeHealth;
        spec.typicalIncome = Power::fromMilliwatts(2.4);
        spec.typicalNodes = 10;
        spec.traceKind = TraceKind::BridgeDependent;
        break;
      case DeploymentKind::WearableUvMeter:
        spec.name = "Wearable UV Meter";
        spec.energySources = {EnergySource::Solar};
        spec.sensors = "UV sensor";
        spec.topology = TopologyKind::Star;
        spec.transmittedData = "Raw data";
        spec.app = AppKind::UvMeter;
        spec.typicalIncome = Power::fromMilliwatts(1.6);
        spec.typicalNodes = 6;
        spec.traceKind = TraceKind::ForestIndependent;
        break;
      case DeploymentKind::RailwayTempMonitor:
        spec.name = "Joint-less Railway Temp. Monitor";
        spec.energySources = {EnergySource::Solar};
        spec.sensors = "Multiple temperature sensors";
        spec.topology = TopologyKind::ZigbeeChainMesh;
        spec.transmittedData = "Raw uncompressed data";
        spec.app = AppKind::WsnTemp;
        spec.typicalIncome = Power::fromMilliwatts(3.0);
        spec.typicalNodes = 12;
        spec.traceKind = TraceKind::BridgeDependent;
        break;
      case DeploymentKind::MachineHealthMonitor:
        spec.name = "Machine Health Monitor";
        spec.energySources = {EnergySource::Piezoelectric,
                              EnergySource::Thermal, EnergySource::Rf};
        spec.sensors =
            "3-axis accelerometer, vibration sensors, temperature";
        spec.topology = TopologyKind::StarBusOrTree;
        spec.transmittedData = "Raw data";
        spec.app = AppKind::WsnAccel;
        spec.typicalIncome = Power::fromMilliwatts(1.0);
        spec.typicalNodes = 8;
        spec.traceKind = TraceKind::ForestIndependent;
        break;
      case DeploymentKind::RfPoweredCamera:
        spec.name = "RF Powered Camera";
        spec.energySources = {EnergySource::Rf, EnergySource::Wifi};
        spec.sensors = "Image sensor";
        spec.topology = TopologyKind::PointToPointBackscatter;
        spec.transmittedData = "Raw image pixels";
        spec.app = AppKind::PatternMatching;
        spec.typicalIncome = Power::fromMicrowatts(250.0);
        spec.typicalNodes = 4;
        spec.traceKind = TraceKind::Constant;
        break;
    }
    return spec;
}

std::string
energySourceName(EnergySource source)
{
    switch (source) {
      case EnergySource::Solar: return "solar";
      case EnergySource::Piezoelectric: return "piezo";
      case EnergySource::Thermal: return "thermal";
      case EnergySource::Rf: return "RF";
      case EnergySource::Wifi: return "WiFi";
    }
    return "?";
}

std::string
topologyName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::ZigbeeChainMesh: return "Zigbee chain mesh";
      case TopologyKind::Star: return "star";
      case TopologyKind::StarBusOrTree: return "star/bus/tree";
      case TopologyKind::PointToPointBackscatter:
        return "point-to-point backscatter";
    }
    return "?";
}

ScenarioConfig
deploymentScenario(DeploymentKind kind,
                   const presets::SystemUnderTest &sut,
                   std::uint64_t seed)
{
    const DeploymentSpec spec = deploymentSpec(kind);
    ScenarioConfig cfg;
    cfg.nodesPerChain = spec.typicalNodes;
    cfg.chains = 1;
    cfg.horizon = 5 * kHour;
    cfg.slotInterval = 12 * kSec;
    cfg.traceKind = spec.traceKind;
    cfg.meanIncome = spec.typicalIncome;
    cfg.mode = sut.mode;
    cfg.balancerPolicy = sut.balancerPolicy;
    cfg.nodeTemplate = presets::systemNodeTemplate();
    cfg.nodeTemplate.sensor = appProfile(spec.app).sensor;
    cfg.seed = seed;
    return cfg;
}

} // namespace neofog
