/**
 * @file
 * Multi-seed experiment runner with statistical aggregation.
 *
 * A single run of a stochastic scenario is an anecdote; the paper
 * itself averages five power profiles per figure.  ExperimentRunner
 * replays one scenario across many seeds and aggregates every report
 * field into mean/stddev/min/max summaries, so users can put error
 * bars on their results and compare systems with confidence.
 */

#ifndef NEOFOG_FOG_EXPERIMENT_HH
#define NEOFOG_FOG_EXPERIMENT_HH

#include <ostream>
#include <string>
#include <vector>

#include "fog/fog_system.hh"
#include "fog/scenario.hh"
#include "sim/stats.hh"

namespace neofog {

/** Statistical summary of SystemReport fields across seeds. */
struct AggregateReport
{
    int runs = 0;
    ScalarStat totalProcessed;
    ScalarStat packagesInFog;
    ScalarStat packagesToCloud;
    ScalarStat packagesIncidental;
    ScalarStat wakeups;
    ScalarStat depletionFailures;
    ScalarStat tasksBalancedAway;
    ScalarStat yield;
    ScalarStat computeRatio;

    /** The individual reports, in seed order. */
    std::vector<SystemReport> reports;

    /** Print "mean +- stddev [min, max]" rows. */
    void print(std::ostream &os, const std::string &label) const;
};

/**
 * Deterministic multi-seed replay of a scenario.
 */
class ExperimentRunner
{
  public:
    /**
     * Run @p cfg with seeds base_seed, base_seed+1, ...,
     * base_seed+runs-1 and aggregate.
     *
     * @param threads Seeds are mutually independent, so they run
     *        concurrently on this many threads (0 = all hardware
     *        threads, 1 = serial).  Aggregation happens in seed order
     *        afterwards, so the result is identical for any value.
     *        Leave cfg.threads at 1 when parallelizing across seeds;
     *        the two levels multiply.
     */
    static AggregateReport runSeeds(const ScenarioConfig &cfg,
                                    int runs,
                                    std::uint64_t base_seed = 1,
                                    unsigned threads = 1);

    /**
     * Two-system comparison across the same seeds: returns the
     * per-seed ratio statistics of totalProcessed (b over a).
     */
    static ScalarStat compareTotals(const ScenarioConfig &a,
                                    const ScenarioConfig &b, int runs,
                                    std::uint64_t base_seed = 1);
};

} // namespace neofog

#endif // NEOFOG_FOG_EXPERIMENT_HH
