/**
 * @file
 * Multi-seed experiment runner with statistical aggregation.
 *
 * A single run of a stochastic scenario is an anecdote; the paper
 * itself averages five power profiles per figure.  ExperimentRunner
 * replays one scenario across many seeds and aggregates every metric
 * the SystemReport registry declares into mean/stddev/min/max
 * summaries, so users can put error bars on their results and compare
 * systems with confidence.  The aggregate is registry-derived: adding
 * a metric to SystemReport::metrics() automatically aggregates it.
 */

#ifndef NEOFOG_FOG_EXPERIMENT_HH
#define NEOFOG_FOG_EXPERIMENT_HH

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "fog/fog_system.hh"
#include "fog/scenario.hh"
#include "sim/stats.hh"

namespace neofog {

/**
 * How to replay a scenario across seeds.  Replaces the old positional
 * (runs, base_seed, threads) tail; seedThreads is named distinctly
 * from ScenarioConfig::threads (the per-slot chain loop) because the
 * two levels multiply.
 */
struct RunOptions
{
    /** Number of seeds: baseSeed, baseSeed+1, ... baseSeed+runs-1. */
    int runs = 1;
    std::uint64_t baseSeed = 1;
    /**
     * Seeds are mutually independent, so they run concurrently on
     * this many threads (0 = all hardware threads, 1 = serial).
     * Aggregation happens in seed order afterwards, so the result is
     * identical for any value.  Leave ScenarioConfig::threads at 1
     * when parallelizing across seeds.
     */
    unsigned seedThreads = 1;
};

/**
 * Statistical summary of every registry metric across seeds: a
 * ScalarStat per SystemReport metric (stored and derived), sampled in
 * seed order.
 */
struct AggregateReport
{
    int runs = 0;

    /** The individual reports, in seed order. */
    std::vector<SystemReport> reports;

    /**
     * One ScalarStat per SystemReport::metrics() entry, in
     * declaration order.
     */
    std::vector<ScalarStat> stats;

    /**
     * Summary of one metric by registry name (e.g.
     * "total_processed", "yield").  Throws FatalError for unknown
     * names.
     */
    const ScalarStat &stat(std::string_view metric) const;

    /** Print "mean +- stddev [min, max]" rows (registry-derived). */
    void print(std::ostream &os, const std::string &label) const;

    /** neofog-aggregate-v1 JSON document. */
    void toJson(std::ostream &os,
                const std::string &label = "aggregate") const;

    /** CSV: one row per metric (name,count,mean,stddev,min,max). */
    void toCsv(std::ostream &os) const;
};

/**
 * Deterministic multi-seed replay of a scenario.
 */
class ExperimentRunner
{
  public:
    /** Run @p cfg across the seeds @p opt describes and aggregate. */
    static AggregateReport runSeeds(const ScenarioConfig &cfg,
                                    const RunOptions &opt);

    /**
     * Two-system comparison across the same seeds: returns the
     * per-seed ratio statistics of totalProcessed (b over a).
     * opt.seedThreads is ignored (pairs run serially).
     */
    static ScalarStat compareTotals(const ScenarioConfig &a,
                                    const ScenarioConfig &b,
                                    const RunOptions &opt);
};

} // namespace neofog

#endif // NEOFOG_FOG_EXPERIMENT_HH
