/**
 * @file
 * SystemReport: aggregated results of one system-level run.
 *
 * Every counter is a plain sum over nodes/chains, so per-chain shards
 * (see ChainEngine) merge into the run-level report by field-wise
 * addition.  Merging happens serially in chain order, which keeps the
 * floating-point fields bit-identical no matter how many threads ran
 * the chains.
 *
 * Observability contract (see DESIGN.md, "Observability"): every field
 * is declared exactly once in metrics() — name, kind, merge rule,
 * description, accessor — and merge, equality, text printing, JSON/CSV
 * serialization, and cross-seed aggregation (AggregateReport) are all
 * derived from that one list.  To add a metric: add the struct field
 * AND its one MetricDef line in system_report.cc; nothing else.  A
 * test asserts sizeof(SystemReport) matches the registry so a field
 * can't silently bypass the list.
 */

#ifndef NEOFOG_FOG_SYSTEM_REPORT_HH
#define NEOFOG_FOG_SYSTEM_REPORT_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "sim/metrics.hh"
#include "sim/report_io.hh"

namespace neofog {

/** Aggregated results of one run. */
struct SystemReport
{
    std::uint64_t idealPackages = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t depletionFailures = 0;
    std::uint64_t packagesSampled = 0;
    std::uint64_t packagesToCloud = 0;
    std::uint64_t packagesInFog = 0;
    /** Reduced-fidelity summaries (incidental computing, if enabled). */
    std::uint64_t packagesIncidental = 0;
    std::uint64_t tasksBalancedAway = 0;
    std::uint64_t lbMessages = 0;
    std::uint64_t lbFailedRegions = 0;
    std::uint64_t txLost = 0;    ///< packets lost on the radio
    std::uint64_t txAborted = 0; ///< transmissions unaffordable (energy/time)
    std::uint64_t orphanScans = 0; ///< Zigbee bypass handshakes run
    std::uint64_t rejoins = 0;     ///< nodes re-associated after recovery
    std::uint64_t membershipUpdates = 0; ///< NVD4Q clone rotations
    std::uint64_t rtRequestsServed = 0;  ///< real-time queries answered
    std::uint64_t rtRequestsMissed = 0;  ///< real-time queries unmet
    std::uint64_t relayHops = 0;         ///< hop-by-hop relays performed
    std::uint64_t relayDrops = 0;        ///< packets lost mid-chain
    std::uint64_t rtcResyncs = 0;
    double capOverflowMj = 0.0; ///< energy rejected by full capacitors

    /** System-wide spend by category (mJ), summed over all nodes. */
    double spentComputeMj = 0.0;
    double spentTxMj = 0.0;
    double spentRxMj = 0.0;
    double spentSampleMj = 0.0;
    double spentWakeMj = 0.0;
    double harvestedMj = 0.0;

    /** Total energy spend across categories (mJ). */
    double
    spentTotalMj() const
    {
        return spentComputeMj + spentTxMj + spentRxMj + spentSampleMj +
               spentWakeMj;
    }

    /** Compute share of the spend — the paper's "compute ratio". */
    double
    computeRatio() const
    {
        const double total = spentTotalMj();
        return total > 0.0 ? spentComputeMj / total : 0.0;
    }

    /** Radio (TX+RX) share of the spend. */
    double
    radioRatio() const
    {
        const double total = spentTotalMj();
        return total > 0.0 ? (spentTxMj + spentRxMj) / total : 0.0;
    }

    /** Total packages delivered (cloud + fog). */
    std::uint64_t totalProcessed() const
    { return packagesToCloud + packagesInFog; }

    /** Delivered fraction of the ideal. */
    double yield() const
    {
        return idealPackages == 0
            ? 0.0
            : static_cast<double>(totalProcessed()) /
              static_cast<double>(idealPackages);
    }

    /**
     * The declare-once metric list: the single source every derived
     * operation below walks.
     */
    static const MetricRegistry<SystemReport> &metrics();

    /** Type-erased metric snapshot in declaration order. */
    std::vector<MetricValue> snapshot() const
    { return metrics().snapshot(*this); }

    /**
     * Registry-derived field-wise accumulate of @p shard.
     * idealPackages is scenario-derived (MergeRule::Config), so it is
     * left alone.
     */
    void merge(const SystemReport &shard);

    /** Exact equality of every field (determinism checks). */
    bool operator==(const SystemReport &other) const;

    /** Print a human-readable aligned summary (registry-derived). */
    void print(std::ostream &os, const std::string &label) const;

    /** neofog-report-v1 JSON document (lossless round-trip). */
    void toJson(std::ostream &os,
                const std::string &label = "result") const;

    /**
     * Rebuild a report from a parsed neofog-report-v1 document.
     * Throws FatalError when the schema tag or any stored metric is
     * missing or mistyped.  Derived metrics are recomputed, not read.
     */
    static SystemReport fromJson(const report_io::JsonValue &doc);

    /** CSV: metric-name header plus one value row. */
    void toCsv(std::ostream &os, bool with_header = true) const;

    /** Rebuild from the two CSV lines toCsv wrote. */
    static SystemReport fromCsv(std::istream &is);

    /**
     * Snapshot support (see src/snapshot/): walks the registry, so a
     * new field is snapshotted the moment it gains its MetricDef.
     */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        for (const auto &d : metrics().metrics()) {
            if (d.derived())
                continue;
            if (d.u64)
                ar.io(d.name, this->*d.u64);
            else
                ar.io(d.name, this->*d.f64);
        }
    }
};

} // namespace neofog

#endif // NEOFOG_FOG_SYSTEM_REPORT_HH
