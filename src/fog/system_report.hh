/**
 * @file
 * SystemReport: aggregated results of one system-level run.
 *
 * Every counter is a plain sum over nodes/chains, so per-chain shards
 * (see ChainEngine) merge into the run-level report by field-wise
 * addition.  Merging happens serially in chain order, which keeps the
 * floating-point fields bit-identical no matter how many threads ran
 * the chains.
 */

#ifndef NEOFOG_FOG_SYSTEM_REPORT_HH
#define NEOFOG_FOG_SYSTEM_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace neofog {

/** Aggregated results of one run. */
struct SystemReport
{
    std::uint64_t idealPackages = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t depletionFailures = 0;
    std::uint64_t packagesSampled = 0;
    std::uint64_t packagesToCloud = 0;
    std::uint64_t packagesInFog = 0;
    /** Reduced-fidelity summaries (incidental computing, if enabled). */
    std::uint64_t packagesIncidental = 0;
    std::uint64_t tasksBalancedAway = 0;
    std::uint64_t lbMessages = 0;
    std::uint64_t lbFailedRegions = 0;
    std::uint64_t txLost = 0;    ///< packets lost on the radio
    std::uint64_t txAborted = 0; ///< transmissions unaffordable (energy/time)
    std::uint64_t orphanScans = 0; ///< Zigbee bypass handshakes run
    std::uint64_t rejoins = 0;     ///< nodes re-associated after recovery
    std::uint64_t membershipUpdates = 0; ///< NVD4Q clone rotations
    std::uint64_t rtRequestsServed = 0;  ///< real-time queries answered
    std::uint64_t rtRequestsMissed = 0;  ///< real-time queries unmet
    std::uint64_t relayHops = 0;         ///< hop-by-hop relays performed
    std::uint64_t relayDrops = 0;        ///< packets lost mid-chain
    std::uint64_t rtcResyncs = 0;
    double capOverflowMj = 0.0; ///< energy rejected by full capacitors

    /** System-wide spend by category (mJ), summed over all nodes. */
    double spentComputeMj = 0.0;
    double spentTxMj = 0.0;
    double spentRxMj = 0.0;
    double spentSampleMj = 0.0;
    double spentWakeMj = 0.0;
    double harvestedMj = 0.0;

    /** Compute share of the spend — the paper's "compute ratio". */
    double
    computeRatio() const
    {
        const double total = spentComputeMj + spentTxMj + spentRxMj +
                             spentSampleMj + spentWakeMj;
        return total > 0.0 ? spentComputeMj / total : 0.0;
    }

    /** Radio (TX+RX) share of the spend. */
    double
    radioRatio() const
    {
        const double total = spentComputeMj + spentTxMj + spentRxMj +
                             spentSampleMj + spentWakeMj;
        return total > 0.0 ? (spentTxMj + spentRxMj) / total : 0.0;
    }

    /** Total packages delivered (cloud + fog). */
    std::uint64_t totalProcessed() const
    { return packagesToCloud + packagesInFog; }

    /** Delivered fraction of the ideal. */
    double yield() const
    {
        return idealPackages == 0
            ? 0.0
            : static_cast<double>(totalProcessed()) /
              static_cast<double>(idealPackages);
    }

    /**
     * Field-wise accumulate @p shard into this report.  idealPackages
     * is scenario-derived, not shard-derived, so it is left alone.
     */
    void merge(const SystemReport &shard);

    /** Exact equality of every field (determinism checks). */
    bool operator==(const SystemReport &other) const = default;

    /** Print a human-readable summary. */
    void print(std::ostream &os, const std::string &label) const;
};

} // namespace neofog

#endif // NEOFOG_FOG_SYSTEM_REPORT_HH
