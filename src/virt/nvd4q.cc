#include "virt/nvd4q.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace neofog {

CloneGroup::CloneGroup(std::size_t logical_id,
                       std::vector<std::size_t> members)
    : _logicalId(logical_id), _members(std::move(members))
{
    if (_members.empty())
        fatal("clone group needs at least one member");
}

std::size_t
CloneGroup::memberForSlot(std::int64_t slot_index) const
{
    const auto k = static_cast<std::int64_t>(_members.size());
    std::int64_t idx = (slot_index + _rotation) % k;
    if (idx < 0)
        idx += k;
    return _members[static_cast<std::size_t>(idx)];
}

int
CloneGroup::phaseOf(std::size_t physical_id) const
{
    for (std::size_t i = 0; i < _members.size(); ++i) {
        if (_members[i] == physical_id) {
            const auto k = static_cast<int>(_members.size());
            return static_cast<int>((static_cast<int>(i) -
                                     _rotation % k + k) % k);
        }
    }
    fatal("node ", physical_id, " is not a member of logical group ",
          _logicalId);
}

bool
CloneGroup::contains(std::size_t physical_id) const
{
    return std::find(_members.begin(), _members.end(), physical_id) !=
           _members.end();
}

void
CloneGroup::rotateMembership()
{
    ++_rotation;
}

std::vector<CloneGroup>
Nvd4qManager::formGroups(const ChainMesh &mesh, std::size_t n_logical,
                         int density)
{
    NEOFOG_ASSERT(density >= 1, "density must be >= 1");
    if (mesh.size() != n_logical * static_cast<std::size_t>(density))
        fatal("mesh size ", mesh.size(), " != n_logical*density ",
              n_logical * static_cast<std::size_t>(density));

    // Anchors are the nodes placed exactly on the chain line (index
    // i*density).  Every other node attaches to the nearest anchor —
    // the RSSI-based closest-node search of Algorithm 2, line 2.
    std::vector<std::vector<std::size_t>> members(n_logical);
    for (std::size_t i = 0; i < n_logical; ++i)
        members[i].push_back(i * static_cast<std::size_t>(density));

    for (std::size_t p = 0; p < mesh.size(); ++p) {
        if (p % static_cast<std::size_t>(density) == 0)
            continue; // anchor
        std::size_t best = 0;
        double best_d = distance(mesh.position(p), mesh.position(0));
        for (std::size_t i = 0; i < n_logical; ++i) {
            const std::size_t anchor =
                i * static_cast<std::size_t>(density);
            const double d =
                distance(mesh.position(p), mesh.position(anchor));
            if (d < best_d) {
                best_d = d;
                best = i;
            }
        }
        members[best].push_back(p);
    }

    std::vector<CloneGroup> groups;
    groups.reserve(n_logical);
    for (std::size_t i = 0; i < n_logical; ++i)
        groups.emplace_back(i, std::move(members[i]));
    return groups;
}

JoinCost
Nvd4qManager::joinCost(NvRfController &joiner,
                       const NvRfController &source)
{
    JoinCost cost;
    // Line 1-2: open the NVRF and listen for the closest node's beacon
    // (one slot-beacon listen window).
    const Tick listen = ticksFromMs(25.0);
    cost.duration += listen;
    cost.energy += joiner.rxCost(listen).energy;
    // Line 3: copy NVFF + NVM state over the air.
    const RfPhase clone = joiner.cloneFrom(source);
    cost.duration += clone.duration;
    cost.energy += clone.energy;
    // Line 4: timer sync (short beacon exchange), then NVRF off.
    const Tick sync = ticksFromMs(3.0);
    cost.duration += sync;
    cost.energy += joiner.rxCost(sync).energy;
    return cost;
}

double
Nvd4qManager::groupQos(const CloneGroup &group, std::int64_t slots,
                       const std::vector<std::vector<bool>> &member_served)
{
    NEOFOG_ASSERT(member_served.size() == group.members().size(),
                  "served matrix shape");
    if (slots <= 0)
        return 0.0;
    std::int64_t served = 0;
    for (std::int64_t s = 0; s < slots; ++s) {
        const std::size_t member = group.memberForSlot(s);
        // Index within the group.
        std::size_t mi = 0;
        for (std::size_t i = 0; i < group.members().size(); ++i) {
            if (group.members()[i] == member) {
                mi = i;
                break;
            }
        }
        const auto &row = member_served[mi];
        NEOFOG_ASSERT(static_cast<std::size_t>(s) < row.size(),
                      "served matrix horizon");
        if (row[static_cast<std::size_t>(s)])
            ++served;
    }
    return static_cast<double>(served) / static_cast<double>(slots);
}

} // namespace neofog
