/**
 * @file
 * NVD4Q: slotted time-multiplexing node virtualization for QoS
 * (paper Algorithm 2, §3.3).
 *
 * A *logical* node is implemented by a group of physical clones.  A new
 * physical node joins by opening its NVRF, finding the closest existing
 * node by RSSI, cloning that node's NVRF register file + NVM network
 * state, and synchronizing its timer.  Each clone then receives a phase
 * offset unique within the group and a wake-interval multiplier equal
 * to the clone count: in any slot exactly one clone of each logical
 * node wakes, so the network's (virtual) topology never changes, no
 * reconstruction is ever needed, and every physical node gets
 * multiplier-times longer to accumulate energy.
 */

#ifndef NEOFOG_VIRT_NVD4Q_HH
#define NEOFOG_VIRT_NVD4Q_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/rf.hh"
#include "net/topology.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace neofog {

/**
 * One logical node's set of physical clones with their slot rotation.
 */
class CloneGroup
{
  public:
    /**
     * @param logical_id The logical node this group implements.
     * @param members Physical node ids; order fixes phase offsets.
     */
    CloneGroup(std::size_t logical_id,
               std::vector<std::size_t> members);

    std::size_t logicalId() const { return _logicalId; }
    const std::vector<std::size_t> &members() const { return _members; }
    int multiplier() const { return static_cast<int>(_members.size()); }
    /** Accumulated membership rotations (Algorithm 2 phase shift). */
    int rotation() const { return _rotation; }

    /** The physical member that wakes in the given global slot. */
    std::size_t memberForSlot(std::int64_t slot_index) const;

    /** Phase offset of a member (its index in the rotation). */
    int phaseOf(std::size_t physical_id) const;

    /** Whether a physical node belongs to this group. */
    bool contains(std::size_t physical_id) const;

    /**
     * Membership update (programmer-defined frequency, e.g. moving
     * objects): rotate the phase assignment so wear levels out.
     */
    void rotateMembership();

    /**
     * Snapshot support: only the rotation phase mutates after group
     * formation (members and ids are construction-derived).
     */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("rotation", _rotation);
    }

  private:
    std::size_t _logicalId; // neofog-lint: allow(snapshot): group identity is construction-derived (formation is deterministic in node order); only the rotation phase mutates
    std::vector<std::size_t> _members; // neofog-lint: allow(snapshot): membership is construction-derived (formation is deterministic in node order); only the rotation phase mutates
    int _rotation = 0;
};

/**
 * Cost bookkeeping of the Algorithm 2 join procedure.
 */
struct JoinCost
{
    Tick duration = 0;
    Energy energy = Energy::zero();
};

/**
 * NVD4Q manager: group formation and the join protocol.
 */
class Nvd4qManager
{
  public:
    /**
     * Form clone groups over a densified chain: every physical node
     * attaches to its nearest anchor (the first node of each logical
     * site), mirroring the RSSI-based closest-node search of
     * Algorithm 2.  Physical node i*density+0 is the anchor of logical
     * node i (see ChainMesh::makeDenseChain).
     *
     * @param mesh Physical placement.
     * @param n_logical Number of logical chain positions.
     * @param density Physical nodes per logical position.
     */
    static std::vector<CloneGroup>
    formGroups(const ChainMesh &mesh, std::size_t n_logical, int density);

    /**
     * Price the Algorithm 2 join: open NVRF, listen for the closest
     * node, clone its state, sync timer, close NVRF.
     *
     * @param joiner The new node's NVRF (will be configured).
     * @param source The closest node's NVRF (must be configured).
     */
    static JoinCost joinCost(NvRfController &joiner,
                             const NvRfController &source);

    /**
     * Slot-level QoS of a group over a horizon: fraction of logical
     * slots in which the scheduled clone was able to serve (as judged
     * by @p served per (slot, member)).  Helper for tests.
     */
    static double
    groupQos(const CloneGroup &group, std::int64_t slots,
             const std::vector<std::vector<bool>> &member_served);
};

} // namespace neofog

#endif // NEOFOG_VIRT_NVD4Q_HH
