#include "sim/metrics.hh"

#include "sim/logging.hh"

namespace neofog {

std::string
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::EnergyMj:
        return "gauge-mJ";
      case MetricKind::Ratio:
        return "ratio";
    }
    NEOFOG_PANIC("unknown metric kind");
}

std::string
metricKindUnit(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "";
      case MetricKind::EnergyMj:
        return "mJ";
      case MetricKind::Ratio:
        return "ratio";
    }
    NEOFOG_PANIC("unknown metric kind");
}

void
RingSeries::reset(std::size_t new_capacity)
{
    _buf.clear();
    _buf.reserve(new_capacity);
    _capacity = new_capacity;
    _head = 0;
    _pushed = 0;
}

void
RingSeries::push(Tick when, double value)
{
    ++_pushed;
    if (_capacity == 0)
        return;
    if (_buf.size() < _capacity) {
        _buf.push_back({when, value});
        return;
    }
    _buf[_head] = {when, value};
    _head = (_head + 1) % _capacity;
}

std::vector<TimeSeries::Point>
RingSeries::snapshot() const
{
    std::vector<TimeSeries::Point> out;
    out.reserve(_buf.size());
    // Once the ring has wrapped, _head is the oldest sample.
    for (std::size_t i = 0; i < _buf.size(); ++i)
        out.push_back(_buf[(_head + i) % _buf.size()]);
    return out;
}

bool
RingSeries::operator==(const RingSeries &other) const
{
    if (_pushed != other._pushed || _buf.size() != other._buf.size())
        return false;
    const auto a = snapshot();
    const auto b = other.snapshot();
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].when != b[i].when || a[i].value != b[i].value)
            return false;
    }
    return true;
}

} // namespace neofog
