/**
 * @file
 * Declare-once metric registry and time-series probe primitives.
 *
 * A report struct (e.g. fog/SystemReport) declares each of its metrics
 * exactly once in a MetricRegistry — name, unit kind, merge rule,
 * description, and an accessor — and field-wise merge, exact equality,
 * aligned text printing, JSON/CSV serialization (see sim/report_io.hh),
 * and cross-seed aggregation are all derived from that single list.
 * Adding a metric to a report is a one-line change to its registry.
 *
 * The registry is templated on the report type so this layer stays
 * below fog/: the sim library knows how to iterate metrics, the report
 * type owns which metrics exist.
 *
 * RingSeries + ProbeConfig are the opt-in time-series probe
 * primitives: fixed-capacity ring buffers a chain engine can feed
 * every slot without unbounded memory growth, exported as CSV/JSON
 * streams through report_io.
 */

#ifndef NEOFOG_SIM_METRICS_HH
#define NEOFOG_SIM_METRICS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace neofog {

/** What a metric measures (and how to format it). */
enum class MetricKind
{
    Counter,  ///< monotonic event count (integral)
    EnergyMj, ///< energy gauge in millijoules
    Ratio,    ///< dimensionless fraction (usually derived)
};

/** Display/serialization name of a metric kind. */
std::string metricKindName(MetricKind kind);

/** Unit suffix of a metric kind ("", "mJ", "ratio"). */
std::string metricKindUnit(MetricKind kind);

/** How a metric combines when shards merge into a run report. */
enum class MergeRule
{
    Sum,    ///< field-wise addition (the default for counters/energy)
    Config, ///< scenario-derived (e.g. ideal packages): left alone
};

/**
 * Type-erased snapshot of one metric: what serializers consume.
 * Derived metrics appear with derived=true so readers know they are
 * recomputable and never parsed back into storage.
 */
struct MetricValue
{
    std::string name;        ///< snake_case key (JSON/CSV)
    std::string label;       ///< human label (text tables)
    MetricKind kind;
    bool integral = false;   ///< stored as uint64 (print/serialize exact)
    bool derived = false;    ///< computed from other metrics
    double value = 0.0;      ///< numeric value (u64 widened for integrals)
    std::uint64_t u64 = 0;   ///< exact value when integral
};

/**
 * One metric of a report: declaration site for everything the
 * observability layer needs to know about it.  Exactly one of
 * u64/f64/fn is set: member counters, member gauges, or a derived
 * function of the whole report.
 */
template <class Report>
struct MetricDef
{
    const char *name;        ///< snake_case key
    const char *label;       ///< text-print label
    MetricKind kind;
    MergeRule mergeRule;
    const char *description;
    std::uint64_t Report::*u64 = nullptr;
    double Report::*f64 = nullptr;
    double (*fn)(const Report &) = nullptr;

    bool derived() const { return fn != nullptr; }
    bool integral() const { return u64 != nullptr; }

    double
    get(const Report &r) const
    {
        if (fn)
            return fn(r);
        if (u64)
            return static_cast<double>(r.*u64);
        return r.*f64;
    }

    /** Exact integral value (valid only when integral()). */
    std::uint64_t getU64(const Report &r) const { return r.*u64; }

    void
    set(Report &r, double v) const
    {
        if (u64)
            r.*u64 = static_cast<std::uint64_t>(v);
        else if (f64)
            r.*f64 = v;
        // derived metrics have no storage
    }

    void
    setU64(Report &r, std::uint64_t v) const
    {
        if (u64)
            r.*u64 = v;
        else if (f64)
            r.*f64 = static_cast<double>(v);
    }
};

/**
 * The declare-once list of a report's metrics, plus every operation
 * derivable from it.  Reports keep plain struct fields (hot-path
 * increments stay direct member writes); the registry is how every
 * *consumer* of the report walks those fields generically.
 */
template <class Report>
class MetricRegistry
{
  public:
    explicit MetricRegistry(std::vector<MetricDef<Report>> defs)
        : _defs(std::move(defs))
    {}

    const std::vector<MetricDef<Report>> &metrics() const
    { return _defs; }

    std::size_t size() const { return _defs.size(); }

    /** Metric by serialization name; nullptr if unknown. */
    const MetricDef<Report> *
    find(std::string_view name) const
    {
        for (const auto &d : _defs) {
            if (name == d.name)
                return &d;
        }
        return nullptr;
    }

    /** Stored (non-derived) metrics, i.e. the struct's actual fields. */
    std::size_t
    storedCount() const
    {
        std::size_t n = 0;
        for (const auto &d : _defs)
            n += d.derived() ? 0 : 1;
        return n;
    }

    /**
     * Field-wise accumulate @p shard into @p into.  Sum-rule metrics
     * add; Config-rule metrics (scenario-derived) are left alone;
     * derived metrics have no storage to merge.
     */
    void
    merge(Report &into, const Report &shard) const
    {
        for (const auto &d : _defs) {
            if (d.derived() || d.mergeRule != MergeRule::Sum)
                continue;
            if (d.u64)
                into.*d.u64 += shard.*d.u64;
            else
                into.*d.f64 += shard.*d.f64;
        }
    }

    /** Exact equality of every stored metric (determinism checks). */
    bool
    equal(const Report &a, const Report &b) const
    {
        for (const auto &d : _defs) {
            if (d.derived())
                continue;
            if (d.u64) {
                if (a.*d.u64 != b.*d.u64)
                    return false;
            } else if (a.*d.f64 != b.*d.f64) {
                return false;
            }
        }
        return true;
    }

    /** Type-erased snapshot in declaration order (for report_io). */
    std::vector<MetricValue>
    snapshot(const Report &r) const
    {
        std::vector<MetricValue> out;
        out.reserve(_defs.size());
        for (const auto &d : _defs) {
            MetricValue v;
            v.name = d.name;
            v.label = d.label;
            v.kind = d.kind;
            v.integral = d.integral();
            v.derived = d.derived();
            v.value = d.get(r);
            if (d.integral())
                v.u64 = d.getU64(r);
            out.push_back(std::move(v));
        }
        return out;
    }

  private:
    std::vector<MetricDef<Report>> _defs;
};

/**
 * Fixed-capacity (tick, value) ring buffer: the storage behind an
 * opt-in probe.  Keeps the newest `capacity` samples; older ones are
 * overwritten and counted as dropped, so a probe can run for any
 * horizon without unbounded growth.  Capacity 0 disables the ring
 * (pushes are dropped immediately).
 */
class RingSeries
{
  public:
    RingSeries() = default;
    explicit RingSeries(std::size_t capacity) { reset(capacity); }

    /** Clear and (re)size the ring. */
    void reset(std::size_t capacity);

    /** Append a sample, evicting the oldest when full. */
    void push(Tick when, double value);

    std::size_t capacity() const { return _capacity; }
    /** Samples currently held (<= capacity). */
    std::size_t size() const { return _buf.size(); }
    /** Samples ever pushed. */
    std::uint64_t pushed() const { return _pushed; }
    /** Samples evicted by the ring. */
    std::uint64_t dropped() const
    { return _pushed - static_cast<std::uint64_t>(_buf.size()); }

    bool empty() const { return _buf.empty(); }

    /** Held samples, oldest first. */
    std::vector<TimeSeries::Point> snapshot() const;

    /** Exact equality of history (determinism checks). */
    bool operator==(const RingSeries &other) const;

    /** Snapshot support (see src/snapshot/). */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("buf", _buf);
        std::uint64_t capacity = _capacity;
        std::uint64_t head = _head;
        ar.io("capacity", capacity);
        ar.io("head", head);
        ar.io("pushed", _pushed);
        if constexpr (Archive::isLoading) {
            _capacity = static_cast<std::size_t>(capacity);
            _head = static_cast<std::size_t>(head);
        }
    }

  private:
    std::vector<TimeSeries::Point> _buf;
    std::size_t _capacity = 0;
    std::size_t _head = 0; ///< next write position once full
    std::uint64_t _pushed = 0;
};

/**
 * Opt-in time-series probe configuration (see ScenarioConfig::probes).
 * Probes sample per-chain state on the slot grid, chain-locally, so
 * enabling them never perturbs simulation results or their
 * thread-count determinism.
 */
struct ProbeConfig
{
    bool enabled = false;
    /** Ring capacity per probe series (newest samples win). */
    std::size_t capacity = 4096;
    /** Sample every Nth slot (decimation; min 1). */
    std::int64_t everySlots = 1;

    /** Snapshot support (see src/snapshot/). */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("enabled", enabled);
        std::uint64_t cap = capacity;
        ar.io("capacity", cap);
        if constexpr (Archive::isLoading)
            capacity = static_cast<std::size_t>(cap);
        ar.io("every_slots", everySlots);
    }
};

} // namespace neofog

#endif // NEOFOG_SIM_METRICS_HH
