/**
 * @file
 * Discrete-event queue: the heart of the NEOFog simulator.
 *
 * Events are arbitrary callbacks scheduled at an absolute tick with a
 * tie-breaking priority (lower value runs first).  Events scheduled for
 * the same tick and priority run in insertion order, which keeps
 * multi-node simulations deterministic.
 */

#ifndef NEOFOG_SIM_EVENT_QUEUE_HH
#define NEOFOG_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace neofog {

/** Opaque handle identifying a scheduled event; usable to cancel it. */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * A time-ordered queue of callbacks.
 *
 * Cancellation is lazy: cancelled entries stay in the heap and are
 * discarded when popped, which makes cancel() O(1).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time; advances as events execute. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to invoke.
     * @param priority Tie-break for same-tick events (lower runs first).
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb, int priority = 0);

    /** Schedule relative to the current time. */
    EventId scheduleIn(Tick delay, Callback cb, int priority = 0);

    /** Cancel a previously scheduled event.  Safe on fired/expired ids. */
    void cancel(EventId id);

    /** Whether any live (non-cancelled) event remains. */
    bool empty() const { return liveCount() == 0; }

    /** Number of live events. */
    std::size_t liveCount() const
    { return _heap.size() - _cancelled.size(); }

    /** Tick of the earliest live event, or kTickNever if none. */
    Tick nextEventTick() const;

    /**
     * Execute the earliest event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool step();

    /**
     * Run events until the queue empties or simulated time would pass
     * @p limit.  Time is left at min(limit, last event tick).
     * @return Number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run all remaining events. */
    std::uint64_t runAll() { return runUntil(kTickNever); }

    /** Total events executed since construction. */
    std::uint64_t executedCount() const { return _executed; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** Pop cancelled entries off the heap top. */
    void skipCancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    /** Ids currently in the heap (scheduled, not yet popped). */
    std::unordered_set<EventId> _pending;
    mutable std::unordered_set<EventId> _cancelled;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    EventId _nextId = 1;
    std::uint64_t _executed = 0;
};

} // namespace neofog

#endif // NEOFOG_SIM_EVENT_QUEUE_HH
