/**
 * @file
 * Simulation context: event queue + deterministic RNG + stat registry.
 *
 * A Simulator is the top-level object every experiment creates first.
 * Components receive a Simulator& and use it to schedule events, fork
 * RNG streams, and register statistics.
 */

#ifndef NEOFOG_SIM_SIMULATOR_HH
#define NEOFOG_SIM_SIMULATOR_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace neofog {

/**
 * Top-level simulation context.
 */
class Simulator
{
  public:
    /** Create a simulator with the given root RNG seed. */
    explicit Simulator(std::uint64_t seed = 1)
        : _rootRng(seed)
    {}

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return _queue.now(); }

    /** The event queue. */
    EventQueue &queue() { return _queue; }
    const EventQueue &queue() const { return _queue; }

    /** Schedule an event at an absolute tick. */
    EventId
    schedule(Tick when, EventQueue::Callback cb, int priority = 0)
    {
        return _queue.schedule(when, std::move(cb), priority);
    }

    /** Schedule an event after a relative delay. */
    EventId
    scheduleIn(Tick delay, EventQueue::Callback cb, int priority = 0)
    {
        return _queue.scheduleIn(delay, std::move(cb), priority);
    }

    /** Cancel a scheduled event. */
    void cancel(EventId id) { _queue.cancel(id); }

    /** Run until simulated time @p limit (inclusive of events at limit). */
    std::uint64_t runUntil(Tick limit) { return _queue.runUntil(limit); }

    /** Run until no events remain. */
    std::uint64_t runAll() { return _queue.runAll(); }

    /** Fork an independent RNG stream for a component. */
    Rng forkRng() { return _rootRng.fork(); }

    /** Statistics registry for this simulation. */
    StatRegistry &stats() { return _stats; }
    const StatRegistry &stats() const { return _stats; }

  private:
    EventQueue _queue;
    Rng _rootRng;
    StatRegistry _stats;
};

} // namespace neofog

#endif // NEOFOG_SIM_SIMULATOR_HH
