/**
 * @file
 * Fundamental simulation types: the simulated-time tick and helpers.
 *
 * A Tick is one microsecond of simulated time, stored as a signed 64-bit
 * integer.  Five hours of simulation (the standard NEOFog experiment
 * horizon) is 1.8e10 ticks, comfortably inside the representable range.
 */

#ifndef NEOFOG_SIM_TYPES_HH
#define NEOFOG_SIM_TYPES_HH

#include <cstdint>

namespace neofog {

/** Simulated time in microseconds. */
using Tick = std::int64_t;

/** The tick value used to mean "never" / "no deadline". */
inline constexpr Tick kTickNever = INT64_MAX;

/** One microsecond, in ticks. */
inline constexpr Tick kUs = 1;
/** One millisecond, in ticks. */
inline constexpr Tick kMs = 1000 * kUs;
/** One second, in ticks. */
inline constexpr Tick kSec = 1000 * kMs;
/** One minute, in ticks. */
inline constexpr Tick kMin = 60 * kSec;
/** One hour, in ticks. */
inline constexpr Tick kHour = 60 * kMin;

/** Convert a floating-point second count to ticks (rounds toward zero). */
constexpr Tick
ticksFromSeconds(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(kSec));
}

/** Convert a floating-point millisecond count to ticks. */
constexpr Tick
ticksFromMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kMs));
}

/** Convert ticks to floating-point seconds. */
constexpr double
secondsFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert ticks to floating-point milliseconds. */
constexpr double
msFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMs);
}

} // namespace neofog

#endif // NEOFOG_SIM_TYPES_HH
