/**
 * @file
 * Report serialization: one exporter for every result the simulator
 * produces.  Text tables (shared by SystemReport::print and the bench
 * harnesses), JSON (lossless round-trip, schema-tagged), CSV, and
 * labeled time-series streams (the probe export path).
 *
 * The writers consume the type-erased MetricValue snapshots a
 * MetricRegistry produces, so adding a metric to a report's registry
 * automatically adds it to every output format.
 *
 * JSON schemas (all tagged via a top-level "schema" key):
 *   neofog-report-v1    {"schema","label","metrics":{name:value}}
 *   neofog-aggregate-v1 {"schema","label","runs","metrics":
 *                         {name:{count,mean,stddev,min,max}}}
 *   neofog-series-v1    {"schema","series":[{"name","unit",
 *                         "points":[[t_s,v],...]}]}
 *   neofog-bench-v1     {"schema","bench","results":{key:number},
 *                         "notes":{key:string}}
 */

#ifndef NEOFOG_SIM_REPORT_IO_HH
#define NEOFOG_SIM_REPORT_IO_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/metrics.hh"
#include "sim/stats.hh"

namespace neofog::report_io {

/** Output format selector shared by the CLI and exporters. */
enum class Format
{
    Text,
    Json,
    Csv,
};

/** Parse "text"/"json"/"csv"; false on anything else. */
bool parseFormat(std::string_view name, Format &out);

/**
 * Format a double so it parses back to the identical bits (%.17g),
 * with integral-valued doubles shortened losslessly.
 */
std::string formatDouble(double v);

/* ----------------------------------------------------------------- *
 *  Text tables (the one aligned-table implementation)
 * ----------------------------------------------------------------- */

/** Print a horizontal rule sized to @p width. */
void rule(std::ostream &os, int width = 78);

/** Print a section header between rules. */
void sectionHeader(std::ostream &os, const std::string &title);

/** Fixed-point double ("12.34"). */
std::string fmtFixed(double v, int precision = 2);

/** Percentage ("37.2%") from a fraction. */
std::string fmtPct(double v, int precision = 1);

/**
 * Fixed-width left-aligned table: set column widths once, feed rows
 * of cells.  Cells beyond the width list get a default width.
 */
class TextTable
{
  public:
    TextTable(std::ostream &os, std::vector<int> widths)
        : _os(os), _widths(std::move(widths))
    {}

    void row(const std::vector<std::string> &cells);

    /** Rule spanning the configured columns. */
    void separator();

  private:
    std::ostream &_os;
    std::vector<int> _widths;
};

/* ----------------------------------------------------------------- *
 *  JSON writing
 * ----------------------------------------------------------------- */

/** Write @p s as a JSON string literal (quotes + escapes). */
void writeJsonString(std::ostream &os, std::string_view s);

/**
 * Minimal streaming JSON writer: tracks nesting and comma placement
 * so callers just emit keys and values in order.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : _os(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(std::string_view k);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }

  private:
    void separate();

    std::ostream &_os;
    std::vector<bool> _first; ///< per nesting level: no comma yet
    bool _afterKey = false;
};

/* ----------------------------------------------------------------- *
 *  JSON parsing (DOM)
 * ----------------------------------------------------------------- */

/**
 * Parsed JSON value.  Numbers keep their source lexeme so integral
 * values round-trip exactly (beyond double's 2^53 mantissa).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return _kind; }
    bool isObject() const { return _kind == Kind::Object; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }

    bool asBool() const;
    double asNumber() const;
    std::uint64_t asU64() const;
    const std::string &asString() const;

    const std::vector<JsonValue> &items() const;
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

  private:
    friend class JsonParser;

    Kind _kind = Kind::Null;
    bool _bool = false;
    std::string _scalar; ///< number lexeme or string payload
    std::vector<JsonValue> _items;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

/** Parse a complete JSON document; throws FatalError on bad input. */
JsonValue parseJson(std::string_view text);

/* ----------------------------------------------------------------- *
 *  Metric records
 * ----------------------------------------------------------------- */

/**
 * Write the "metrics" object of a report snapshot: integral metrics
 * as exact integers, gauges with lossless doubles.  The writer must
 * be positioned after a key() or inside an array.
 */
void writeMetricsJson(JsonWriter &w,
                      const std::vector<MetricValue> &metrics);

/** CSV header row: metric names in declaration order. */
void writeMetricsCsvHeader(std::ostream &os,
                           const std::vector<MetricValue> &metrics);

/** CSV value row matching writeMetricsCsvHeader. */
void writeMetricsCsvRow(std::ostream &os,
                        const std::vector<MetricValue> &metrics);

/** Split one CSV line on commas (no quoting: our output never quotes). */
std::vector<std::string> splitCsvLine(const std::string &line);

/* ----------------------------------------------------------------- *
 *  Time-series streams (the probe export path)
 * ----------------------------------------------------------------- */

/** One named series ready for export. */
struct LabeledSeries
{
    std::string name;
    std::string unit;
    std::vector<TimeSeries::Point> points;
};

/**
 * Long-format CSV: "series,time_s,value" rows, one per point, series
 * in the given order.
 */
void writeSeriesCsv(std::ostream &os,
                    const std::vector<LabeledSeries> &series);

/** neofog-series-v1 JSON document. */
void writeSeriesJson(std::ostream &os,
                     const std::vector<LabeledSeries> &series);

/* ----------------------------------------------------------------- *
 *  Schema validation
 * ----------------------------------------------------------------- */

/**
 * Validate a neofog-bench-v1 document: schema tag, bench name, and a
 * non-empty all-numeric "results" object.
 * @return empty string when valid, else a description of the problem.
 */
std::string validateBenchJson(const JsonValue &v);

} // namespace neofog::report_io

#endif // NEOFOG_SIM_REPORT_IO_HH
