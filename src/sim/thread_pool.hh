/**
 * @file
 * Fixed-size worker pool for data-parallel simulation loops.
 *
 * The system layer runs many independent chain simulators per slot and
 * many independent seeds per experiment.  ThreadPool::parallelFor
 * distributes such index ranges over a fixed set of worker threads;
 * the calling thread participates, so a pool of size 1 degenerates to
 * the plain serial loop.  Work items must not touch shared mutable
 * state — determinism is the caller's contract (see DESIGN.md,
 * "Threading and determinism model").
 */

#ifndef NEOFOG_SIM_THREAD_POOL_HH
#define NEOFOG_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace neofog {

/**
 * A fixed set of worker threads executing indexed loop bodies.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total worker count including the calling thread;
     *        0 means hardwareThreads().  A pool of size <= 1 spawns no
     *        OS threads and runs every loop inline.  Absurd requests
     *        are clamped to max(256, 2 x hardware threads) — results
     *        never depend on the size, only wall-clock does.
     * @param pin_threads Pin each pool thread (including the caller)
     *        to one CPU, thread i to CPU i mod hardwareThreads().
     *        Linux only, best-effort, a no-op elsewhere; keeps
     *        first-touch memory (see parallelForChunked) on the core
     *        that faulted it in.  Never affects results.
     */
    explicit ThreadPool(unsigned threads = 0, bool pin_threads = false);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute loop bodies (>= 1). */
    unsigned size() const { return _size; }

    /**
     * Run body(0) ... body(count-1), distributing indices over the
     * pool.  Blocks until every index has finished.  Indices are
     * claimed dynamically, so the assignment of index to thread is
     * nondeterministic — bodies must be mutually independent.  If any
     * body throws, the first exception is rethrown here after the loop
     * drains.  Not reentrant: parallelFor must not be called from
     * inside a body.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Like parallelFor, but with a *deterministic static partition*:
     * pool thread w runs exactly the contiguous index chunk
     * [w*count/size, (w+1)*count/size), every call.  The stable
     * chunk→thread mapping is what makes first-touch placement work:
     * when the objects behind the indices were also *constructed*
     * under parallelForChunked, every later sweep touches memory the
     * same thread faulted in (see DESIGN.md, "Vectorization & memory
     * placement").  Same blocking/exception contract as parallelFor.
     */
    void parallelForChunked(std::size_t count,
                            const std::function<void(std::size_t)> &body);

    /** Hardware concurrency with a sane floor of 1. */
    static unsigned hardwareThreads();

  private:
    struct Job
    {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t count = 0;
        /** Static chunk per thread instead of dynamic claiming. */
        bool chunked = false;
        /** Pool size the chunk ranges are computed against. */
        unsigned poolSize = 1;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::exception_ptr error;
        std::mutex errorMutex;
    };

    /**
     * Run @p job's share for pool thread @p worker: the dynamic
     * claim-next loop, or (chunked) the thread's static index range.
     */
    void work(Job &job, unsigned worker);

    /** Shared submit/participate/wait body of both parallelFor forms. */
    void runJob(std::size_t count,
                const std::function<void(std::size_t)> &body,
                bool chunked);

    void workerLoop(unsigned worker);

    unsigned _size = 1;
    std::vector<std::thread> _workers;

    std::mutex _mutex;
    std::condition_variable _wake;     ///< workers wait for a job
    std::condition_variable _finished; ///< caller waits for completion
    std::shared_ptr<Job> _job;         ///< current job, null when idle
    std::uint64_t _generation = 0;     ///< bumped per parallelFor
    bool _stopping = false;
};

/**
 * Serial-fallback helper: run the loop on @p pool if it exists and has
 * more than one thread, inline otherwise.
 */
void parallelFor(ThreadPool *pool, std::size_t count,
                 const std::function<void(std::size_t)> &body);

/** Serial-fallback helper for the chunked static partition. */
void parallelForChunked(ThreadPool *pool, std::size_t count,
                        const std::function<void(std::size_t)> &body);

} // namespace neofog

#endif // NEOFOG_SIM_THREAD_POOL_HH
