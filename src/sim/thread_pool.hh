/**
 * @file
 * Fixed-size worker pool for data-parallel simulation loops.
 *
 * The system layer runs many independent chain simulators per slot and
 * many independent seeds per experiment.  ThreadPool::parallelFor
 * distributes such index ranges over a fixed set of worker threads;
 * the calling thread participates, so a pool of size 1 degenerates to
 * the plain serial loop.  Work items must not touch shared mutable
 * state — determinism is the caller's contract (see DESIGN.md,
 * "Threading and determinism model").
 */

#ifndef NEOFOG_SIM_THREAD_POOL_HH
#define NEOFOG_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace neofog {

/**
 * A fixed set of worker threads executing indexed loop bodies.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total worker count including the calling thread;
     *        0 means hardwareThreads().  A pool of size <= 1 spawns no
     *        OS threads and runs every loop inline.  Absurd requests
     *        are clamped to max(256, 2 x hardware threads) — results
     *        never depend on the size, only wall-clock does.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute loop bodies (>= 1). */
    unsigned size() const { return _size; }

    /**
     * Run body(0) ... body(count-1), distributing indices over the
     * pool.  Blocks until every index has finished.  Indices are
     * claimed dynamically, so the assignment of index to thread is
     * nondeterministic — bodies must be mutually independent.  If any
     * body throws, the first exception is rethrown here after the loop
     * drains.  Not reentrant: parallelFor must not be called from
     * inside a body.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** Hardware concurrency with a sane floor of 1. */
    static unsigned hardwareThreads();

  private:
    struct Job
    {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::exception_ptr error;
        std::mutex errorMutex;
    };

    /** Claim and run indices of @p job until none remain. */
    void work(Job &job);

    void workerLoop();

    unsigned _size = 1;
    std::vector<std::thread> _workers;

    std::mutex _mutex;
    std::condition_variable _wake;     ///< workers wait for a job
    std::condition_variable _finished; ///< caller waits for completion
    std::shared_ptr<Job> _job;         ///< current job, null when idle
    std::uint64_t _generation = 0;     ///< bumped per parallelFor
    bool _stopping = false;
};

/**
 * Serial-fallback helper: run the loop on @p pool if it exists and has
 * more than one thread, inline otherwise.
 */
void parallelFor(ThreadPool *pool, std::size_t count,
                 const std::function<void(std::size_t)> &body);

} // namespace neofog

#endif // NEOFOG_SIM_THREAD_POOL_HH
