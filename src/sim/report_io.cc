#include "sim/report_io.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/units.hh"

namespace neofog::report_io {

bool
parseFormat(std::string_view name, Format &out)
{
    if (name == "text") {
        out = Format::Text;
    } else if (name == "json") {
        out = Format::Json;
    } else if (name == "csv") {
        out = Format::Csv;
    } else {
        return false;
    }
    return true;
}

std::string
formatDouble(double v)
{
    char buf[40];
    // Try the shortest representations first; fall back to the full 17
    // significant digits, which always round-trips a finite double.
    for (int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return buf;
}

/* --------------------------- text tables -------------------------- */

void
rule(std::ostream &os, int width)
{
    for (int i = 0; i < width; ++i)
        os << '-';
    os << '\n';
}

void
sectionHeader(std::ostream &os, const std::string &title)
{
    os << '\n';
    rule(os);
    os << title << '\n';
    rule(os);
}

std::string
fmtFixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
TextTable::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const int w = i < _widths.size() ? _widths[i] : 12;
        const int pad = w - static_cast<int>(cells[i].size());
        _os << cells[i];
        for (int p = 0; p < pad; ++p)
            _os << ' ';
    }
    _os << '\n';
}

void
TextTable::separator()
{
    int total = 0;
    for (int w : _widths)
        total += w;
    rule(_os, total);
}

/* --------------------------- JSON writing ------------------------- */

void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
JsonWriter::separate()
{
    if (_afterKey) {
        _afterKey = false;
        return;
    }
    if (_first.empty())
        return;
    if (_first.back())
        _first.back() = false;
    else
        _os << ',';
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    _os << '{';
    _first.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    NEOFOG_ASSERT(!_first.empty(), "unbalanced endObject");
    _first.pop_back();
    _os << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    _os << '[';
    _first.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    NEOFOG_ASSERT(!_first.empty(), "unbalanced endArray");
    _first.pop_back();
    _os << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    separate();
    writeJsonString(_os, k);
    _os << ':';
    _afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (std::isfinite(v))
        _os << formatDouble(v);
    else
        _os << "null"; // JSON has no NaN/Inf
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    _os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    writeJsonString(_os, v);
    return *this;
}

/* --------------------------- JSON parsing ------------------------- */

bool
JsonValue::asBool() const
{
    if (_kind != Kind::Bool)
        fatal("JSON: expected bool");
    return _bool;
}

double
JsonValue::asNumber() const
{
    if (_kind != Kind::Number)
        fatal("JSON: expected number");
    return std::strtod(_scalar.c_str(), nullptr);
}

std::uint64_t
JsonValue::asU64() const
{
    if (_kind != Kind::Number)
        fatal("JSON: expected number");
    // Integral lexemes convert exactly; fractional ones go via double.
    if (_scalar.find_first_of(".eE") == std::string::npos &&
        _scalar[0] != '-') {
        return std::strtoull(_scalar.c_str(), nullptr, 10);
    }
    return static_cast<std::uint64_t>(asNumber());
}

const std::string &
JsonValue::asString() const
{
    if (_kind != Kind::String)
        fatal("JSON: expected string");
    return _scalar;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (_kind != Kind::Array)
        fatal("JSON: expected array");
    return _items;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (_kind != Kind::Object)
        fatal("JSON: expected object");
    return _members;
}

const JsonValue *
JsonValue::find(std::string_view key_name) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : _members) {
        if (k == key_name)
            return &v;
    }
    return nullptr;
}

/** Recursive-descent parser over a string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : _text(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (_pos != _text.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("JSON parse error at offset ", _pos, ": ", why);
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r')) {
            ++_pos;
        }
    }

    char
    peek()
    {
        skipWs();
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (_text.substr(_pos, lit.size()) != lit)
            return false;
        _pos += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue v;
            v._kind = JsonValue::Kind::String;
            v._scalar = parseString();
            return v;
          }
          case 't': {
            JsonValue v;
            if (!consumeLiteral("true"))
                fail("bad literal");
            v._kind = JsonValue::Kind::Bool;
            v._bool = true;
            return v;
          }
          case 'f': {
            JsonValue v;
            if (!consumeLiteral("false"))
                fail("bad literal");
            v._kind = JsonValue::Kind::Bool;
            v._bool = false;
            return v;
          }
          case 'n': {
            JsonValue v;
            if (!consumeLiteral("null"))
                fail("bad literal");
            return v;
          }
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                fail("unterminated string");
            const char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            const char e = _text[_pos++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out.push_back(e);
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    fail("bad \\u escape");
                const std::string hex(_text.substr(_pos, 4));
                _pos += 4;
                const auto code = static_cast<unsigned>(
                    std::strtoul(hex.c_str(), nullptr, 16));
                // Our writer only emits \u for control chars; decode
                // the BMP code point as UTF-8.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipWs();
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-')) {
            ++_pos;
        }
        if (_pos == start)
            fail("expected a value");
        JsonValue v;
        v._kind = JsonValue::Kind::Number;
        v._scalar = std::string(_text.substr(start, _pos - start));
        // Reject obviously malformed numbers early.
        char *end = nullptr;
        std::strtod(v._scalar.c_str(), &end);
        if (end != v._scalar.c_str() + v._scalar.size())
            fail("malformed number '" + v._scalar + "'");
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v._kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        while (true) {
            v._items.push_back(parseValue());
            const char c = peek();
            ++_pos;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v._kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        while (true) {
            skipWs();
            std::string k = parseString();
            expect(':');
            v._members.emplace_back(std::move(k), parseValue());
            const char c = peek();
            ++_pos;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    std::string_view _text;
    std::size_t _pos = 0;
};

JsonValue
parseJson(std::string_view text)
{
    return JsonParser(text).parse();
}

/* -------------------------- metric records ------------------------ */

void
writeMetricsJson(JsonWriter &w, const std::vector<MetricValue> &metrics)
{
    w.beginObject();
    for (const MetricValue &m : metrics) {
        w.key(m.name);
        if (m.integral)
            w.value(m.u64);
        else
            w.value(m.value);
    }
    w.endObject();
}

void
writeMetricsCsvHeader(std::ostream &os,
                      const std::vector<MetricValue> &metrics)
{
    for (std::size_t i = 0; i < metrics.size(); ++i)
        os << (i ? "," : "") << metrics[i].name;
    os << '\n';
}

void
writeMetricsCsvRow(std::ostream &os,
                   const std::vector<MetricValue> &metrics)
{
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        if (i)
            os << ',';
        if (metrics[i].integral)
            os << metrics[i].u64;
        else
            os << formatDouble(metrics[i].value);
    }
    os << '\n';
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

/* -------------------------- series streams ------------------------ */

void
writeSeriesCsv(std::ostream &os, const std::vector<LabeledSeries> &series)
{
    os << "series,time_s,value\n";
    for (const LabeledSeries &s : series) {
        for (const auto &pt : s.points) {
            os << s.name << ','
               << formatDouble(secondsFromTicks(pt.when)) << ','
               << formatDouble(pt.value) << '\n';
        }
    }
}

void
writeSeriesJson(std::ostream &os, const std::vector<LabeledSeries> &series)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("neofog-series-v1");
    w.key("series").beginArray();
    for (const LabeledSeries &s : series) {
        w.beginObject();
        w.key("name").value(s.name);
        w.key("unit").value(s.unit);
        w.key("points").beginArray();
        for (const auto &pt : s.points) {
            w.beginArray();
            w.value(secondsFromTicks(pt.when));
            w.value(pt.value);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

/* ------------------------- schema validation ---------------------- */

std::string
validateBenchJson(const JsonValue &v)
{
    if (!v.isObject())
        return "top level is not an object";
    const JsonValue *schema = v.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != "neofog-bench-v1") {
        return "missing or wrong schema tag (want neofog-bench-v1)";
    }
    const JsonValue *bench = v.find("bench");
    if (!bench || !bench->isString() || bench->asString().empty())
        return "missing bench name";
    const JsonValue *results = v.find("results");
    if (!results || !results->isObject())
        return "missing results object";
    if (results->members().empty())
        return "results object is empty";
    for (const auto &[k, val] : results->members()) {
        if (!val.isNumber())
            return "non-numeric result '" + k + "'";
    }
    return "";
}

} // namespace neofog::report_io
