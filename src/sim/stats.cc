#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace neofog {

void
ScalarStat::sample(double v)
{
    ++_count;
    _sum += v;
    if (_count == 1) {
        _min = _max = v;
        _mean = v;
        _m2 = 0.0;
        return;
    }
    _min = std::min(_min, v);
    _max = std::max(_max, v);
    const double delta = v - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (v - _mean);
}

double
ScalarStat::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
ScalarStat::stddev() const
{
    return std::sqrt(variance());
}

void
ScalarStat::reset()
{
    *this = ScalarStat();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : _lo(lo), _hi(hi),
      _bucketWidth((hi - lo) / static_cast<double>(buckets)),
      _buckets(buckets, 0)
{
    NEOFOG_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::sample(double v)
{
    ++_total;
    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _bucketWidth);
        if (idx >= _buckets.size()) // floating point edge
            idx = _buckets.size() - 1;
        ++_buckets[idx];
    }
}

double
Histogram::percentile(double p) const
{
    NEOFOG_ASSERT(p >= 0.0 && p <= 1.0, "percentile out of range");
    if (_total == 0)
        return _lo;
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(_total));
    std::uint64_t seen = _underflow;
    if (seen > target)
        return _lo;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen > target)
            return _lo + (static_cast<double>(i) + 0.5) * _bucketWidth;
    }
    return _hi;
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _total = 0;
}

std::vector<TimeSeries::Point>
TimeSeries::downsampled(std::size_t max_points) const
{
    if (max_points == 0 || _points.size() <= max_points)
        return _points;
    std::vector<Point> out;
    out.reserve(max_points);
    const std::size_t stride =
        (_points.size() + max_points - 1) / max_points;
    for (std::size_t i = 0; i < _points.size(); i += stride)
        out.push_back(_points[i]);
    if (out.back().when != _points.back().when)
        out.push_back(_points.back());
    return out;
}

void
StatRegistry::registerCounter(const std::string &name, const Counter *c)
{
    NEOFOG_ASSERT(c, "null counter: ", name);
    _counters[name] = c;
}

void
StatRegistry::registerScalar(const std::string &name, const ScalarStat *s)
{
    NEOFOG_ASSERT(s, "null scalar: ", name);
    _scalars[name] = s;
}

void
StatRegistry::registerSeries(const std::string &name, const TimeSeries *t)
{
    NEOFOG_ASSERT(t, "null series: ", name);
    _series[name] = t;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : _counters)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, s] : _scalars) {
        os << name << ".mean " << s->mean() << "\n";
        os << name << ".count " << s->count() << "\n";
    }
    for (const auto &[name, t] : _series)
        os << name << ".points " << t->size() << "\n";
}

const Counter *
StatRegistry::findCounter(const std::string &name) const
{
    auto it = _counters.find(name);
    return it == _counters.end() ? nullptr : it->second;
}

const ScalarStat *
StatRegistry::findScalar(const std::string &name) const
{
    auto it = _scalars.find(name);
    return it == _scalars.end() ? nullptr : it->second;
}

const TimeSeries *
StatRegistry::findSeries(const std::string &name) const
{
    auto it = _series.find(name);
    return it == _series.end() ? nullptr : it->second;
}

} // namespace neofog
