#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace neofog {

namespace {

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : _state)
        word = splitmix64(s);
    // xoshiro must not be seeded with all zeros; splitmix64 of any seed
    // cannot produce four zero words, but guard anyway.
    if (_state[0] == 0 && _state[1] == 0 && _state[2] == 0 && _state[3] == 0)
        _state[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    NEOFOG_ASSERT(lo <= hi, "uniform bounds reversed");
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    NEOFOG_ASSERT(lo <= hi, "uniformInt bounds reversed");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection-free modulo is fine for simulation purposes: span is
    // vastly smaller than 2^64 everywhere we use this.
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::normal()
{
    if (_haveSpareNormal) {
        _haveSpareNormal = false;
        return _spareNormal;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    _spareNormal = r * std::sin(theta);
    _haveSpareNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    NEOFOG_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace neofog
