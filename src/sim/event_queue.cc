#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace neofog {

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    NEOFOG_ASSERT(when >= _now, "scheduling into the past: when=", when,
                  " now=", _now);
    NEOFOG_ASSERT(cb, "scheduling a null callback");
    const EventId id = _nextId++;
    _heap.push(Entry{when, priority, _nextSeq++, id, std::move(cb)});
    _pending.insert(id);
    return id;
}

EventId
EventQueue::scheduleIn(Tick delay, Callback cb, int priority)
{
    NEOFOG_ASSERT(delay >= 0, "negative delay");
    return schedule(_now + delay, std::move(cb), priority);
}

void
EventQueue::cancel(EventId id)
{
    // Cancelling an id that already fired (or never existed) must be a
    // no-op; only ids still in the heap enter the cancelled set, so
    // liveCount() stays exact.
    if (id != kNoEvent && _pending.count(id))
        _cancelled.insert(id);
}

void
EventQueue::skipCancelled()
{
    while (!_heap.empty()) {
        auto it = _cancelled.find(_heap.top().id);
        if (it == _cancelled.end())
            break;
        _cancelled.erase(it);
        _pending.erase(_heap.top().id);
        _heap.pop();
    }
}

Tick
EventQueue::nextEventTick() const
{
    // const_cast-free lazy skip: scan without mutating the heap.  The
    // heap top is the only candidate after cancelled entries are popped,
    // so do the popping in the non-const step()/runUntil() paths and
    // here just look past cancelled ids conservatively.
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return _heap.empty() ? kTickNever : _heap.top().when;
}

bool
EventQueue::step()
{
    skipCancelled();
    if (_heap.empty())
        return false;
    Entry e = _heap.top();
    _heap.pop();
    _pending.erase(e.id);
    NEOFOG_ASSERT(e.when >= _now, "event queue time went backwards");
    _now = e.when;
    ++_executed;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t ran = 0;
    while (true) {
        skipCancelled();
        if (_heap.empty())
            break;
        if (_heap.top().when > limit)
            break;
        step();
        ++ran;
    }
    if (limit != kTickNever && _now < limit)
        _now = limit;
    return ran;
}

} // namespace neofog
