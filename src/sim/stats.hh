/**
 * @file
 * Lightweight statistics package: counters, scalars, histograms, and
 * time series, collected in a named registry that can be dumped as text.
 *
 * Modeled loosely on gem5's stats: components own their stat objects and
 * register them by dotted name ("node3.wakeups").
 */

#ifndef NEOFOG_SIM_STATS_HH
#define NEOFOG_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace neofog {

/** Monotonic event counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { _value += by; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

    /** Snapshot support (see src/snapshot/). */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("value", _value);
    }

  private:
    std::uint64_t _value = 0;
};

/**
 * Running scalar summary: count / sum / min / max / mean / variance
 * (Welford's online algorithm).
 */
class ScalarStat
{
  public:
    void sample(double v);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _mean : 0.0; }
    double variance() const;
    double stddev() const;
    void reset();

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
};

/**
 * Fixed-bucket histogram over [lo, hi) with under/overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);

    double lo() const { return _lo; }
    double hi() const { return _hi; }
    std::size_t bucketCount() const { return _buckets.size(); }
    std::uint64_t bucket(std::size_t i) const { return _buckets.at(i); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t total() const { return _total; }

    /** Value below which the given fraction of samples fall (approx). */
    double percentile(double p) const;

    void reset();

  private:
    double _lo;
    double _hi;
    double _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

/**
 * A (tick, value) series, e.g. a node's stored energy over time.
 */
class TimeSeries
{
  public:
    struct Point
    {
        Tick when;
        double value;
    };

    void record(Tick when, double value) { _points.push_back({when, value}); }
    /** Pre-size for a known point count (one allocation, no growth). */
    void reserve(std::size_t n) { _points.reserve(n); }
    const std::vector<Point> &points() const { return _points; }
    bool empty() const { return _points.empty(); }
    std::size_t size() const { return _points.size(); }
    void reset() { _points.clear(); }

    /** Last recorded value, or fallback if empty. */
    double lastValue(double fallback = 0.0) const
    { return _points.empty() ? fallback : _points.back().value; }

    /**
     * Downsample to at most @p max_points by keeping every k-th point
     * (always keeps the final point).  Used when printing figures.
     */
    std::vector<Point> downsampled(std::size_t max_points) const;

    /** Snapshot support (see src/snapshot/). */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("points", _points);
    }

  private:
    std::vector<Point> _points;
};

/**
 * Named collection of statistics owned by a simulation.
 *
 * The registry stores pointers; the owning components must outlive it
 * or deregister.  All experiment code keeps stats and registry together
 * inside the system object, so lifetimes are trivially correct.
 */
class StatRegistry
{
  public:
    void registerCounter(const std::string &name, const Counter *c);
    void registerScalar(const std::string &name, const ScalarStat *s);
    void registerSeries(const std::string &name, const TimeSeries *t);

    /** Dump all registered stats as "name value" lines. */
    void dump(std::ostream &os) const;

    /** Look up a counter by name; nullptr if absent. */
    const Counter *findCounter(const std::string &name) const;
    const ScalarStat *findScalar(const std::string &name) const;
    const TimeSeries *findSeries(const std::string &name) const;

  private:
    std::map<std::string, const Counter *> _counters;
    std::map<std::string, const ScalarStat *> _scalars;
    std::map<std::string, const TimeSeries *> _series;
};

} // namespace neofog

#endif // NEOFOG_SIM_STATS_HH
