/**
 * @file
 * Minimal gem5-style logging: inform/warn for status, fatal for user
 * errors, panic for internal invariant violations.
 *
 * fatal() throws FatalError (a configuration or input problem the caller
 * can in principle recover from or report); panic() aborts the process
 * after printing, because the simulator state is by definition corrupt.
 */

#ifndef NEOFOG_SIM_LOGGING_HH
#define NEOFOG_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace neofog {

/** Severity levels for the global logger. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Silent,
};

/** Error thrown by fatal(): invalid configuration or arguments. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Set the minimum level that is actually printed (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

namespace detail {

void emit(LogLevel level, const std::string &msg);

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Print a debug-level message (suppressed unless level <= Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() <= LogLevel::Debug)
        detail::emit(LogLevel::Debug,
                     detail::concat(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() <= LogLevel::Info)
        detail::emit(LogLevel::Info,
                     detail::concat(std::forward<Args>(args)...));
}

/** Print a warning: something questionable but survivable happened. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() <= LogLevel::Warn)
        detail::emit(LogLevel::Warn,
                     detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user/configuration error by throwing FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an internal simulator bug and abort.  Never use for bad input.
 */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, Args &&...args)
{
    panicImpl(detail::concat(std::forward<Args>(args)...), file, line);
}

} // namespace neofog

/** Abort with a message identifying an internal invariant violation. */
#define NEOFOG_PANIC(...) \
    ::neofog::panicAt(__FILE__, __LINE__, __VA_ARGS__)

/** Panic unless a simulator invariant holds. */
#define NEOFOG_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond))                                                       \
            ::neofog::panicAt(__FILE__, __LINE__,                          \
                              "assertion failed: " #cond " ",              \
                              ##__VA_ARGS__);                              \
    } while (false)

#endif // NEOFOG_SIM_LOGGING_HH
