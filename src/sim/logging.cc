#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace neofog {

namespace {

LogLevel globalLevel = LogLevel::Warn; // neofog-lint: allow(global): process-wide log-level latch, set once by the harness before any chain-parallel work starts and read-only after

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Silent: return "silent";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
emit(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

} // namespace detail

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "[panic] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

} // namespace neofog
