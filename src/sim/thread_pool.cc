#include "sim/thread_pool.hh"

#include <algorithm>
#include <cstdint>
#include <memory>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace neofog {

namespace {

/**
 * Best-effort affinity: pin pool thread @p worker to one CPU (id mod
 * hardware threads).  Affinity is pure placement — it can never change
 * results, only which core's cache/NUMA node serves the memory.
 */
void
pinPoolThread(unsigned worker)
{
#if defined(__linux__)
    const unsigned hw = ThreadPool::hardwareThreads();
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(worker % hw, &set);
    // pid 0 = the calling thread; ignore failure (restricted cpusets,
    // containers) — pinning is an optimization, not a contract.
    (void)sched_setaffinity(0, sizeof(set), &set);
#else
    (void)worker;
#endif
}

} // namespace

ThreadPool::ThreadPool(unsigned threads, bool pin_threads)
{
    _size = threads == 0 ? hardwareThreads() : threads;
    if (_size < 1)
        _size = 1;
    // Oversubscribing past this point only costs memory and context
    // switches (and a caller passing e.g. (unsigned)-1 would abort in
    // std::thread); results are size-independent, so clamp hard.
    const unsigned cap = std::max(256u, 2 * hardwareThreads());
    if (_size > cap)
        _size = cap;
    if (pin_threads)
        pinPoolThread(0); // the caller participates as pool thread 0
    _workers.reserve(_size - 1);
    for (unsigned i = 0; i + 1 < _size; ++i) {
        _workers.emplace_back([this, i, pin_threads] {
            if (pin_threads)
                pinPoolThread(i + 1);
            workerLoop(i + 1);
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    for (std::thread &w : _workers)
        w.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::work(Job &job, unsigned worker)
{
    if (job.chunked) {
        // Static partition: this thread's fixed contiguous chunk.
        // The mapping depends only on (count, poolSize, worker), so
        // every chunked loop of a pool sweeps the same indices on the
        // same thread — the first-touch locality contract.
        const std::size_t lo = job.count * worker / job.poolSize;
        const std::size_t hi =
            job.count * (worker + 1) / job.poolSize;
        for (std::size_t i = lo; i < hi; ++i) {
            try {
                (*job.body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.errorMutex);
                if (!job.error)
                    job.error = std::current_exception();
            }
            job.done.fetch_add(1, std::memory_order_acq_rel);
        }
        return;
    }
    while (true) {
        const std::size_t i =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.count)
            break;
        try {
            (*job.body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.errorMutex);
            if (!job.error)
                job.error = std::current_exception();
        }
        job.done.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    while (true) {
        // Hold a shared reference while working so the job outlives
        // any straggler even after the caller has returned.
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [&] {
                return _stopping || (_job && _generation != seen);
            });
            if (_stopping)
                return;
            seen = _generation;
            job = _job;
        }
        work(*job, worker);
        {
            // Bracket the notify with the mutex so the caller cannot
            // check done, miss our increment, and sleep through the
            // notification (classic lost wakeup).
            std::lock_guard<std::mutex> lock(_mutex);
        }
        _finished.notify_one();
    }
}

void
ThreadPool::runJob(std::size_t count,
                   const std::function<void(std::size_t)> &body,
                   bool chunked)
{
    if (count == 0)
        return;
    if (_size <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->body = &body;
    job->count = count;
    job->chunked = chunked;
    job->poolSize = _size;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _job = job;
        ++_generation;
    }
    _wake.notify_all();

    // The caller is a full participant: pool thread 0.
    work(*job, 0);

    // Wait until every index has completed.  Workers that claimed an
    // out-of-range index (or own an empty chunk) merely break out;
    // they hold their own shared_ptr, so the job stays valid for them
    // past this return.
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _finished.wait(lock, [&] {
            return job->done.load(std::memory_order_acquire) ==
                   job->count;
        });
        _job.reset();
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    runJob(count, body, /*chunked=*/false);
}

void
ThreadPool::parallelForChunked(
    std::size_t count, const std::function<void(std::size_t)> &body)
{
    runJob(count, body, /*chunked=*/true);
}

void
parallelFor(ThreadPool *pool, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (pool && pool->size() > 1) {
        pool->parallelFor(count, body);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
    }
}

void
parallelForChunked(ThreadPool *pool, std::size_t count,
                   const std::function<void(std::size_t)> &body)
{
    if (pool && pool->size() > 1) {
        pool->parallelForChunked(count, body);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
    }
}

} // namespace neofog
