/**
 * @file
 * Strongly-typed physical quantities used across the simulator.
 *
 * Energy and Power are thin wrappers over double (joules and watts) that
 * prevent the classic nJ-vs-mJ unit mixups the NEOFog constants invite:
 * Table 2 of the paper mixes nanojoule and millijoule columns, and the RF
 * model mixes milliwatt powers with microsecond durations.  All arithmetic
 * happens in SI base units internally.
 */

#ifndef NEOFOG_SIM_UNITS_HH
#define NEOFOG_SIM_UNITS_HH

#include <cmath>
#include <compare>

#include "sim/types.hh"

namespace neofog {

/**
 * An amount of energy, stored internally in joules.
 *
 * Construct via the named factories (fromJoules, fromMillijoules, ...) so
 * call sites always state their unit.
 */
class Energy
{
  public:
    constexpr Energy() = default;

    static constexpr Energy fromJoules(double j) { return Energy(j); }
    static constexpr Energy fromMillijoules(double mj)
    { return Energy(mj * 1e-3); }
    static constexpr Energy fromMicrojoules(double uj)
    { return Energy(uj * 1e-6); }
    static constexpr Energy fromNanojoules(double nj)
    { return Energy(nj * 1e-9); }
    static constexpr Energy zero() { return Energy(0.0); }

    constexpr double joules() const { return _joules; }
    constexpr double millijoules() const { return _joules * 1e3; }
    constexpr double microjoules() const { return _joules * 1e6; }
    constexpr double nanojoules() const { return _joules * 1e9; }

    constexpr Energy operator+(Energy o) const
    { return Energy(_joules + o._joules); }
    constexpr Energy operator-(Energy o) const
    { return Energy(_joules - o._joules); }
    constexpr Energy operator*(double s) const
    { return Energy(_joules * s); }
    constexpr Energy operator/(double s) const
    { return Energy(_joules / s); }
    /** Ratio of two energies (dimensionless). */
    constexpr double operator/(Energy o) const
    { return _joules / o._joules; }

    Energy &operator+=(Energy o) { _joules += o._joules; return *this; }
    Energy &operator-=(Energy o) { _joules -= o._joules; return *this; }
    Energy &operator*=(double s) { _joules *= s; return *this; }

    constexpr auto operator<=>(const Energy &) const = default;

    constexpr bool isZero() const { return _joules == 0.0; }

    /** Clamp negative values (e.g. rounding residue) up to zero. */
    constexpr Energy clampedNonNegative() const
    { return Energy(_joules < 0.0 ? 0.0 : _joules); }

  private:
    constexpr explicit Energy(double j) : _joules(j) {}

    double _joules = 0.0;
};

constexpr Energy
operator*(double s, Energy e)
{
    return e * s;
}

/**
 * A power draw or income, stored internally in watts.
 */
class Power
{
  public:
    constexpr Power() = default;

    static constexpr Power fromWatts(double w) { return Power(w); }
    static constexpr Power fromMilliwatts(double mw)
    { return Power(mw * 1e-3); }
    static constexpr Power fromMicrowatts(double uw)
    { return Power(uw * 1e-6); }
    static constexpr Power zero() { return Power(0.0); }

    constexpr double watts() const { return _watts; }
    constexpr double milliwatts() const { return _watts * 1e3; }
    constexpr double microwatts() const { return _watts * 1e6; }

    constexpr Power operator+(Power o) const
    { return Power(_watts + o._watts); }
    constexpr Power operator-(Power o) const
    { return Power(_watts - o._watts); }
    constexpr Power operator*(double s) const { return Power(_watts * s); }
    constexpr Power operator/(double s) const { return Power(_watts / s); }
    constexpr double operator/(Power o) const { return _watts / o._watts; }

    Power &operator+=(Power o) { _watts += o._watts; return *this; }
    Power &operator-=(Power o) { _watts -= o._watts; return *this; }

    constexpr auto operator<=>(const Power &) const = default;

    /** Energy delivered by this power over a tick duration. */
    constexpr Energy over(Tick duration) const
    {
        return Energy::fromJoules(_watts * secondsFromTicks(duration));
    }

  private:
    constexpr explicit Power(double w) : _watts(w) {}

    double _watts = 0.0;
};

constexpr Power
operator*(double s, Power p)
{
    return p * s;
}

/** Energy = Power x time (ticks). */
constexpr Energy
operator*(Power p, Tick t)
{
    return p.over(t);
}

/** Duration (ticks) needed to spend an energy at a given power. */
inline Tick
ticksToSpend(Energy e, Power p)
{
    if (p.watts() <= 0.0)
        return kTickNever;
    return ticksFromSeconds(e.joules() / p.watts());
}

namespace literals {

constexpr Energy operator""_J(long double v)
{ return Energy::fromJoules(static_cast<double>(v)); }
constexpr Energy operator""_mJ(long double v)
{ return Energy::fromMillijoules(static_cast<double>(v)); }
constexpr Energy operator""_uJ(long double v)
{ return Energy::fromMicrojoules(static_cast<double>(v)); }
constexpr Energy operator""_nJ(long double v)
{ return Energy::fromNanojoules(static_cast<double>(v)); }
constexpr Power operator""_W(long double v)
{ return Power::fromWatts(static_cast<double>(v)); }
constexpr Power operator""_mW(long double v)
{ return Power::fromMilliwatts(static_cast<double>(v)); }
constexpr Power operator""_uW(long double v)
{ return Power::fromMicrowatts(static_cast<double>(v)); }

} // namespace literals

} // namespace neofog

#endif // NEOFOG_SIM_UNITS_HH
