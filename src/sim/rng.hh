/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 *
 * Rng wraps xoshiro256** seeded via splitmix64.  Every stochastic
 * component of the simulator draws from an Rng stream forked from the
 * experiment's root seed, so a run is fully determined by one integer.
 */

#ifndef NEOFOG_SIM_RNG_HH
#define NEOFOG_SIM_RNG_HH

#include <array>
#include <cstdint>

namespace neofog {

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9E0F06DEADBEEFULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (mean 0, stddev 1). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with the given rate (lambda). */
    double exponential(double rate);

    /** Bernoulli trial: true with probability p. */
    bool chance(double p);

    /**
     * Fork an independent child stream.  The child is seeded from this
     * stream's output, so forking order matters but results stay
     * deterministic for a fixed root seed.
     */
    Rng fork();

    /**
     * Snapshot support (see src/snapshot/): the stream position is the
     * whole state, plus the cached Box-Muller spare.
     */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("s0", _state[0]);
        ar.io("s1", _state[1]);
        ar.io("s2", _state[2]);
        ar.io("s3", _state[3]);
        ar.io("have_spare_normal", _haveSpareNormal);
        ar.io("spare_normal", _spareNormal);
    }

  private:
    std::array<std::uint64_t, 4> _state{};
    bool _haveSpareNormal = false;
    double _spareNormal = 0.0;
};

} // namespace neofog

#endif // NEOFOG_SIM_RNG_HH
