#include "energy/trace_cache.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace neofog {

CumulativeTrace::CumulativeTrace(std::shared_ptr<const PowerTrace> base,
                                 Tick span, Tick grid)
    : _base(std::move(base)), _grid(grid)
{
    if (!_base)
        fatal("cumulative trace needs a base trace");
    if (_grid <= 0)
        fatal("cumulative trace grid must be positive");
    if (span <= 0)
        fatal("cumulative trace span must be positive");

    // Round the span up to whole cells so every window inside the
    // requested range resolves from the table.
    const auto n =
        static_cast<std::size_t>((span + _grid - 1) / _grid);
    _span = static_cast<Tick>(n) * _grid;

    // One at() sample per grid point, each cell accumulated with the
    // exact arithmetic of the canonical stepped integrator, so
    // _prefix[k] is bit-identical to integrateStepped(0, k*grid).
    _prefix.resize(n + 1);
    _prefix[0] = 0.0;
    TraceCursor cursor(*_base, 0, _grid);
    Energy acc = Energy::zero();
    for (std::size_t k = 1; k <= n; ++k) {
        acc += cursor.advance(static_cast<Tick>(k) * _grid);
        _prefix[k] = acc.joules();
    }
}

Energy
CumulativeTrace::integrate(Tick from, Tick to) const
{
    NEOFOG_ASSERT(to >= from, "integrate bounds reversed");
    if (to == from)
        return Energy::zero();
    // Out-of-table ranges (negative time, or past the span) fall back
    // to the canonical reference for the uncovered part.
    if (from < 0 || to > _span) {
        const Tick lo = std::clamp<Tick>(from, 0, _span);
        const Tick hi = std::clamp<Tick>(to, 0, _span);
        Energy total = Energy::zero();
        if (from < lo)
            total += _base->integrateStepped(from, lo, _grid);
        if (lo < hi)
            total += integrate(lo, hi);
        if (hi < to)
            total += _base->integrateStepped(std::max(hi, from), to,
                                             _grid);
        return total;
    }

    const Tick lo_cell = from / _grid;
    const Tick hi_cell = to / _grid;
    if (lo_cell == hi_cell) {
        // Window inside one cell: the same single trapezoid the
        // stepped reference computes — bit-identical to it.
        return 0.5 * (_base->at(from) + _base->at(to)) * (to - from);
    }

    Energy total = Energy::zero();
    Tick mid_lo = lo_cell * _grid;
    if (mid_lo != from) {
        // Partial edge up to the next grid boundary.
        mid_lo = (lo_cell + 1) * _grid;
        total +=
            0.5 * (_base->at(from) + _base->at(mid_lo)) * (mid_lo - from);
    }
    const Tick mid_hi = hi_cell * _grid;
    total += Energy::fromJoules(
        _prefix[static_cast<std::size_t>(mid_hi / _grid)] -
        _prefix[static_cast<std::size_t>(mid_lo / _grid)]);
    if (mid_hi != to) {
        total +=
            0.5 * (_base->at(mid_hi) + _base->at(to)) * (to - mid_hi);
    }
    return total;
}

std::string
CumulativeTrace::describe() const
{
    std::ostringstream oss;
    oss << "cumulative(" << _base->describe() << ", grid="
        << secondsFromTicks(_grid) << " s, " << cells() << " cells)";
    return oss.str();
}

} // namespace neofog
