/**
 * @file
 * Ambient power income traces.
 *
 * The paper's experiments are driven by measured solar traces (forest
 * deployments for the independent-power study, bridge deployments for the
 * dependent-power study, NREL MIDC data).  Those data sets are not
 * available, so this module reproduces the paper's own generative recipe:
 * per-node traces are synthesized from a day envelope plus either
 * independent random segment concatenation (forest: wind moves leaves, so
 * neighbouring nodes see uncorrelated sun flecks) or a shared base trace
 * with ~30% per-node variance (bridge: all nodes see the same sky).
 */

#ifndef NEOFOG_ENERGY_POWER_TRACE_HH
#define NEOFOG_ENERGY_POWER_TRACE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/**
 * Abstract ambient power income as a function of simulated time.
 */
class PowerTrace
{
  public:
    virtual ~PowerTrace() = default;

    /** Instantaneous harvested power at tick @p t. */
    virtual Power at(Tick t) const = 0;

    /**
     * Energy delivered over [from, to).  The default evaluates the
     * canonical stepped integrator (integrateStepped); analytic traces
     * override this.
     */
    virtual Energy integrate(Tick from, Tick to) const;

    /**
     * The canonical reference integrator: trapezoids over the fixed
     * absolute grid (boundaries at whole multiples of @p grid,
     * partial trapezoids at unaligned window edges), accumulated left
     * to right.  CumulativeTrace prefix tables and the property tests
     * are defined against exactly this scheme.
     */
    Energy integrateStepped(Tick from, Tick to, Tick grid = kSec) const;

    /**
     * Whether integrate() is analytic/O(1) rather than sampled — such
     * traces gain nothing from a prefix-sum cache and callers can skip
     * streaming-cursor bookkeeping for them.
     */
    virtual bool hasFastIntegrate() const { return false; }

    /**
     * End (exclusive) of the maximal interval starting at @p t on
     * which at() is constant, or kTickNever if constant forever.
     * Traces with no constancy guarantee return @p t itself; the
     * intermittent-execution fast-forward uses this to decide how far
     * it may jump in closed form.
     */
    virtual Tick constantLevelUntil(Tick t) const { return t; }

    /** Human-readable description for logs and reports. */
    virtual std::string describe() const = 0;
};

/**
 * Streaming evaluator of the canonical stepped integrator: advancing
 * over adjacent windows reuses the boundary sample the previous window
 * already computed, so a slot sequence samples each grid point exactly
 * once (instead of twice at every window boundary).  Produces values
 * bit-identical to integrateStepped() on the same windows.
 */
class TraceCursor
{
  public:
    explicit TraceCursor(const PowerTrace &trace, Tick start,
                         Tick grid = kSec);

    /** Integrate [position(), to) and move the cursor to @p to. */
    Energy advance(Tick to);

    Tick position() const { return _at; }

  private:
    const PowerTrace *_trace;
    Tick _grid;
    Tick _at;
    Power _sample; ///< trace->at(_at), carried between windows
};

/** Constant power income. */
class ConstantTrace : public PowerTrace
{
  public:
    explicit ConstantTrace(Power level) : _level(level) {}

    Power at(Tick) const override { return _level; }
    Energy integrate(Tick from, Tick to) const override;
    bool hasFastIntegrate() const override { return true; }
    Tick constantLevelUntil(Tick) const override { return kTickNever; }
    std::string describe() const override;

  private:
    Power _level;
};

/**
 * Piecewise-constant trace: ordered (start tick, power) segments.
 * The value before the first segment is zero; each level holds until
 * the next segment starts.
 */
class PiecewiseTrace : public PowerTrace
{
  public:
    struct Segment
    {
        Tick start;
        Power level;
    };

    explicit PiecewiseTrace(std::vector<Segment> segments);

    Power at(Tick t) const override;
    Energy integrate(Tick from, Tick to) const override;
    bool hasFastIntegrate() const override { return true; }
    Tick constantLevelUntil(Tick t) const override;
    std::string describe() const override;

    const std::vector<Segment> &segments() const { return _segments; }

  private:
    /** Index of the segment active at t, or npos if before the first. */
    std::size_t segmentIndex(Tick t) const;

    std::vector<Segment> _segments;
};

/**
 * Linearly-interpolating trace over (tick, power) knots — the right
 * playback model for measured data sampled slowly (e.g. one-minute
 * NREL MIDC irradiance averages), where step interpolation would
 * inject artificial power cliffs.  Integration is exact (trapezoid
 * between knots).  Before the first knot and after the last, the
 * boundary value holds.
 */
class InterpolatedTrace : public PowerTrace
{
  public:
    struct Knot
    {
        Tick at;
        Power level;
    };

    explicit InterpolatedTrace(std::vector<Knot> knots);

    Power at(Tick t) const override;
    Energy integrate(Tick from, Tick to) const override;
    bool hasFastIntegrate() const override { return true; }
    Tick constantLevelUntil(Tick t) const override;
    std::string describe() const override;

    const std::vector<Knot> &knots() const { return _knots; }

  private:
    std::vector<Knot> _knots;
};

/**
 * Smooth diurnal solar envelope: a clipped sine hump between sunrise and
 * sunset scaled to a peak power, with optional uniform attenuation
 * (cloud cover / rain).  Time 0 is @p sunrise_offset after sunrise, so a
 * 5-hour experiment starting mid-morning uses an offset of a few hours.
 */
class DiurnalSolarTrace : public PowerTrace
{
  public:
    struct Config
    {
        Power peak = Power::fromMilliwatts(80.0);
        Tick dayLength = 12 * kHour; ///< sunrise-to-sunset duration
        Tick sunriseOffset = 3 * kHour; ///< experiment start after sunrise
        double attenuation = 1.0; ///< 1.0 = clear sky, 0.05 = heavy rain
    };

    explicit DiurnalSolarTrace(const Config &cfg) : _cfg(cfg) {}

    Power at(Tick t) const override;
    std::string describe() const override;

    const Config &config() const { return _cfg; }

  private:
    Config _cfg;
};

/**
 * A shared base trace multiplied by a per-node scalar gain.  The base
 * is held by shared_ptr and never mutated, so one expensive stream
 * (e.g. the deployment-wide rain front, possibly wrapped in a
 * CumulativeTrace prefix table) can back every node of a scenario
 * while each node keeps its own gain.
 */
class ScaledTrace : public PowerTrace
{
  public:
    ScaledTrace(double scale, std::shared_ptr<const PowerTrace> base);

    Power at(Tick t) const override { return _base->at(t) * _scale; }
    Energy integrate(Tick from, Tick to) const override
    { return _base->integrate(from, to) * _scale; }
    bool hasFastIntegrate() const override
    { return _base->hasFastIntegrate(); }
    Tick constantLevelUntil(Tick t) const override
    { return _base->constantLevelUntil(t); }
    std::string describe() const override;

    double scale() const { return _scale; }
    const PowerTrace &base() const { return *_base; }

  private:
    double _scale;
    std::shared_ptr<const PowerTrace> _base;
};

/**
 * Factory helpers that build per-node trace sets for the paper's three
 * deployment scenarios.
 */
namespace traces {

/**
 * Independent "forest" traces (Fig 10): each node's trace is built by
 * concatenating exponentially-distributed constant segments whose levels
 * are drawn from a bimodal shade/sun-fleck distribution, modulated by a
 * shared diurnal envelope.  Traces across nodes are effectively
 * independent (distinct RNG streams).
 *
 * @param rng Stream used to synthesize this node's trace.
 * @param horizon Trace duration to generate.
 * @param mean_level Average power over the horizon (before envelope).
 * @param variance_ratio Relative spread between shade and fleck levels.
 */
std::unique_ptr<PowerTrace> makeForestTrace(Rng &rng, Tick horizon,
                                            Power mean_level,
                                            double variance_ratio = 0.9);

/**
 * Dependent "bridge" traces (Fig 11): all nodes share one of five base
 * day profiles; a node trace is the base profile times a per-node gain
 * with the paper's 30% variance, plus slow per-node jitter.
 *
 * @param profile_index Which of the 5 day profiles (0-4).
 * @param rng Stream for the per-node variance.
 * @param horizon Trace duration.
 * @param mean_level Average power of the base profile.
 */
std::unique_ptr<PowerTrace> makeBridgeTrace(int profile_index, Rng &rng,
                                            Tick horizon, Power mean_level,
                                            double node_variance = 0.3);

/**
 * Low-power rainy-day trace (Fig 13): heavily attenuated *dependent*
 * profile — all nodes of a deployment share the same rain-spell
 * schedule (clouds cover everyone at once), with small per-node gain
 * jitter.  The shared dark stretches are what bound total successful
 * sampling and make NVD4Q multiplexing saturate (paper: ~8000 at 3x).
 *
 * @param shared_seed Seeds the spell schedule; pass the same value for
 *        every node of one deployment.
 * @param node_rng Per-node stream for gain jitter.
 */
std::unique_ptr<PowerTrace> makeRainTrace(std::uint64_t shared_seed,
                                          Rng &node_rng, Tick horizon,
                                          Power mean_level);

/**
 * The deployment-wide rain stream makeRainTrace() scales per node:
 * the shared spell schedule times the day envelope, normalized so its
 * time-mean over the horizon is 1 W.  Build it once per scenario and
 * wrap each node's trace as ScaledTrace(mean_w * node_gain, stream) —
 * all nodes then share one stream (and one prefix table when cached).
 */
std::unique_ptr<PowerTrace> makeRainUnitStream(std::uint64_t shared_seed,
                                               Tick horizon);

/**
 * The per-node gain factor of the rain deployment (consumes exactly
 * one draw from @p node_rng, like makeRainTrace does).
 */
double rainNodeGain(Rng &node_rng);

/**
 * High-variance sunny mountain trace (Fig 12): aerially dispersed nodes;
 * some land in full sun, others in grass/shrub shade, so the per-node
 * mean itself is drawn from a wide distribution.
 */
std::unique_ptr<PowerTrace> makeMountainTrace(Rng &rng, Tick horizon,
                                              Power mean_sunny,
                                              double shade_fraction = 0.4);

/**
 * Bursty piezoelectric harvest: vibration events deliver short pulses.
 */
std::unique_ptr<PowerTrace> makePiezoTrace(Rng &rng, Tick horizon,
                                           Power pulse_level,
                                           double events_per_minute);

/**
 * RF harvesting: near-constant low income with distance-derived level
 * plus multipath fading jitter.
 */
std::unique_ptr<PowerTrace> makeRfTrace(Rng &rng, Tick horizon,
                                        Power mean_level);

} // namespace traces

} // namespace neofog

#endif // NEOFOG_ENERGY_POWER_TRACE_HH
