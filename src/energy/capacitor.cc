#include "energy/capacitor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace neofog {

SuperCapacitor::SuperCapacitor(const Config &cfg)
    : _cfg(cfg), _stored(cfg.initial)
{
    if (_cfg.capacity.joules() <= 0.0)
        fatal("super-capacitor capacity must be positive");
    if (_cfg.initial > _cfg.capacity)
        fatal("super-capacitor initial charge exceeds capacity");
    if (_cfg.initial.joules() < 0.0)
        fatal("super-capacitor initial charge negative");
}

Energy
SuperCapacitor::charge(Energy amount)
{
    NEOFOG_ASSERT(amount.joules() >= -1e-15, "charging negative energy");
    amount = amount.clampedNonNegative();
    const Energy room = _cfg.capacity - _stored;
    const Energy accepted = std::min(amount, room);
    const Energy rejected = amount - accepted;
    _stored += accepted;
    _chargedTotal += accepted;
    _overflowTotal += rejected;
    return accepted;
}

bool
SuperCapacitor::tryDischarge(Energy amount)
{
    NEOFOG_ASSERT(amount.joules() >= -1e-15, "discharging negative energy");
    amount = amount.clampedNonNegative();
    if (_stored < amount)
        return false;
    _stored -= amount;
    _dischargedTotal += amount;
    return true;
}

Energy
SuperCapacitor::drain(Energy amount)
{
    NEOFOG_ASSERT(amount.joules() >= -1e-15, "draining negative energy");
    amount = amount.clampedNonNegative();
    const Energy removed = std::min(amount, _stored);
    _stored -= removed;
    _dischargedTotal += removed;
    return removed;
}

void
SuperCapacitor::leak(Tick duration)
{
    NEOFOG_ASSERT(duration >= 0, "negative leak duration");
    const Energy loss = std::min(_cfg.leakage * duration, _stored);
    _stored -= loss;
    _leakedTotal += loss;
}

void
SuperCapacitor::setStored(Energy e)
{
    if (e.joules() < 0.0 || e > _cfg.capacity)
        fatal("setStored outside [0, capacity]");
    _stored = e;
}

// CapacitorView mutators: SuperCapacitor's arithmetic on raw joule
// cells.  Each statement mirrors the class method above — std::min
// argument order included — because the scalar banking path runs
// through these while the batched slot kernel replicates them
// column-wise (shard_kernel.cc), and the two must stay bit-identical.

Energy
CapacitorView::charge(Energy amount)
{
    NEOFOG_ASSERT(amount.joules() >= -1e-15, "charging negative energy");
    const double amt = amount.clampedNonNegative().joules();
    const double room = _cfg->capacity.joules() - *_stored;
    const double accepted = std::min(amt, room);
    *_stored += accepted;
    *_chargedTotal += accepted;
    *_overflowTotal += amt - accepted;
    return Energy::fromJoules(accepted);
}

bool
CapacitorView::tryDischarge(Energy amount)
{
    NEOFOG_ASSERT(amount.joules() >= -1e-15,
                  "discharging negative energy");
    const double amt = amount.clampedNonNegative().joules();
    if (*_stored < amt)
        return false;
    *_stored -= amt;
    *_dischargedTotal += amt;
    return true;
}

Energy
CapacitorView::drain(Energy amount)
{
    NEOFOG_ASSERT(amount.joules() >= -1e-15, "draining negative energy");
    const double amt = amount.clampedNonNegative().joules();
    const double removed = std::min(amt, *_stored);
    *_stored -= removed;
    *_dischargedTotal += removed;
    return Energy::fromJoules(removed);
}

void
CapacitorView::leak(Tick duration)
{
    NEOFOG_ASSERT(duration >= 0, "negative leak duration");
    const double loss =
        std::min((_cfg->leakage * duration).joules(), *_stored);
    *_stored -= loss;
    *_leakedTotal += loss;
}

void
CapacitorView::setStored(Energy e)
{
    if (e.joules() < 0.0 || e > _cfg->capacity)
        fatal("setStored outside [0, capacity]");
    *_stored = e.joules();
}

} // namespace neofog
