/**
 * @file
 * Super-capacitor energy storage model.
 *
 * Every NEOFog node stores harvested energy in a super-capacitor (two,
 * actually: a small dedicated one keeps the RTC alive; see Rtc).  The
 * model tracks stored energy directly in joules with a capacity cap,
 * self-leakage, and accounting of energy rejected when full — the
 * "capacitor was frequently full, further energy was rejected" effect
 * that Fig 9 of the paper visualizes.
 */

#ifndef NEOFOG_ENERGY_CAPACITOR_HH
#define NEOFOG_ENERGY_CAPACITOR_HH

#include <string_view>

#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/**
 * A leaky, bounded energy store.
 */
class SuperCapacitor
{
  public:
    struct Config
    {
        /** Usable energy capacity. */
        Energy capacity = Energy::fromMillijoules(600.0);
        /** Initial stored energy. */
        Energy initial = Energy::zero();
        /** Constant self-discharge power. */
        Power leakage = Power::fromMicrowatts(15.0);

        /** Snapshot support (see src/snapshot/). */
        template <class Archive>
        void
        serialize(Archive &ar)
        {
            ar.io("capacity", capacity);
            ar.io("initial", initial);
            ar.io("leakage", leakage);
        }
    };

    explicit SuperCapacitor(const Config &cfg);

    /** Currently stored energy. */
    Energy stored() const { return _stored; }

    /** Capacity limit. */
    Energy capacity() const { return _cfg.capacity; }

    /** Stored energy as a fraction of capacity, in [0,1]. */
    double fillFraction() const
    { return _stored.joules() / _cfg.capacity.joules(); }

    /**
     * Add energy; amounts beyond capacity are rejected and counted.
     * @return Energy actually accepted.
     */
    Energy charge(Energy amount);

    /**
     * Remove energy if fully available.
     * @return true and deducts if stored() >= amount, else false with no
     *         state change.
     */
    bool tryDischarge(Energy amount);

    /**
     * Remove up to @p amount, draining to zero if necessary.
     * @return Energy actually removed.
     */
    Energy drain(Energy amount);

    /** Apply self-leakage for an elapsed duration. */
    void leak(Tick duration);

    /** Whether at least @p amount is available. */
    bool has(Energy amount) const { return _stored >= amount; }

    /** Set stored energy directly (testing / scenario setup). */
    void setStored(Energy e);

    /** Cumulative energy rejected because the capacitor was full. */
    Energy overflowTotal() const { return _overflowTotal; }

    /** Cumulative energy lost to self-leakage. */
    Energy leakedTotal() const { return _leakedTotal; }

    /** Cumulative energy accepted by charge(). */
    Energy chargedTotal() const { return _chargedTotal; }

    /** Cumulative energy removed by discharge/drain. */
    Energy dischargedTotal() const { return _dischargedTotal; }

    /** Snapshot support: stored level plus lifetime accounting. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("stored", _stored);
        ar.io("overflow_total", _overflowTotal);
        ar.io("leaked_total", _leakedTotal);
        ar.io("charged_total", _chargedTotal);
        ar.io("discharged_total", _dischargedTotal);
    }

  private:
    Config _cfg; // neofog-lint: allow(snapshot): construction-time configuration, rebuilt from the scenario on resume (only the stored level and lifetime accounting mutate)
    Energy _stored;
    Energy _overflowTotal;
    Energy _leakedTotal;
    Energy _chargedTotal;
    Energy _dischargedTotal;
};

/**
 * Row view over a shard's main-capacitor state columns.
 *
 * A NodeShard (node_soa.hh) stores the kernel-hot capacitor state as
 * contiguous double columns (joules) rather than embedded
 * SuperCapacitor objects, so the batched slot kernel can advance the
 * columns in place without gathering whole objects.  CapacitorView is
 * the scalar-side facade over one row of those columns: the same
 * public API as SuperCapacitor, with every mutator replicating the
 * class's arithmetic statement for statement (same std::min argument
 * order, same clamp) — the scalar banking path runs through views
 * while ShardSlotKernel advances the identical columns lane-parallel,
 * and the bit-identity contract (tests/test_shard_kernel.cpp) holds
 * only if both sides execute the same floating-point program.
 *
 * Views are cheap value types: five cell pointers plus the config.
 * The config reference must outlive the view (it lives in the owning
 * Node's Config).
 */
class CapacitorView
{
  public:
    CapacitorView(const SuperCapacitor::Config &cfg, double &stored,
                  double &charged_total, double &overflow_total,
                  double &leaked_total, double &discharged_total)
        : _cfg(&cfg), _stored(&stored), _chargedTotal(&charged_total),
          _overflowTotal(&overflow_total), _leakedTotal(&leaked_total),
          _dischargedTotal(&discharged_total)
    {
    }

    /** Currently stored energy. */
    Energy stored() const { return Energy::fromJoules(*_stored); }

    /** Capacity limit. */
    Energy capacity() const { return _cfg->capacity; }

    /** Stored energy as a fraction of capacity, in [0,1]. */
    double fillFraction() const
    { return *_stored / _cfg->capacity.joules(); }

    /**
     * Add energy; amounts beyond capacity are rejected and counted.
     * @return Energy actually accepted.
     */
    Energy charge(Energy amount);

    /**
     * Remove energy if fully available.
     * @return true and deducts if stored() >= amount, else false with
     *         no state change.
     */
    bool tryDischarge(Energy amount);

    /**
     * Remove up to @p amount, draining to zero if necessary.
     * @return Energy actually removed.
     */
    Energy drain(Energy amount);

    /** Apply self-leakage for an elapsed duration. */
    void leak(Tick duration);

    /** Whether at least @p amount is available. */
    bool has(Energy amount) const { return *_stored >= amount.joules(); }

    /** Set stored energy directly (testing / scenario setup). */
    void setStored(Energy e);

    /** Cumulative energy rejected because the capacitor was full. */
    Energy overflowTotal() const
    { return Energy::fromJoules(*_overflowTotal); }

    /** Cumulative energy lost to self-leakage. */
    Energy leakedTotal() const
    { return Energy::fromJoules(*_leakedTotal); }

    /** Cumulative energy accepted by charge(). */
    Energy chargedTotal() const
    { return Energy::fromJoules(*_chargedTotal); }

    /** Cumulative energy removed by discharge/drain. */
    Energy dischargedTotal() const
    { return Energy::fromJoules(*_dischargedTotal); }

    /** Snapshot support: SuperCapacitor's exact wire keys and types. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ioJoules(ar, "stored", *_stored);
        ioJoules(ar, "overflow_total", *_overflowTotal);
        ioJoules(ar, "leaked_total", *_leakedTotal);
        ioJoules(ar, "charged_total", *_chargedTotal);
        ioJoules(ar, "discharged_total", *_dischargedTotal);
    }

  private:
    /** Archive one cell under SuperCapacitor's Energy wire type. */
    template <class Archive>
    static void
    ioJoules(Archive &ar, std::string_view key, double &cell)
    {
        Energy v = Energy::fromJoules(cell);
        ar.io(key, v);
        cell = v.joules();
    }

    const SuperCapacitor::Config *_cfg;
    double *_stored;
    double *_chargedTotal;
    double *_overflowTotal;
    double *_leakedTotal;
    double *_dischargedTotal;
};

} // namespace neofog

#endif // NEOFOG_ENERGY_CAPACITOR_HH
