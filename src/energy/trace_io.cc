#include "energy/trace_io.hh"

#include <fstream>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace neofog {

std::unique_ptr<PiecewiseTrace>
readCsvTrace(std::istream &in)
{
    std::vector<PiecewiseTrace::Segment> segments;
    std::string line;
    std::size_t line_no = 0;
    Tick prev = -1;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        // Optional header.
        if (line.find("time_s") != std::string::npos)
            continue;

        std::istringstream row(line);
        std::string t_str, p_str;
        if (!std::getline(row, t_str, ',') ||
            !std::getline(row, p_str)) {
            fatal("trace CSV line ", line_no,
                  ": expected 'time_s,power_mw'");
        }
        char *end = nullptr;
        const double t_s = std::strtod(t_str.c_str(), &end);
        if (end == t_str.c_str())
            fatal("trace CSV line ", line_no, ": bad time '", t_str,
                  "'");
        const double p_mw = std::strtod(p_str.c_str(), &end);
        if (end == p_str.c_str())
            fatal("trace CSV line ", line_no, ": bad power '", p_str,
                  "'");
        if (t_s < 0.0 || p_mw < 0.0)
            fatal("trace CSV line ", line_no, ": negative value");
        const Tick t = ticksFromSeconds(t_s);
        if (t < prev)
            fatal("trace CSV line ", line_no,
                  ": time goes backwards");
        prev = t;
        segments.push_back({t, Power::fromMilliwatts(p_mw)});
    }
    if (segments.empty())
        fatal("trace CSV contained no data rows");
    return std::make_unique<PiecewiseTrace>(std::move(segments));
}

std::unique_ptr<PiecewiseTrace>
loadCsvTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: ", path);
    return readCsvTrace(in);
}

std::unique_ptr<InterpolatedTrace>
readCsvTraceInterpolated(std::istream &in)
{
    const auto step = readCsvTrace(in);
    std::vector<InterpolatedTrace::Knot> knots;
    knots.reserve(step->segments().size());
    for (const auto &seg : step->segments()) {
        if (!knots.empty() && seg.start <= knots.back().at)
            fatal("interpolated trace needs strictly increasing times");
        knots.push_back({seg.start, seg.level});
    }
    return std::make_unique<InterpolatedTrace>(std::move(knots));
}

std::unique_ptr<InterpolatedTrace>
loadCsvTraceInterpolated(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: ", path);
    return readCsvTraceInterpolated(in);
}

void
writeCsvTrace(const PowerTrace &trace, Tick horizon, Tick step,
              std::ostream &out)
{
    if (step <= 0 || horizon <= 0)
        fatal("writeCsvTrace: positive step and horizon required");
    out << "time_s,power_mw\n";
    for (Tick t = 0; t < horizon; t += step) {
        out << secondsFromTicks(t) << ','
            << trace.at(t).milliwatts() << '\n';
    }
}

void
saveCsvTrace(const PowerTrace &trace, Tick horizon, Tick step,
             const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file: ", path);
    writeCsvTrace(trace, horizon, step, out);
}

} // namespace neofog
