/**
 * @file
 * Power-trace file I/O.
 *
 * The paper's experiments are driven by measured traces (NREL MIDC and
 * field deployments).  This module lets users plug their own measured
 * data in: a two-column CSV (`time_s,power_mw`) loads as a
 * piecewise-constant trace, and any trace can be exported for
 * plotting or reuse.
 */

#ifndef NEOFOG_ENERGY_TRACE_IO_HH
#define NEOFOG_ENERGY_TRACE_IO_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "energy/power_trace.hh"

namespace neofog {

/**
 * Parse a `time_s,power_mw` CSV stream into a piecewise-constant
 * trace.  Lines starting with '#' and a leading `time_s,power_mw`
 * header are ignored.  Rows must be in nondecreasing time order.
 * fatal() on malformed input.
 */
std::unique_ptr<PiecewiseTrace> readCsvTrace(std::istream &in);

/** readCsvTrace() from a file path; fatal() if unreadable. */
std::unique_ptr<PiecewiseTrace>
loadCsvTrace(const std::string &path);

/**
 * Parse the same CSV format into a linearly-interpolating trace —
 * preferred for slowly-sampled measurements (e.g. one-minute NREL
 * MIDC irradiance averages), where step playback would inject power
 * cliffs.  Rows must be in strictly increasing time order.
 */
std::unique_ptr<InterpolatedTrace>
readCsvTraceInterpolated(std::istream &in);

/** readCsvTraceInterpolated() from a file path. */
std::unique_ptr<InterpolatedTrace>
loadCsvTraceInterpolated(const std::string &path);

/**
 * Sample @p trace every @p step over [0, horizon) and write
 * `time_s,power_mw` rows (with header) to @p out.
 */
void writeCsvTrace(const PowerTrace &trace, Tick horizon, Tick step,
                   std::ostream &out);

/** writeCsvTrace() to a file path; fatal() if unwritable. */
void saveCsvTrace(const PowerTrace &trace, Tick horizon, Tick step,
                  const std::string &path);

} // namespace neofog

#endif // NEOFOG_ENERGY_TRACE_IO_HH
