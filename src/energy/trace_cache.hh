/**
 * @file
 * Prefix-sum energy cache for power traces.
 *
 * The slot hot path integrates each node's trace over every slot
 * window (and every multiplexing gap), so a 5-hour scenario evaluates
 * tens of thousands of trapezoid substeps per node even though the
 * windows tile the horizon.  CumulativeTrace precomputes the canonical
 * fixed-grid prefix sum of trapezoidal energy once — E(k) = energy
 * delivered over [0, k*grid) under the canonical stepped integrator
 * (PowerTrace::integrateStepped) — after which any grid-aligned
 * integrate(from, to) is an O(1) prefix difference and unaligned
 * windows add at most two exact partial-trapezoid edge terms.
 *
 * Numerical contract (tested by tests/test_trace_cache.cpp, spelled
 * out in DESIGN.md):
 *  - prefix values are bit-identical to integrateStepped(0, k*grid);
 *  - windows inside one grid cell are bit-identical to the stepped
 *    reference (both are the same single trapezoid);
 *  - any other window agrees with the stepped reference to within
 *    summation-reassociation rounding (<= 1e-12 relative in practice)
 *    because both sum exactly the same grid cells, merely bracketed
 *    differently.
 *
 * The table is immutable after construction, so one instance is safely
 * shared read-only across all nodes/clones/chains/threads of a
 * scenario (the deployment-wide rain stream is the motivating case).
 */

#ifndef NEOFOG_ENERGY_TRACE_CACHE_HH
#define NEOFOG_ENERGY_TRACE_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "energy/power_trace.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/**
 * A trace wrapper answering integrate() from a prefix-sum table.
 */
class CumulativeTrace : public PowerTrace
{
  public:
    /**
     * Build the prefix table for @p base over [0, span).
     *
     * @param base Trace to cache (shared, never mutated).
     * @param span Time range the table covers; integration beyond it
     *        falls back to the canonical stepped integrator.
     * @param grid Cell width of the canonical grid (default 1 s).
     */
    CumulativeTrace(std::shared_ptr<const PowerTrace> base, Tick span,
                    Tick grid = kSec);

    Power at(Tick t) const override { return _base->at(t); }
    Energy integrate(Tick from, Tick to) const override;
    bool hasFastIntegrate() const override { return true; }
    Tick constantLevelUntil(Tick t) const override
    { return _base->constantLevelUntil(t); }
    std::string describe() const override;

    const PowerTrace &base() const { return *_base; }
    Tick grid() const { return _grid; }
    /** End of the cached range: cells() * grid(). */
    Tick span() const { return _span; }
    std::size_t cells() const { return _prefix.size() - 1; }
    std::size_t tableBytes() const
    { return _prefix.size() * sizeof(double); }

  private:
    std::shared_ptr<const PowerTrace> _base;
    Tick _grid;
    Tick _span; ///< cells() * grid, >= requested span

    /**
     * _prefix[k] = integrateStepped(0, k*grid) of the base trace, in
     * joules.  Written once by the constructor, read-only afterwards.
     */
    std::vector<double> _prefix;
};

} // namespace neofog

#endif // NEOFOG_ENERGY_TRACE_CACHE_HH
