#include "energy/power_trace.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "sim/logging.hh"

namespace neofog {

Energy
PowerTrace::integrate(Tick from, Tick to) const
{
    return integrateStepped(from, to);
}

Energy
PowerTrace::integrateStepped(Tick from, Tick to, Tick grid) const
{
    TraceCursor cursor(*this, from, grid);
    return cursor.advance(to);
}

TraceCursor::TraceCursor(const PowerTrace &trace, Tick start, Tick grid)
    : _trace(&trace), _grid(grid), _at(start), _sample(trace.at(start))
{
    NEOFOG_ASSERT(grid > 0, "trace cursor grid must be positive");
    NEOFOG_ASSERT(start >= 0, "trace cursor starts before time zero");
}

Energy
TraceCursor::advance(Tick to)
{
    NEOFOG_ASSERT(to >= _at, "trace cursor cannot move backwards");
    // Trapezoids between absolute grid boundaries (multiples of
    // _grid), with partial cells at unaligned window edges.  Anchoring
    // the substeps to the absolute grid — instead of to `from` — makes
    // every call over the same span sum the same cells, which is what
    // lets CumulativeTrace replace this loop with a prefix difference.
    Energy total = Energy::zero();
    while (_at < to) {
        const Tick next =
            std::min<Tick>((_at / _grid + 1) * _grid, to);
        const Power cur = _trace->at(next);
        total += 0.5 * (_sample + cur) * (next - _at);
        _sample = cur;
        _at = next;
    }
    return total;
}

Energy
ConstantTrace::integrate(Tick from, Tick to) const
{
    NEOFOG_ASSERT(to >= from, "integrate bounds reversed");
    return _level * (to - from);
}

std::string
ConstantTrace::describe() const
{
    std::ostringstream oss;
    oss << "constant(" << _level.milliwatts() << " mW)";
    return oss.str();
}

PiecewiseTrace::PiecewiseTrace(std::vector<Segment> segments)
    : _segments(std::move(segments))
{
    for (std::size_t i = 1; i < _segments.size(); ++i) {
        NEOFOG_ASSERT(_segments[i].start >= _segments[i - 1].start,
                      "piecewise trace segments out of order");
    }
}

std::size_t
PiecewiseTrace::segmentIndex(Tick t) const
{
    // First segment with start > t, minus one.
    auto it = std::upper_bound(
        _segments.begin(), _segments.end(), t,
        [](Tick v, const Segment &s) { return v < s.start; });
    if (it == _segments.begin())
        return static_cast<std::size_t>(-1);
    return static_cast<std::size_t>(it - _segments.begin() - 1);
}

Power
PiecewiseTrace::at(Tick t) const
{
    const std::size_t idx = segmentIndex(t);
    if (idx == static_cast<std::size_t>(-1))
        return Power::zero();
    return _segments[idx].level;
}

Energy
PiecewiseTrace::integrate(Tick from, Tick to) const
{
    NEOFOG_ASSERT(to >= from, "integrate bounds reversed");
    Energy total = Energy::zero();
    Tick t = from;
    while (t < to) {
        const std::size_t idx = segmentIndex(t);
        Tick seg_end = to;
        if (idx == static_cast<std::size_t>(-1)) {
            // Before the first segment: zero power until it starts.
            seg_end = _segments.empty()
                ? to : std::min<Tick>(to, _segments.front().start);
            t = seg_end;
            continue;
        }
        if (idx + 1 < _segments.size())
            seg_end = std::min<Tick>(to, _segments[idx + 1].start);
        total += _segments[idx].level * (seg_end - t);
        t = seg_end;
    }
    return total;
}

Tick
PiecewiseTrace::constantLevelUntil(Tick t) const
{
    const std::size_t idx = segmentIndex(t);
    if (idx == static_cast<std::size_t>(-1))
        return _segments.empty() ? kTickNever : _segments.front().start;
    if (idx + 1 < _segments.size())
        return _segments[idx + 1].start;
    return kTickNever;
}

std::string
PiecewiseTrace::describe() const
{
    std::ostringstream oss;
    oss << "piecewise(" << _segments.size() << " segments)";
    return oss.str();
}

InterpolatedTrace::InterpolatedTrace(std::vector<Knot> knots)
    : _knots(std::move(knots))
{
    if (_knots.empty())
        fatal("interpolated trace needs at least one knot");
    for (std::size_t i = 1; i < _knots.size(); ++i) {
        if (_knots[i].at <= _knots[i - 1].at)
            fatal("interpolated trace knots must strictly increase");
    }
}

Power
InterpolatedTrace::at(Tick t) const
{
    if (t <= _knots.front().at)
        return _knots.front().level;
    if (t >= _knots.back().at)
        return _knots.back().level;
    // First knot strictly after t.
    auto it = std::upper_bound(
        _knots.begin(), _knots.end(), t,
        [](Tick v, const Knot &k) { return v < k.at; });
    const Knot &hi = *it;
    const Knot &lo = *(it - 1);
    const double frac = static_cast<double>(t - lo.at) /
                        static_cast<double>(hi.at - lo.at);
    return Power::fromWatts(lo.level.watts() +
                            frac * (hi.level.watts() -
                                    lo.level.watts()));
}

Energy
InterpolatedTrace::integrate(Tick from, Tick to) const
{
    NEOFOG_ASSERT(to >= from, "integrate bounds reversed");
    // Piecewise trapezoid between knot boundaries; exact because the
    // trace is piecewise linear.
    Energy total = Energy::zero();
    Tick t = from;
    while (t < to) {
        auto it = std::upper_bound(
            _knots.begin(), _knots.end(), t,
            [](Tick v, const Knot &k) { return v < k.at; });
        Tick seg_end = to;
        if (it != _knots.end())
            seg_end = std::min<Tick>(to, it->at);
        if (seg_end == t)
            seg_end = to; // t sits on the last knot boundary
        total += 0.5 * (at(t) + at(seg_end)) * (seg_end - t);
        t = seg_end;
    }
    return total;
}

Tick
InterpolatedTrace::constantLevelUntil(Tick t) const
{
    // Flat only on the boundary extensions and between equal-level
    // knots; sloped spans hold no constancy guarantee.
    if (t < _knots.front().at)
        return _knots.front().at;
    if (t >= _knots.back().at)
        return kTickNever;
    auto it = std::upper_bound(
        _knots.begin(), _knots.end(), t,
        [](Tick v, const Knot &k) { return v < k.at; });
    const Knot &hi = *it;
    const Knot &lo = *(it - 1);
    return lo.level.watts() == hi.level.watts() ? hi.at : t;
}

std::string
InterpolatedTrace::describe() const
{
    std::ostringstream oss;
    oss << "interpolated(" << _knots.size() << " knots)";
    return oss.str();
}

Power
DiurnalSolarTrace::at(Tick t) const
{
    const Tick since_sunrise = t + _cfg.sunriseOffset;
    if (since_sunrise < 0 || since_sunrise >= _cfg.dayLength)
        return Power::zero();
    const double phase = static_cast<double>(since_sunrise) /
                         static_cast<double>(_cfg.dayLength);
    const double hump = std::sin(M_PI * phase);
    return _cfg.peak * (hump * _cfg.attenuation);
}

std::string
DiurnalSolarTrace::describe() const
{
    std::ostringstream oss;
    oss << "diurnal(peak=" << _cfg.peak.milliwatts()
        << " mW, atten=" << _cfg.attenuation << ")";
    return oss.str();
}

ScaledTrace::ScaledTrace(double scale,
                         std::shared_ptr<const PowerTrace> base)
    : _scale(scale), _base(std::move(base))
{
    if (!_base)
        fatal("scaled trace needs a base trace");
}

std::string
ScaledTrace::describe() const
{
    std::ostringstream oss;
    oss << "scaled(x" << _scale << ", " << _base->describe() << ")";
    return oss.str();
}

namespace traces {

namespace {

/**
 * A piecewise trace modulated by a diurnal envelope; used by all the
 * synthetic deployment traces so day shape and fast variation compose.
 */
class EnvelopedTrace : public PowerTrace
{
  public:
    EnvelopedTrace(PiecewiseTrace fast, DiurnalSolarTrace::Config env_cfg,
                   std::string label)
        : _fast(std::move(fast)), _envelope(env_cfg),
          _label(std::move(label))
    {}

    Power
    at(Tick t) const override
    {
        // The fast trace stores relative multipliers encoded as watts;
        // the envelope supplies the physical scale.
        const double mult = _fast.at(t).watts();
        return _envelope.at(t) * mult;
    }

    std::string
    describe() const override
    {
        return _label;
    }

  private:
    PiecewiseTrace _fast;
    DiurnalSolarTrace _envelope;
    std::string _label;
};

/** Mean of the diurnal envelope over [0, horizon], as fraction of peak. */
double
envelopeMean(const DiurnalSolarTrace::Config &cfg, Tick horizon)
{
    DiurnalSolarTrace env(cfg);
    const Energy e = env.integrate(0, horizon);
    const double mean_w = e.joules() / secondsFromTicks(horizon);
    return cfg.peak.watts() > 0.0 ? mean_w / cfg.peak.watts() : 0.0;
}

/**
 * Build a piecewise multiplier trace with exponential segment durations
 * and levels drawn by @p draw_level, normalized to mean 1.0.
 */
PiecewiseTrace
randomMultiplierTrace(Rng &rng, Tick horizon, Tick mean_segment,
                      const std::function<double(Rng &)> &draw_level)
{
    std::vector<PiecewiseTrace::Segment> segs;
    Tick t = 0;
    double weighted_sum = 0.0;
    while (t < horizon) {
        const double dur_s =
            rng.exponential(1.0 / secondsFromTicks(mean_segment));
        Tick dur = std::max<Tick>(ticksFromSeconds(dur_s), kSec);
        dur = std::min<Tick>(dur, horizon - t);
        const double level = std::max(0.0, draw_level(rng));
        segs.push_back({t, Power::fromWatts(level)});
        weighted_sum += level * static_cast<double>(dur);
        t += dur;
    }
    // Normalize so the time-weighted mean multiplier is 1.0.
    const double mean = weighted_sum / static_cast<double>(horizon);
    if (mean > 1e-12) {
        for (auto &s : segs)
            s.level = s.level / mean;
    }
    return PiecewiseTrace(std::move(segs));
}

} // namespace

std::unique_ptr<PowerTrace>
makeForestTrace(Rng &rng, Tick horizon, Power mean_level,
                double variance_ratio)
{
    // Bimodal shade/fleck levels: most of the time deep shade, with
    // bright sun flecks as wind moves the canopy.  Segment lengths of a
    // couple of minutes reproduce the paper's "concatenated measured
    // sequences in random order".
    DiurnalSolarTrace::Config env;
    env.peak = Power::fromWatts(1.0); // placeholder, rescaled below
    env.dayLength = 12 * kHour;
    env.sunriseOffset = 3 * kHour + ticksFromSeconds(rng.uniform(0, 600));
    const double env_mean = envelopeMean(env, horizon);
    // Per-node site gain: where a node sits in the canopy dominates its
    // harvest.  Heavy-tailed (log-normal, mean 1) so a tail of nodes is
    // in deep shade and genuinely deplete (the paper's node failures).
    const double site_sigma = 0.85;
    double site_gain = std::exp(site_sigma * rng.normal()) /
                       std::exp(0.5 * site_sigma * site_sigma);
    site_gain = std::clamp(site_gain, 0.02, 6.0);
    env.peak = Power::fromWatts(mean_level.watts() * site_gain /
                                env_mean);

    const double fleck_prob = 0.35;
    auto draw = [fleck_prob, variance_ratio](Rng &r) {
        const bool fleck = r.chance(fleck_prob);
        const double base = fleck ? 1.0 + variance_ratio
                                  : 1.0 - variance_ratio * 0.8;
        return base * (1.0 + 0.25 * r.normal());
    };
    auto fast = randomMultiplierTrace(rng, horizon, 2 * kMin, draw);
    return std::make_unique<EnvelopedTrace>(std::move(fast), env,
                                            "forest-independent");
}

std::unique_ptr<PowerTrace>
makeBridgeTrace(int profile_index, Rng &rng, Tick horizon,
                Power mean_level, double node_variance)
{
    NEOFOG_ASSERT(profile_index >= 0, "bad profile index");
    // The five day profiles differ in cloudiness and morning/afternoon
    // weighting; all nodes of one run share the same profile shape.
    static const double kAttenuation[5] = {1.0, 0.85, 0.7, 0.9, 0.6};
    static const double kOffsetHours[5] = {3.0, 2.0, 4.0, 2.5, 3.5};
    const int p = profile_index % 5;

    DiurnalSolarTrace::Config env;
    env.dayLength = 12 * kHour;
    env.sunriseOffset = ticksFromSeconds(kOffsetHours[p] * 3600.0);
    env.attenuation = kAttenuation[p];
    env.peak = Power::fromWatts(1.0);
    const double env_mean = envelopeMean(env, horizon);
    env.peak = Power::fromWatts(mean_level.watts() / env_mean);

    // Per-node gain: 30% variance around 1.0 (clamped positive), plus a
    // slow cloud-speckle multiplier shared in *shape* across nodes of the
    // same profile but jittered slightly per node.
    const double gain = std::max(0.1, 1.0 + node_variance * rng.normal());
    auto draw = [gain](Rng &r) {
        return gain * (1.0 + 0.08 * r.normal());
    };
    auto fast = randomMultiplierTrace(rng, horizon, 10 * kMin, draw);
    return std::make_unique<EnvelopedTrace>(
        std::move(fast), env,
        "bridge-dependent(profile " + std::to_string(p) + ")");
}

std::unique_ptr<PowerTrace>
makeRainUnitStream(std::uint64_t shared_seed, Tick horizon)
{
    DiurnalSolarTrace::Config env;
    env.dayLength = 12 * kHour;
    env.sunriseOffset = 3 * kHour;
    env.attenuation = 1.0; // scale folded into peak below
    env.peak = Power::fromWatts(1.0);
    const double env_mean = envelopeMean(env, horizon);
    // Normalize so the stream's time-mean over the horizon is ~1 W;
    // ScaledTrace supplies the node's physical mean and gain.
    env.peak = Power::fromWatts(1.0 / env_mean);

    // The rain-spell schedule is *shared*: the same seed yields the
    // same bright/dark pattern for every node of a deployment.  Long
    // dark stretches (heavy rain over everyone) alternate with rare
    // brighter spells.
    Rng shared(shared_seed); // neofog-lint: allow(determinism): the shared weather stream is re-seeded from a scenario-derived value so every node of a deployment sees one rain front
    auto draw = [](Rng &r) {
        const bool spell = r.chance(0.30);
        return (spell ? 2.8 : 0.23) * (1.0 + 0.12 * r.normal());
    };
    auto fast = randomMultiplierTrace(shared, horizon, 20 * kMin, draw);
    return std::make_unique<EnvelopedTrace>(std::move(fast), env,
                                            "rain-low-power-dependent");
}

double
rainNodeGain(Rng &node_rng)
{
    return std::max(0.2, 1.0 + 0.2 * node_rng.normal());
}

std::unique_ptr<PowerTrace>
makeRainTrace(std::uint64_t shared_seed, Rng &node_rng, Tick horizon,
              Power mean_level)
{
    const double node_gain = rainNodeGain(node_rng);
    std::shared_ptr<const PowerTrace> unit =
        makeRainUnitStream(shared_seed, horizon);
    return std::make_unique<ScaledTrace>(
        mean_level.watts() * node_gain, std::move(unit));
}

std::unique_ptr<PowerTrace>
makeMountainTrace(Rng &rng, Tick horizon, Power mean_sunny,
                  double shade_fraction)
{
    // Aerial dispersion: a node lands in full sun or in grass/shrub
    // shade; shaded nodes harvest a small fraction of the sunny mean.
    const bool shaded = rng.chance(shade_fraction);
    const double site_gain = shaded ? rng.uniform(0.05, 0.35)
                                    : rng.uniform(0.8, 1.6);
    DiurnalSolarTrace::Config env;
    env.dayLength = 12 * kHour;
    env.sunriseOffset = 3 * kHour;
    env.peak = Power::fromWatts(1.0);
    const double env_mean = envelopeMean(env, horizon);
    env.peak =
        Power::fromWatts(mean_sunny.watts() * site_gain / env_mean);

    auto draw = [](Rng &r) { return 1.0 + 0.3 * r.normal(); };
    auto fast = randomMultiplierTrace(rng, horizon, 5 * kMin, draw);
    return std::make_unique<EnvelopedTrace>(
        std::move(fast), env,
        shaded ? "mountain-shaded" : "mountain-sunny");
}

std::unique_ptr<PowerTrace>
makePiezoTrace(Rng &rng, Tick horizon, Power pulse_level,
               double events_per_minute)
{
    NEOFOG_ASSERT(events_per_minute > 0.0, "piezo event rate");
    std::vector<PiecewiseTrace::Segment> segs;
    segs.push_back({0, Power::zero()});
    Tick t = 0;
    while (t < horizon) {
        const double gap_s = rng.exponential(events_per_minute / 60.0);
        t += std::max<Tick>(ticksFromSeconds(gap_s), 10 * kMs);
        if (t >= horizon)
            break;
        const Tick dur = ticksFromMs(rng.uniform(50.0, 400.0));
        segs.push_back({t, pulse_level * rng.uniform(0.5, 1.5)});
        segs.push_back({std::min<Tick>(t + dur, horizon), Power::zero()});
        t += dur;
    }
    return std::make_unique<PiecewiseTrace>(std::move(segs));
}

std::unique_ptr<PowerTrace>
makeRfTrace(Rng &rng, Tick horizon, Power mean_level)
{
    // RF income is steady but subject to multipath fading as the
    // environment changes; model as slow log-normal-ish jitter.
    std::vector<PiecewiseTrace::Segment> segs;
    Tick t = 0;
    while (t < horizon) {
        const double fade = std::exp(0.4 * rng.normal());
        segs.push_back({t, mean_level * fade});
        t += 30 * kSec;
    }
    return std::make_unique<PiecewiseTrace>(std::move(segs));
}

} // namespace traces

} // namespace neofog
