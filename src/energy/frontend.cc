#include "energy/frontend.hh"

#include "sim/logging.hh"

namespace neofog {

FrontEnd::FrontEnd(const Config &cfg)
    : _cfg(cfg)
{
    auto check = [](double v, const char *name) {
        if (v <= 0.0 || v > 1.0)
            fatal("front-end efficiency out of (0,1]: ", name, "=", v);
    };
    check(_cfg.harvestEfficiency, "harvestEfficiency");
    check(_cfg.chargeEfficiency, "chargeEfficiency");
    check(_cfg.dischargeEfficiency, "dischargeEfficiency");
    check(_cfg.directEfficiency, "directEfficiency");
}

Energy
FrontEnd::incomeToCap(Energy ambient) const
{
    return ambient * (_cfg.harvestEfficiency * _cfg.chargeEfficiency);
}

Energy
FrontEnd::capCostForLoad(Energy load_energy) const
{
    return load_energy / _cfg.dischargeEfficiency;
}

Energy
FrontEnd::incomeToLoadDirect(Energy ambient) const
{
    if (_cfg.kind != FrontEndKind::Fios)
        return Energy::zero();
    return ambient * (_cfg.harvestEfficiency * _cfg.directEfficiency);
}

double
FrontEnd::directAdvantage() const
{
    const double round_trip =
        _cfg.chargeEfficiency * _cfg.dischargeEfficiency;
    return _cfg.directEfficiency / round_trip;
}

FrontEnd
FrontEnd::makeNos()
{
    Config cfg;
    cfg.kind = FrontEndKind::Nos;
    return FrontEnd(cfg);
}

FrontEnd
FrontEnd::makeFios()
{
    Config cfg;
    cfg.kind = FrontEndKind::Fios;
    // Wang et al. [77] dual-channel design: ~90% source-to-load.
    cfg.directEfficiency = 0.90;
    return FrontEnd(cfg);
}

} // namespace neofog
