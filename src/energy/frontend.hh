/**
 * @file
 * Harvesting front-end circuit models.
 *
 * The paper distinguishes two front ends (Fig 5):
 *
 *  - NOS front end (Fig 5a): harvester -> impedance matching -> single
 *    super-capacitor -> LDO -> load.  All energy makes a round trip
 *    through the capacitor; charging inefficiency plus capacitor leakage
 *    waste "more than half of the energy income" (WispCam observation).
 *
 *  - FIOS front end (Fig 5b): adds a switch (SW1) giving the NVP a
 *    direct source-to-load channel at ~90% efficiency (Wang et al.);
 *    only the RF/sensor portion is powered from the capacitor path.
 *
 * The model exposes per-path efficiencies; the node applies them when
 * banking income or costing intermittent computation.
 */

#ifndef NEOFOG_ENERGY_FRONTEND_HH
#define NEOFOG_ENERGY_FRONTEND_HH

#include "sim/units.hh"

namespace neofog {

/** Which front-end topology a node is built with. */
enum class FrontEndKind
{
    /** Single-channel charge-then-spend (Fig 5a). */
    Nos,
    /** Dual-channel with direct source-to-load path (Fig 5b). */
    Fios,
};

/**
 * Front-end circuit efficiencies.
 */
class FrontEnd
{
  public:
    struct Config
    {
        FrontEndKind kind = FrontEndKind::Nos;
        /** Harvester + rectifier conversion efficiency. */
        double harvestEfficiency = 0.80;
        /** Capacitor charge-path efficiency (into the cap). */
        double chargeEfficiency = 0.70;
        /** LDO / regulator efficiency (out of the cap). */
        double dischargeEfficiency = 0.85;
        /** Direct source-to-load efficiency (FIOS only). */
        double directEfficiency = 0.90;
    };

    explicit FrontEnd(const Config &cfg);

    FrontEndKind kind() const { return _cfg.kind; }

    /**
     * Energy banked into the capacitor from raw ambient income.
     * Applies harvester and charge-path losses.
     */
    Energy incomeToCap(Energy ambient) const;

    /**
     * Energy that must be drawn from the capacitor to deliver
     * @p load_energy at the load (applies LDO loss).
     */
    Energy capCostForLoad(Energy load_energy) const;

    /**
     * Energy delivered to the load directly from @p ambient income over
     * the direct channel (FIOS only; zero for NOS).
     */
    Energy incomeToLoadDirect(Energy ambient) const;

    /**
     * End-to-end efficiency advantage of the direct channel over the
     * charge/discharge round trip.  This is the core FIOS benefit: the
     * paper reports 2.2x-5x more forward progress for the same income.
     */
    double directAdvantage() const;

    const Config &config() const { return _cfg; }

    /** Paper-default NOS front end. */
    static FrontEnd makeNos();
    /** Paper-default FIOS dual-channel front end. */
    static FrontEnd makeFios();

  private:
    Config _cfg;
};

} // namespace neofog

#endif // NEOFOG_ENERGY_FRONTEND_HH
