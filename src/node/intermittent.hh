/**
 * @file
 * Fine-grained intermittent-execution simulator.
 *
 * The system-level FogSystem treats a fog task as a single
 * energy/time quantity; this module models what actually happens
 * *inside* an activation on unstable power (§2.2): the node's small
 * storage charges from the ambient trace, the processor runs while the
 * supply holds, and on each power failure
 *
 *  - an NVP pays a short backup, keeps its architectural state in NV
 *    flip-flops, and resumes after a 7-32 us restore;
 *  - a VP loses everything since its last *completed* task segment
 *    and must re-execute (plus a full restart).
 *
 * Running both processors on the same trace reproduces the paper's
 * cited result that NVPs make 2.2x-5x more forward progress than VPs
 * under the same intermittent income (Ma et al. [47]), with the ratio
 * growing as power failures become more frequent.
 */

#ifndef NEOFOG_NODE_INTERMITTENT_HH
#define NEOFOG_NODE_INTERMITTENT_HH

#include <cstdint>

#include "energy/capacitor.hh"
#include "energy/frontend.hh"
#include "energy/power_trace.hh"
#include "hw/processor.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/**
 * One intermittent execution experiment.
 */
class IntermittentExecution
{
  public:
    struct Config
    {
        /** On-node energy storage (small: frequent power cycles). */
        SuperCapacitor::Config cap{
            Energy::fromMicrojoules(500.0),
            Energy::zero(),
            Power::fromMicrowatts(2.0),
        };
        /** Front end feeding the storage from the ambient trace. */
        FrontEnd::Config frontend{};
        /** Turn-on threshold (hysteresis high). */
        Energy onThreshold = Energy::fromMicrojoules(350.0);
        /** Brown-out threshold (hysteresis low). */
        Energy offThreshold = Energy::fromMicrojoules(50.0);
        /**
         * Volatile checkpoint granularity: a VP commits progress only
         * at segment boundaries; work inside an interrupted segment is
         * re-executed.  (An NVP is insensitive to this.)
         */
        std::uint64_t taskSegmentInstructions = 20'000;
        /** Simulation step. */
        Tick step = 1 * kMs;
        /**
         * Analytic fast-forward: inside constant-income trace
         * segments, jump provably-steady step spans (dead charging,
         * whole-step overhead service, uninterrupted execution) in
         * closed form on the step-quantized grid instead of ticking
         * every step; threshold crossings, wake-ups, brown-outs, and
         * segment boundaries always run the exact per-step update.
         * All step counts (power cycles, instructions, active and
         * overhead time) match the stepped reference exactly; the
         * energy tallies agree to summation-rounding (see DESIGN.md).
         * Disable to force the stepped reference path.
         */
        bool fastForward = true;
    };

    /** Outcome of running one processor over the horizon. */
    struct Result
    {
        /** Committed forward progress. */
        std::uint64_t instructionsCompleted = 0;
        /** Instructions executed then lost to power failure (VP). */
        std::uint64_t instructionsWasted = 0;
        /** Number of power-failure (brown-out) events. */
        int powerCycles = 0;
        /** Time spent actually executing. */
        Tick activeTime = 0;
        /** Time spent in backup/restore/restart overhead. */
        Tick overheadTime = 0;
        /** Ambient energy seen over the horizon. */
        Energy harvested;
        /** Energy spent executing (committed + wasted + overhead). */
        Energy spent;

        /** Committed instructions per second of horizon. */
        double
        progressRate(Tick horizon) const
        {
            return static_cast<double>(instructionsCompleted) /
                   secondsFromTicks(horizon);
        }
    };

    /**
     * Run @p cpu against @p trace for @p horizon.
     *
     * @param cpu Processor model (VolatileProcessor or NvProcessor).
     * @param trace Ambient power income.
     * @param horizon Simulated duration.
     * @param cfg Storage/threshold configuration.
     */
    static Result run(const Processor &cpu, const PowerTrace &trace,
                      Tick horizon, const Config &cfg);

    /** run() with the default configuration. */
    static Result run(const Processor &cpu, const PowerTrace &trace,
                      Tick horizon);

    /**
     * Convenience: the NVP/VP forward-progress ratio on one trace —
     * the quantity the paper quotes as 2.2x-5x.
     */
    static double progressRatio(const PowerTrace &trace, Tick horizon,
                                const Config &cfg);

    /** progressRatio() with the default configuration. */
    static double progressRatio(const PowerTrace &trace, Tick horizon);
};

} // namespace neofog

#endif // NEOFOG_NODE_INTERMITTENT_HH
