/**
 * @file
 * Fine-grained intermittent-execution simulator.
 *
 * The system-level FogSystem treats a fog task as a single
 * energy/time quantity; this module models what actually happens
 * *inside* an activation on unstable power (§2.2): the node's small
 * storage charges from the ambient trace, the processor runs while the
 * supply holds, and on each power failure
 *
 *  - an NVP pays a short backup, keeps its architectural state in NV
 *    flip-flops, and resumes after a 7-32 us restore;
 *  - a VP loses everything since its last *completed* task segment
 *    and must re-execute (plus a full restart).
 *
 * Running both processors on the same trace reproduces the paper's
 * cited result that NVPs make 2.2x-5x more forward progress than VPs
 * under the same intermittent income (Ma et al. [47]), with the ratio
 * growing as power failures become more frequent.
 */

#ifndef NEOFOG_NODE_INTERMITTENT_HH
#define NEOFOG_NODE_INTERMITTENT_HH

#include <cstdint>
#include <vector>

#include "energy/capacitor.hh"
#include "energy/frontend.hh"
#include "energy/power_trace.hh"
#include "hw/processor.hh"
#include "sim/thread_pool.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/**
 * One intermittent execution experiment.
 */
class IntermittentExecution
{
  public:
    struct Config
    {
        /** On-node energy storage (small: frequent power cycles). */
        SuperCapacitor::Config cap{
            Energy::fromMicrojoules(500.0),
            Energy::zero(),
            Power::fromMicrowatts(2.0),
        };
        /** Front end feeding the storage from the ambient trace. */
        FrontEnd::Config frontend{};
        /** Turn-on threshold (hysteresis high). */
        Energy onThreshold = Energy::fromMicrojoules(350.0);
        /** Brown-out threshold (hysteresis low). */
        Energy offThreshold = Energy::fromMicrojoules(50.0);
        /**
         * Volatile checkpoint granularity: a VP commits progress only
         * at segment boundaries; work inside an interrupted segment is
         * re-executed.  (An NVP is insensitive to this.)
         */
        std::uint64_t taskSegmentInstructions = 20'000;
        /** Simulation step. */
        Tick step = 1 * kMs;
        /**
         * Analytic fast-forward: inside constant-income trace
         * segments, jump provably-steady step spans (dead charging,
         * whole-step overhead service, uninterrupted execution) in
         * closed form on the step-quantized grid instead of ticking
         * every step; threshold crossings, wake-ups, brown-outs, and
         * segment boundaries always run the exact per-step update.
         * All step counts (power cycles, instructions, active and
         * overhead time) match the stepped reference exactly; the
         * energy tallies agree to summation-rounding (see DESIGN.md).
         * Disable to force the stepped reference path.
         */
        bool fastForward = true;
    };

    /** Outcome of running one processor over the horizon. */
    struct Result
    {
        /** Committed forward progress. */
        std::uint64_t instructionsCompleted = 0;
        /** Instructions executed then lost to power failure (VP). */
        std::uint64_t instructionsWasted = 0;
        /** Number of power-failure (brown-out) events. */
        int powerCycles = 0;
        /** Time spent actually executing. */
        Tick activeTime = 0;
        /** Time spent in backup/restore/restart overhead. */
        Tick overheadTime = 0;
        /** Ambient energy seen over the horizon. */
        Energy harvested;
        /** Energy spent executing (committed + wasted + overhead). */
        Energy spent;

        /** Committed instructions per second of horizon. */
        double
        progressRate(Tick horizon) const
        {
            return static_cast<double>(instructionsCompleted) /
                   secondsFromTicks(horizon);
        }
    };

    /**
     * Run @p cpu against @p trace for @p horizon.
     *
     * @param cpu Processor model (VolatileProcessor or NvProcessor).
     * @param trace Ambient power income.
     * @param horizon Simulated duration.
     * @param cfg Storage/threshold configuration.
     */
    static Result run(const Processor &cpu, const PowerTrace &trace,
                      Tick horizon, const Config &cfg);

    /** run() with the default configuration. */
    static Result run(const Processor &cpu, const PowerTrace &trace,
                      Tick horizon);

    /**
     * Batched run(): one machine per entry of @p traces, all driven by
     * @p cpu over the same horizon, with the constant-income segment
     * walk hoisted out of the per-machine loop.  All traces must share
     * constant-level *segmentation* — ScaledTrace views of one shared
     * base, repeated pointers to one trace, or constant traces (the
     * levels may differ; only the boundary grid must agree).  That is
     * exactly the shape a chain shard produces, where every node scales
     * one shared ambient stream.  The shared segment walk is hoisted
     * out of the per-machine loop: the boundary list is enumerated
     * once from the first trace, and each machine answers its
     * constantLevelUntil() queries with a monotonically advancing
     * cursor over that (cache-hot) list instead of a per-query
     * segment search.
     *
     * Results are bit-identical to calling run() per trace: a cursor
     * answer is exactly the value the machine's own lookup would
     * return (constantLevelUntil is constant within a segment), and
     * every other operation is the unmodified per-machine sequence.
     * Traces that are not piecewise-constant inside the horizon drop
     * the hoist and are queried directly.
     */
    static std::vector<Result>
    runBatch(const Processor &cpu,
             const std::vector<const PowerTrace *> &traces, Tick horizon,
             const Config &cfg);

    /**
     * runBatch() distributed over @p pool (null or size 1 = serial).
     * Machines are mutually independent — each one owns its state and
     * a private cursor into the read-only shared boundary list — and
     * results land by machine index, so the output is bit-identical
     * to the serial form for any thread count.  The chunked partition
     * keeps machine m's step loop on the same pool thread across
     * calls (see ThreadPool::parallelForChunked).
     */
    static std::vector<Result>
    runBatch(const Processor &cpu,
             const std::vector<const PowerTrace *> &traces, Tick horizon,
             const Config &cfg, ThreadPool *pool);

    /**
     * Convenience: the NVP/VP forward-progress ratio on one trace —
     * the quantity the paper quotes as 2.2x-5x.
     */
    static double progressRatio(const PowerTrace &trace, Tick horizon,
                                const Config &cfg);

    /** progressRatio() with the default configuration. */
    static double progressRatio(const PowerTrace &trace, Tick horizon);
};

} // namespace neofog

#endif // NEOFOG_NODE_INTERMITTENT_HH
