#include "node/shard_kernel.hh"

#include "sim/logging.hh"
#include "sim/units.hh"

namespace neofog {

/*
 * Bit-identity notes (see also DESIGN.md, "Vectorization & memory
 * placement").  Every loop below is the scalar banking program of
 * Node::beginSlotWithIncome with each library call inlined *in its
 * exact argument order*:
 *
 *  - SuperCapacitor::charge clamps, then `std::min(amount, room)`,
 *    which is `(room < amount) ? room : amount` — the selects below
 *    replicate that argument order, not a mathematically-equivalent
 *    variant (min(a,b) and min(b,a) differ on NaN and signed zeros).
 *  - SuperCapacitor::leak is `std::min(leakage*dt, stored)`, i.e.
 *    `(stored < loss) ? stored : loss`.
 *  - Rtc::advance on a dry cap drains `std::min(need, stored)`; at
 *    that point stored < need, so the drained amount is `stored`.
 *  - Lanes without a gap window run the gap loop with zero duration
 *    and zero income: charge(0)/leak(0)/tryDischarge(0) leave every
 *    field bit-unchanged (`x + 0.0 == x` for the non-negative,
 *    non-(-0.0) energies involved), which is exactly the scalar
 *    path's skipped branch.
 *
 * There is no cross-lane arithmetic anywhere: each column statement
 * reads and writes only lane i, so the compiler may run any number of
 * lanes side by side without reassociating any node's own op order.
 *
 * The compute loop is written for GCC's loop vectorizer, which bails
 * on two patterns the naive transcription produces:
 *
 *  - `x[i] = cond ? x[i] + v : x[i]` — the else-arm stores the value
 *    just loaded, so the compiler turns it into a *conditional store*
 *    (`if (cond) x[i] += v`) and then reports "control flow in loop".
 *    Every guarded update below is instead a select on the *addend*
 *    (`x += cond ? v : 0.0`), which stays an unconditional store.
 *    Adding +0.0 is bit-exact on these columns: they are energies and
 *    counters that are never -0.0 (they start at +0.0, grow by
 *    non-negative amounts, and shrink by `x - min(x, loss)`, which
 *    yields +0.0 even when it drains the column).
 *  - conditionally-executed FP arithmetic cannot be speculated under
 *    the default -ftrapping-math, so the guarded charge arms would
 *    also block if-conversion.  The build compiles this file with
 *    -fno-trapping-math (src/node/CMakeLists.txt): that flag only
 *    drops FP-exception-flag ordering — it licenses no
 *    value-changing transform, so scalar/vector bit-identity is
 *    unaffected.
 */

ShardSlotKernelParams
ShardSlotKernelParams::fromConfigs(const SuperCapacitor::Config &cap,
                                   const Rtc::Config &rtc,
                                   const FrontEnd::Config &frontend,
                                   bool fios)
{
    ShardSlotKernelParams p;
    p.capGainPerAmbient =
        frontend.harvestEfficiency * frontend.chargeEfficiency;
    p.directGain =
        frontend.harvestEfficiency * frontend.directEfficiency;
    p.harvestEfficiency = frontend.harvestEfficiency;
    p.capCapacityJ = cap.capacity.joules();
    p.capLeakW = cap.leakage.watts();
    p.rtcPriority = rtc.chargePriority;
    p.rtcCapacityJ = rtc.cap.capacity.joules();
    p.rtcLeakW = rtc.cap.leakage.watts();
    p.rtcDrawW = rtc.draw.watts();
    p.fios = fios;
    return p;
}

ShardSlotKernel::ShardSlotKernel(const ShardSlotKernelParams &params)
    : _p(params)
{
}

void
ShardSlotKernel::gather(NodeShard &shard, const std::vector<Lane> &lanes,
                        std::size_t begin, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t r = lanes[begin + i].row;
        _capStored[i] = shard.capStoredJ[r];
        _capCharged[i] = shard.capChargedJ[r];
        _capOverflow[i] = shard.capOverflowJ[r];
        _capLeaked[i] = shard.capLeakedJ[r];
        _rtcStored[i] = shard.rtcStoredJ[r];
        _rtcCharged[i] = shard.rtcChargedJ[r];
        _rtcOverflow[i] = shard.rtcOverflowJ[r];
        _rtcLeaked[i] = shard.rtcLeakedJ[r];
        _rtcDischarged[i] = shard.rtcDischargedJ[r];
        _rtcSync[i] = shard.rtcSync[r];
        _rtcDesyncs[i] = shard.rtcDesyncs[r];
        _direct[i] = shard.directBudgetJ[r];
    }
}

void
ShardSlotKernel::scatter(NodeShard &shard, const std::vector<Lane> &lanes,
                         std::size_t begin, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t r = lanes[begin + i].row;
        shard.capStoredJ[r] = _capStored[i];
        shard.capChargedJ[r] = _capCharged[i];
        shard.capOverflowJ[r] = _capOverflow[i];
        shard.capLeakedJ[r] = _capLeaked[i];
        shard.rtcStoredJ[r] = _rtcStored[i];
        shard.rtcChargedJ[r] = _rtcCharged[i];
        shard.rtcOverflowJ[r] = _rtcOverflow[i];
        shard.rtcLeakedJ[r] = _rtcLeaked[i];
        shard.rtcDischargedJ[r] = _rtcDischarged[i];
        shard.rtcSync[r] = _rtcSync[i];
        shard.rtcDesyncs[r] = _rtcDesyncs[i];
        shard.directBudgetJ[r] = _direct[i];
    }
}

namespace {

/**
 * The fused compute pass over the gathered columns.  A free function
 * because GCC only honors `__restrict` on *parameters*: with plain
 * member-vector pointers the vectorizer needs 100+ runtime alias
 * checks, far past --param vect-max-version-for-alias-checks, and
 * gives up.  The restrict qualifiers assert what the callers
 * guarantee — fifteen distinct column allocations (the shard's state
 * columns plus the staged inputs on the dense path, the scratch tiles
 * on the sparse path).  Templated on the FIOS flag
 * because a select on a loop-invariant scalar bool (`fios ? x : 0.0`)
 * is not a vectorizable operation either — `if constexpr` removes it.
 */
template <bool kFios>
void
computeLanes(double *__restrict cap_stored,
             double *__restrict cap_charged,
             double *__restrict cap_overflow,
             double *__restrict cap_leaked,
             double *__restrict rtc_stored,
             double *__restrict rtc_charged,
             double *__restrict rtc_overflow,
             double *__restrict rtc_leaked,
             double *__restrict rtc_discharged,
             double *__restrict rtc_sync,
             double *__restrict rtc_desyncs,
             double *__restrict direct,
             const double *__restrict gap_j,
             const double *__restrict slot_j,
             const double *__restrict gap_sec,
             const ShardSlotKernelParams &p, double slot_sec,
             std::size_t n)
{
    const double cap_gain = p.capGainPerAmbient;
    const double direct_gain = p.directGain;
    const double harvest_eff = p.harvestEfficiency;
    const double cap_capacity = p.capCapacityJ;
    const double cap_leak_w = p.capLeakW;
    const double rtc_priority = p.rtcPriority;
    const double rtc_capacity = p.rtcCapacityJ;
    const double rtc_leak_w = p.rtcLeakW;
    const double rtc_draw_w = p.rtcDrawW;

    // One fused pass: flush, gap window, slot window.  The three
    // phases are sequential *per lane* and touch no other lane, so
    // fusing them preserves the scalar statement order while reading
    // and writing every column exactly once.  All lane state lives in
    // locals between the loads at the top and the stores at the
    // bottom; every guard is a select on the amount being applied
    // (never on the store), so the loop body is a single straight-line
    // block the vectorizer can lay out lane-parallel.
    for (std::size_t i = 0; i < n; ++i) {
        double cs = cap_stored[i];
        double cc = cap_charged[i];
        double co = cap_overflow[i];
        double cl = cap_leaked[i];
        double rs = rtc_stored[i];
        double rc = rtc_charged[i];
        double ro = rtc_overflow[i];
        double rl = rtc_leaked[i];
        double rd = rtc_discharged[i];
        double sync = rtc_sync[i];
        double dz = rtc_desyncs[i];

        // 1. Direct-budget flush: unused FIOS direct income from the
        //    last slot flows into the capacitor through the charge
        //    path — SuperCapacitor::charge in registers.  A zero
        //    charge is the bit-exact no-op of the scalar skipped
        //    branch (header comment), so the guard masks the amount,
        //    not the store.  (The budget column itself is rewritten
        //    by the slot window below.)
        const double budget = direct[i];
        const double fin =
            budget > 0.0 ? (budget / direct_gain) * cap_gain : 0.0;
        const double famt = fin < 0.0 ? 0.0 : fin;
        const double froom = cap_capacity - cs;
        const double facc = froom < famt ? froom : famt;
        cs += facc;
        cc += facc;
        co += famt - facc;

        // 2. Gap window (multiplexed nodes sleep through slots).
        //    Lanes without a gap run with zero duration/income — a
        //    bit-exact no-op (see the header comment).
        const double g = gap_j[i];
        const double gsec = gap_sec[i];
        const double gap_share = g * rtc_priority;
        // rtc.advance(gap, share * harvestEff):  charge ...
        const double grin = gap_share * harvest_eff;
        const double gramt = grin < 0.0 ? 0.0 : grin;
        const double grroom = rtc_capacity - rs;
        const double gracc = grroom < gramt ? grroom : gramt;
        rs += gracc;
        rc += gracc;
        ro += gramt - gracc;
        // ... leak ...
        const double grlk = rtc_leak_w * gsec;
        const double grloss = rs < grlk ? rs : grlk;
        rs -= grloss;
        rl += grloss;
        // ... draw (drain + desync when the cap runs dry).
        const double gneed_raw = rtc_draw_w * gsec;
        const double gneed = gneed_raw < 0.0 ? 0.0 : gneed_raw;
        const bool gok = !(rs < gneed);
        const double gremoved = gok ? gneed : rs;
        rs -= gremoved;
        rd += gremoved;
        const double gwas = sync;
        sync = gok ? gwas : 0.0;
        dz += (!gok && gwas != 0.0) ? 1.0 : 0.0;
        // cap.charge(incomeToCap(gap - share)); cap.leak(gap).
        const double gcin = (g - gap_share) * cap_gain;
        const double gcamt = gcin < 0.0 ? 0.0 : gcin;
        const double gcroom = cap_capacity - cs;
        const double gcacc = gcroom < gcamt ? gcroom : gcamt;
        cs += gcacc;
        cc += gcacc;
        co += gcamt - gcacc;
        const double gclk = cap_leak_w * gsec;
        const double gcloss = cs < gclk ? cs : gclk;
        cs -= gcloss;
        cl += gcloss;

        // 3. Slot window: bank the slot's income (direct channel for
        //    FIOS, charge path otherwise) and keep the RTC alive.
        const double a = slot_j[i];
        const double slot_share = a * rtc_priority;
        const double srin = slot_share * harvest_eff;
        const double sramt = srin < 0.0 ? 0.0 : srin;
        const double srroom = rtc_capacity - rs;
        const double sracc = srroom < sramt ? srroom : sramt;
        rs += sracc;
        rc += sracc;
        ro += sramt - sracc;
        const double srlk = rtc_leak_w * slot_sec;
        const double srloss = rs < srlk ? rs : srlk;
        rs -= srloss;
        rl += srloss;
        const double sneed_raw = rtc_draw_w * slot_sec;
        const double sneed = sneed_raw < 0.0 ? 0.0 : sneed_raw;
        const bool sok = !(rs < sneed);
        const double sremoved = sok ? sneed : rs;
        rs -= sremoved;
        rd += sremoved;
        const double swas = sync;
        sync = sok ? swas : 0.0;
        dz += (!sok && swas != 0.0) ? 1.0 : 0.0;
        // FIOS banks through the direct channel, others through the
        // charge path; the off arm charges zero (bit-exact no-op).
        const double usable = a - slot_share;
        const double scin = kFios ? 0.0 : usable * cap_gain;
        const double scamt = scin < 0.0 ? 0.0 : scin;
        const double scroom = cap_capacity - cs;
        const double scacc = scroom < scamt ? scroom : scamt;
        cs += scacc;
        cc += scacc;
        co += scamt - scacc;
        const double direct_out = kFios ? usable * direct_gain : 0.0;
        const double sclk = cap_leak_w * slot_sec;
        const double scloss = cs < sclk ? cs : sclk;
        cs -= scloss;
        cl += scloss;

        cap_stored[i] = cs;
        cap_charged[i] = cc;
        cap_overflow[i] = co;
        cap_leaked[i] = cl;
        rtc_stored[i] = rs;
        rtc_charged[i] = rc;
        rtc_overflow[i] = ro;
        rtc_leaked[i] = rl;
        rtc_discharged[i] = rd;
        rtc_sync[i] = sync;
        rtc_desyncs[i] = dz;
        direct[i] = direct_out;
    }
}

} // namespace

void
ShardSlotKernel::run(NodeShard &shard, const std::vector<Lane> &lanes,
                     Tick slot_start, Tick slot_length)
{
    NEOFOG_ASSERT(slot_length > 0, "slot length must be positive");
    const std::size_t n = lanes.size();
    if (n == 0)
        return;

    // Stage the per-lane inputs as contiguous columns and detect the
    // common dense shape (lanes covering consecutive rows in order —
    // every non-multiplexed chain, and the fleet/micro benches).
    _gapJ.resize(n);
    _slotJ.resize(n);
    _gapSec.resize(n);
    const std::uint32_t row0 = lanes[0].row;
    bool dense = true;
    for (std::size_t i = 0; i < n; ++i) {
        const Lane &lane = lanes[i];
        NEOFOG_ASSERT(shard.lastAccrual[lane.row] + lane.gapTicks ==
                          slot_start,
                      "kernel lane gap must close exactly at slot start");
        _gapJ[i] = lane.gapJoules;
        _slotJ[i] = lane.slotJoules;
        _gapSec[i] = secondsFromTicks(lane.gapTicks);
        dense = dense && lane.row == row0 + i;
    }

    const auto compute = _p.fios ? computeLanes<true> : computeLanes<false>;
    const double slot_sec = secondsFromTicks(slot_length);
    if (dense) {
        // In-place fast path: the shard's state columns ARE the kernel
        // columns, so the banking pass streams them once with no
        // gather/scatter round trip.
        compute(&shard.capStoredJ[row0], &shard.capChargedJ[row0],
                &shard.capOverflowJ[row0], &shard.capLeakedJ[row0],
                &shard.rtcStoredJ[row0], &shard.rtcChargedJ[row0],
                &shard.rtcOverflowJ[row0], &shard.rtcLeakedJ[row0],
                &shard.rtcDischargedJ[row0], &shard.rtcSync[row0],
                &shard.rtcDesyncs[row0], &shard.directBudgetJ[row0],
                _gapJ.data(), _slotJ.data(), _gapSec.data(), _p,
                slot_sec, n);
    } else {
        // Sparse lanes (multiplexed chains waking a row subset):
        // gather the touched rows' cells into tile-sized scratch
        // columns, run the same compute pass, and scatter back.  The
        // cells are 8-byte doubles out of contiguous columns, so even
        // this path moves only what the arithmetic needs.
        const std::size_t width = n < kTileLanes ? n : kTileLanes;
        _capStored.resize(width);
        _capCharged.resize(width);
        _capOverflow.resize(width);
        _capLeaked.resize(width);
        _rtcStored.resize(width);
        _rtcCharged.resize(width);
        _rtcOverflow.resize(width);
        _rtcLeaked.resize(width);
        _rtcDischarged.resize(width);
        _rtcSync.resize(width);
        _rtcDesyncs.resize(width);
        _direct.resize(width);
        for (std::size_t begin = 0; begin < n; begin += kTileLanes) {
            const std::size_t count =
                n - begin < kTileLanes ? n - begin : kTileLanes;
            gather(shard, lanes, begin, count);
            compute(_capStored.data(), _capCharged.data(),
                    _capOverflow.data(), _capLeaked.data(),
                    _rtcStored.data(), _rtcCharged.data(),
                    _rtcOverflow.data(), _rtcLeaked.data(),
                    _rtcDischarged.data(), _rtcSync.data(),
                    _rtcDesyncs.data(), _direct.data(),
                    _gapJ.data() + begin, _slotJ.data() + begin,
                    _gapSec.data() + begin, _p, slot_sec, count);
            scatter(shard, lanes, begin, count);
        }
    }

    // Slot bookkeeping for every lane: the non-FP resets, the income
    // memo, and the harvested totals.  harvestedTotal accumulates gap
    // then slot income as two separate adds, in the scalar statement
    // order (the total never feeds back into the banking arithmetic,
    // so deferring it past the compute pass cannot change any bit).
    const Tick slot_end = slot_start + slot_length;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t r = lanes[i].row;
        Energy &harvested = shard.stats[r].harvestedTotal;
        harvested += Energy::fromJoules(_gapJ[i]);
        harvested += Energy::fromJoules(_slotJ[i]);
        shard.lastIncome[r] = Power::fromWatts(_slotJ[i] / slot_sec);
        shard.slotCostsValid[r] = 0;
        shard.lastAccrual[r] = slot_end;
        shard.slotStart[r] = slot_start;
        shard.slotLength[r] = slot_length;
        shard.slotTimeUsed[r] = 0;
        shard.awake[r] = 0;
        shard.rfInitializedThisSlot[r] = 0;
    }
}

} // namespace neofog
