/**
 * @file
 * Vectorized slot-boundary kernel over a NodeShard.
 *
 * Node::beginSlotWithIncome advances one node's capacitor charge, RTC
 * and income-accrual state at a slot boundary.  For a chain built from
 * one node template (every ChainEngine is), the banking arithmetic is
 * the same straight-line float program per node, differing only in the
 * per-node state and income — a textbook lane-per-node SIMD shape.
 * ShardSlotKernel runs that program for a whole chain at once,
 * directly on the NodeShard's energy-state columns (node_soa.hh keeps
 * the capacitor / RTC / direct-budget state as contiguous double
 * columns, shared bit for bit with the scalar CapacitorView/RtcView
 * path):
 *
 *   - dense lanes (consecutive rows in order — every non-multiplexed
 *     chain): one fused column loop advances the shard columns *in
 *     place*, streaming each cell exactly once with no gather/scatter;
 *   - sparse lanes (multiplexed chains waking a row subset): the
 *     touched cells are gathered into tile-sized scratch columns
 *     (kTileLanes — small enough to live in L1/L2), run through the
 *     same compute pass, and scattered back.
 *
 * The compute loop replicates the scalar banking statements *in the
 * same per-lane order*; every `std::min` / clamp / branch becomes a
 * per-lane select, so each node's own floating-point operation order
 * is unchanged and the auto-vectorizer is free to run independent
 * lanes side by side — vectorizing *across* nodes never reassociates
 * *within* a node, which is what keeps the result bit-identical to
 * the scalar path (DESIGN.md, "Vectorization & memory placement").
 *
 * The kernel covers the banking half of beginSlotWithIncome (direct
 * flush, gap window, slot window, income/slot scalar resets); the
 * non-arithmetic rollover half (pending-age ring shift, peripheral
 * power-failure resets) stays scalar in Node::rolloverSlotState, which
 * the ChainEngine calls per node after the kernel.  Rows are mutually
 * independent, so splitting the two halves across nodes is order-safe.
 *
 * The scalar fallback is Node::beginSlotWithIncome itself, selected by
 * the host-local ScenarioConfig::simdKernel knob (or a NEOFOG_SIMD=OFF
 * build, which compiles the kernel out of the dispatch entirely).
 */

#ifndef NEOFOG_NODE_SHARD_KERNEL_HH
#define NEOFOG_NODE_SHARD_KERNEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "energy/capacitor.hh"
#include "energy/frontend.hh"
#include "hw/rtc.hh"
#include "node/node_soa.hh"
#include "sim/types.hh"

namespace neofog {

/**
 * Chain-uniform constants of the slot banking program, hoisted out of
 * the per-lane loops.  All of these are pure functions of the node
 * template's configuration (every node of a chain shares them; only
 * per-node state and income vary lane to lane).
 */
struct ShardSlotKernelParams
{
    double capGainPerAmbient = 0; ///< FrontEnd::incomeToCap factor
    double directGain = 0;        ///< incomeToLoadDirect factor (FIOS)
    double harvestEfficiency = 0; ///< RTC income pre-scale
    double capCapacityJ = 0;      ///< main cap capacity
    double capLeakW = 0;          ///< main cap self-leakage
    double rtcPriority = 0;       ///< RTC charge-priority share
    double rtcCapacityJ = 0;      ///< RTC cap capacity
    double rtcLeakW = 0;          ///< RTC cap self-leakage
    double rtcDrawW = 0;          ///< continuous RTC draw
    bool fios = false;            ///< direct channel present

    /** Hoist the constants from one node's component configs. */
    static ShardSlotKernelParams fromConfigs(
        const SuperCapacitor::Config &cap, const Rtc::Config &rtc,
        const FrontEnd::Config &frontend, bool fios);
};

/**
 * Batch slot-boundary banking over a shard's rows (lane-per-node).
 * One instance per ChainEngine; the scratch columns persist across
 * slots so the hot loop never allocates.
 */
class ShardSlotKernel
{
  public:
    /** One lane of input: the row and its income integrals. */
    struct Lane
    {
        std::uint32_t row = 0;
        Tick gapTicks = 0;     ///< lastAccrual → slot_start (0 = none)
        double gapJoules = 0;  ///< ambient income over the gap window
        double slotJoules = 0; ///< ambient income over the slot window
    };

    explicit ShardSlotKernel(const ShardSlotKernelParams &params);

    /**
     * Advance every lane of @p lanes to @p slot_start, bit-identically
     * to calling Node::beginSlotWithIncome on each row (minus the
     * rollover half — see Node::rolloverSlotState).  Lanes may cover
     * any subset of the shard's rows; each row at most once per call.
     */
    void run(NodeShard &shard, const std::vector<Lane> &lanes,
             Tick slot_start, Tick slot_length);

    /**
     * Lanes per tile of the sparse-lane fallback.  12 scratch columns
     * x 256 lanes x 8 B = 24 KiB — small enough that a tile's
     * gather/compute/scatter all hit cache, large enough that loop
     * overhead amortizes.  (Dense lanes compute in place and never
     * tile.)
     */
    static constexpr std::size_t kTileLanes = 256;

  private:
    void gather(NodeShard &shard, const std::vector<Lane> &lanes,
                std::size_t begin, std::size_t count);
    void scatter(NodeShard &shard, const std::vector<Lane> &lanes,
                 std::size_t begin, std::size_t count);

    ShardSlotKernelParams _p;

    // Scratch state columns for the sparse-lane fallback, one entry
    // per lane of the current tile (dense lanes compute in place on
    // the shard columns and never touch these).
    std::vector<double> _capStored;
    std::vector<double> _capCharged;
    std::vector<double> _capOverflow;
    std::vector<double> _capLeaked;
    std::vector<double> _rtcStored;
    std::vector<double> _rtcCharged;
    std::vector<double> _rtcOverflow;
    std::vector<double> _rtcLeaked;
    std::vector<double> _rtcDischarged;
    std::vector<double> _rtcSync;    ///< 1.0 synchronized, 0.0 not
    std::vector<double> _rtcDesyncs; ///< desync count (exact integer)
    std::vector<double> _direct;     ///< FIOS direct budget

    // Per-lane input columns (full lane count, both paths).
    std::vector<double> _gapJ;   ///< per-lane gap income
    std::vector<double> _slotJ;  ///< per-lane slot income
    std::vector<double> _gapSec; ///< per-lane gap duration
};

} // namespace neofog

#endif // NEOFOG_NODE_SHARD_KERNEL_HH
