/**
 * @file
 * Structure-of-arrays storage for per-node mutable state.
 *
 * A NodeShard holds the state of every node of one chain in parallel
 * contiguous arrays indexed by row.  The Node class is a thin facade
 * over one row (see node.hh): all of its slot-mutable state — the
 * capacitor, RTC, sensor, NV buffer, radio, slot-lifecycle scalars,
 * memoized per-slot costs, the pending-package age queue, and the
 * statistics block — lives here, so a chain's slot step walks flat
 * arrays instead of chasing one heap object graph per node.  This is
 * what lets the fleet-scale path (bench/fleet_bench) stream a million
 * nodes at cache speed.
 *
 * Layout (one row per node, arrays grouped by access pattern):
 *
 *     capStoredJ[] capChargedJ[] ... rtcSync[]         energy columns
 *     sensor[]  buffer[]  rf[]                         component rows
 *     lastAccrual[] slotStart[] slotLength[] ...       slot scalars
 *     slotCostsValid[] slotTaskCost[] slotTaskTime[]   per-slot memos
 *     pendingPackages[] pendingOffset[] pendingDepth[] queue headers
 *     pendingAge[]  (flat, rows at [offset, offset+depth))
 *     stats[]                                          cold counters
 *
 * The capacitor / RTC / direct-budget state that the slot-boundary
 * banking touches every slot is stored as *plain double columns*
 * (joules), not as embedded SuperCapacitor/Rtc objects: the batched
 * slot kernel (ShardSlotKernel) advances those columns in place with
 * SIMD lanes, and the scalar path reads and writes the very same
 * cells through CapacitorView/RtcView facades — one authoritative
 * copy, no gather/scatter of fat objects on either path.  The RTC
 * sync flag and desync count are doubles too (1.0/0.0 and an exact
 * small integer) so every kernel column is homogeneous.
 *
 * Rows are append-only: addRow() returns the new row index, and
 * reserveRows() pre-sizes every array so construction of a whole chain
 * performs one allocation per array instead of reallocating per node.
 * The pending-package age ring is flattened into one shared array and
 * sized at construction from the row's freshness deadline, so the slot
 * loop never grows it (the pre-refactor Node lazily allocated it in
 * the first beginSlot).
 *
 * A shard is single-threaded by construction: it is owned by one
 * ChainEngine (or by one standalone Node) and only that owner's thread
 * touches it, preserving the chain-parallel determinism model.
 */

#ifndef NEOFOG_NODE_NODE_SOA_HH
#define NEOFOG_NODE_NODE_SOA_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "energy/capacitor.hh"
#include "hw/nv_buffer.hh"
#include "hw/rf.hh"
#include "hw/rtc.hh"
#include "hw/sensor.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/** Cumulative per-node statistics. */
struct NodeStats
{
    Counter wakeups;          ///< slots the node woke
    Counter depletionFailures; ///< slots the node could not wake
    Counter packagesSampled;  ///< raw packages captured
    Counter packagesToCloud;  ///< raw packages transmitted (cloud work)
    Counter packagesInFog;    ///< packages fog-processed then shipped
    Counter tasksExecuted;    ///< fog tasks run (own + received)
    Counter incidentalTasks;  ///< reduced-fidelity summaries run
    Counter tasksReceived;    ///< tasks accepted from neighbours
    Counter tasksShipped;     ///< tasks sent to neighbours
    Counter txFailures;       ///< packets lost after all retries
    Counter samplesDiscarded; ///< buffer data dropped for lack of energy
    Counter rtcResyncs;       ///< RTC resynchronizations paid
    TimeSeries storedEnergyMj; ///< capacitor level over time (mJ)

    Energy harvestedTotal;    ///< ambient energy seen
    Energy spentCompute;
    Energy spentTx;
    Energy spentRx;
    Energy spentSample;
    Energy spentWake;

    /** Snapshot support (see src/snapshot/): every field above. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("wakeups", wakeups);
        ar.io("depletion_failures", depletionFailures);
        ar.io("packages_sampled", packagesSampled);
        ar.io("packages_to_cloud", packagesToCloud);
        ar.io("packages_in_fog", packagesInFog);
        ar.io("tasks_executed", tasksExecuted);
        ar.io("incidental_tasks", incidentalTasks);
        ar.io("tasks_received", tasksReceived);
        ar.io("tasks_shipped", tasksShipped);
        ar.io("tx_failures", txFailures);
        ar.io("samples_discarded", samplesDiscarded);
        ar.io("rtc_resyncs", rtcResyncs);
        ar.io("stored_energy_mj", storedEnergyMj);
        ar.io("harvested_total", harvestedTotal);
        ar.io("spent_compute", spentCompute);
        ar.io("spent_tx", spentTx);
        ar.io("spent_rx", spentRx);
        ar.io("spent_sample", spentSample);
        ar.io("spent_wake", spentWake);
    }
};

/**
 * Contiguous per-node state for one chain, one row per node.
 */
class NodeShard
{
  public:
    NodeShard() = default;
    NodeShard(const NodeShard &) = delete;
    NodeShard &operator=(const NodeShard &) = delete;

    /**
     * Pre-size every array for @p row_count rows whose pending queues
     * are @p pending_depth deep, so addRow() never reallocates.
     */
    void reserveRows(std::size_t row_count, std::size_t pending_depth);

    /**
     * Append one row, default-initializing its slot scalars.
     * @param cap Main capacitor configuration.
     * @param rtc RTC configuration (dedicated cap inside).
     * @param sensor Sensor part attached to this node.
     * @param buffer NV buffer configuration.
     * @param pending_depth Freshness-deadline depth of the pending
     *        queue (>= 1; the flat pendingAge window for this row).
     * @param rf The node's radio (owned by the shard from now on).
     * @return The new row index.
     */
    std::uint32_t addRow(const SuperCapacitor::Config &cap,
                         const Rtc::Config &rtc,
                         const SensorSpec &sensor,
                         const NvBuffer::Config &buffer,
                         std::size_t pending_depth,
                         std::unique_ptr<RfModule> rf);

    /** Rows currently in the shard. */
    std::size_t rows() const { return stats.size(); }

    /**
     * Bytes resident in the shard's arrays (capacity-based, including
     * the per-row radio objects and the stats series points).  The
     * fleet bench divides this by rows() for its bytes_per_node key.
     */
    std::size_t residentBytes() const;

    // ---- energy-state columns (joules; see the header comment) ----
    std::vector<double> capStoredJ;
    std::vector<double> capChargedJ;
    std::vector<double> capOverflowJ;
    std::vector<double> capLeakedJ;
    std::vector<double> capDischargedJ;
    std::vector<double> rtcStoredJ;
    std::vector<double> rtcChargedJ;
    std::vector<double> rtcOverflowJ;
    std::vector<double> rtcLeakedJ;
    std::vector<double> rtcDischargedJ;
    std::vector<double> rtcSync;    ///< 1.0 synchronized, 0.0 not
    std::vector<double> rtcDesyncs; ///< desync count (exact integer)
    std::vector<double> directBudgetJ; ///< FIOS direct-channel budget

    // ---- component rows --------------------------------------------
    std::vector<Sensor> sensor;
    std::vector<NvBuffer> buffer;
    std::vector<std::unique_ptr<RfModule>> rf;

    // ---- slot-lifecycle scalars ------------------------------------
    std::vector<Tick> lastAccrual;
    std::vector<Tick> slotStart;
    std::vector<Tick> slotLength;
    std::vector<Tick> slotTimeUsed;
    std::vector<Power> lastIncome;
    std::vector<std::uint8_t> awake;
    std::vector<std::uint8_t> rfInitializedThisSlot;

    // ---- per-slot cost memos (mutable semantics: refreshed from
    //      const facade methods, see Node::refreshSlotCosts) ---------
    std::vector<std::uint8_t> slotCostsValid;
    std::vector<Energy> slotTaskCost;
    std::vector<Tick> slotTaskTime;

    // ---- pending-package queues ------------------------------------
    std::vector<int> pendingPackages;
    /** Row's window into pendingAge: [offset, offset + depth). */
    std::vector<std::uint32_t> pendingOffset;
    std::vector<std::uint32_t> pendingDepth;
    /** Flat age rings, index 0 of a window = sampled this slot. */
    std::vector<int> pendingAge;

    // ---- cold counters ---------------------------------------------
    std::vector<NodeStats> stats;
};

} // namespace neofog

#endif // NEOFOG_NODE_NODE_SOA_HH
