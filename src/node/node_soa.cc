#include "node/node_soa.hh"

#include "sim/logging.hh"

namespace neofog {

void
NodeShard::reserveRows(std::size_t row_count, std::size_t pending_depth)
{
    capStoredJ.reserve(row_count);
    capChargedJ.reserve(row_count);
    capOverflowJ.reserve(row_count);
    capLeakedJ.reserve(row_count);
    capDischargedJ.reserve(row_count);
    rtcStoredJ.reserve(row_count);
    rtcChargedJ.reserve(row_count);
    rtcOverflowJ.reserve(row_count);
    rtcLeakedJ.reserve(row_count);
    rtcDischargedJ.reserve(row_count);
    rtcSync.reserve(row_count);
    rtcDesyncs.reserve(row_count);
    directBudgetJ.reserve(row_count);
    sensor.reserve(row_count);
    buffer.reserve(row_count);
    rf.reserve(row_count);
    lastAccrual.reserve(row_count);
    slotStart.reserve(row_count);
    slotLength.reserve(row_count);
    slotTimeUsed.reserve(row_count);
    lastIncome.reserve(row_count);
    awake.reserve(row_count);
    rfInitializedThisSlot.reserve(row_count);
    slotCostsValid.reserve(row_count);
    slotTaskCost.reserve(row_count);
    slotTaskTime.reserve(row_count);
    pendingPackages.reserve(row_count);
    pendingOffset.reserve(row_count);
    pendingDepth.reserve(row_count);
    pendingAge.reserve(row_count * pending_depth);
    stats.reserve(row_count);
}

std::uint32_t
NodeShard::addRow(const SuperCapacitor::Config &cap_cfg,
                  const Rtc::Config &rtc_cfg, const SensorSpec &spec,
                  const NvBuffer::Config &buffer_cfg,
                  std::size_t pending_depth,
                  std::unique_ptr<RfModule> radio)
{
    NEOFOG_ASSERT(pending_depth >= 1, "pending queue needs depth >= 1");
    NEOFOG_ASSERT(radio != nullptr, "node row needs a radio");
    const auto row = static_cast<std::uint32_t>(rows());
    // Construct throwaway parts to reuse their config validation and
    // initial-charge semantics, then seed the columns from them.
    const SuperCapacitor seed_cap(cap_cfg);
    const Rtc seed_rtc(rtc_cfg);
    capStoredJ.push_back(seed_cap.stored().joules());
    capChargedJ.push_back(0.0);
    capOverflowJ.push_back(0.0);
    capLeakedJ.push_back(0.0);
    capDischargedJ.push_back(0.0);
    rtcStoredJ.push_back(seed_rtc.cap().stored().joules());
    rtcChargedJ.push_back(0.0);
    rtcOverflowJ.push_back(0.0);
    rtcLeakedJ.push_back(0.0);
    rtcDischargedJ.push_back(0.0);
    rtcSync.push_back(1.0);
    rtcDesyncs.push_back(0.0);
    directBudgetJ.push_back(0.0);
    sensor.emplace_back(spec);
    buffer.emplace_back(buffer_cfg);
    rf.push_back(std::move(radio));
    lastAccrual.push_back(0);
    slotStart.push_back(0);
    slotLength.push_back(0);
    slotTimeUsed.push_back(0);
    lastIncome.push_back(Power::zero());
    awake.push_back(0);
    rfInitializedThisSlot.push_back(0);
    slotCostsValid.push_back(0);
    slotTaskCost.push_back(Energy::zero());
    slotTaskTime.push_back(0);
    pendingPackages.push_back(0);
    pendingOffset.push_back(
        static_cast<std::uint32_t>(pendingAge.size()));
    pendingDepth.push_back(static_cast<std::uint32_t>(pending_depth));
    pendingAge.insert(pendingAge.end(), pending_depth, 0);
    stats.emplace_back();
    return row;
}

std::size_t
NodeShard::residentBytes() const
{
    std::size_t bytes = sizeof(NodeShard);
    bytes += capStoredJ.capacity() * sizeof(double);
    bytes += capChargedJ.capacity() * sizeof(double);
    bytes += capOverflowJ.capacity() * sizeof(double);
    bytes += capLeakedJ.capacity() * sizeof(double);
    bytes += capDischargedJ.capacity() * sizeof(double);
    bytes += rtcStoredJ.capacity() * sizeof(double);
    bytes += rtcChargedJ.capacity() * sizeof(double);
    bytes += rtcOverflowJ.capacity() * sizeof(double);
    bytes += rtcLeakedJ.capacity() * sizeof(double);
    bytes += rtcDischargedJ.capacity() * sizeof(double);
    bytes += rtcSync.capacity() * sizeof(double);
    bytes += rtcDesyncs.capacity() * sizeof(double);
    bytes += directBudgetJ.capacity() * sizeof(double);
    bytes += sensor.capacity() * sizeof(Sensor);
    bytes += buffer.capacity() * sizeof(NvBuffer);
    bytes += rf.capacity() * sizeof(std::unique_ptr<RfModule>);
    for (const auto &radio : rf) {
        // The two concrete radios are small fixed-size objects; the
        // NVRF is the larger of the pair, so count that conservatively.
        bytes += radio->retainsState() ? sizeof(NvRfController)
                                       : sizeof(SoftwareRf);
    }
    bytes += lastAccrual.capacity() * sizeof(Tick);
    bytes += slotStart.capacity() * sizeof(Tick);
    bytes += slotLength.capacity() * sizeof(Tick);
    bytes += slotTimeUsed.capacity() * sizeof(Tick);
    bytes += lastIncome.capacity() * sizeof(Power);
    bytes += awake.capacity();
    bytes += rfInitializedThisSlot.capacity();
    bytes += slotCostsValid.capacity();
    bytes += slotTaskCost.capacity() * sizeof(Energy);
    bytes += slotTaskTime.capacity() * sizeof(Tick);
    bytes += pendingPackages.capacity() * sizeof(int);
    bytes += pendingOffset.capacity() * sizeof(std::uint32_t);
    bytes += pendingDepth.capacity() * sizeof(std::uint32_t);
    bytes += pendingAge.capacity() * sizeof(int);
    bytes += stats.capacity() * sizeof(NodeStats);
    for (const auto &st : stats)
        bytes += st.storedEnergyMj.points().capacity() *
                 sizeof(TimeSeries::Point);
    return bytes;
}

} // namespace neofog
