#include "node/intermittent.hh"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace neofog {

namespace {

/**
 * One intermittent-execution run: the per-run constants plus the
 * mutable machine state.  stepOnce() is the single authoritative
 * per-step update — the stepped reference drives it for every step,
 * the fast-forward path only skips step spans it can prove would pass
 * through stepOnce() with nothing eventful happening (no threshold
 * crossing, no wake, no brown-out, no capacitor rail clamping), using
 * step-anchored closed forms for the state after the jump.
 */
class StepMachine
{
  public:
    StepMachine(const Processor &cpu, const PowerTrace &trace,
                const IntermittentExecution::Config &cfg)
        : _cpu(cpu), _trace(trace), _cfg(cfg), _frontend(cfg.frontend),
          _fios(_frontend.kind() == FrontEndKind::Fios), _cap(cfg.cap)
    {
        // Instructions executable per step while powered, and the
        // energy they need at the load.
        const double inst_per_second = cpu.config().frequencyHz /
                                       cpu.config().cyclesPerInstruction;
        _instPerStep = static_cast<std::uint64_t>(
            inst_per_second * secondsFromTicks(cfg.step));
        _loadPerStep = cpu.config().activePower * cfg.step;
    }

    /** The exact per-step update (the reference semantics). */
    void stepOnce(Tick t, Tick horizon);

    /**
     * Jump up to @p avail whole steps starting at @p t, all inside
     * one constant-income trace segment.
     * @return Steps consumed (0 = caller must run stepOnce instead).
     */
    std::int64_t tryFastForward(Tick t, std::int64_t avail);

    /** Close out and return the result. */
    IntermittentExecution::Result finish();

  private:
    /** Largest n in [1, avail] with steady(k) for all k <= n. */
    template <typename Pred>
    static std::int64_t maxSteady(Pred steady, std::int64_t avail);

    /** Jump n steps: advance the capacitor to the anchored value. */
    void commitStored(double s_n);

    const Processor &_cpu;
    const PowerTrace &_trace;
    const IntermittentExecution::Config &_cfg;
    FrontEnd _frontend;
    bool _fios;
    SuperCapacitor _cap;
    IntermittentExecution::Result _result;

    std::uint64_t _instPerStep = 0;
    Energy _loadPerStep;

    bool _powered = false;          ///< executing (past restore/restart)
    Tick _pendingOverhead = 0;      ///< wake overhead still to serve
    std::uint64_t _uncommitted = 0; ///< VP progress since last segment
};

void
StepMachine::stepOnce(Tick t, Tick horizon)
{
    // Harvest this step.  A FIOS node that is executing feeds the
    // load straight from the harvester (the direct channel) and
    // only banks the surplus; otherwise all income takes the
    // charge path.
    const Tick step_end = std::min<Tick>(t + _cfg.step, horizon);
    const Energy ambient = _trace.integrate(t, step_end);
    _result.harvested += ambient;
    Energy direct_available = Energy::zero();
    if (_fios && _powered && _pendingOverhead <= 0) {
        direct_available = _frontend.incomeToLoadDirect(ambient);
        const Energy direct_used =
            std::min(direct_available, _loadPerStep);
        // Bank the income fraction the direct channel didn't use.
        const double used_frac = direct_available.joules() > 0.0
            ? direct_used.joules() / direct_available.joules()
            : 0.0;
        _cap.charge(_frontend.incomeToCap(ambient * (1.0 - used_frac)));
        direct_available = direct_used;
    } else {
        _cap.charge(_frontend.incomeToCap(ambient));
    }
    _cap.leak(step_end - t);

    if (!_powered) {
        if (_cap.stored() >= _cfg.onThreshold) {
            // Power-on: pay the wake overhead (restore for NVP,
            // restart + state reload for VP).
            const Energy wake =
                _frontend.capCostForLoad(_cpu.wakeEnergy());
            if (_cap.tryDischarge(wake)) {
                _result.spent += wake;
                _pendingOverhead = _cpu.wakeLatency();
                _powered = true;
            }
        }
        return;
    }

    // Serve wake/backup overhead time before executing.
    if (_pendingOverhead > 0) {
        const Tick served = std::min<Tick>(_pendingOverhead, _cfg.step);
        _pendingOverhead -= served;
        _result.overheadTime += served;
        if (served >= _cfg.step)
            return;
    }

    // Execute for the remainder of the step if energy allows:
    // direct channel first, the capacitor for the rest.
    const Energy from_cap = _frontend.capCostForLoad(
        (_loadPerStep - direct_available).clampedNonNegative());
    if (_cap.tryDischarge(from_cap)) {
        _result.spent += from_cap + direct_available;
        _result.activeTime += _cfg.step;
        if (_cpu.isNonvolatile()) {
            _result.instructionsCompleted += _instPerStep;
        } else {
            _uncommitted += _instPerStep;
            // Commit whole segments.
            while (_uncommitted >= _cfg.taskSegmentInstructions) {
                _uncommitted -= _cfg.taskSegmentInstructions;
                _result.instructionsCompleted +=
                    _cfg.taskSegmentInstructions;
            }
        }
    }

    // Brown-out check.
    if (_cap.stored() < _cfg.offThreshold) {
        ++_result.powerCycles;
        if (_cpu.isNonvolatile()) {
            // Distributed NV backup: small energy, state kept.
            const Energy backup =
                _frontend.capCostForLoad(_cpu.backupEnergy());
            _result.spent += _cap.drain(backup);
            _result.overheadTime += _cpu.backupLatency();
        } else {
            // All uncommitted work is lost.
            _result.instructionsWasted += _uncommitted;
            _uncommitted = 0;
        }
        _powered = false;
    }
}

template <typename Pred>
std::int64_t
StepMachine::maxSteady(Pred steady, std::int64_t avail)
{
    if (avail < 1 || !steady(1))
        return 0;
    // Every steady() predicate is monotone in k over the anchored
    // linear state (given steady(1) holds, see callers), so the
    // steady prefix is contiguous and binary search finds its end.
    std::int64_t lo = 1;
    std::int64_t hi = avail;
    while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo + 1) / 2;
        if (steady(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

void
StepMachine::commitStored(double s_n)
{
    // The anchored value can carry sub-ulp dust past the rails the
    // steadiness guards proved it stays within; clamp that dust only.
    const double cap_j = _cfg.cap.capacity.joules();
    _cap.setStored(
        Energy::fromJoules(std::clamp(s_n, 0.0, cap_j)));
}

std::int64_t
StepMachine::tryFastForward(Tick t, std::int64_t avail)
{
    // Per-step constants inside this constant-income segment.  The
    // values match what stepOnce() would compute for each step: the
    // trace is flat across [t, t + avail*step), so the per-step
    // integral (and every quantity derived from it) is one double.
    const Energy ambient = _trace.integrate(t, t + _cfg.step);
    const double cap_j = _cfg.cap.capacity.joules();
    const double leak_j = (_cfg.cap.leakage * _cfg.step).joules();
    const double s0 = _cap.stored().joules();

    // Anchored state: a(k) = stored after k whole steps, assuming no
    // clamp engages and the same branch repeats — exactly what the
    // steadiness predicates verify before a jump is allowed.
    const auto anchored = [s0](double delta, std::int64_t k) {
        return s0 + static_cast<double>(k) * delta;
    };

    if (!_powered) {
        // Dead charging: steps that provably end below the turn-on
        // threshold with neither capacitor rail clamping.
        const double charge_j =
            _frontend.incomeToCap(ambient).joules();
        const double delta = charge_j - leak_j;
        const double on_j = _cfg.onThreshold.joules();
        const auto steady = [&](std::int64_t k) {
            const double pre_leak = anchored(delta, k - 1) + charge_j;
            return anchored(delta, k) < on_j && pre_leak <= cap_j &&
                   pre_leak >= leak_j;
        };
        const std::int64_t n = maxSteady(steady, avail);
        if (n <= 0)
            return 0;
        commitStored(anchored(delta, n));
        _result.harvested += ambient * static_cast<double>(n);
        return n;
    }

    if (_pendingOverhead >= _cfg.step) {
        // Whole-step overhead service: income banks, time burns.
        const double charge_j =
            _frontend.incomeToCap(ambient).joules();
        const double delta = charge_j - leak_j;
        const std::int64_t whole_overhead = _pendingOverhead / _cfg.step;
        const auto steady = [&](std::int64_t k) {
            const double pre_leak = anchored(delta, k - 1) + charge_j;
            return pre_leak <= cap_j && pre_leak >= leak_j;
        };
        const std::int64_t n =
            maxSteady(steady, std::min(avail, whole_overhead));
        if (n <= 0)
            return 0;
        commitStored(anchored(delta, n));
        _result.harvested += ambient * static_cast<double>(n);
        _result.overheadTime += n * _cfg.step;
        _pendingOverhead -= n * _cfg.step;
        return n;
    }
    if (_pendingOverhead > 0)
        return 0; // mixed overhead/execute step: run it exactly

    // Steady execution: every step charges (post direct-channel
    // split), leaks, funds the load from the capacitor, and stays
    // above the brown-out threshold.
    Energy direct_used = Energy::zero();
    double charge_j = 0.0;
    if (_fios) {
        const Energy direct_available =
            _frontend.incomeToLoadDirect(ambient);
        direct_used = std::min(direct_available, _loadPerStep);
        const double used_frac = direct_available.joules() > 0.0
            ? direct_used.joules() / direct_available.joules()
            : 0.0;
        charge_j =
            _frontend.incomeToCap(ambient * (1.0 - used_frac)).joules();
    } else {
        charge_j = _frontend.incomeToCap(ambient).joules();
    }
    const Energy from_cap = _frontend.capCostForLoad(
        (_loadPerStep - direct_used).clampedNonNegative());
    const double f = from_cap.joules();
    const double delta = charge_j - leak_j - f;
    const double off_j = _cfg.offThreshold.joules();
    const auto steady = [&](std::int64_t k) {
        const double before = anchored(delta, k - 1);
        const double pre_leak = before + charge_j;
        const double pre_discharge = before + (charge_j - leak_j);
        return pre_discharge >= f && anchored(delta, k) >= off_j &&
               pre_leak <= cap_j && pre_leak >= leak_j;
    };
    const std::int64_t n = maxSteady(steady, avail);
    if (n <= 0)
        return 0;
    commitStored(anchored(delta, n));
    _result.harvested += ambient * static_cast<double>(n);
    _result.spent += (from_cap + direct_used) * static_cast<double>(n);
    _result.activeTime += n * _cfg.step;
    const std::uint64_t inst =
        _instPerStep * static_cast<std::uint64_t>(n);
    if (_cpu.isNonvolatile()) {
        _result.instructionsCompleted += inst;
    } else {
        // Same whole-segment commits stepOnce() would make, folded.
        _uncommitted += inst;
        const std::uint64_t seg = _cfg.taskSegmentInstructions;
        _result.instructionsCompleted += (_uncommitted / seg) * seg;
        _uncommitted %= seg;
    }
    return n;
}

IntermittentExecution::Result
StepMachine::finish()
{
    // Work still uncommitted at the horizon never completed.
    _result.instructionsWasted += _uncommitted;
    return _result;
}

} // namespace

IntermittentExecution::Result
IntermittentExecution::run(const Processor &cpu, const PowerTrace &trace,
                           Tick horizon, const Config &cfg)
{
    if (cfg.offThreshold >= cfg.onThreshold)
        fatal("intermittent execution thresholds reversed");
    if (cfg.step <= 0)
        fatal("intermittent execution step must be positive");

    StepMachine machine(cpu, trace, cfg);

    if (!cfg.fastForward) {
        for (Tick t = 0; t < horizon; t += cfg.step)
            machine.stepOnce(t, horizon);
        return machine.finish();
    }

    Tick t = 0;
    while (t < horizon) {
        if (t + cfg.step <= horizon) {
            // Whole steps fully inside the current constant-income
            // trace segment are fast-forward candidates; everything
            // else (segment straddles, the final partial step) runs
            // the exact per-step update.
            const Tick seg_end =
                std::min<Tick>(trace.constantLevelUntil(t), horizon);
            const std::int64_t avail =
                seg_end > t ? (seg_end - t) / cfg.step : 0;
            if (avail >= 2) {
                const std::int64_t n =
                    machine.tryFastForward(t, avail);
                if (n > 0) {
                    t += n * cfg.step;
                    continue;
                }
            }
        }
        machine.stepOnce(t, horizon);
        t += cfg.step;
    }
    return machine.finish();
}

IntermittentExecution::Result
IntermittentExecution::run(const Processor &cpu, const PowerTrace &trace,
                           Tick horizon)
{
    return run(cpu, trace, horizon, Config{});
}

std::vector<IntermittentExecution::Result>
IntermittentExecution::runBatch(
    const Processor &cpu, const std::vector<const PowerTrace *> &traces,
    Tick horizon, const Config &cfg)
{
    return runBatch(cpu, traces, horizon, cfg, nullptr);
}

std::vector<IntermittentExecution::Result>
IntermittentExecution::runBatch(
    const Processor &cpu, const std::vector<const PowerTrace *> &traces,
    Tick horizon, const Config &cfg, ThreadPool *pool)
{
    if (cfg.offThreshold >= cfg.onThreshold)
        fatal("intermittent execution thresholds reversed");
    if (cfg.step <= 0)
        fatal("intermittent execution step must be positive");

    for (const PowerTrace *trace : traces)
        if (!trace)
            fatal("runBatch needs a trace per machine");

    // The hoisted segment walk: enumerate the shared constant-level
    // boundaries once, by querying the first trace at each boundary in
    // turn.  The list is tiny (one entry per trace segment inside the
    // horizon) and stays cache-hot across the whole batch; each
    // machine then answers constantLevelUntil() with a monotonically
    // advancing cursor instead of a per-query segment search.
    //
    // A cursor answer is exact — bit-identical to asking the trace —
    // because constantLevelUntil(t) is the same value for every t
    // inside one constant-level segment, and the walk's boundaries are
    // precisely those segments' ends.  A trace that violates that
    // shape (e.g. a sloped span answering "not constant here") makes
    // the walk stall; we then drop the hoist and query the traces
    // directly, which is always correct.
    std::vector<std::pair<Tick, Tick>> segs; // (start, until)
    bool hoisted = traces.size() > 1 && cfg.fastForward;
    if (hoisted) {
        const PowerTrace &first = *traces.front();
        Tick t = 0;
        while (t < horizon) {
            const Tick until = first.constantLevelUntil(t);
            if (until <= t) {
                hoisted = false;
                segs.clear();
                break;
            }
            segs.push_back({t, until});
            if (until >= horizon)
                break;
            t = until;
        }
    }

    // Machines are mutually independent: each owns its StepMachine
    // state and a private cursor into the read-only `segs` list, and
    // writes only its own result slot — so the batch distributes over
    // the pool's chunked partition with bit-identical results.
    std::vector<Result> out(traces.size());
    parallelForChunked(pool, traces.size(), [&](std::size_t m) {
        const PowerTrace *trace = traces[m];
        NEOFOG_ASSERT(trace == traces.front() ||
                          trace->constantLevelUntil(0) ==
                              traces.front()->constantLevelUntil(0),
                      "runBatch traces must share segmentation");
        StepMachine machine(cpu, *trace, cfg);

        if (!cfg.fastForward) {
            for (Tick t = 0; t < horizon; t += cfg.step)
                machine.stepOnce(t, horizon);
            out[m] = machine.finish();
            return;
        }

        std::size_t cursor = 0;
        Tick t = 0;
        while (t < horizon) {
            if (t + cfg.step <= horizon) {
                Tick seg_until;
                if (hoisted) {
                    while (cursor < segs.size() &&
                           t >= segs[cursor].second)
                        ++cursor;
                    NEOFOG_ASSERT(cursor < segs.size() &&
                                      t >= segs[cursor].first,
                                  "hoisted segment walk out of sync");
                    seg_until = segs[cursor].second;
                } else {
                    seg_until = trace->constantLevelUntil(t);
                }
                const Tick seg_end = std::min<Tick>(seg_until, horizon);
                const std::int64_t avail =
                    seg_end > t ? (seg_end - t) / cfg.step : 0;
                if (avail >= 2) {
                    const std::int64_t n =
                        machine.tryFastForward(t, avail);
                    if (n > 0) {
                        t += n * cfg.step;
                        continue;
                    }
                }
            }
            machine.stepOnce(t, horizon);
            t += cfg.step;
        }
        out[m] = machine.finish();
    });
    return out;
}

double
IntermittentExecution::progressRatio(const PowerTrace &trace,
                                     Tick horizon, const Config &cfg)
{
    // The paper's 2.2x-5x compares the *deployed alternatives*: a
    // volatile processor behind a NOS single-channel front end vs an
    // NVP behind the FIOS dual-channel front end (§2.2).
    NvProcessor nvp{NvProcessor::fiosConfig()};
    VolatileProcessor vp;
    Config nv_cfg = cfg;
    nv_cfg.frontend = FrontEnd::makeFios().config();
    Config vp_cfg = cfg;
    vp_cfg.frontend = FrontEnd::makeNos().config();
    const Result nv = run(nvp, trace, horizon, nv_cfg);
    const Result v = run(vp, trace, horizon, vp_cfg);
    if (v.instructionsCompleted == 0)
        return nv.instructionsCompleted > 0 ? 1e9 : 1.0;
    return static_cast<double>(nv.instructionsCompleted) /
           static_cast<double>(v.instructionsCompleted);
}

double
IntermittentExecution::progressRatio(const PowerTrace &trace,
                                     Tick horizon)
{
    return progressRatio(trace, horizon, Config{});
}

} // namespace neofog
