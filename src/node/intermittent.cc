#include "node/intermittent.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace neofog {

IntermittentExecution::Result
IntermittentExecution::run(const Processor &cpu, const PowerTrace &trace,
                           Tick horizon, const Config &cfg)
{
    if (cfg.offThreshold >= cfg.onThreshold)
        fatal("intermittent execution thresholds reversed");
    if (cfg.step <= 0)
        fatal("intermittent execution step must be positive");

    const FrontEnd frontend{cfg.frontend};
    const bool fios = frontend.kind() == FrontEndKind::Fios;
    SuperCapacitor cap{cfg.cap};
    Result result;

    // Instructions executable per step while powered, and the energy
    // they need at the load.
    const double inst_per_second =
        cpu.config().frequencyHz / cpu.config().cyclesPerInstruction;
    const auto inst_per_step = static_cast<std::uint64_t>(
        inst_per_second * secondsFromTicks(cfg.step));
    const Energy load_per_step = cpu.config().activePower * cfg.step;

    bool powered = false;          ///< executing (past restore/restart)
    Tick pending_overhead = 0;     ///< wake overhead still to serve
    std::uint64_t uncommitted = 0; ///< VP progress since last segment

    for (Tick t = 0; t < horizon; t += cfg.step) {
        // Harvest this step.  A FIOS node that is executing feeds the
        // load straight from the harvester (the direct channel) and
        // only banks the surplus; otherwise all income takes the
        // charge path.
        const Tick step_end = std::min<Tick>(t + cfg.step, horizon);
        const Energy ambient = trace.integrate(t, step_end);
        result.harvested += ambient;
        Energy direct_available = Energy::zero();
        if (fios && powered && pending_overhead <= 0) {
            direct_available = frontend.incomeToLoadDirect(ambient);
            const Energy direct_used =
                std::min(direct_available, load_per_step);
            // Bank the income fraction the direct channel didn't use.
            const double used_frac = direct_available.joules() > 0.0
                ? direct_used.joules() / direct_available.joules()
                : 0.0;
            cap.charge(frontend.incomeToCap(ambient * (1.0 - used_frac)));
            direct_available = direct_used;
        } else {
            cap.charge(frontend.incomeToCap(ambient));
        }
        cap.leak(step_end - t);

        if (!powered) {
            if (cap.stored() >= cfg.onThreshold) {
                // Power-on: pay the wake overhead (restore for NVP,
                // restart + state reload for VP).
                const Energy wake =
                    frontend.capCostForLoad(cpu.wakeEnergy());
                if (cap.tryDischarge(wake)) {
                    result.spent += wake;
                    pending_overhead = cpu.wakeLatency();
                    powered = true;
                }
            }
            continue;
        }

        // Serve wake/backup overhead time before executing.
        if (pending_overhead > 0) {
            const Tick served =
                std::min<Tick>(pending_overhead, cfg.step);
            pending_overhead -= served;
            result.overheadTime += served;
            if (served >= cfg.step)
                continue;
        }

        // Execute for the remainder of the step if energy allows:
        // direct channel first, the capacitor for the rest.
        const Energy from_cap = frontend.capCostForLoad(
            (load_per_step - direct_available).clampedNonNegative());
        if (cap.tryDischarge(from_cap)) {
            result.spent += from_cap + direct_available;
            result.activeTime += cfg.step;
            if (cpu.isNonvolatile()) {
                result.instructionsCompleted += inst_per_step;
            } else {
                uncommitted += inst_per_step;
                // Commit whole segments.
                while (uncommitted >= cfg.taskSegmentInstructions) {
                    uncommitted -= cfg.taskSegmentInstructions;
                    result.instructionsCompleted +=
                        cfg.taskSegmentInstructions;
                }
            }
        }

        // Brown-out check.
        if (cap.stored() < cfg.offThreshold) {
            ++result.powerCycles;
            if (cpu.isNonvolatile()) {
                // Distributed NV backup: small energy, state kept.
                const Energy backup =
                    frontend.capCostForLoad(cpu.backupEnergy());
                result.spent += cap.drain(backup);
                result.overheadTime += cpu.backupLatency();
            } else {
                // All uncommitted work is lost.
                result.instructionsWasted += uncommitted;
                uncommitted = 0;
            }
            powered = false;
        }
    }

    // Work still uncommitted at the horizon never completed.
    result.instructionsWasted += uncommitted;
    return result;
}

IntermittentExecution::Result
IntermittentExecution::run(const Processor &cpu, const PowerTrace &trace,
                           Tick horizon)
{
    return run(cpu, trace, horizon, Config{});
}

double
IntermittentExecution::progressRatio(const PowerTrace &trace,
                                     Tick horizon, const Config &cfg)
{
    // The paper's 2.2x-5x compares the *deployed alternatives*: a
    // volatile processor behind a NOS single-channel front end vs an
    // NVP behind the FIOS dual-channel front end (§2.2).
    NvProcessor nvp{NvProcessor::fiosConfig()};
    VolatileProcessor vp;
    Config nv_cfg = cfg;
    nv_cfg.frontend = FrontEnd::makeFios().config();
    Config vp_cfg = cfg;
    vp_cfg.frontend = FrontEnd::makeNos().config();
    const Result nv = run(nvp, trace, horizon, nv_cfg);
    const Result v = run(vp, trace, horizon, vp_cfg);
    if (v.instructionsCompleted == 0)
        return nv.instructionsCompleted > 0 ? 1e9 : 1.0;
    return static_cast<double>(nv.instructionsCompleted) /
           static_cast<double>(v.instructionsCompleted);
}

double
IntermittentExecution::progressRatio(const PowerTrace &trace,
                                     Tick horizon)
{
    return progressRatio(trace, horizon, Config{});
}

} // namespace neofog
