#include "node/node.hh"

#include <algorithm>

#include "net/packet.hh"
#include "sim/logging.hh"

namespace neofog {

std::string
phaseName(NodeObserver::Phase phase)
{
    switch (phase) {
      case NodeObserver::Phase::Wake: return "wake";
      case NodeObserver::Phase::Sample: return "sample";
      case NodeObserver::Phase::Compute: return "compute";
      case NodeObserver::Phase::IncidentalCompute: return "incidental";
      case NodeObserver::Phase::Transmit: return "transmit";
      case NodeObserver::Phase::Receive: return "receive";
      case NodeObserver::Phase::Control: return "control";
    }
    return "?";
}

std::string
operatingModeName(OperatingMode mode)
{
    switch (mode) {
      case OperatingMode::NosVp: return "NOS-VP";
      case OperatingMode::NosNvp: return "NOS-NVP";
      case OperatingMode::FiosNvMote: return "FIOS-NV-mote";
    }
    return "?";
}

namespace {

std::unique_ptr<Processor>
makeProcessor(const Node::Config &cfg)
{
    Processor::Config base;
    base.frequencyHz = cfg.processorMhz * 1e6;
    // Active power scales with clock so energy/instruction stays at the
    // measured 2.508 nJ.
    base.activePower =
        Power::fromMilliwatts(0.209 * cfg.processorMhz);

    switch (cfg.mode) {
      case OperatingMode::NosVp: {
        VolatileProcessor::VpConfig vp;
        vp.base = base;
        return std::make_unique<VolatileProcessor>(vp);
      }
      case OperatingMode::NosNvp: {
        NvProcessor::NvpConfig nvp;
        nvp.base = base;
        return std::make_unique<NvProcessor>(nvp);
      }
      case OperatingMode::FiosNvMote: {
        NvProcessor::NvpConfig nvp = NvProcessor::fiosConfig();
        nvp.base = base;
        return std::make_unique<NvProcessor>(nvp);
      }
    }
    NEOFOG_PANIC("unknown operating mode");
}

std::unique_ptr<RfModule>
makeRadio(const Node::Config &cfg)
{
    switch (cfg.mode) {
      case OperatingMode::NosVp:
        return std::make_unique<SoftwareRf>();
      case OperatingMode::NosNvp:
        return std::make_unique<SoftwareRf>(
            SoftwareRf::nvmDirectConfig());
      case OperatingMode::FiosNvMote: {
        auto rf = std::make_unique<NvRfController>();
        // Initial deployment performs the one-time configuration.
        rf->configure();
        return rf;
      }
    }
    NEOFOG_PANIC("unknown operating mode");
}

FrontEnd
makeFrontEnd(OperatingMode mode)
{
    return mode == OperatingMode::FiosNvMote ? FrontEnd::makeFios()
                                             : FrontEnd::makeNos();
}

} // namespace

namespace {

/** Instructions of "control & basic computing" at every wake (Fig 1). */
constexpr std::uint64_t kControlInstructions = 1000;

} // namespace

Node::Node(const Config &cfg, std::unique_ptr<PowerTrace> trace, Rng rng)
    : _cfg(cfg), _trace(std::move(trace)), _rng(rng),
      _frontend(makeFrontEnd(cfg.mode)), _cap(cfg.cap), _rtc(cfg.rtc),
      _cpu(makeProcessor(cfg)), _rf(makeRadio(cfg)),
      _sensor(cfg.sensor), _buffer(cfg.buffer)
{
    if (!_trace)
        fatal("node ", cfg.id, " needs a power trace");
    if (_cfg.rawPackageBytes == 0 || _cfg.samplesPerPackage == 0)
        fatal("package shape must be nonzero");

    _traceFast = _trace->hasFastIntegrate();
    _wakeCostConst = _cpu->wakeEnergy() +
                     _cpu->computeEnergy(kControlInstructions);
    const double samples = static_cast<double>(_cfg.samplesPerPackage);
    _sampleCostConst = _sensor.spec().initEnergy() +
                       _sensor.spec().sampleEnergy() * samples +
                       _buffer.writeEnergy(_cfg.rawPackageBytes);
    const std::size_t payload = _cfg.mode == OperatingMode::NosVp
        ? _cfg.rawPackageBytes
        : _cfg.compressedPackageBytes;
    _txPackageEnergy =
        _rf->txCost(payload + kFrameOverheadBytes).energy;
    _txCompressedDuration =
        _rf->txCost(_cfg.compressedPackageBytes + kFrameOverheadBytes)
            .duration;
}

Energy
Node::accrueIncome(Tick from, Tick to)
{
    if (_traceFast)
        return _trace->integrate(from, to);
    if (!_cursor || _cursor->position() != from)
        _cursor.emplace(*_trace, from);
    return _cursor->advance(to);
}

void
Node::beginSlot(Tick slot_start, Tick slot_length)
{
    NEOFOG_ASSERT(slot_start >= _lastAccrual,
                  "beginSlot must move forward in time");
    NEOFOG_ASSERT(slot_length > 0, "slot length must be positive");

    // Unused direct-channel income from the previous slot flows into
    // the capacitor through the charge path instead.
    if (_directBudget > Energy::zero()) {
        const double direct_eff =
            _frontend.config().harvestEfficiency *
            _frontend.config().directEfficiency;
        const Energy raw = _directBudget / direct_eff;
        _cap.charge(_frontend.incomeToCap(raw));
        _directBudget = Energy::zero();
    }

    // Income over any gap (multiplexed nodes sleep through slots).
    if (slot_start > _lastAccrual) {
        const Energy gap_ambient =
            accrueIncome(_lastAccrual, slot_start);
        _stats.harvestedTotal += gap_ambient;
        const Energy rtc_share =
            gap_ambient * _rtc.config().chargePriority;
        _rtc.advance(slot_start - _lastAccrual,
                     rtc_share * _frontend.config().harvestEfficiency);
        _cap.charge(_frontend.incomeToCap(gap_ambient - rtc_share));
        _cap.leak(slot_start - _lastAccrual);
    }

    // Income arriving during this slot window.
    const Tick slot_end = slot_start + slot_length;
    const Energy slot_ambient = accrueIncome(slot_start, slot_end);
    _stats.harvestedTotal += slot_ambient;
    const Energy rtc_share =
        slot_ambient * _rtc.config().chargePriority;
    _rtc.advance(slot_length,
                 rtc_share * _frontend.config().harvestEfficiency);
    const Energy usable = slot_ambient - rtc_share;

    if (_cfg.mode == OperatingMode::FiosNvMote) {
        _directBudget = _frontend.incomeToLoadDirect(usable);
    } else {
        _cap.charge(_frontend.incomeToCap(usable));
        _directBudget = Energy::zero();
    }
    _cap.leak(slot_length);

    _lastIncome = Power::fromWatts(slot_ambient.joules() /
                                   secondsFromTicks(slot_length));
    _slotCostsValid = false; // income changed; cost memos are stale
    _lastAccrual = slot_end;
    _slotStart = slot_start;
    _slotLength = slot_length;
    _slotTimeUsed = 0;
    _awake = false;
    _rfInitializedThisSlot = false;

    // Age the pending queue; packages past the freshness deadline are
    // stale and discarded.
    if (_pendingByAge.empty())
        _pendingByAge.assign(
            static_cast<std::size_t>(
                std::max(1, _cfg.packageDeadlineSlots)), 0);
    const int stale = _pendingByAge.back();
    for (std::size_t a = _pendingByAge.size() - 1; a > 0; --a)
        _pendingByAge[a] = _pendingByAge[a - 1];
    _pendingByAge[0] = 0;
    if (stale > 0) {
        _pendingPackages -= stale;
        _buffer.pop(static_cast<std::size_t>(stale) *
                    _cfg.rawPackageBytes);
        _stats.samplesDiscarded.increment(
            static_cast<std::uint64_t>(stale));
    }

    // NOS nodes power fully off between slots: volatile peripherals
    // lose their configuration.  (The FIOS node also sees power cycles,
    // but its sensor path is kept warm by the NV buffer controller; the
    // re-init cost is modeled identically since it is tiny either way.)
    _sensor.onPowerFailure();
    _rf->onPowerFailure();
}

Energy
Node::wakeCost() const
{
    return _wakeCostConst;
}

Energy
Node::activationCost() const
{
    if (_cfg.mode == OperatingMode::NosVp)
        return wakeCost();
    // NVP modes use a higher activation threshold (§5.2.1): they only
    // wake when the slot can plausibly make progress — a sample plus a
    // meaningful fraction of a fog task.  Below that they sleep through
    // the slot and keep accumulating (waking at a multiple of the RTC
    // interval instead, §2.3).
    return wakeCost() + sampleCost() + taskCost() * 0.25;
}

Energy
Node::sampleCost() const
{
    return _sampleCostConst;
}

void
Node::refreshSlotCosts() const
{
    if (_slotCostsValid)
        return;
    if (_cfg.mode == OperatingMode::NosVp) {
        _slotTaskCost =
            _cpu->computeEnergy(_cfg.naiveInstructionsPerPackage);
        _slotTaskTime =
            _cpu->computeTime(_cfg.naiveInstructionsPerPackage);
    } else {
        const auto *nvp = static_cast<const NvProcessor *>(_cpu.get());
        _slotTaskCost = nvp->effectiveComputeEnergy(
            _cfg.fogInstructionsPerPackage, _lastIncome);
        Tick t = _cpu->computeTime(_cfg.fogInstructionsPerPackage);
        if (_cfg.enableFrequencyScaling) {
            const double scale =
                nvp->spendthrift().frequencyScale(_lastIncome);
            t = static_cast<Tick>(static_cast<double>(t) / scale);
        }
        _slotTaskTime = t;
    }
    _slotCostsValid = true;
}

Energy
Node::taskCost() const
{
    refreshSlotCosts();
    return _slotTaskCost;
}

Tick
Node::taskComputeTime() const
{
    refreshSlotCosts();
    return _slotTaskTime;
}

Energy
Node::packageTxCost() const
{
    Energy e = _txPackageEnergy;
    if (!_rfInitializedThisSlot)
        e += _rf->initCost().energy;
    return e;
}

Energy
Node::slotCost() const
{
    return wakeCost() + sampleCost() + taskCost() + packageTxCost();
}

bool
Node::canCompleteOnePackage() const
{
    const Energy task = taskCost();
    const Energy tx = packageTxCost();
    // The task may draw the direct channel; the transmission may not.
    const Energy direct_used = std::min(task, _directBudget);
    const Energy cap_needed =
        _frontend.capCostForLoad((task - direct_used) + tx);
    if (_cap.stored() < cap_needed)
        return false;
    const Tick need_time = taskComputeTime() + _txCompressedDuration +
                           (_rfInitializedThisSlot
                                ? 0 : _rf->initCost().duration);
    return _slotTimeUsed + need_time <= _slotLength;
}

void
Node::notifyPhase(NodeObserver::Phase phase, Tick start, Tick duration,
                  Energy energy)
{
    if (_observer)
        _observer->onPhase(_cfg.id, phase, start, duration, energy);
}

bool
Node::canAfford(Energy e, bool direct_eligible) const
{
    Energy deliverable =
        _cap.stored() * _frontend.config().dischargeEfficiency;
    if (direct_eligible)
        deliverable += _directBudget;
    return deliverable >= e;
}

bool
Node::spend(Energy e, bool direct_eligible)
{
    if (!canAfford(e, direct_eligible))
        return false;
    Energy rest = e;
    if (direct_eligible && _directBudget > Energy::zero()) {
        const Energy from_direct = std::min(rest, _directBudget);
        _directBudget -= from_direct;
        rest -= from_direct;
    }
    if (rest > Energy::zero()) {
        const Energy cap_cost = _frontend.capCostForLoad(rest);
        const bool ok = _cap.tryDischarge(cap_cost);
        NEOFOG_ASSERT(ok, "spend() affordability check out of sync");
    }
    return true;
}

EnergyClass
Node::classify() const
{
    if (!canAfford(activationCost(), false))
        return EnergyClass::Dead;
    const Energy full = slotCost();
    if (!canAfford(full, true))
        return EnergyClass::Awake;
    if (!canAfford(full + taskCost(), true))
        return EnergyClass::Ready;
    return EnergyClass::Extra;
}

bool
Node::tryWake()
{
    NEOFOG_ASSERT(!_awake, "tryWake called twice in a slot");

    if (classify() == EnergyClass::Dead) {
        _stats.depletionFailures.increment();
        return false;
    }

    // A desynchronized RTC means the node must first listen long
    // enough to re-acquire the network's slot grid.
    if (!_rtc.synchronized()) {
        const Energy resync = _rtc.config().resyncEnergy;
        if (!spend(resync, false)) {
            _stats.depletionFailures.increment();
            return false;
        }
        _stats.spentRx += resync;
        _slotTimeUsed += _rtc.config().resyncListen;
        _rtc.resynchronize();
        _stats.rtcResyncs.increment();
    }

    const Energy wake = wakeCost();
    if (!spend(wake, false)) {
        _stats.depletionFailures.increment();
        return false;
    }
    _stats.spentWake += wake;
    const Tick wake_start = _slotStart + _slotTimeUsed;
    const Tick wake_time = _cpu->wakeLatency() +
                           _cpu->computeTime(kControlInstructions);
    _slotTimeUsed += wake_time;
    _awake = true;
    _stats.wakeups.increment();
    notifyPhase(NodeObserver::Phase::Wake, wake_start, wake_time, wake);
    return true;
}

bool
Node::samplePackage()
{
    NEOFOG_ASSERT(_awake, "sampling while asleep");
    Sensor::Cost init{};
    if (!_sensor.initialized()) {
        // Peek the cost without committing sensor state yet.
        init = {_sensor.spec().initLatency, _sensor.spec().initEnergy()};
    }
    const double n = static_cast<double>(_cfg.samplesPerPackage);
    const Energy total = init.energy +
                         _sensor.spec().sampleEnergy() * n +
                         _buffer.writeEnergy(_cfg.rawPackageBytes);
    const Tick time =
        init.duration +
        static_cast<Tick>(n * static_cast<double>(
                                  _sensor.spec().sampleLatency));
    if (_slotTimeUsed + time > _slotLength)
        return false;
    // A full NV buffer discards the new sample (paper §5.1: data are
    // discarded when the node lacks energy to drain the buffer).
    if (pendingCapacity() == 0) {
        _stats.samplesDiscarded.increment();
        return false;
    }
    if (!spend(total, false)) {
        _stats.samplesDiscarded.increment();
        return false;
    }
    if (!_sensor.initialized())
        _sensor.initialize();
    _stats.spentSample += total;
    notifyPhase(NodeObserver::Phase::Sample, _slotStart + _slotTimeUsed,
                time, total);
    _slotTimeUsed += time;
    _buffer.push(_cfg.rawPackageBytes);
    pushPending(1);
    _stats.packagesSampled.increment();
    return true;
}

void
Node::pushPending(int n)
{
    NEOFOG_ASSERT(n >= 0, "pushPending negative");
    if (_pendingByAge.empty())
        _pendingByAge.assign(
            static_cast<std::size_t>(
                std::max(1, _cfg.packageDeadlineSlots)), 0);
    _pendingByAge[0] += n;
    _pendingPackages += n;
}

int
Node::popOldestPending(int n)
{
    NEOFOG_ASSERT(n >= 0, "popOldestPending negative");
    int taken = 0;
    for (std::size_t a = _pendingByAge.size(); a-- > 0 && taken < n;) {
        const int t = std::min(_pendingByAge[a], n - taken);
        _pendingByAge[a] -= t;
        taken += t;
    }
    _pendingPackages -= taken;
    return taken;
}

int
Node::executeTasks(int count)
{
    NEOFOG_ASSERT(_awake, "executing tasks while asleep");
    int done = 0;
    while (done < count && _pendingPackages > 0) {
        const Tick t = taskComputeTime();
        if (_slotTimeUsed + t > _slotLength)
            break;
        const Energy e = taskCost();
        if (!spend(e, /*direct_eligible=*/true))
            break;
        _stats.spentCompute += e;
        notifyPhase(NodeObserver::Phase::Compute,
                    _slotStart + _slotTimeUsed, t, e);
        _slotTimeUsed += t;
        popOldestPending(1);
        _buffer.pop(_cfg.rawPackageBytes);
        ++done;
        _stats.tasksExecuted.increment();
    }
    return done;
}

Energy
Node::incidentalTaskCost() const
{
    const auto inst = static_cast<std::uint64_t>(
        _cfg.incidentalFraction *
        static_cast<double>(_cfg.fogInstructionsPerPackage));
    if (_cfg.mode == OperatingMode::NosVp)
        return _cpu->computeEnergy(inst);
    const auto *nvp = static_cast<const NvProcessor *>(_cpu.get());
    return nvp->effectiveComputeEnergy(inst, _lastIncome);
}

bool
Node::canCompleteIncidental() const
{
    if (!_cfg.enableIncidentalComputing)
        return false;
    const Energy task = incidentalTaskCost();
    const Energy tx = packageTxCost();
    const Energy direct_used = std::min(task, _directBudget);
    const Energy cap_needed =
        _frontend.capCostForLoad((task - direct_used) + tx);
    if (_cap.stored() < cap_needed)
        return false;
    const auto inst = static_cast<std::uint64_t>(
        _cfg.incidentalFraction *
        static_cast<double>(_cfg.fogInstructionsPerPackage));
    const Tick need_time =
        _cpu->computeTime(inst) +
        _rf->txCost(_cfg.compressedPackageBytes + kFrameOverheadBytes)
            .duration +
        (_rfInitializedThisSlot ? 0 : _rf->initCost().duration);
    return _slotTimeUsed + need_time <= _slotLength;
}

int
Node::executeIncidentalTasks(int count)
{
    NEOFOG_ASSERT(_awake, "incidental computing while asleep");
    if (!_cfg.enableIncidentalComputing)
        return 0;
    int done = 0;
    const auto inst = static_cast<std::uint64_t>(
        _cfg.incidentalFraction *
        static_cast<double>(_cfg.fogInstructionsPerPackage));
    while (done < count && _pendingPackages > 0) {
        const Tick t = _cpu->computeTime(inst);
        if (_slotTimeUsed + t > _slotLength)
            break;
        const Energy e = incidentalTaskCost();
        if (!spend(e, /*direct_eligible=*/true))
            break;
        _stats.spentCompute += e;
        notifyPhase(NodeObserver::Phase::IncidentalCompute,
                    _slotStart + _slotTimeUsed, t, e);
        _slotTimeUsed += t;
        popOldestPending(1);
        _buffer.pop(_cfg.rawPackageBytes);
        ++done;
        _stats.incidentalTasks.increment();
    }
    return done;
}

bool
Node::payTransmit(std::size_t payload_bytes, int attempts)
{
    NEOFOG_ASSERT(_awake, "transmitting while asleep");
    NEOFOG_ASSERT(attempts >= 1, "attempts >= 1");
    const RfPhase one = _rf->txCost(payload_bytes + kFrameOverheadBytes);
    RfPhase init{};
    if (!_rfInitializedThisSlot)
        init = _rf->initCost();
    const Tick time = init.duration + one.duration * attempts;
    if (_slotTimeUsed + time > _slotLength)
        return false;
    const Energy e =
        init.energy + one.energy * static_cast<double>(attempts);
    if (!spend(e, false))
        return false;
    _rfInitializedThisSlot = true;
    _stats.spentTx += e;
    notifyPhase(NodeObserver::Phase::Transmit,
                _slotStart + _slotTimeUsed, time, e);
    _slotTimeUsed += time;
    return true;
}

bool
Node::payReceive(std::size_t payload_bytes)
{
    NEOFOG_ASSERT(_awake, "receiving while asleep");
    const Tick window =
        _rf->airtime(payload_bytes + kFrameOverheadBytes) +
        ticksFromMs(3.0);
    if (_slotTimeUsed + window > _slotLength)
        return false;
    const Energy e = _rf->rxCost(window).energy;
    if (!spend(e, false))
        return false;
    _stats.spentRx += e;
    notifyPhase(NodeObserver::Phase::Receive,
                _slotStart + _slotTimeUsed, window, e);
    _slotTimeUsed += window;
    return true;
}

bool
Node::payControlMessage(std::size_t payload_bytes)
{
    NEOFOG_ASSERT(_awake, "control message while asleep");
    const Tick time = _rf->airtime(payload_bytes + kFrameOverheadBytes) +
                      ticksFromMs(1.0);
    if (_slotTimeUsed + time > _slotLength)
        return false;
    const Energy e = _rf->config().txPower * time;
    if (!spend(e, false))
        return false;
    _stats.spentTx += e;
    notifyPhase(NodeObserver::Phase::Control,
                _slotStart + _slotTimeUsed, time, e);
    _slotTimeUsed += time;
    return true;
}

int
Node::pendingCapacity() const
{
    const auto max_packages = static_cast<int>(
        _buffer.capacity() / _cfg.rawPackageBytes);
    return std::max(0, max_packages - _pendingPackages);
}

double
Node::spareTaskCapacity() const
{
    // Capacity offered to the load balancer.  Accepting a task only
    // helps the network when the energy it burns would otherwise be
    // *wasted* — income the full-ish capacitor is about to reject, or
    // this slot's unused direct-channel budget.  Counting merely
    // "stored" energy would let transfers displace the receiver's own
    // future work (a net loss once transfer costs are paid).
    const Energy surplus_stored =
        (_cap.stored() - _cap.capacity() * 0.7).clampedNonNegative();
    Energy deliverable =
        surplus_stored * _frontend.config().dischargeEfficiency +
        _directBudget;
    const Energy per_task = taskCost() + packageTxCost();
    if (per_task.joules() <= 0.0)
        return 0.0;
    const Energy reserve =
        per_task * static_cast<double>(_pendingPackages);
    if (deliverable <= reserve)
        return 0.0;
    const Energy spare = deliverable - reserve;
    // Also bounded by remaining slot compute time.
    const Tick per_task_time = taskComputeTime();
    const double time_bound = per_task_time > 0
        ? static_cast<double>(remainingSlotTime()) /
          static_cast<double>(per_task_time)
        : 1e9;
    return std::min(spare / per_task, time_bound);
}

double
Node::relativeTaskCost() const
{
    if (_cfg.mode == OperatingMode::NosVp)
        return 1.0;
    const auto *nvp = static_cast<const NvProcessor *>(_cpu.get());
    return 1.0 / nvp->spendthrift().benefit(_lastIncome);
}

Tick
Node::remainingSlotTime() const
{
    return _slotTimeUsed >= _slotLength ? 0
                                        : _slotLength - _slotTimeUsed;
}

void
Node::recordEnergyPoint(Tick now)
{
    _stats.storedEnergyMj.record(now, _cap.stored().millijoules());
}

void
Node::addPendingPackages(int delta)
{
    if (delta >= 0) {
        pushPending(delta);
    } else {
        const int removed = popOldestPending(-delta);
        NEOFOG_ASSERT(removed == -delta, "pending packages underflow");
    }
}

int
Node::discardPendingPackages()
{
    const int dropped = _pendingPackages;
    _pendingPackages = 0;
    std::fill(_pendingByAge.begin(), _pendingByAge.end(), 0);
    _buffer.discardAll();
    if (dropped > 0)
        _stats.samplesDiscarded.increment(
            static_cast<std::uint64_t>(dropped));
    return dropped;
}

} // namespace neofog
