#include "node/node.hh"

#include <algorithm>

#include "net/packet.hh"
#include "sim/logging.hh"

namespace neofog {

std::string
phaseName(NodeObserver::Phase phase)
{
    switch (phase) {
      case NodeObserver::Phase::Wake: return "wake";
      case NodeObserver::Phase::Sample: return "sample";
      case NodeObserver::Phase::Compute: return "compute";
      case NodeObserver::Phase::IncidentalCompute: return "incidental";
      case NodeObserver::Phase::Transmit: return "transmit";
      case NodeObserver::Phase::Receive: return "receive";
      case NodeObserver::Phase::Control: return "control";
    }
    return "?";
}

std::string
operatingModeName(OperatingMode mode)
{
    switch (mode) {
      case OperatingMode::NosVp: return "NOS-VP";
      case OperatingMode::NosNvp: return "NOS-NVP";
      case OperatingMode::FiosNvMote: return "FIOS-NV-mote";
    }
    return "?";
}

namespace {

std::unique_ptr<Processor>
makeProcessor(const Node::Config &cfg)
{
    Processor::Config base;
    base.frequencyHz = cfg.processorMhz * 1e6;
    // Active power scales with clock so energy/instruction stays at the
    // measured 2.508 nJ.
    base.activePower =
        Power::fromMilliwatts(0.209 * cfg.processorMhz);

    switch (cfg.mode) {
      case OperatingMode::NosVp: {
        VolatileProcessor::VpConfig vp;
        vp.base = base;
        return std::make_unique<VolatileProcessor>(vp);
      }
      case OperatingMode::NosNvp: {
        NvProcessor::NvpConfig nvp;
        nvp.base = base;
        return std::make_unique<NvProcessor>(nvp);
      }
      case OperatingMode::FiosNvMote: {
        NvProcessor::NvpConfig nvp = NvProcessor::fiosConfig();
        nvp.base = base;
        return std::make_unique<NvProcessor>(nvp);
      }
    }
    NEOFOG_PANIC("unknown operating mode");
}

std::unique_ptr<RfModule>
makeRadio(const Node::Config &cfg)
{
    switch (cfg.mode) {
      case OperatingMode::NosVp:
        return std::make_unique<SoftwareRf>();
      case OperatingMode::NosNvp:
        return std::make_unique<SoftwareRf>(
            SoftwareRf::nvmDirectConfig());
      case OperatingMode::FiosNvMote: {
        auto rf = std::make_unique<NvRfController>();
        // Initial deployment performs the one-time configuration.
        rf->configure();
        return rf;
      }
    }
    NEOFOG_PANIC("unknown operating mode");
}

FrontEnd
makeFrontEnd(OperatingMode mode)
{
    return mode == OperatingMode::FiosNvMote ? FrontEnd::makeFios()
                                             : FrontEnd::makeNos();
}

/** Pending-queue depth of a node (its freshness deadline, >= 1). */
std::size_t
pendingDepthOf(const Node::Config &cfg)
{
    return static_cast<std::size_t>(
        std::max(1, cfg.packageDeadlineSlots));
}

} // namespace

namespace {

/** Instructions of "control & basic computing" at every wake (Fig 1). */
constexpr std::uint64_t kControlInstructions = 1000;

} // namespace

Node::Node(const Config &cfg, std::unique_ptr<PowerTrace> trace, Rng rng)
    : Node(cfg, std::move(trace), rng, static_cast<NodeShard *>(nullptr))
{
}

Node::Node(const Config &cfg, std::unique_ptr<PowerTrace> trace, Rng rng,
           NodeShard &shard)
    : Node(cfg, std::move(trace), rng, &shard)
{
}

Node::Node(const Config &cfg, std::unique_ptr<PowerTrace> trace, Rng rng,
           NodeShard *shard)
    : _cfg(cfg), _trace(std::move(trace)), _rng(rng),
      _frontend(makeFrontEnd(cfg.mode)), _cpu(makeProcessor(cfg))
{
    if (!_trace)
        fatal("node ", cfg.id, " needs a power trace");
    if (_cfg.rawPackageBytes == 0 || _cfg.samplesPerPackage == 0)
        fatal("package shape must be nonzero");

    if (shard == nullptr) {
        // Standalone node: its one-row shard lives on this object's
        // heap, so the facade stays movable (the pointer into the
        // owned shard survives a move of the Node).
        _ownShard = std::make_unique<NodeShard>();
        _ownShard->reserveRows(1, pendingDepthOf(cfg));
        shard = _ownShard.get();
    }
    _shard = shard;
    _row = _shard->addRow(cfg.cap, cfg.rtc, cfg.sensor, cfg.buffer,
                          pendingDepthOf(cfg), makeRadio(cfg));

    _traceFast = _trace->hasFastIntegrate();
    _wakeCostConst = _cpu->wakeEnergy() +
                     _cpu->computeEnergy(kControlInstructions);
    const double samples = static_cast<double>(_cfg.samplesPerPackage);
    _sampleCostConst = sensorRow().spec().initEnergy() +
                       sensorRow().spec().sampleEnergy() * samples +
                       bufferRow().writeEnergy(_cfg.rawPackageBytes);
    const std::size_t payload = _cfg.mode == OperatingMode::NosVp
        ? _cfg.rawPackageBytes
        : _cfg.compressedPackageBytes;
    _txPackageEnergy =
        rfRow().txCost(payload + kFrameOverheadBytes).energy;
    _txCompressedDuration =
        rfRow().txCost(_cfg.compressedPackageBytes + kFrameOverheadBytes)
            .duration;
}

Energy
Node::accrueIncome(Tick from, Tick to)
{
    if (_traceFast)
        return _trace->integrate(from, to);
    if (!_cursor || _cursor->position() != from)
        _cursor.emplace(*_trace, from);
    return _cursor->advance(to);
}

void
Node::beginSlot(Tick slot_start, Tick slot_length)
{
    NEOFOG_ASSERT(slot_start >= lastAccrualTime(),
                  "beginSlot must move forward in time");
    NEOFOG_ASSERT(slot_length > 0, "slot length must be positive");

    // Integrate income first (gap window, then slot window, so a
    // streaming cursor advances monotonically), then run the shared
    // banking arithmetic.  The integrals never touch capacitor/RTC
    // state, so splitting them out is order-safe.
    Energy gap_ambient = Energy::zero();
    if (slot_start > lastAccrualTime())
        gap_ambient = accrueIncome(lastAccrualTime(), slot_start);
    const Energy slot_ambient =
        accrueIncome(slot_start, slot_start + slot_length);
    beginSlotWithIncome(slot_start, slot_length, gap_ambient,
                        slot_ambient);
}

void
Node::beginSlotWithIncome(Tick slot_start, Tick slot_length,
                          Energy gap_ambient, Energy slot_ambient)
{
    NodeShard &s = *_shard;
    NEOFOG_ASSERT(slot_start >= s.lastAccrual[_row],
                  "beginSlot must move forward in time");
    NEOFOG_ASSERT(slot_length > 0, "slot length must be positive");

    CapacitorView cap = capView();
    RtcView rtc = rtcView();
    NodeStats &st = s.stats[_row];

    // Unused direct-channel income from the previous slot flows into
    // the capacitor through the charge path instead.
    if (s.directBudgetJ[_row] > 0.0) {
        const double direct_eff =
            _frontend.config().harvestEfficiency *
            _frontend.config().directEfficiency;
        const Energy raw =
            Energy::fromJoules(s.directBudgetJ[_row]) / direct_eff;
        cap.charge(_frontend.incomeToCap(raw));
        s.directBudgetJ[_row] = 0.0;
    }

    // Income over any gap (multiplexed nodes sleep through slots).
    if (slot_start > s.lastAccrual[_row]) {
        st.harvestedTotal += gap_ambient;
        const Energy rtc_share =
            gap_ambient * rtc.config().chargePriority;
        rtc.advance(slot_start - s.lastAccrual[_row],
                    rtc_share * _frontend.config().harvestEfficiency);
        cap.charge(_frontend.incomeToCap(gap_ambient - rtc_share));
        cap.leak(slot_start - s.lastAccrual[_row]);
    }

    // Income arriving during this slot window.
    const Tick slot_end = slot_start + slot_length;
    st.harvestedTotal += slot_ambient;
    const Energy rtc_share =
        slot_ambient * rtc.config().chargePriority;
    rtc.advance(slot_length,
                rtc_share * _frontend.config().harvestEfficiency);
    const Energy usable = slot_ambient - rtc_share;

    if (_cfg.mode == OperatingMode::FiosNvMote) {
        s.directBudgetJ[_row] =
            _frontend.incomeToLoadDirect(usable).joules();
    } else {
        cap.charge(_frontend.incomeToCap(usable));
        s.directBudgetJ[_row] = 0.0;
    }
    cap.leak(slot_length);

    s.lastIncome[_row] = Power::fromWatts(slot_ambient.joules() /
                                          secondsFromTicks(slot_length));
    s.slotCostsValid[_row] = 0; // income changed; cost memos are stale
    s.lastAccrual[_row] = slot_end;
    s.slotStart[_row] = slot_start;
    s.slotLength[_row] = slot_length;
    s.slotTimeUsed[_row] = 0;
    s.awake[_row] = 0;
    s.rfInitializedThisSlot[_row] = 0;

    rolloverSlotState();
}

void
Node::rolloverSlotState()
{
    NodeShard &s = *_shard;
    NodeStats &st = s.stats[_row];

    // Age the pending queue; packages past the freshness deadline are
    // stale and discarded.  (The window is allocated at construction,
    // sized from the freshness deadline — the slot loop never grows
    // it.)
    int *const ages = s.pendingAge.data() + s.pendingOffset[_row];
    const std::size_t depth = s.pendingDepth[_row];
    const int stale = ages[depth - 1];
    for (std::size_t a = depth - 1; a > 0; --a)
        ages[a] = ages[a - 1];
    ages[0] = 0;
    if (stale > 0) {
        s.pendingPackages[_row] -= stale;
        s.buffer[_row].pop(static_cast<std::size_t>(stale) *
                           _cfg.rawPackageBytes);
        st.samplesDiscarded.increment(
            static_cast<std::uint64_t>(stale));
    }

    // NOS nodes power fully off between slots: volatile peripherals
    // lose their configuration.  (The FIOS node also sees power cycles,
    // but its sensor path is kept warm by the NV buffer controller; the
    // re-init cost is modeled identically since it is tiny either way.)
    s.sensor[_row].onPowerFailure();
    s.rf[_row]->onPowerFailure();
}

Energy
Node::wakeCost() const
{
    return _wakeCostConst;
}

Energy
Node::activationCost() const
{
    if (_cfg.mode == OperatingMode::NosVp)
        return wakeCost();
    // NVP modes use a higher activation threshold (§5.2.1): they only
    // wake when the slot can plausibly make progress — a sample plus a
    // meaningful fraction of a fog task.  Below that they sleep through
    // the slot and keep accumulating (waking at a multiple of the RTC
    // interval instead, §2.3).
    return wakeCost() + sampleCost() + taskCost() * 0.25;
}

Energy
Node::sampleCost() const
{
    return _sampleCostConst;
}

void
Node::refreshSlotCosts() const
{
    NodeShard &s = *_shard;
    if (s.slotCostsValid[_row])
        return;
    if (_cfg.mode == OperatingMode::NosVp) {
        s.slotTaskCost[_row] =
            _cpu->computeEnergy(_cfg.naiveInstructionsPerPackage);
        s.slotTaskTime[_row] =
            _cpu->computeTime(_cfg.naiveInstructionsPerPackage);
    } else {
        const auto *nvp = static_cast<const NvProcessor *>(_cpu.get());
        s.slotTaskCost[_row] = nvp->effectiveComputeEnergy(
            _cfg.fogInstructionsPerPackage, s.lastIncome[_row]);
        Tick t = _cpu->computeTime(_cfg.fogInstructionsPerPackage);
        if (_cfg.enableFrequencyScaling) {
            const double scale =
                nvp->spendthrift().frequencyScale(s.lastIncome[_row]);
            t = static_cast<Tick>(static_cast<double>(t) / scale);
        }
        s.slotTaskTime[_row] = t;
    }
    s.slotCostsValid[_row] = 1;
}

Energy
Node::taskCost() const
{
    refreshSlotCosts();
    return _shard->slotTaskCost[_row];
}

Tick
Node::taskComputeTime() const
{
    refreshSlotCosts();
    return _shard->slotTaskTime[_row];
}

Energy
Node::packageTxCost() const
{
    Energy e = _txPackageEnergy;
    if (!_shard->rfInitializedThisSlot[_row])
        e += rfRow().initCost().energy;
    return e;
}

Energy
Node::slotCost() const
{
    return wakeCost() + sampleCost() + taskCost() + packageTxCost();
}

bool
Node::canCompleteOnePackage() const
{
    const NodeShard &s = *_shard;
    const Energy task = taskCost();
    const Energy tx = packageTxCost();
    // The task may draw the direct channel; the transmission may not.
    const Energy direct_used =
        std::min(task, Energy::fromJoules(s.directBudgetJ[_row]));
    const Energy cap_needed =
        _frontend.capCostForLoad((task - direct_used) + tx);
    if (capView().stored() < cap_needed)
        return false;
    const Tick need_time = taskComputeTime() + _txCompressedDuration +
                           (s.rfInitializedThisSlot[_row]
                                ? 0 : s.rf[_row]->initCost().duration);
    return s.slotTimeUsed[_row] + need_time <= s.slotLength[_row];
}

void
Node::notifyPhase(NodeObserver::Phase phase, Tick start, Tick duration,
                  Energy energy)
{
    if (_observer)
        _observer->onPhase(_cfg.id, phase, start, duration, energy);
}

bool
Node::canAfford(Energy e, bool direct_eligible) const
{
    Energy deliverable =
        capView().stored() * _frontend.config().dischargeEfficiency;
    if (direct_eligible)
        deliverable += Energy::fromJoules(_shard->directBudgetJ[_row]);
    return deliverable >= e;
}

bool
Node::spend(Energy e, bool direct_eligible)
{
    if (!canAfford(e, direct_eligible))
        return false;
    double &direct = _shard->directBudgetJ[_row];
    Energy rest = e;
    if (direct_eligible && direct > 0.0) {
        const Energy from_direct =
            std::min(rest, Energy::fromJoules(direct));
        direct -= from_direct.joules();
        rest -= from_direct;
    }
    if (rest > Energy::zero()) {
        const Energy cap_cost = _frontend.capCostForLoad(rest);
        const bool ok = capView().tryDischarge(cap_cost);
        NEOFOG_ASSERT(ok, "spend() affordability check out of sync");
    }
    return true;
}

EnergyClass
Node::classify() const
{
    if (!canAfford(activationCost(), false))
        return EnergyClass::Dead;
    const Energy full = slotCost();
    if (!canAfford(full, true))
        return EnergyClass::Awake;
    if (!canAfford(full + taskCost(), true))
        return EnergyClass::Ready;
    return EnergyClass::Extra;
}

bool
Node::tryWake()
{
    NodeShard &s = *_shard;
    NodeStats &st = s.stats[_row];
    NEOFOG_ASSERT(!s.awake[_row], "tryWake called twice in a slot");

    if (classify() == EnergyClass::Dead) {
        st.depletionFailures.increment();
        return false;
    }

    // A desynchronized RTC means the node must first listen long
    // enough to re-acquire the network's slot grid.
    RtcView rtc = rtcView();
    if (!rtc.synchronized()) {
        const Energy resync = rtc.config().resyncEnergy;
        if (!spend(resync, false)) {
            st.depletionFailures.increment();
            return false;
        }
        st.spentRx += resync;
        s.slotTimeUsed[_row] += rtc.config().resyncListen;
        rtc.resynchronize();
        st.rtcResyncs.increment();
    }

    const Energy wake = wakeCost();
    if (!spend(wake, false)) {
        st.depletionFailures.increment();
        return false;
    }
    st.spentWake += wake;
    const Tick wake_start = s.slotStart[_row] + s.slotTimeUsed[_row];
    const Tick wake_time = _cpu->wakeLatency() +
                           _cpu->computeTime(kControlInstructions);
    s.slotTimeUsed[_row] += wake_time;
    s.awake[_row] = 1;
    st.wakeups.increment();
    notifyPhase(NodeObserver::Phase::Wake, wake_start, wake_time, wake);
    return true;
}

bool
Node::samplePackage()
{
    NodeShard &s = *_shard;
    NodeStats &st = s.stats[_row];
    Sensor &sensor = s.sensor[_row];
    NEOFOG_ASSERT(s.awake[_row], "sampling while asleep");
    Sensor::Cost init{};
    if (!sensor.initialized()) {
        // Peek the cost without committing sensor state yet.
        init = {sensor.spec().initLatency, sensor.spec().initEnergy()};
    }
    const double n = static_cast<double>(_cfg.samplesPerPackage);
    const Energy total = init.energy +
                         sensor.spec().sampleEnergy() * n +
                         s.buffer[_row].writeEnergy(_cfg.rawPackageBytes);
    const Tick time =
        init.duration +
        static_cast<Tick>(n * static_cast<double>(
                                  sensor.spec().sampleLatency));
    if (s.slotTimeUsed[_row] + time > s.slotLength[_row])
        return false;
    // A full NV buffer discards the new sample (paper §5.1: data are
    // discarded when the node lacks energy to drain the buffer).
    if (pendingCapacity() == 0) {
        st.samplesDiscarded.increment();
        return false;
    }
    if (!spend(total, false)) {
        st.samplesDiscarded.increment();
        return false;
    }
    if (!sensor.initialized())
        sensor.initialize();
    st.spentSample += total;
    notifyPhase(NodeObserver::Phase::Sample,
                s.slotStart[_row] + s.slotTimeUsed[_row], time, total);
    s.slotTimeUsed[_row] += time;
    s.buffer[_row].push(_cfg.rawPackageBytes);
    pushPending(1);
    st.packagesSampled.increment();
    return true;
}

void
Node::pushPending(int n)
{
    NEOFOG_ASSERT(n >= 0, "pushPending negative");
    NodeShard &s = *_shard;
    s.pendingAge[s.pendingOffset[_row]] += n;
    s.pendingPackages[_row] += n;
}

int
Node::popOldestPending(int n)
{
    NEOFOG_ASSERT(n >= 0, "popOldestPending negative");
    NodeShard &s = *_shard;
    int *const ages = s.pendingAge.data() + s.pendingOffset[_row];
    int taken = 0;
    for (std::size_t a = s.pendingDepth[_row]; a-- > 0 && taken < n;) {
        const int t = std::min(ages[a], n - taken);
        ages[a] -= t;
        taken += t;
    }
    s.pendingPackages[_row] -= taken;
    return taken;
}

int
Node::executeTasks(int count)
{
    NodeShard &s = *_shard;
    NodeStats &st = s.stats[_row];
    NEOFOG_ASSERT(s.awake[_row], "executing tasks while asleep");
    int done = 0;
    while (done < count && s.pendingPackages[_row] > 0) {
        const Tick t = taskComputeTime();
        if (s.slotTimeUsed[_row] + t > s.slotLength[_row])
            break;
        const Energy e = taskCost();
        if (!spend(e, /*direct_eligible=*/true))
            break;
        st.spentCompute += e;
        notifyPhase(NodeObserver::Phase::Compute,
                    s.slotStart[_row] + s.slotTimeUsed[_row], t, e);
        s.slotTimeUsed[_row] += t;
        popOldestPending(1);
        s.buffer[_row].pop(_cfg.rawPackageBytes);
        ++done;
        st.tasksExecuted.increment();
    }
    return done;
}

Energy
Node::incidentalTaskCost() const
{
    const auto inst = static_cast<std::uint64_t>(
        _cfg.incidentalFraction *
        static_cast<double>(_cfg.fogInstructionsPerPackage));
    if (_cfg.mode == OperatingMode::NosVp)
        return _cpu->computeEnergy(inst);
    const auto *nvp = static_cast<const NvProcessor *>(_cpu.get());
    return nvp->effectiveComputeEnergy(inst, _shard->lastIncome[_row]);
}

bool
Node::canCompleteIncidental() const
{
    if (!_cfg.enableIncidentalComputing)
        return false;
    const NodeShard &s = *_shard;
    const Energy task = incidentalTaskCost();
    const Energy tx = packageTxCost();
    const Energy direct_used =
        std::min(task, Energy::fromJoules(s.directBudgetJ[_row]));
    const Energy cap_needed =
        _frontend.capCostForLoad((task - direct_used) + tx);
    if (capView().stored() < cap_needed)
        return false;
    const auto inst = static_cast<std::uint64_t>(
        _cfg.incidentalFraction *
        static_cast<double>(_cfg.fogInstructionsPerPackage));
    const Tick need_time =
        _cpu->computeTime(inst) +
        s.rf[_row]
            ->txCost(_cfg.compressedPackageBytes + kFrameOverheadBytes)
            .duration +
        (s.rfInitializedThisSlot[_row]
             ? 0 : s.rf[_row]->initCost().duration);
    return s.slotTimeUsed[_row] + need_time <= s.slotLength[_row];
}

int
Node::executeIncidentalTasks(int count)
{
    NodeShard &s = *_shard;
    NodeStats &st = s.stats[_row];
    NEOFOG_ASSERT(s.awake[_row], "incidental computing while asleep");
    if (!_cfg.enableIncidentalComputing)
        return 0;
    int done = 0;
    const auto inst = static_cast<std::uint64_t>(
        _cfg.incidentalFraction *
        static_cast<double>(_cfg.fogInstructionsPerPackage));
    while (done < count && s.pendingPackages[_row] > 0) {
        const Tick t = _cpu->computeTime(inst);
        if (s.slotTimeUsed[_row] + t > s.slotLength[_row])
            break;
        const Energy e = incidentalTaskCost();
        if (!spend(e, /*direct_eligible=*/true))
            break;
        st.spentCompute += e;
        notifyPhase(NodeObserver::Phase::IncidentalCompute,
                    s.slotStart[_row] + s.slotTimeUsed[_row], t, e);
        s.slotTimeUsed[_row] += t;
        popOldestPending(1);
        s.buffer[_row].pop(_cfg.rawPackageBytes);
        ++done;
        st.incidentalTasks.increment();
    }
    return done;
}

bool
Node::payTransmit(std::size_t payload_bytes, int attempts)
{
    NodeShard &s = *_shard;
    NEOFOG_ASSERT(s.awake[_row], "transmitting while asleep");
    NEOFOG_ASSERT(attempts >= 1, "attempts >= 1");
    const RfPhase one =
        s.rf[_row]->txCost(payload_bytes + kFrameOverheadBytes);
    RfPhase init{};
    if (!s.rfInitializedThisSlot[_row])
        init = s.rf[_row]->initCost();
    const Tick time = init.duration + one.duration * attempts;
    if (s.slotTimeUsed[_row] + time > s.slotLength[_row])
        return false;
    const Energy e =
        init.energy + one.energy * static_cast<double>(attempts);
    if (!spend(e, false))
        return false;
    s.rfInitializedThisSlot[_row] = 1;
    s.stats[_row].spentTx += e;
    notifyPhase(NodeObserver::Phase::Transmit,
                s.slotStart[_row] + s.slotTimeUsed[_row], time, e);
    s.slotTimeUsed[_row] += time;
    return true;
}

bool
Node::payReceive(std::size_t payload_bytes)
{
    NodeShard &s = *_shard;
    NEOFOG_ASSERT(s.awake[_row], "receiving while asleep");
    const Tick window =
        s.rf[_row]->airtime(payload_bytes + kFrameOverheadBytes) +
        ticksFromMs(3.0);
    if (s.slotTimeUsed[_row] + window > s.slotLength[_row])
        return false;
    const Energy e = s.rf[_row]->rxCost(window).energy;
    if (!spend(e, false))
        return false;
    s.stats[_row].spentRx += e;
    notifyPhase(NodeObserver::Phase::Receive,
                s.slotStart[_row] + s.slotTimeUsed[_row], window, e);
    s.slotTimeUsed[_row] += window;
    return true;
}

bool
Node::payControlMessage(std::size_t payload_bytes)
{
    NodeShard &s = *_shard;
    NEOFOG_ASSERT(s.awake[_row], "control message while asleep");
    const Tick time =
        s.rf[_row]->airtime(payload_bytes + kFrameOverheadBytes) +
        ticksFromMs(1.0);
    if (s.slotTimeUsed[_row] + time > s.slotLength[_row])
        return false;
    const Energy e = s.rf[_row]->config().txPower * time;
    if (!spend(e, false))
        return false;
    s.stats[_row].spentTx += e;
    notifyPhase(NodeObserver::Phase::Control,
                s.slotStart[_row] + s.slotTimeUsed[_row], time, e);
    s.slotTimeUsed[_row] += time;
    return true;
}

int
Node::pendingCapacity() const
{
    const auto max_packages = static_cast<int>(
        bufferRow().capacity() / _cfg.rawPackageBytes);
    return std::max(0, max_packages - _shard->pendingPackages[_row]);
}

double
Node::spareTaskCapacity() const
{
    const NodeShard &s = *_shard;
    // Capacity offered to the load balancer.  Accepting a task only
    // helps the network when the energy it burns would otherwise be
    // *wasted* — income the full-ish capacitor is about to reject, or
    // this slot's unused direct-channel budget.  Counting merely
    // "stored" energy would let transfers displace the receiver's own
    // future work (a net loss once transfer costs are paid).
    const CapacitorView cap = capView();
    const Energy surplus_stored =
        (cap.stored() - cap.capacity() * 0.7).clampedNonNegative();
    Energy deliverable =
        surplus_stored * _frontend.config().dischargeEfficiency +
        Energy::fromJoules(s.directBudgetJ[_row]);
    const Energy per_task = taskCost() + packageTxCost();
    if (per_task.joules() <= 0.0)
        return 0.0;
    const Energy reserve =
        per_task * static_cast<double>(s.pendingPackages[_row]);
    if (deliverable <= reserve)
        return 0.0;
    const Energy spare = deliverable - reserve;
    // Also bounded by remaining slot compute time.
    const Tick per_task_time = taskComputeTime();
    const double time_bound = per_task_time > 0
        ? static_cast<double>(remainingSlotTime()) /
          static_cast<double>(per_task_time)
        : 1e9;
    return std::min(spare / per_task, time_bound);
}

double
Node::relativeTaskCost() const
{
    if (_cfg.mode == OperatingMode::NosVp)
        return 1.0;
    const auto *nvp = static_cast<const NvProcessor *>(_cpu.get());
    return 1.0 / nvp->spendthrift().benefit(_shard->lastIncome[_row]);
}

Tick
Node::remainingSlotTime() const
{
    const NodeShard &s = *_shard;
    return s.slotTimeUsed[_row] >= s.slotLength[_row]
        ? 0
        : s.slotLength[_row] - s.slotTimeUsed[_row];
}

void
Node::recordEnergyPoint(Tick now)
{
    statsRow().storedEnergyMj.record(now,
                                     capView().stored().millijoules());
}

void
Node::addPendingPackages(int delta)
{
    if (delta >= 0) {
        pushPending(delta);
    } else {
        const int removed = popOldestPending(-delta);
        NEOFOG_ASSERT(removed == -delta, "pending packages underflow");
    }
}

int
Node::discardPendingPackages()
{
    NodeShard &s = *_shard;
    const int dropped = s.pendingPackages[_row];
    s.pendingPackages[_row] = 0;
    int *const ages = s.pendingAge.data() + s.pendingOffset[_row];
    std::fill(ages, ages + s.pendingDepth[_row], 0);
    s.buffer[_row].discardAll();
    if (dropped > 0)
        s.stats[_row].samplesDiscarded.increment(
            static_cast<std::uint64_t>(dropped));
    return dropped;
}

} // namespace neofog
