/**
 * @file
 * A sensor node: energy store, processor, radio, sensor, NV buffer,
 * RTC, power trace, and the per-slot work sequence of its operating
 * mode.
 *
 * Three operating modes reproduce the paper's comparison (Fig 4):
 *
 *  - NosVp: normally-off volatile node.  Wakes when the capacitor
 *    holds enough for the whole burst, restarts the MCU, re-initializes
 *    the radio in software (531 ms), rebuilds the network connection,
 *    samples a decimated batch, and ships it raw (the cloud computes).
 *
 *  - NosNvp: normally-off NVP node.  Restores in 32 us, initializes
 *    the radio from integrated NVM (33 ms), samples a full-fidelity
 *    batch into the NV buffer, fog-processes and compresses it, and
 *    transmits the small result.  All energy still round-trips the
 *    capacitor (single-channel front end).
 *
 *  - FiosNvMote: the NEOFog NV-mote.  Dual-channel front end powers
 *    intermittent computation directly from the harvester at ~90%
 *    efficiency; the NVRF self-initializes in 1.2 ms and transmits
 *    with millisecond fixed costs; Spendthrift scales the effective
 *    compute energy with income.
 *
 * The node is slot-driven: the owning FogSystem calls beginSlot() at
 * every RTC boundary, then uses the work primitives (wake, sample,
 * executeTasks, transmit, receive) to run the scenario's protocol,
 * including load balancing and virtualization.
 *
 * Node is a thin facade over one NodeShard row (see node_soa.hh and
 * DESIGN.md, "Memory layout: chain shards and the batched slot
 * kernel"): every mutable field lives in the shard's contiguous
 * arrays, the facade keeps only construction-derived objects (config,
 * trace, processor, front end, cost constants) plus the shard/row
 * binding.  A standalone Node (tests, single-node experiments) owns a
 * private one-row shard; chain nodes share their ChainEngine's shard.
 */

#ifndef NEOFOG_NODE_NODE_HH
#define NEOFOG_NODE_NODE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "energy/capacitor.hh"
#include "energy/frontend.hh"
#include "energy/power_trace.hh"
#include "hw/nv_buffer.hh"
#include "hw/processor.hh"
#include "hw/rf.hh"
#include "hw/rtc.hh"
#include "hw/sensor.hh"
#include "node/node_soa.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/** Node operating paradigm (paper Fig 4). */
enum class OperatingMode
{
    NosVp,      ///< normally-off, volatile processor + software RF
    NosNvp,     ///< normally-off, NVP + NVM-assisted software RF
    FiosNvMote, ///< frequently-intermittently-on, NVP + NVRF + FIOS
};

/** Display name of an operating mode. */
std::string operatingModeName(OperatingMode mode);

/**
 * Observer hook for node activity: every paid phase is reported with
 * its tick, duration, and energy.  Intended for debugging, timeline
 * visualization, and tests that assert phase ordering; the system
 * simulator runs without one.
 */
class NodeObserver
{
  public:
    enum class Phase
    {
        Wake,
        Sample,
        Compute,
        IncidentalCompute,
        Transmit,
        Receive,
        Control,
    };

    virtual ~NodeObserver() = default;

    /**
     * One completed phase.
     * @param node_id The reporting node.
     * @param phase What happened.
     * @param start Tick the phase began.
     * @param duration Phase length.
     * @param energy Energy drawn (at the load).
     */
    virtual void onPhase(std::uint32_t node_id, Phase phase, Tick start,
                         Tick duration, Energy energy) = 0;
};

/** Display name of an observer phase. */
std::string phaseName(NodeObserver::Phase phase);

/** Slot-boundary energy classification (paper Fig 6a). */
enum class EnergyClass
{
    Dead,   ///< red: cannot even wake
    Awake,  ///< can wake but not complete sample+transmit
    Ready,  ///< yellow: enough to sample and transmit its own package
    Extra,  ///< green: energy beyond its own package's needs
};

/**
 * One sensor node.
 */
class Node
{
  public:
    struct Config
    {
        std::uint32_t id = 0;
        OperatingMode mode = OperatingMode::FiosNvMote;

        SuperCapacitor::Config cap{
            Energy::fromMillijoules(250.0),
            Energy::fromMillijoules(60.0),
            Power::fromMicrowatts(15.0),
        };
        Rtc::Config rtc{};
        SensorSpec sensor{};

        /** Processor clock (the paper's fabricated parts run 1 MHz;
         *  system experiments use faster NVPs — see DESIGN.md). */
        double processorMhz = 16.0;

        /** Raw bytes of one per-slot data package. */
        std::size_t rawPackageBytes = 128;
        /** Compressed size of a fog-processed package. */
        std::size_t compressedPackageBytes = 16;
        /** Sensor samples making up one package (full fidelity). */
        std::size_t samplesPerPackage = 64;
        /** Fog-task instructions to process one package locally. */
        std::uint64_t fogInstructionsPerPackage = 10'000'000;
        /** Light on-node instructions in NosVp mode. */
        std::uint64_t naiveInstructionsPerPackage = 20'000;

        /**
         * Freshness deadline: a sampled package must be fog-processed
         * within this many slots (the load-balance call interval /
         * MAXTIME of Algorithm 1) or it goes stale and is discarded.
         * Monitoring data loses its value quickly; the paper's nodes
         * transmit results "during the next power-on period".
         */
        int packageDeadlineSlots = 1;

        /**
         * Incidental computing (paper §5.1, citing [47]): when a node
         * lacks energy for the full fog task, it may run a reduced-
         * fidelity summary instead of discarding the sample.
         */
        bool enableIncidentalComputing = false;
        /** Fraction of the full task's instructions the summary uses. */
        double incidentalFraction = 0.15;

        /**
         * Apply Spendthrift's frequency scaling to compute *time* as
         * well as energy: at low income the NVP clocks down, so tasks
         * take proportionally longer wall-clock (the energy benefit is
         * always applied).  Off by default: the calibrated system
         * experiments model the resource-scaling benefit only.
         */
        bool enableFrequencyScaling = false;

        NvBuffer::Config buffer{};
    };

    /**
     * Standalone node: owns a private one-row shard.
     * @param cfg Node configuration.
     * @param trace Ambient power income (owned).
     * @param rng Node-private random stream.
     */
    Node(const Config &cfg, std::unique_ptr<PowerTrace> trace, Rng rng);

    /**
     * Chain node: appends a row to @p shard and binds to it.  The
     * shard must outlive the node (the owning ChainEngine declares it
     * first) and must not reallocate rows the node still references —
     * reserve it for the full chain before constructing nodes.
     */
    Node(const Config &cfg, std::unique_ptr<PowerTrace> trace, Rng rng,
         NodeShard &shard);

    std::uint32_t id() const { return _cfg.id; }
    OperatingMode mode() const { return _cfg.mode; }
    const Config &config() const { return _cfg; }

    // ------------------------------------------------------------------
    // Slot lifecycle
    // ------------------------------------------------------------------

    /**
     * Advance to @p slot_start: integrate income since the last call,
     * bank it (charge path or direct budget), apply leakage, keep the
     * RTC alive.  Must be called with nondecreasing times.
     */
    void beginSlot(Tick slot_start, Tick slot_length);

    /**
     * beginSlot with the trace integrals supplied by the caller: the
     * batched slot kernel (ChainEngine) hoists the per-window trace
     * walk out of the per-node loop and feeds every node of a chain
     * the shared closed-form integral.  @p gap_ambient must equal
     * trace().integrate(lastAccrualTime(), slot_start) (ignored when
     * there is no gap) and @p slot_ambient must equal
     * trace().integrate(slot_start, slot_start + slot_length); the
     * arithmetic after the integrals is identical to beginSlot, so
     * the two entry points are bit-identical.
     */
    void beginSlotWithIncome(Tick slot_start, Tick slot_length,
                             Energy gap_ambient, Energy slot_ambient);

    /**
     * The non-arithmetic tail of the slot boundary: age the pending
     * queue (discarding stale packages) and power-cycle the volatile
     * peripherals.  beginSlotWithIncome calls this itself; the
     * vectorized shard kernel (ShardSlotKernel) runs the banking
     * arithmetic column-wise and then calls this per node, so the
     * two paths stay bit-identical.
     */
    void rolloverSlotState();

    /** End of the window income has been integrated up to. */
    Tick lastAccrualTime() const { return _shard->lastAccrual[_row]; }

    /** The ambient income trace driving this node. */
    const PowerTrace &trace() const { return *_trace; }

    /** Energy classification at the current slot boundary. */
    EnergyClass classify() const;

    /**
     * Attempt to wake for this slot: pays processor restore/restart
     * and radio initialization.  Counts wakeups/depletion failures.
     * @return true if the node is now awake.
     */
    bool tryWake();

    /** Whether the node woke this slot. */
    bool awake() const { return _shard->awake[_row] != 0; }

    /**
     * Sample one package into the buffer (full fidelity, or decimated
     * for NosVp).  Requires the node to be awake.
     * @return true if the package was captured.
     */
    bool samplePackage();

    /**
     * Run up to @p count fog tasks (one task = fog-process one
     * package).  Bounded by remaining slot time and energy.  FIOS
     * nodes draw the direct-channel budget first.
     * @return Tasks completed.
     */
    int executeTasks(int count);

    /**
     * Run up to @p count *incidental* tasks: reduced-fidelity
     * summaries at incidentalFraction of the full task cost.  Only
     * available when enabled in the config.
     * @return Incidental tasks completed.
     */
    int executeIncidentalTasks(int count);

    /** Effective cost of one incidental task at current income. */
    Energy incidentalTaskCost() const;

    /** Whether one incidental task + result TX is affordable now. */
    bool canCompleteIncidental() const;

    /**
     * Pay for transmitting @p payload_bytes.  @p attempts > 1 repeats
     * the TX cost for MAC retries.
     * @return true if the energy was available (and was spent).
     */
    bool payTransmit(std::size_t payload_bytes, int attempts = 1);

    /** Pay for receiving @p payload_bytes (listen window + frame). */
    bool payReceive(std::size_t payload_bytes);

    /**
     * Pay for a short control beacon (load-balance state share).
     * Control frames piggyback on the slot beacon exchange: they cost
     * airtime at TX power plus a small guard, but not the full data-
     * connection setup.
     */
    bool payControlMessage(std::size_t payload_bytes);

    /** Pending packages the NV buffer can still absorb. */
    int pendingCapacity() const;

    // ------------------------------------------------------------------
    // Energy introspection (shared with the load balancer)
    // ------------------------------------------------------------------

    /** Stored energy right now. */
    Energy stored() const { return capView().stored(); }

    /** Capacitor fill fraction. */
    double fillFraction() const { return capView().fillFraction(); }

    /**
     * Cost to wake: processor restart/restore plus basic control
     * computing.  Radio initialization is paid lazily with the first
     * transmission of the slot (Fig 1: control & basic computing run
     * before the RF is touched).
     */
    Energy wakeCost() const;

    /**
     * Activation threshold: the stored energy below which the node
     * does not wake this slot.  A VP wakes whenever it can boot; NVP
     * modes use a higher threshold (wake + sample) so they only spin
     * up when they can at least bank a sample into the NV buffer —
     * the "higher activation threshold" of §5.2.1.
     */
    Energy activationCost() const;

    /** Cost to sample one package. */
    Energy sampleCost() const;

    /** Effective cost of one fog task at current income. */
    Energy taskCost() const;

    /**
     * Wall-clock time of one fog task at the current income
     * (includes the Spendthrift clock-down when enabled).
     */
    Tick taskComputeTime() const;

    /**
     * Cost to transmit one (mode-appropriate) package, including the
     * radio initialization if it has not been paid this slot.
     */
    Energy packageTxCost() const;

    /** Full own-package slot cost: wake + sample + compute + tx. */
    Energy slotCost() const;

    /**
     * Whether the node can afford (energy and slot time) to fog-process
     * one package AND transmit its result now.  Used to avoid wasting
     * compute energy on results that could never be shipped.
     */
    bool canCompleteOnePackage() const;

    /**
     * Spare capacity for the balancer, in tasks: how many *extra*
     * fog tasks this node could fund after its own slot work,
     * counting the unused direct budget.
     */
    double spareTaskCapacity() const;

    /** Relative task cost for the balancer (Spendthrift-scaled). */
    double relativeTaskCost() const;

    /** Income power averaged over the last slot. */
    Power lastSlotIncome() const { return _shard->lastIncome[_row]; }

    /** The RTC (for virtualization phase queries). */
    RtcView rtc() const { return rtcView(); }

    /** The radio, e.g. for NVD4Q state cloning. */
    RfModule &rf() { return *_shard->rf[_row]; }
    const RfModule &rf() const { return *_shard->rf[_row]; }

    /** Mutable statistics. */
    NodeStats &stats() { return _shard->stats[_row]; }
    const NodeStats &stats() const { return _shard->stats[_row]; }

    /** Record the capacitor level into the stats time series. */
    void recordEnergyPoint(Tick now);

    /**
     * Attach a phase observer (nullptr detaches).  Not owned; must
     * outlive the node or be detached first.
     */
    void setObserver(NodeObserver *observer) { _observer = observer; }

    /** Buffered-but-unprocessed packages queued at this node. */
    int pendingPackages() const
    { return _shard->pendingPackages[_row]; }
    /** Adjust the pending-package queue (load-balance transfers). */
    void addPendingPackages(int delta);

    /** Drop all pending packages (volatile buffer at power-off). */
    int discardPendingPackages();

    /** The main super-capacitor (overflow/leakage accounting). */
    CapacitorView capacitor() const { return capView(); }

    /** The harvesting front end (mode-derived efficiencies). */
    const FrontEnd &frontend() const { return _frontend; }

    /** This node's row in its shard (see ShardSlotKernel::Lane). */
    std::uint32_t shardRow() const { return _row; }

    /**
     * Snapshot support (see src/snapshot/): archives every field that
     * mutates after construction — all of it lives in this node's
     * shard row, so the walk reads/writes the row through the facade.
     * Constructor-derived members (config, trace, cost constants,
     * processor, front end, observer) are rebuilt deterministically by
     * a resume's reconstruction.  The trace cursor is a pure cache of
     * (_trace, window start) that accrueIncome() re-materializes
     * bit-identically, so loading just drops it.
     */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        NodeShard &s = *_shard;
        ar.io("rng", _rng);
        // The capacitor/RTC columns archive through their row views,
        // which keep SuperCapacitor's / Rtc's wire keys and types.
        CapacitorView cap_view = capView();
        ar.io("cap", cap_view);
        RtcView rtc_view = rtcView();
        ar.io("rtc", rtc_view);
        ar.io("sensor", s.sensor[_row]);
        ar.io("buffer", s.buffer[_row]);
        ar.io("rf_state", s.rf[_row]->state());
        if (s.rf[_row]->retainsState())
            ar.io("nvrf", static_cast<NvRfController &>(*s.rf[_row]));
        ar.io("last_accrual", s.lastAccrual[_row]);
        ar.io("slot_start", s.slotStart[_row]);
        ar.io("slot_length", s.slotLength[_row]);
        ar.io("slot_time_used", s.slotTimeUsed[_row]);
        // The budget column is raw joules; the wire keeps the
        // original Energy encoding.
        Energy direct_budget =
            Energy::fromJoules(s.directBudgetJ[_row]);
        ar.io("direct_budget", direct_budget);
        s.directBudgetJ[_row] = direct_budget.joules();
        ar.io("last_income", s.lastIncome[_row]);
        // The shard packs flags as bytes; the wire keeps the original
        // bool encoding.
        bool awake_flag = s.awake[_row] != 0;
        ar.io("awake", awake_flag);
        bool rf_init = s.rfInitializedThisSlot[_row] != 0;
        ar.io("rf_initialized_this_slot", rf_init);
        bool costs_valid = s.slotCostsValid[_row] != 0;
        ar.io("slot_costs_valid", costs_valid);
        ar.io("slot_task_cost", s.slotTaskCost[_row]);
        ar.io("slot_task_time", s.slotTaskTime[_row]);
        ar.io("pending_packages", s.pendingPackages[_row]);
        // The age ring is flattened into the shard; the wire keeps the
        // original per-node vector encoding.
        const auto off = s.pendingOffset[_row];
        const auto depth = s.pendingDepth[_row];
        std::vector<int> pending_by_age(
            s.pendingAge.begin() + off,
            s.pendingAge.begin() + off + depth);
        ar.io("pending_by_age", pending_by_age);
        ar.io("stats", s.stats[_row]);
        if constexpr (Archive::isLoading) {
            s.awake[_row] = awake_flag ? 1 : 0;
            s.rfInitializedThisSlot[_row] = rf_init ? 1 : 0;
            s.slotCostsValid[_row] = costs_valid ? 1 : 0;
            // Reconstruct-then-overwrite builds the same shard
            // geometry the save ran with, so the window must match.
            if (pending_by_age.size() != depth)
                fatal("node ", _cfg.id, " pending queue depth ",
                      pending_by_age.size(),
                      " does not match its shard window of ", depth);
            std::copy(pending_by_age.begin(), pending_by_age.end(),
                      s.pendingAge.begin() + off);
            _cursor.reset();
        }
    }

  private:
    /** Shared constructor body: bind (or create) the shard row. */
    Node(const Config &cfg, std::unique_ptr<PowerTrace> trace, Rng rng,
         NodeShard *shard);

    // Row views: _shard is a plain pointer member, so these stay
    // usable from const facade methods — the memo fields below keep
    // their pre-refactor `mutable` semantics that way.  The energy
    // state lives in the shard's double columns; the views bind one
    // row of them to this node's configs.
    CapacitorView
    capView() const
    {
        NodeShard &s = *_shard;
        return {_cfg.cap, s.capStoredJ[_row], s.capChargedJ[_row],
                s.capOverflowJ[_row], s.capLeakedJ[_row],
                s.capDischargedJ[_row]};
    }
    RtcView
    rtcView() const
    {
        NodeShard &s = *_shard;
        return {_cfg.rtc,
                CapacitorView(_cfg.rtc.cap, s.rtcStoredJ[_row],
                              s.rtcChargedJ[_row], s.rtcOverflowJ[_row],
                              s.rtcLeakedJ[_row],
                              s.rtcDischargedJ[_row]),
                s.rtcSync[_row], s.rtcDesyncs[_row]};
    }
    Sensor &sensorRow() const { return _shard->sensor[_row]; }
    NvBuffer &bufferRow() const { return _shard->buffer[_row]; }
    RfModule &rfRow() const { return *_shard->rf[_row]; }
    NodeStats &statsRow() const { return _shard->stats[_row]; }

    /** Report a completed phase to the attached observer, if any. */
    void notifyPhase(NodeObserver::Phase phase, Tick start,
                     Tick duration, Energy energy);

    /** Add @p n fresh pending packages (age 0). */
    void pushPending(int n);

    /** Remove up to @p n pending packages, oldest first. */
    int popOldestPending(int n);

    /**
     * Spend @p e, drawing the FIOS direct budget first when
     * @p direct_eligible, then the capacitor (with discharge loss).
     * @return true if fully paid; false leaves state unchanged.
     */
    bool spend(Energy e, bool direct_eligible);

    /** Whether @p e is affordable right now. */
    bool canAfford(Energy e, bool direct_eligible) const;

    /** Remaining compute time in this slot. */
    Tick remainingSlotTime() const;

    /**
     * Recompute the per-slot cost memos (slotTaskCost, slotTaskTime)
     * if stale.  The memoized expressions are pure functions of the
     * last slot income and fixed configuration, so caching them per
     * slot returns bit-identical values while the classify/balance/
     * execute paths query them many times per slot.
     */
    void refreshSlotCosts() const;

    /**
     * Trace income over [from, to).  Analytic/cached traces answer
     * integrate() directly; sampled traces stream through _cursor so
     * adjacent windows (gap + slot, slot after slot) sample each grid
     * point once instead of re-evaluating every shared boundary.
     */
    Energy accrueIncome(Tick from, Tick to);

    Config _cfg;
    std::unique_ptr<PowerTrace> _trace; // neofog-lint: allow(snapshot): the power trace is rebuilt from the scenario on resume; its sampling cursor is reset, not archived
    std::optional<TraceCursor> _cursor;
    Rng _rng;

    FrontEnd _frontend; // neofog-lint: allow(snapshot): stateless facade; the sensor/buffer state it fronts lives in the shard rows archived above
    std::unique_ptr<Processor> _cpu; // neofog-lint: allow(snapshot): stateless strategy object; per-slot compute state lives in the shard rows archived above

    /** Private shard of a standalone node (null for chain nodes). */
    std::unique_ptr<NodeShard> _ownShard; // neofog-lint: allow(snapshot): shard storage is re-created at construction; the row contents are archived via the s.*[_row] fields above
    /** The shard holding this node's mutable state... */
    NodeShard *_shard = nullptr;
    /** ...at this row. */
    std::uint32_t _row = 0;

    // Construction-time cost constants: pure functions of the fixed
    // node configuration (the RF transmit cost, the sensor/buffer
    // sampling cost, the processor wake cost carry no mutable state).
    bool _traceFast = false;        ///< _trace->hasFastIntegrate() // neofog-lint: allow(snapshot): construction-time cost constant (pure function of the fixed node configuration)
    Energy _wakeCostConst;          ///< wakeCost() // neofog-lint: allow(snapshot): construction-time cost constant (pure function of the fixed node configuration)
    Energy _sampleCostConst;        ///< sampleCost() // neofog-lint: allow(snapshot): construction-time cost constant (pure function of the fixed node configuration)
    Energy _txPackageEnergy;        ///< mode-payload tx energy // neofog-lint: allow(snapshot): construction-time cost constant (pure function of the fixed node configuration)
    Tick _txCompressedDuration = 0; ///< result-package tx airtime // neofog-lint: allow(snapshot): construction-time cost constant (pure function of the fixed node configuration)

    NodeObserver *_observer = nullptr; // neofog-lint: allow(snapshot): non-owning observer hook, re-attached by the harness after resume; never part of simulation state
};

} // namespace neofog

#endif // NEOFOG_NODE_NODE_HH
