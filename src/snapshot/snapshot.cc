#include "snapshot/snapshot.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/report_io.hh"
#include "snapshot/archive.hh"

namespace neofog::snapshot {

namespace {

namespace fs = std::filesystem;

std::string
toHex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
parseHex64(const std::string &s, const std::string &what)
{
    if (s.size() != 16 ||
        s.find_first_not_of("0123456789abcdef") != std::string::npos)
        fatal("snapshot header field '", what,
              "' is not a 16-digit hex hash: '", s, "'");
    std::uint64_t v = 0;
    for (const char c : s)
        v = (v << 4) |
            static_cast<std::uint64_t>(
                c <= '9' ? c - '0' : c - 'a' + 10);
    return v;
}

/** Header field lookup that fails loudly when absent. */
const report_io::JsonValue &
member(const report_io::JsonValue &obj, const char *key)
{
    const report_io::JsonValue *v = obj.find(key);
    if (v == nullptr)
        fatal("snapshot header is missing '", key, "'");
    return *v;
}

} // namespace

const Section *
Snapshot::find(std::string_view name) const
{
    for (const Section &s : sections) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::string
snapshotFileName(std::int64_t slot)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "snap-%010lld.nfsnap",
                  static_cast<long long>(slot));
    return buf;
}

void
writeSnapshot(const std::string &path, const Snapshot &snap)
{
    std::uint64_t config_hash = snap.configHash;
    if (const Section *cfg = snap.find("config"))
        config_hash = fnv1a(cfg->data);

    // Header JSON with per-section offsets (relative to header end).
    std::ostringstream header;
    {
        report_io::JsonWriter w(header);
        w.beginObject();
        w.key("schema").value(kSchema);
        w.key("slot").value(static_cast<std::uint64_t>(snap.slot));
        w.key("config_hash").value(toHex64(config_hash));
        w.key("seed").value(snap.seed);
        w.key("chains").value(snap.chains);
        w.key("sections").beginArray();
        std::uint64_t offset = 0;
        for (const Section &s : snap.sections) {
            w.beginObject();
            w.key("name").value(s.name);
            w.key("offset").value(offset);
            w.key("size").value(
                static_cast<std::uint64_t>(s.data.size()));
            w.key("hash").value(toHex64(fnv1a(s.data)));
            w.endObject();
            offset += s.data.size();
        }
        w.endArray();
        w.endObject();
    }
    const std::string header_json = header.str();

    std::string blob;
    blob.reserve(16 + header_json.size());
    blob.append(kMagic, 8);
    appendLe32(blob, kEndianMarker);
    appendLe32(blob, static_cast<std::uint32_t>(header_json.size()));
    blob.append(header_json);

    const fs::path target(path);
    std::error_code ec;
    if (target.has_parent_path())
        fs::create_directories(target.parent_path(), ec);

    // Atomic publish: a reader either sees the complete file or no
    // file, never a torn checkpoint.
    const fs::path tmp = target.string() + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open snapshot file for writing: ",
                  tmp.string());
        os.write(blob.data(),
                 static_cast<std::streamsize>(blob.size()));
        for (const Section &s : snap.sections)
            os.write(s.data.data(),
                     static_cast<std::streamsize>(s.data.size()));
        os.flush();
        if (!os)
            fatal("write failed for snapshot file: ", tmp.string());
    }
    fs::rename(tmp, target, ec);
    if (ec)
        fatal("cannot publish snapshot ", target.string(), ": ",
              ec.message());
}

Snapshot
readSnapshot(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open snapshot file: ", path);
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string blob = buf.str();

    if (blob.size() < 16)
        fatal("snapshot file ", path, " is truncated (", blob.size(),
              " bytes, need at least 16)");
    if (std::memcmp(blob.data(), kMagic, 8) != 0)
        fatal("snapshot file ", path,
              " has bad magic (not a neofog snapshot?)");
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(blob.data());
    const std::uint32_t marker = readLe32(bytes + 8);
    if (marker != kEndianMarker) {
        // A marker with reversed bytes means the file itself is fine
        // but was produced by a big-endian writer.
        std::uint32_t swapped = 0;
        for (int i = 0; i < 4; ++i)
            swapped = (swapped << 8) | ((marker >> (8 * i)) & 0xFF);
        if (swapped == kEndianMarker)
            fatal("snapshot file ", path,
                  " was written on an incompatible (big-endian) "
                  "host; refusing to reinterpret it");
        fatal("snapshot file ", path,
              " has a corrupt endianness marker");
    }
    const std::uint32_t header_len = readLe32(bytes + 12);
    if (blob.size() - 16 < header_len)
        fatal("snapshot file ", path,
              " is truncated inside its header");

    const report_io::JsonValue doc = [&] {
        try {
            return report_io::parseJson(
                std::string_view(blob).substr(16, header_len));
        } catch (const FatalError &err) {
            fatal("snapshot file ", path, " has a corrupt header: ",
                  err.what());
        }
    }();
    const std::string &schema = member(doc, "schema").asString();
    if (schema != kSchema)
        fatal("snapshot file ", path, " has schema '", schema,
              "', this build reads '", kSchema, "'");

    Snapshot snap;
    snap.slot =
        static_cast<std::int64_t>(member(doc, "slot").asU64());
    snap.configHash =
        parseHex64(member(doc, "config_hash").asString(),
                   "config_hash");
    snap.seed = member(doc, "seed").asU64();
    snap.chains = member(doc, "chains").asU64();

    const std::string_view body =
        std::string_view(blob).substr(16 + header_len);
    for (const auto &sec : member(doc, "sections").items()) {
        const std::string &name = member(sec, "name").asString();
        const std::uint64_t offset = member(sec, "offset").asU64();
        const std::uint64_t size = member(sec, "size").asU64();
        if (offset > body.size() || size > body.size() - offset)
            fatal("snapshot file ", path, " section '", name,
                  "' lies outside the file (truncated?)");
        Section out;
        out.name = name;
        out.data.assign(body.substr(offset, size));
        const std::uint64_t expect =
            parseHex64(member(sec, "hash").asString(), "hash");
        const std::uint64_t actual = fnv1a(out.data);
        if (actual != expect)
            fatal("snapshot file ", path, " section '", name,
                  "' fails its checksum (stored ", toHex64(expect),
                  ", computed ", toHex64(actual),
                  ") — refusing a corrupt resume");
        snap.sections.push_back(std::move(out));
    }

    if (const Section *cfg = snap.find("config")) {
        if (fnv1a(cfg->data) != snap.configHash)
            fatal("snapshot file ", path,
                  " config_hash does not match its config section "
                  "— header/config mismatch");
    }
    return snap;
}

std::string
latestSnapshot(const std::string &dir)
{
    std::error_code ec;
    std::int64_t best_slot = -1;
    std::string best_path;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        long long slot = 0;
        if (std::sscanf(name.c_str(), "snap-%lld.nfsnap", &slot) != 1
            || name != snapshotFileName(slot))
            continue;
        if (slot <= best_slot)
            continue;
        try {
            readSnapshot(entry.path().string());
        } catch (const FatalError &) {
            continue; // torn or corrupt candidate; keep scanning
        }
        best_slot = slot;
        best_path = entry.path().string();
    }
    return best_path;
}

std::string
resolveSnapshotPath(const std::string &path)
{
    std::error_code ec;
    if (!fs::is_directory(path, ec))
        return path;
    const std::string latest = latestSnapshot(path);
    if (latest.empty())
        fatal("no valid snapshot found in directory ", path);
    return latest;
}

} // namespace neofog::snapshot
