/**
 * @file
 * Snapshot diffing: the engine behind tools/neofog_replay.
 *
 * Because every archived field carries its full dotted path and wire
 * type (see archive.hh), two snapshots can be compared record-by-
 * record without linking any simulator component: the first diverging
 * field is reported by name ("chain0.node3.cap.stored"), with decoded
 * values and — for vectors — the first differing element index.
 * "Reports differ" debugging becomes a bisection: snapshot both runs
 * on a slot grid, diff the streams slot-by-slot, and the first
 * diverging slot + field names the subsystem that went off-script.
 */

#ifndef NEOFOG_SNAPSHOT_REPLAY_HH
#define NEOFOG_SNAPSHOT_REPLAY_HH

#include <string>

#include "snapshot/snapshot.hh"

namespace neofog::snapshot {

/** Outcome of comparing two snapshots. */
struct DiffResult
{
    bool diverged = false;
    /** Where the first divergence sits: "header" or a section name. */
    std::string where;
    /** Dotted field path of the first diverging record (may be ""). */
    std::string path;
    /** Human-readable description of the divergence. */
    std::string detail;
};

/**
 * Compare two snapshots: header fields first, then every section's
 * record stream in file order.  Returns the FIRST divergence only
 * (later differences are usually cascade effects of the first).
 */
DiffResult diffSnapshots(const Snapshot &a, const Snapshot &b);

/**
 * Compare two section payloads record-by-record.  @p where labels the
 * result; streams with different shapes (paths, types, lengths)
 * report a schema divergence.
 */
DiffResult diffSections(const std::string &where,
                        const std::string &a, const std::string &b);

} // namespace neofog::snapshot

#endif // NEOFOG_SNAPSHOT_REPLAY_HH
