/**
 * @file
 * Binary serialization archives for the snapshot subsystem.
 *
 * Components expose one symmetric template member
 *
 *     template <class Archive> void serialize(Archive &ar);
 *
 * that lists every mutable field once via `ar.io("name", field)`.
 * OutArchive encodes those calls into a byte string; InArchive replays
 * the identical call sequence and overwrites the fields.  Asymmetric
 * logic (e.g. re-materializing a derived member after load) branches on
 * `if constexpr (Archive::isLoading)`.
 *
 * The encoding is a flat stream of self-describing records:
 *
 *     [u16 path length][path bytes][u8 FieldType][payload]
 *
 * where the path is the '.'-joined scope stack plus the field name
 * ("chain0.node3.cap.stored").  Everything is explicitly little-endian;
 * doubles are stored as their IEEE-754 bit pattern so NaN payloads and
 * signed zeros round-trip exactly (resume bit-identity depends on it).
 * The interleaved paths cost bytes but buy two properties the
 * subsystem is built around: InArchive verifies every record's path
 * and type against what the loading code expects (catching version
 * skew and corruption loudly instead of misassigning bytes), and
 * tools/neofog_replay can walk any two streams field-by-field and name
 * the first divergence without linking the component code at all.
 */

#ifndef NEOFOG_SNAPSHOT_ARCHIVE_HH
#define NEOFOG_SNAPSHOT_ARCHIVE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog::snapshot {

/** Wire type of one record's payload. */
enum class FieldType : std::uint8_t
{
    Bool = 1,
    I32,
    U32,
    I64,
    U64,
    F64,      ///< IEEE-754 bit pattern as u64
    Str,      ///< u32 length + bytes
    VecBool,  ///< u64 count + count bytes
    VecI32,   ///< u64 count + 4*count
    VecU32,   ///< u64 count + 4*count
    VecU64,   ///< u64 count + 8*count
    VecF64,   ///< u64 count + 8*count (bit patterns)
    VecPoint, ///< u64 count + count * (i64 tick + f64 bits)
};

/** Display name of a wire type ("u64", "vec<f64>", ...). */
const char *fieldTypeName(FieldType type);

/** Element width of a vector type's payload; 0 for scalars/Str. */
std::size_t fieldElementSize(FieldType type);

/** FNV-1a 64-bit hash (section checksums, config fingerprint). */
std::uint64_t fnv1a(std::string_view bytes);

// Little-endian primitives, shared with the file format and replay.
void appendLe16(std::string &out, std::uint16_t v);
void appendLe32(std::string &out, std::uint32_t v);
void appendLe64(std::string &out, std::uint64_t v);
std::uint16_t readLe16(const unsigned char *p);
std::uint32_t readLe32(const unsigned char *p);
std::uint64_t readLe64(const unsigned char *p);

/** Double <-> exact bit pattern (NaN/-0.0 safe). */
std::uint64_t doubleBits(double v);
double doubleFromBits(std::uint64_t bits);

/** One decoded record (views into the underlying stream). */
struct Record
{
    std::string_view path;
    FieldType type = FieldType::Bool;
    std::string_view payload; ///< raw payload bytes, excluding header
};

/**
 * Sequential reader over a record stream.  Malformed streams (bad
 * type tag, truncated payload) raise FatalError.
 */
class RecordReader
{
  public:
    explicit RecordReader(std::string_view data) : _data(data) {}

    /** Decode the next record; false cleanly at end of stream. */
    bool next(Record &out);

    bool atEnd() const { return _pos >= _data.size(); }
    std::size_t position() const { return _pos; }

  private:
    std::string_view _data;
    std::size_t _pos = 0;
};

/** Scalar payload rendered for humans ("3.25", "true", "x12 items"). */
std::string formatPayload(FieldType type, std::string_view payload);

/**
 * Shared scope-stack bookkeeping of both archives (the path prefix
 * under which the next io() records its field).
 */
class ScopedArchive
{
  public:
    /** Enter a nested scope: subsequent names gain "name." prefixes. */
    void pushScope(std::string_view name);
    void popScope();

  protected:
    std::string path(std::string_view name) const;

  private:
    std::string _prefix;                 ///< "a.b." when nested
    std::vector<std::size_t> _scopeLens; ///< prefix length stack
};

/**
 * Serializing archive: encodes io() calls into a byte string.
 */
class OutArchive : public ScopedArchive
{
  public:
    static constexpr bool isLoading = false;

    void io(std::string_view name, bool &v);
    void io(std::string_view name, std::int32_t &v);
    void io(std::string_view name, std::uint16_t &v);
    void io(std::string_view name, std::uint32_t &v);
    void io(std::string_view name, std::int64_t &v);
    void io(std::string_view name, std::uint64_t &v);
    void io(std::string_view name, double &v);
    void io(std::string_view name, std::string &v);
    void io(std::string_view name, Energy &v);
    void io(std::string_view name, Power &v);
    void io(std::string_view name, std::vector<bool> &v);
    void io(std::string_view name, std::vector<std::int32_t> &v);
    void io(std::string_view name, std::vector<std::uint32_t> &v);
    void io(std::string_view name, std::vector<std::uint64_t> &v);
    void io(std::string_view name, std::vector<double> &v);
    void io(std::string_view name, std::vector<TimeSeries::Point> &v);

    /** Nested component: scoped recursion into T::serialize. */
    template <class T>
    void
    io(std::string_view name, T &v)
    {
        pushScope(name);
        v.serialize(*this);
        popScope();
    }

    /** The encoded stream so far. */
    const std::string &data() const { return _buf; }
    /** Move the encoded stream out (archive becomes empty). */
    std::string take() { return std::move(_buf); }

  private:
    /** Write one record header; payload appends follow. */
    void begin(std::string_view name, FieldType type);

    std::string _buf;
};

/**
 * Deserializing archive: replays an identical io() call sequence over
 * an encoded stream and overwrites the fields.  Any mismatch between
 * the stream and the expectation (path, type, premature end) is a
 * FatalError — a resume either applies completely or not at all.
 */
class InArchive : public ScopedArchive
{
  public:
    static constexpr bool isLoading = true;

    /** @param data Encoded stream; must outlive the archive. */
    explicit InArchive(std::string_view data) : _reader(data) {}

    void io(std::string_view name, bool &v);
    void io(std::string_view name, std::int32_t &v);
    void io(std::string_view name, std::uint16_t &v);
    void io(std::string_view name, std::uint32_t &v);
    void io(std::string_view name, std::int64_t &v);
    void io(std::string_view name, std::uint64_t &v);
    void io(std::string_view name, double &v);
    void io(std::string_view name, std::string &v);
    void io(std::string_view name, Energy &v);
    void io(std::string_view name, Power &v);
    void io(std::string_view name, std::vector<bool> &v);
    void io(std::string_view name, std::vector<std::int32_t> &v);
    void io(std::string_view name, std::vector<std::uint32_t> &v);
    void io(std::string_view name, std::vector<std::uint64_t> &v);
    void io(std::string_view name, std::vector<double> &v);
    void io(std::string_view name, std::vector<TimeSeries::Point> &v);

    template <class T>
    void
    io(std::string_view name, T &v)
    {
        pushScope(name);
        v.serialize(*this);
        popScope();
    }

    /** Whether every record has been consumed. */
    bool atEnd() const { return _reader.atEnd(); }

  private:
    /** Read the next record; fatal unless path+type match. */
    Record expect(std::string_view name, FieldType type);

    RecordReader _reader;
};

} // namespace neofog::snapshot

#endif // NEOFOG_SNAPSHOT_ARCHIVE_HH
