/**
 * @file
 * The neofog-snapshot-v1 checkpoint container.
 *
 * On-disk layout (all integers little-endian):
 *
 *     offset 0   magic "NFSNAP01"                      (8 bytes)
 *     offset 8   endianness marker 0x0A0B0C0D          (u32)
 *     offset 12  header length                         (u32)
 *     offset 16  JSON header                           (headerLen bytes)
 *     ...        section payloads, back to back
 *
 * The JSON header is self-describing:
 *
 *     {"schema": "neofog-snapshot-v1", "slot": S,
 *      "config_hash": "<16 hex>", "seed": N, "chains": C,
 *      "sections": [{"name": "config", "offset": 0, "size": N,
 *                    "hash": "<16 hex>"}, ...]}
 *
 * Section offsets are relative to the end of the header; every
 * section carries an FNV-1a 64 checksum, and `config_hash` repeats
 * the checksum of the "config" section (the scenario fingerprint a
 * resume is validated against).  readSnapshot() verifies magic,
 * endianness, schema tag, section bounds, and every checksum before
 * returning — a corrupt or truncated file is rejected with a
 * FatalError and never yields a partial snapshot.
 *
 * Files are written atomically (temp file + rename) so a crash during
 * a checkpoint leaves at most a stale "<name>.tmp", never a torn
 * snapshot that a later resume could trust.
 */

#ifndef NEOFOG_SNAPSHOT_SNAPSHOT_HH
#define NEOFOG_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace neofog::snapshot {

/** Schema tag of the snapshot container format. */
inline constexpr const char *kSchema = "neofog-snapshot-v1";

/** File magic (8 bytes at offset 0). */
inline constexpr const char *kMagic = "NFSNAP01";

/** Endianness marker written as a little-endian u32 at offset 8. */
inline constexpr std::uint32_t kEndianMarker = 0x0A0B0C0DU;

/** One named payload blob ("config", "system", "chain0", ...). */
struct Section
{
    std::string name;
    std::string data;
};

/** A fully validated in-memory snapshot. */
struct Snapshot
{
    std::int64_t slot = 0;        ///< first slot a resume will run
    std::uint64_t configHash = 0; ///< FNV-1a of the config section
    std::uint64_t seed = 0;       ///< scenario seed (convenience copy)
    std::uint64_t chains = 0;     ///< chain count (shard sections)
    std::vector<Section> sections;

    /** Section by name; nullptr when absent. */
    const Section *find(std::string_view name) const;
};

/** Canonical file name for a slot: "snap-0000000042.nfsnap". */
std::string snapshotFileName(std::int64_t slot);

/**
 * Serialize and atomically write @p snap to @p path, creating parent
 * directories as needed.  configHash is recomputed from the "config"
 * section when one is present.
 */
void writeSnapshot(const std::string &path, const Snapshot &snap);

/**
 * Read and fully validate a snapshot file.  Throws FatalError on any
 * corruption: bad magic, foreign endianness, truncation, schema
 * mismatch, out-of-range sections, or checksum failures.
 */
Snapshot readSnapshot(const std::string &path);

/**
 * Newest fully valid snapshot file in @p dir (highest slot whose file
 * passes readSnapshot), or "" when none qualifies.  Invalid or torn
 * candidates are skipped, so resuming "from the latest shard set"
 * survives a crash mid-checkpoint.
 */
std::string latestSnapshot(const std::string &dir);

/**
 * Resolve a user-supplied --resume argument: a file path is returned
 * as-is; a directory resolves to its latest valid snapshot.  Fatal
 * when a directory holds no valid snapshot.
 */
std::string resolveSnapshotPath(const std::string &path);

} // namespace neofog::snapshot

#endif // NEOFOG_SNAPSHOT_SNAPSHOT_HH
