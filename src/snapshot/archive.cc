#include "snapshot/archive.hh"

#include <bit>
#include <cstdio>

#include "sim/logging.hh"

namespace neofog::snapshot {

namespace {

/** Whether @p v is a valid FieldType tag. */
bool
validType(std::uint8_t v)
{
    return v >= static_cast<std::uint8_t>(FieldType::Bool) &&
           v <= static_cast<std::uint8_t>(FieldType::VecPoint);
}

std::string
quoted(std::string_view s)
{
    return "'" + std::string(s) + "'";
}

} // namespace

const char *
fieldTypeName(FieldType type)
{
    switch (type) {
      case FieldType::Bool: return "bool";
      case FieldType::I32: return "i32";
      case FieldType::U32: return "u32";
      case FieldType::I64: return "i64";
      case FieldType::U64: return "u64";
      case FieldType::F64: return "f64";
      case FieldType::Str: return "str";
      case FieldType::VecBool: return "vec<bool>";
      case FieldType::VecI32: return "vec<i32>";
      case FieldType::VecU32: return "vec<u32>";
      case FieldType::VecU64: return "vec<u64>";
      case FieldType::VecF64: return "vec<f64>";
      case FieldType::VecPoint: return "vec<point>";
    }
    return "?";
}

std::size_t
fieldElementSize(FieldType type)
{
    switch (type) {
      case FieldType::VecBool: return 1;
      case FieldType::VecI32:
      case FieldType::VecU32: return 4;
      case FieldType::VecU64:
      case FieldType::VecF64: return 8;
      case FieldType::VecPoint: return 16;
      default: return 0;
    }
}

std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

void
appendLe16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void
appendLe32(std::string &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void
appendLe64(std::string &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

std::uint16_t
readLe16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(p[0]) |
        static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint32_t
readLe32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
readLe64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
doubleBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
doubleFromBits(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

// ------------------------------------------------------- RecordReader

bool
RecordReader::next(Record &out)
{
    if (_pos >= _data.size())
        return false;
    const auto need = [&](std::size_t n) {
        if (_data.size() - _pos < n)
            fatal("snapshot record stream truncated at byte ", _pos);
    };
    const auto *base =
        reinterpret_cast<const unsigned char *>(_data.data());

    need(2);
    const std::uint16_t path_len = readLe16(base + _pos);
    _pos += 2;
    need(static_cast<std::size_t>(path_len) + 1);
    out.path = _data.substr(_pos, path_len);
    _pos += path_len;
    const std::uint8_t tag = base[_pos];
    ++_pos;
    if (!validType(tag))
        fatal("snapshot record ", quoted(out.path),
              " has invalid type tag ", static_cast<int>(tag));
    out.type = static_cast<FieldType>(tag);

    std::size_t payload = 0;
    switch (out.type) {
      case FieldType::Bool:
        payload = 1;
        break;
      case FieldType::I32:
      case FieldType::U32:
        payload = 4;
        break;
      case FieldType::I64:
      case FieldType::U64:
      case FieldType::F64:
        payload = 8;
        break;
      case FieldType::Str: {
        need(4);
        payload = 4 + readLe32(base + _pos);
        break;
      }
      default: { // vectors
        need(8);
        const std::uint64_t count = readLe64(base + _pos);
        const std::uint64_t elem = fieldElementSize(out.type);
        if (count > (_data.size() - _pos) / (elem ? elem : 1))
            fatal("snapshot record ", quoted(out.path), " claims ",
                  count, " elements past end of stream");
        payload = 8 + static_cast<std::size_t>(count * elem);
        break;
      }
    }
    need(payload);
    out.payload = _data.substr(_pos, payload);
    _pos += payload;
    return true;
}

std::string
formatPayload(FieldType type, std::string_view payload)
{
    const auto *p =
        reinterpret_cast<const unsigned char *>(payload.data());
    char buf[64];
    switch (type) {
      case FieldType::Bool:
        return payload[0] ? "true" : "false";
      case FieldType::I32:
        return std::to_string(
            static_cast<std::int32_t>(readLe32(p)));
      case FieldType::U32:
        return std::to_string(readLe32(p));
      case FieldType::I64:
        return std::to_string(
            static_cast<std::int64_t>(readLe64(p)));
      case FieldType::U64:
        return std::to_string(readLe64(p));
      case FieldType::F64: {
        const std::uint64_t bits = readLe64(p);
        std::snprintf(buf, sizeof(buf), "%.17g (0x%016llx)",
                      doubleFromBits(bits),
                      static_cast<unsigned long long>(bits));
        return buf;
      }
      case FieldType::Str:
        return "\"" + std::string(payload.substr(4)) + "\"";
      default: {
        const std::uint64_t count = readLe64(p);
        return "[" + std::to_string(count) + " elements]";
      }
    }
}

// ------------------------------------------------------ ScopedArchive

void
ScopedArchive::pushScope(std::string_view name)
{
    _scopeLens.push_back(_prefix.size());
    _prefix.append(name);
    _prefix.push_back('.');
}

void
ScopedArchive::popScope()
{
    NEOFOG_ASSERT(!_scopeLens.empty(), "popScope without pushScope");
    _prefix.resize(_scopeLens.back());
    _scopeLens.pop_back();
}

std::string
ScopedArchive::path(std::string_view name) const
{
    return _prefix + std::string(name);
}

// --------------------------------------------------------- OutArchive

void
OutArchive::begin(std::string_view name, FieldType type)
{
    const std::string full = path(name);
    if (full.size() > 0xFFFF)
        fatal("snapshot field path too long: ", full);
    appendLe16(_buf, static_cast<std::uint16_t>(full.size()));
    _buf.append(full);
    _buf.push_back(static_cast<char>(type));
}

void
OutArchive::io(std::string_view name, bool &v)
{
    begin(name, FieldType::Bool);
    _buf.push_back(v ? 1 : 0);
}

void
OutArchive::io(std::string_view name, std::int32_t &v)
{
    begin(name, FieldType::I32);
    appendLe32(_buf, static_cast<std::uint32_t>(v));
}

void
OutArchive::io(std::string_view name, std::uint16_t &v)
{
    begin(name, FieldType::U32);
    appendLe32(_buf, v);
}

void
OutArchive::io(std::string_view name, std::uint32_t &v)
{
    begin(name, FieldType::U32);
    appendLe32(_buf, v);
}

void
OutArchive::io(std::string_view name, std::int64_t &v)
{
    begin(name, FieldType::I64);
    appendLe64(_buf, static_cast<std::uint64_t>(v));
}

void
OutArchive::io(std::string_view name, std::uint64_t &v)
{
    begin(name, FieldType::U64);
    appendLe64(_buf, v);
}

void
OutArchive::io(std::string_view name, double &v)
{
    begin(name, FieldType::F64);
    appendLe64(_buf, doubleBits(v));
}

void
OutArchive::io(std::string_view name, std::string &v)
{
    if (v.size() > 0xFFFFFFFFULL)
        fatal("snapshot string field '", std::string(name),
              "' too long");
    begin(name, FieldType::Str);
    appendLe32(_buf, static_cast<std::uint32_t>(v.size()));
    _buf.append(v);
}

void
OutArchive::io(std::string_view name, Energy &v)
{
    double joules = v.joules();
    io(name, joules);
}

void
OutArchive::io(std::string_view name, Power &v)
{
    double watts = v.watts();
    io(name, watts);
}

void
OutArchive::io(std::string_view name, std::vector<bool> &v)
{
    begin(name, FieldType::VecBool);
    appendLe64(_buf, v.size());
    for (const bool b : v)
        _buf.push_back(b ? 1 : 0);
}

void
OutArchive::io(std::string_view name, std::vector<std::int32_t> &v)
{
    begin(name, FieldType::VecI32);
    appendLe64(_buf, v.size());
    for (const std::int32_t e : v)
        appendLe32(_buf, static_cast<std::uint32_t>(e));
}

void
OutArchive::io(std::string_view name, std::vector<std::uint32_t> &v)
{
    begin(name, FieldType::VecU32);
    appendLe64(_buf, v.size());
    for (const std::uint32_t e : v)
        appendLe32(_buf, e);
}

void
OutArchive::io(std::string_view name, std::vector<std::uint64_t> &v)
{
    begin(name, FieldType::VecU64);
    appendLe64(_buf, v.size());
    for (const std::uint64_t e : v)
        appendLe64(_buf, e);
}

void
OutArchive::io(std::string_view name, std::vector<double> &v)
{
    begin(name, FieldType::VecF64);
    appendLe64(_buf, v.size());
    for (const double e : v)
        appendLe64(_buf, doubleBits(e));
}

void
OutArchive::io(std::string_view name,
               std::vector<TimeSeries::Point> &v)
{
    begin(name, FieldType::VecPoint);
    appendLe64(_buf, v.size());
    for (const TimeSeries::Point &p : v) {
        appendLe64(_buf, static_cast<std::uint64_t>(p.when));
        appendLe64(_buf, doubleBits(p.value));
    }
}

// ---------------------------------------------------------- InArchive

Record
InArchive::expect(std::string_view name, FieldType type)
{
    const std::string full = path(name);
    Record rec;
    if (!_reader.next(rec))
        fatal("snapshot stream ended while expecting field '", full,
              "'");
    if (rec.path != full)
        fatal("snapshot field mismatch: stream has '",
              std::string(rec.path), "' where the loader expects '",
              full, "' (format/version skew?)");
    if (rec.type != type)
        fatal("snapshot field '", full, "' has type ",
              fieldTypeName(rec.type), ", expected ",
              fieldTypeName(type));
    return rec;
}

namespace {

const unsigned char *
payloadBytes(const Record &rec)
{
    return reinterpret_cast<const unsigned char *>(
        rec.payload.data());
}

/** Vector payload: validates exact size and returns element count. */
std::size_t
vecCount(const Record &rec)
{
    const std::uint64_t count = readLe64(payloadBytes(rec));
    const std::size_t elem = fieldElementSize(rec.type);
    if (rec.payload.size() != 8 + count * elem)
        fatal("snapshot field '", std::string(rec.path),
              "' has inconsistent vector size");
    return static_cast<std::size_t>(count);
}

} // namespace

void
InArchive::io(std::string_view name, bool &v)
{
    const Record rec = expect(name, FieldType::Bool);
    v = rec.payload[0] != 0;
}

void
InArchive::io(std::string_view name, std::int32_t &v)
{
    const Record rec = expect(name, FieldType::I32);
    v = static_cast<std::int32_t>(readLe32(payloadBytes(rec)));
}

void
InArchive::io(std::string_view name, std::uint16_t &v)
{
    const Record rec = expect(name, FieldType::U32);
    v = static_cast<std::uint16_t>(readLe32(payloadBytes(rec)));
}

void
InArchive::io(std::string_view name, std::uint32_t &v)
{
    const Record rec = expect(name, FieldType::U32);
    v = readLe32(payloadBytes(rec));
}

void
InArchive::io(std::string_view name, std::int64_t &v)
{
    const Record rec = expect(name, FieldType::I64);
    v = static_cast<std::int64_t>(readLe64(payloadBytes(rec)));
}

void
InArchive::io(std::string_view name, std::uint64_t &v)
{
    const Record rec = expect(name, FieldType::U64);
    v = readLe64(payloadBytes(rec));
}

void
InArchive::io(std::string_view name, double &v)
{
    const Record rec = expect(name, FieldType::F64);
    v = doubleFromBits(readLe64(payloadBytes(rec)));
}

void
InArchive::io(std::string_view name, std::string &v)
{
    const Record rec = expect(name, FieldType::Str);
    const std::uint32_t len = readLe32(payloadBytes(rec));
    if (rec.payload.size() != 4ULL + len)
        fatal("snapshot field '", std::string(rec.path),
              "' has inconsistent string size");
    v.assign(rec.payload.substr(4));
}

void
InArchive::io(std::string_view name, Energy &v)
{
    double joules = 0.0;
    io(name, joules);
    v = Energy::fromJoules(joules);
}

void
InArchive::io(std::string_view name, Power &v)
{
    double watts = 0.0;
    io(name, watts);
    v = Power::fromWatts(watts);
}

void
InArchive::io(std::string_view name, std::vector<bool> &v)
{
    const Record rec = expect(name, FieldType::VecBool);
    const std::size_t count = vecCount(rec);
    v.assign(count, false);
    for (std::size_t i = 0; i < count; ++i)
        v[i] = rec.payload[8 + i] != 0;
}

void
InArchive::io(std::string_view name, std::vector<std::int32_t> &v)
{
    const Record rec = expect(name, FieldType::VecI32);
    const std::size_t count = vecCount(rec);
    const unsigned char *p = payloadBytes(rec) + 8;
    v.resize(count);
    for (std::size_t i = 0; i < count; ++i)
        v[i] = static_cast<std::int32_t>(readLe32(p + 4 * i));
}

void
InArchive::io(std::string_view name, std::vector<std::uint32_t> &v)
{
    const Record rec = expect(name, FieldType::VecU32);
    const std::size_t count = vecCount(rec);
    const unsigned char *p = payloadBytes(rec) + 8;
    v.resize(count);
    for (std::size_t i = 0; i < count; ++i)
        v[i] = readLe32(p + 4 * i);
}

void
InArchive::io(std::string_view name, std::vector<std::uint64_t> &v)
{
    const Record rec = expect(name, FieldType::VecU64);
    const std::size_t count = vecCount(rec);
    const unsigned char *p = payloadBytes(rec) + 8;
    v.resize(count);
    for (std::size_t i = 0; i < count; ++i)
        v[i] = readLe64(p + 8 * i);
}

void
InArchive::io(std::string_view name, std::vector<double> &v)
{
    const Record rec = expect(name, FieldType::VecF64);
    const std::size_t count = vecCount(rec);
    const unsigned char *p = payloadBytes(rec) + 8;
    v.resize(count);
    for (std::size_t i = 0; i < count; ++i)
        v[i] = doubleFromBits(readLe64(p + 8 * i));
}

void
InArchive::io(std::string_view name,
              std::vector<TimeSeries::Point> &v)
{
    const Record rec = expect(name, FieldType::VecPoint);
    const std::size_t count = vecCount(rec);
    const unsigned char *p = payloadBytes(rec) + 8;
    v.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        v[i].when =
            static_cast<Tick>(readLe64(p + 16 * i));
        v[i].value = doubleFromBits(readLe64(p + 16 * i + 8));
    }
}

} // namespace neofog::snapshot
