#include "snapshot/replay.hh"

#include <string_view>

#include "snapshot/archive.hh"

namespace neofog::snapshot {

namespace {

/** First differing element index of two equal-typed vector payloads. */
DiffResult
diffVectors(const std::string &where, const Record &ra,
            const Record &rb)
{
    DiffResult d;
    d.diverged = true;
    d.where = where;
    d.path = std::string(ra.path);
    const auto *pa =
        reinterpret_cast<const unsigned char *>(ra.payload.data());
    const auto *pb =
        reinterpret_cast<const unsigned char *>(rb.payload.data());
    const std::uint64_t na = readLe64(pa);
    const std::uint64_t nb = readLe64(pb);
    if (na != nb) {
        d.detail = "element count " + std::to_string(na) + " vs " +
                   std::to_string(nb);
        return d;
    }
    const std::size_t elem = fieldElementSize(ra.type);
    for (std::uint64_t i = 0; i < na; ++i) {
        const std::string_view ea =
            ra.payload.substr(8 + i * elem, elem);
        const std::string_view eb =
            rb.payload.substr(8 + i * elem, elem);
        if (ea == eb)
            continue;
        d.detail = "element " + std::to_string(i) + ": ";
        if (ra.type == FieldType::VecPoint) {
            const auto *qa =
                reinterpret_cast<const unsigned char *>(ea.data());
            const auto *qb =
                reinterpret_cast<const unsigned char *>(eb.data());
            d.detail += "(tick " +
                std::to_string(
                    static_cast<std::int64_t>(readLe64(qa))) +
                ", " +
                formatPayload(FieldType::F64, ea.substr(8)) +
                ") vs (tick " +
                std::to_string(
                    static_cast<std::int64_t>(readLe64(qb))) +
                ", " +
                formatPayload(FieldType::F64, eb.substr(8)) + ")";
        } else {
            const FieldType scalar =
                ra.type == FieldType::VecBool ? FieldType::Bool
                : ra.type == FieldType::VecI32 ? FieldType::I32
                : ra.type == FieldType::VecU32 ? FieldType::U32
                : ra.type == FieldType::VecF64 ? FieldType::F64
                                               : FieldType::U64;
            if (scalar == FieldType::Bool) {
                d.detail += ea[0] ? "true vs false" : "false vs true";
            } else {
                d.detail += formatPayload(scalar, ea) + " vs " +
                            formatPayload(scalar, eb);
            }
        }
        return d;
    }
    d.detail = "payloads differ (padding?)";
    return d;
}

} // namespace

DiffResult
diffSections(const std::string &where, const std::string &a,
             const std::string &b)
{
    DiffResult d;
    RecordReader reader_a(a);
    RecordReader reader_b(b);
    Record ra;
    Record rb;
    while (true) {
        const bool has_a = reader_a.next(ra);
        const bool has_b = reader_b.next(rb);
        if (!has_a && !has_b)
            return d; // identical
        if (has_a != has_b) {
            d.diverged = true;
            d.where = where;
            d.path = std::string(has_a ? ra.path : rb.path);
            d.detail = has_a
                ? "second stream ends early (first still has '" +
                      d.path + "')"
                : "first stream ends early (second still has '" +
                      d.path + "')";
            return d;
        }
        if (ra.path != rb.path || ra.type != rb.type) {
            d.diverged = true;
            d.where = where;
            d.path = std::string(ra.path);
            d.detail = "schema divergence: '" + std::string(ra.path) +
                       "' (" + fieldTypeName(ra.type) + ") vs '" +
                       std::string(rb.path) + "' (" +
                       fieldTypeName(rb.type) + ")";
            return d;
        }
        if (ra.payload == rb.payload)
            continue;
        if (fieldElementSize(ra.type) != 0)
            return diffVectors(where, ra, rb);
        d.diverged = true;
        d.where = where;
        d.path = std::string(ra.path);
        d.detail = formatPayload(ra.type, ra.payload) + " vs " +
                   formatPayload(rb.type, rb.payload);
        return d;
    }
}

DiffResult
diffSnapshots(const Snapshot &a, const Snapshot &b)
{
    DiffResult d;
    const auto header = [&](const char *field, std::uint64_t va,
                            std::uint64_t vb) {
        d.diverged = true;
        d.where = "header";
        d.path = field;
        d.detail = std::to_string(va) + " vs " + std::to_string(vb);
    };
    if (a.slot != b.slot) {
        header("slot", static_cast<std::uint64_t>(a.slot),
               static_cast<std::uint64_t>(b.slot));
        return d;
    }
    if (a.seed != b.seed) {
        header("seed", a.seed, b.seed);
        return d;
    }
    if (a.chains != b.chains) {
        header("chains", a.chains, b.chains);
        return d;
    }
    if (a.sections.size() != b.sections.size()) {
        header("sections", a.sections.size(), b.sections.size());
        d.detail = "section count " + d.detail;
        return d;
    }
    for (std::size_t i = 0; i < a.sections.size(); ++i) {
        const Section &sa = a.sections[i];
        const Section &sb = b.sections[i];
        if (sa.name != sb.name) {
            d.diverged = true;
            d.where = "header";
            d.path = "sections[" + std::to_string(i) + "]";
            d.detail = "'" + sa.name + "' vs '" + sb.name + "'";
            return d;
        }
        const DiffResult sec = diffSections(sa.name, sa.data,
                                            sb.data);
        if (sec.diverged)
            return sec;
    }
    return d;
}

} // namespace neofog::snapshot
