/**
 * @file
 * neofog-wire-v1: the message layer between the distributed
 * coordinator and its worker processes.
 *
 * Frames travel over a Unix-domain stream socket as
 *
 *     [u32 payload length][u8 MsgType][u64 FNV-1a of payload][payload]
 *
 * (all integers little-endian, same primitives as the snapshot
 * container).  The payload is a snapshot-archive record stream
 * (snapshot/archive.hh): every field carries its dotted path and wire
 * type, so a decoder verifies each record against what it expects and
 * version skew or corruption fails loudly instead of misassigning
 * bytes.  The checksum is verified before any payload byte is decoded,
 * and a frame either decodes completely or the receiving process
 * aborts the exchange — the merge path never sees a partial message.
 *
 * Peer disappearance (a SIGKILLed worker, a dead coordinator) is a
 * distinct, *recoverable* condition: WireClosed.  The coordinator
 * catches it and respawns the worker; everything else (bad type tag,
 * checksum mismatch, truncated payload with the peer still alive)
 * stays a FatalError because it means the stream itself cannot be
 * trusted.
 */

#ifndef NEOFOG_DIST_WIRE_HH
#define NEOFOG_DIST_WIRE_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace neofog::dist {

/** Schema tag of the coordinator/worker message layer. */
inline constexpr const char *kWireSchema = "neofog-wire-v1";

/** Frame header bytes: u32 length + u8 type + u64 checksum. */
inline constexpr std::size_t kFrameHeaderBytes = 13;

/** Sanity cap on one frame's payload (a report shard is ~1 KiB). */
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/** Message kinds of the coordinator/worker protocol. */
enum class MsgType : std::uint8_t
{
    Hello = 1,    ///< worker -> coord: schema + config fingerprint
    Assign,       ///< coord -> worker: chain partition + snapshot dir
    AssignOk,     ///< worker -> coord: partition built, start slot
    Step,         ///< coord -> worker: advance to a slot barrier
    StepOk,       ///< worker -> coord: barrier reached + rotation digest
    Snapshot,     ///< coord -> worker: checkpoint the partition
    SnapshotOk,   ///< worker -> coord: checkpoint on disk
    ShardRequest, ///< coord -> worker: send the report shards
    Shard,        ///< worker -> coord: one chain's report shard
    Shutdown,     ///< coord -> worker: exit cleanly
    Bye,          ///< worker -> coord: exiting
};

/** Display name of a message type ("HELLO", "ASSIGN", ...). */
const char *msgTypeName(MsgType type);

/**
 * The peer end of the socket is gone (EOF, EPIPE, ECONNRESET).
 * Recoverable by the coordinator (respawn + resume); fatal anywhere
 * it escapes unhandled.
 */
class WireClosed : public FatalError
{
  public:
    explicit WireClosed(const std::string &what_arg)
        : FatalError(what_arg)
    {}
};

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Hello;
    std::string payload;
};

/**
 * Encode a frame into its wire bytes (header + payload).
 */
std::string encodeFrame(MsgType type, std::string_view payload);

/**
 * Decode and validate one complete frame from @p bytes.  Fatal on a
 * bad type tag, an oversize length, a truncated payload, or a
 * checksum mismatch.  @p consumed returns the frame's total size.
 */
Frame decodeFrame(std::string_view bytes, std::size_t &consumed);

/**
 * Blocking framed connection over one socket fd.  Owns the fd.
 */
class WireConn
{
  public:
    /** Wrap @p fd (a connected stream socket); takes ownership. */
    explicit WireConn(int fd) : _fd(fd) {}
    ~WireConn();

    WireConn(const WireConn &) = delete;
    WireConn &operator=(const WireConn &) = delete;

    /** Send one frame.  WireClosed when the peer is gone. */
    void send(MsgType type, std::string_view payload = {});

    /**
     * Receive one frame.  WireClosed on EOF at a frame boundary or
     * mid-frame (the peer died); FatalError on a malformed frame.
     */
    Frame recv();

    /**
     * Receive one frame and require its type.  A different type is
     * fatal (protocol desync), except WireClosed which passes through.
     */
    Frame expect(MsgType type);

    int fd() const { return _fd; }

  private:
    int _fd = -1;
};

// ------------------------------------------------------------ messages

/**
 * Handshake, worker -> coordinator: identifies the wire schema and
 * the scenario fingerprint the worker was launched with.  The
 * coordinator rejects any mismatch before assigning work.
 */
struct HelloMsg
{
    std::string schema = kWireSchema;
    std::uint64_t worker = 0;
    std::uint64_t fingerprint = 0;

    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("schema", schema);
        ar.io("worker", worker);
        ar.io("fingerprint", fingerprint);
    }
};

/**
 * Chain partition assignment, coordinator -> worker.  `resume` asks
 * the worker to continue from the newest valid snapshot in its
 * directory (falling back to a fresh start when none exists yet).
 */
struct AssignMsg
{
    std::uint64_t chainLo = 0;
    std::uint64_t chainHi = 0;
    bool resume = false;
    std::string snapshotDir;

    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("chain_lo", chainLo);
        ar.io("chain_hi", chainHi);
        ar.io("resume", resume);
        ar.io("snapshot_dir", snapshotDir);
    }
};

/** Assignment ack: the first slot the worker will execute next. */
struct AssignOkMsg
{
    std::int64_t startSlot = 0;

    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("start_slot", startSlot);
    }
};

/** Barrier instruction: run every slot strictly below `target`. */
struct StepMsg
{
    std::int64_t target = 0;

    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("target", target);
    }
};

/**
 * Barrier ack: the slot the worker now stands at, plus the FNV-1a
 * digest of its partition's NVD4Q clone rotations (the inter-chain
 * state exchanged at slot boundaries).  The coordinator recomputes
 * the expected digest from the scenario alone, so a worker that
 * drifted off the slot grid — or rotated its clone groups out of
 * phase — is caught at the very barrier it diverged.
 */
struct StepOkMsg
{
    std::int64_t slot = 0;
    std::uint64_t rotationDigest = 0;

    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("slot", slot);
        ar.io("rotation_digest", rotationDigest);
    }
};

/** Checkpoint instruction/ack: state is "after slots [0, slot)". */
struct SnapshotMsg
{
    std::int64_t slot = 0;

    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("slot", slot);
    }
};

/**
 * One chain's report shard, worker -> coordinator: the chain's global
 * index plus its SystemReport serialized as an archive record stream.
 * The coordinator merges shards with SystemReport::merge in global
 * chain order, so the double-precision sums associate exactly as the
 * single-process chain loop's do.
 */
struct ShardMsg
{
    std::uint64_t chain = 0;
    std::string blob;

    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("chain", chain);
        ar.io("blob", blob);
    }
};

/** Encode a message struct into a frame payload. */
template <class Msg>
std::string
encodeMsg(Msg msg)
{
    snapshot::OutArchive ar;
    msg.serialize(ar);
    return ar.take();
}

/**
 * Decode a frame payload into a message struct.  Any path/type
 * mismatch or trailing bytes are fatal — a message decodes completely
 * or not at all.
 */
template <class Msg>
Msg
decodeMsg(std::string_view payload)
{
    Msg msg;
    snapshot::InArchive ar(payload);
    msg.serialize(ar);
    if (!ar.atEnd())
        fatal("wire message has trailing records (version skew?)");
    return msg;
}

/**
 * Validate a worker's HELLO against the coordinator's scenario:
 * fatal on a wire-schema or config-fingerprint mismatch (a worker
 * simulating a different scenario must never contribute shards).
 */
void checkHello(const HelloMsg &hello, std::uint64_t fingerprint,
                std::uint64_t expected_worker);

} // namespace neofog::dist

#endif // NEOFOG_DIST_WIRE_HH
