#include "dist/coordinator.hh"

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

#include "balance/policy_registry.hh"
#include "dist/partition.hh"
#include "dist/wire.hh"
#include "dist/worker.hh"
#include "fog/snapshot_io.hh"
#include "sim/logging.hh"
#include "snapshot/archive.hh"
#include "snapshot/snapshot.hh"

namespace neofog::dist {

namespace {

namespace fs = std::filesystem;

/** One live worker process, as the coordinator sees it. */
struct WorkerProc
{
    pid_t pid = -1;
    std::unique_ptr<WireConn> conn;
    ChainRange range;
    /** Last slot barrier this worker is known to stand at. */
    std::int64_t slot = 0;
};

/**
 * The coordinator side of one distributed run: spawn, drive barriers,
 * recover deaths, collect shards, shut down.
 */
class Coordinator
{
  public:
    Coordinator(const ScenarioConfig &cfg, const DistOptions &opt,
                std::size_t workers)
        : _cfg(cfg), _opt(opt),
          _fingerprint(scenarioFingerprint(cfg)),
          _ranges(partitionChains(cfg.chains, workers)),
          _workers(workers)
    {}

    DistResult
    run()
    {
        // Create every worker's snapshot directory up front when
        // checkpointing: resumeDistributed() rediscovers the worker
        // count from the worker<k> layout, which must reflect ALL
        // partitions even if the coordinator dies before a slow
        // worker lands its first checkpoint (a worker with an empty
        // directory simply resumes from a fresh start).
        if (_opt.snapshotEvery > 0)
            for (std::size_t w = 0; w < _workers.size(); ++w)
                fs::create_directories(
                    workerSnapshotDir(_opt.snapshotDir, w));

        for (std::size_t w = 0; w < _workers.size(); ++w)
            spawn(w, _opt.resume);

        const std::int64_t horizon = _cfg.slotCount();
        // The same grid the single-process slot loop checkpoints on:
        // every multiple of snapshotEvery strictly inside the horizon
        // is a checkpoint barrier; the horizon itself is the final
        // barrier (stepped, never checkpointed).
        std::int64_t target = 0;
        while (target < horizon) {
            target = _opt.snapshotEvery > 0
                ? std::min<std::int64_t>(
                      target + _opt.snapshotEvery, horizon)
                : horizon;
            barrier(target);
            if (_opt.snapshotEvery > 0 && target < horizon)
                checkpoint(target);
        }

        DistResult result;
        result.report = collectAndMerge();
        result.config = _cfg;
        result.workers = _workers.size();
        result.respawns = _respawns;
        shutdown();
        return result;
    }

  private:
    /**
     * Fork worker @p w and complete HELLO/ASSIGN.  The child inherits
     * every fd the coordinator holds; it closes all of them except
     * its own socket end, so a dead coordinator reads as EOF to every
     * worker and vice versa.
     */
    void
    spawn(std::size_t w, bool resume)
    {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            fatal("socketpair failed: worker ", w);
        const pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork failed: worker ", w);
        if (pid == 0) {
            // Child: drop every coordinator-side fd (earlier workers'
            // sockets included), serve the partition, and _Exit —
            // never unwind into the parent's atexit/destructor state.
            ::close(fds[0]);
            for (const WorkerProc &other : _workers)
                if (other.conn)
                    ::close(other.conn->fd());
            std::_Exit(runWorkerLoop(fds[1], _cfg, w));
        }
        ::close(fds[1]);
        WorkerProc &proc = _workers[w];
        proc.pid = pid;
        proc.conn = std::make_unique<WireConn>(fds[0]);
        proc.range = _ranges[w];
        proc.slot = 0;

        const auto hello = decodeMsg<HelloMsg>(
            proc.conn->expect(MsgType::Hello).payload);
        checkHello(hello, _fingerprint, w);

        AssignMsg assign;
        assign.chainLo = proc.range.lo;
        assign.chainHi = proc.range.hi;
        assign.resume = resume;
        assign.snapshotDir = workerSnapshotDir(_opt.snapshotDir, w);
        proc.conn->send(MsgType::Assign, encodeMsg(assign));
        const auto ok = decodeMsg<AssignOkMsg>(
            proc.conn->expect(MsgType::AssignOk).payload);
        proc.slot = ok.startSlot;
    }

    /**
     * Replace a dead worker: reap it, respawn in resume mode (its
     * snapshot directory holds its last checkpoint), and step it back
     * to @p target.  Bounded by the respawn budget.
     */
    void
    recover(std::size_t w, std::int64_t target)
    {
        if (++_respawns > static_cast<std::size_t>(
                std::max(0, _opt.maxRespawns)))
            fatal("worker ", w, " died and the respawn budget of ",
                  _opt.maxRespawns, " is exhausted — giving up");
        WorkerProc &proc = _workers[w];
        warn("worker ", w, " (pid ", proc.pid,
             ") died; respawning and resuming from ",
             workerSnapshotDir(_opt.snapshotDir, w));
        ::kill(proc.pid, SIGKILL);
        int status = 0;
        ::waitpid(proc.pid, &status, 0);
        proc.conn.reset();
        spawn(w, true);
        stepWorker(w, target);
    }

    /** Verify a STEP_OK: right slot, rotations in phase. */
    void
    checkStepOk(std::size_t w, const StepOkMsg &ok,
                std::int64_t expected)
    {
        const WorkerProc &proc = _workers[w];
        if (ok.slot != expected)
            fatal("worker ", w, " stepped to slot ", ok.slot,
                  ", barrier expected ", expected);
        const std::uint64_t want =
            expectedRotationDigest(_cfg, proc.range, expected);
        if (ok.rotationDigest != want)
            fatal("worker ", w, " NVD4Q rotation digest diverged at "
                  "slot ", expected,
                  " — clone groups out of phase, refusing to merge");
    }

    /** Synchronous step of one worker (the recovery path). */
    void
    stepWorker(std::size_t w, std::int64_t target)
    {
        for (;;) {
            WorkerProc &proc = _workers[w];
            const std::int64_t expected =
                std::max(target, proc.slot);
            try {
                StepMsg step;
                step.target = target;
                proc.conn->send(MsgType::Step, encodeMsg(step));
                const auto ok = decodeMsg<StepOkMsg>(
                    proc.conn->expect(MsgType::StepOk).payload);
                checkStepOk(w, ok, expected);
                proc.slot = expected;
                return;
            } catch (const WireClosed &) {
                recover(w, target);
                return;
            }
        }
    }

    /**
     * Step every worker to @p target: broadcast the STEPs first so the
     * partitions run concurrently, then collect the acks.  A death in
     * either phase is recovered synchronously.
     */
    void
    barrier(std::int64_t target)
    {
        std::vector<bool> dead(_workers.size(), false);
        for (std::size_t w = 0; w < _workers.size(); ++w) {
            try {
                StepMsg step;
                step.target = target;
                _workers[w].conn->send(MsgType::Step, encodeMsg(step));
            } catch (const WireClosed &) {
                dead[w] = true;
            }
        }
        for (std::size_t w = 0; w < _workers.size(); ++w) {
            if (dead[w]) {
                recover(w, target);
                continue;
            }
            const std::int64_t expected =
                std::max(target, _workers[w].slot);
            try {
                const auto ok = decodeMsg<StepOkMsg>(
                    _workers[w].conn->expect(MsgType::StepOk).payload);
                checkStepOk(w, ok, expected);
                _workers[w].slot = expected;
            } catch (const WireClosed &) {
                recover(w, target);
            }
        }
    }

    /** Have every worker standing exactly at @p slot checkpoint it. */
    void
    checkpoint(std::int64_t slot)
    {
        for (std::size_t w = 0; w < _workers.size(); ++w) {
            // A worker resumed ahead of this barrier already holds a
            // newer checkpoint; asking it to archive an older slot
            // would be wrong, so it is skipped until barriers pass it.
            if (_workers[w].slot != slot)
                continue;
            try {
                SnapshotMsg req;
                req.slot = slot;
                _workers[w].conn->send(MsgType::Snapshot,
                                       encodeMsg(req));
                const auto ok = decodeMsg<SnapshotMsg>(
                    _workers[w].conn->expect(
                        MsgType::SnapshotOk).payload);
                if (ok.slot != slot)
                    fatal("worker ", w, " checkpointed slot ",
                          ok.slot, ", asked for ", slot);
            } catch (const WireClosed &) {
                // Recovery re-runs to the barrier; the missed
                // checkpoint only costs recompute on a later death.
                recover(w, slot);
            }
        }
    }

    /**
     * Collect every chain's report shard and fold them in global
     * chain order — the exact merge the single-process run() does,
     * so the totals associate identically for any worker count.
     */
    SystemReport
    collectAndMerge()
    {
        const std::int64_t horizon = _cfg.slotCount();
        std::vector<SystemReport> shards(_cfg.chains);
        for (std::size_t w = 0; w < _workers.size(); ++w) {
            for (;;) {
                try {
                    collectWorkerShards(w, shards);
                    break;
                } catch (const WireClosed &) {
                    recover(w, horizon);
                }
            }
        }
        SystemReport report;
        report.idealPackages = _cfg.idealPackages();
        for (const SystemReport &shard : shards)
            report.merge(shard);
        return report;
    }

    /** One worker's SHARD_REQUEST round trip. */
    void
    collectWorkerShards(std::size_t w, std::vector<SystemReport> &out)
    {
        WorkerProc &proc = _workers[w];
        proc.conn->send(MsgType::ShardRequest);
        for (std::size_t c = proc.range.lo; c < proc.range.hi; ++c) {
            const auto shard = decodeMsg<ShardMsg>(
                proc.conn->expect(MsgType::Shard).payload);
            if (shard.chain != c)
                fatal("worker ", w, " sent shard for chain ",
                      shard.chain, ", expected chain ", c);
            snapshot::InArchive ar(shard.blob);
            ar.pushScope("shard");
            out[c].serialize(ar);
            ar.popScope();
            if (!ar.atEnd())
                fatal("worker ", w, " chain ", c,
                      " shard has trailing records");
        }
    }

    /** Orderly SHUTDOWN/BYE and reap; a dead worker is already gone. */
    void
    shutdown()
    {
        for (WorkerProc &proc : _workers) {
            if (!proc.conn)
                continue;
            try {
                proc.conn->send(MsgType::Shutdown);
                proc.conn->expect(MsgType::Bye);
            } catch (const WireClosed &) {
                // Exited before the BYE flushed; the reap below
                // still collects it.
            }
            int status = 0;
            ::waitpid(proc.pid, &status, 0);
            proc.conn.reset();
        }
    }

    ScenarioConfig _cfg;
    DistOptions _opt;
    std::uint64_t _fingerprint = 0;
    std::vector<ChainRange> _ranges;
    std::vector<WorkerProc> _workers;
    std::size_t _respawns = 0;
};

/** Shared argument validation of both entry points. */
void
validateOptions(const DistOptions &opt)
{
    if (opt.snapshotEvery < 0)
        fatal("--snapshot-every must be >= 0");
    if (opt.snapshotDir.empty())
        fatal("distributed runs need a snapshot directory");
}

} // namespace

DistResult
runDistributed(const ScenarioConfig &cfg, const DistOptions &opt)
{
    validateOptions(opt);
    ScenarioConfig canonical = cfg;
    // Canonicalize before fingerprinting/forking so the HELLO check
    // compares like with like and bad specs fail before any fork.
    canonical.balancerPolicy =
        PolicyRegistry::instance().canonicalSpec(cfg.balancerPolicy);
    if (canonical.chains == 0)
        fatal("scenario needs at least one chain");

    const std::size_t workers =
        clampWorkers(opt.workersRequested, canonical.chains);
    Coordinator coordinator(canonical, opt, workers);
    return coordinator.run();
}

DistResult
resumeDistributed(const ScenarioConfig &host, const DistOptions &opt)
{
    validateOptions(opt);

    // The archived scenario lives in every worker's checkpoints;
    // worker 0 always exists and always owns a non-empty range.
    const std::string latest =
        snapshot::latestSnapshot(workerSnapshotDir(opt.snapshotDir, 0));
    if (latest.empty())
        fatal("no valid worker snapshot under ", opt.snapshotDir,
              " — nothing to resume (expected ",
              workerSnapshotDir(opt.snapshotDir, 0),
              "/snap-*.nfsnap)");
    const snapshot::Snapshot snap = snapshot::readSnapshot(latest);
    const snapshot::Section *config = snap.find("config");
    if (config == nullptr)
        fatal("snapshot ", latest, " has no config section");
    ScenarioConfig cfg = deserializeScenarioBlob(config->data);
    cfg.threads = host.threads;
    cfg.batchSlotKernel = host.batchSlotKernel;
    cfg.simdKernel = host.simdKernel;
    cfg.pinThreads = host.pinThreads;

    // The partition layout is baked into the worker directories; the
    // run must resume at the same worker count it checkpointed at.
    std::size_t found = 0;
    while (fs::is_directory(
               workerSnapshotDir(opt.snapshotDir, found)))
        ++found;
    if (found == 0)
        fatal("no worker directories under ", opt.snapshotDir);
    const std::size_t expected =
        clampWorkers(opt.workersRequested, cfg.chains);
    if (opt.workersRequested != 0 && expected != found)
        fatal("snapshot directory ", opt.snapshotDir, " holds ",
              found, " worker partitions but --workers asked for ",
              expected, " — resume with --workers ", found,
              " (or 0 to rediscover)");

    DistOptions resumed = opt;
    resumed.workersRequested = static_cast<long long>(found);
    resumed.resume = true;
    return runDistributed(cfg, resumed);
}

} // namespace neofog::dist
