#include "dist/worker.hh"

#include <memory>
#include <string>

#include "dist/wire.hh"
#include "fog/fog_system.hh"
#include "fog/snapshot_io.hh"
#include "sim/logging.hh"
#include "snapshot/snapshot.hh"

namespace neofog::dist {

namespace {

/**
 * Build the partition system an ASSIGN describes: a resume assignment
 * continues from the newest valid snapshot in the worker's directory
 * (a respawned replacement after a kill), falling back to a fresh
 * start when none was written yet.
 */
std::unique_ptr<FogSystem>
buildPartition(const ScenarioConfig &cfg, const AssignMsg &assign)
{
    const auto lo = static_cast<std::size_t>(assign.chainLo);
    const auto hi = static_cast<std::size_t>(assign.chainHi);
    if (assign.resume) {
        const std::string latest =
            snapshot::latestSnapshot(assign.snapshotDir);
        if (!latest.empty())
            return FogSystem::resumePartition(latest, cfg, lo, hi);
    }
    return std::make_unique<FogSystem>(cfg, lo, hi);
}

int
serve(WireConn &conn, const ScenarioConfig &cfg,
      std::size_t worker_index)
{
    HelloMsg hello;
    hello.worker = worker_index;
    hello.fingerprint = scenarioFingerprint(cfg);
    conn.send(MsgType::Hello, encodeMsg(hello));

    const auto assign =
        decodeMsg<AssignMsg>(conn.expect(MsgType::Assign).payload);
    if (assign.chainLo >= assign.chainHi)
        fatal("worker ", worker_index, " assigned empty chain range [",
              assign.chainLo, ", ", assign.chainHi, ")");

    // The coordinator drives every checkpoint explicitly (SNAPSHOT at
    // its barriers), so the slot loop's own trigger stays disabled;
    // saveSnapshot still writes into this worker's private directory.
    ScenarioConfig local = cfg;
    local.snapshot.everySlots = 0;
    local.snapshot.dir = assign.snapshotDir;

    std::unique_ptr<FogSystem> system = buildPartition(local, assign);
    std::int64_t cur = system->resumeSlot();

    AssignOkMsg ok;
    ok.startSlot = cur;
    conn.send(MsgType::AssignOk, encodeMsg(ok));

    for (;;) {
        const Frame frame = conn.recv();
        switch (frame.type) {
          case MsgType::Step: {
            // A target at or behind the current slot is a no-op: a
            // worker resumed from a late snapshot simply waits while
            // the barrier schedule catches up to it.
            const auto step = decodeMsg<StepMsg>(frame.payload);
            if (step.target > cur) {
                system->runWindow(cur, step.target);
                cur = step.target;
            }
            StepOkMsg done;
            done.slot = cur;
            done.rotationDigest = system->rotationDigest();
            conn.send(MsgType::StepOk, encodeMsg(done));
            break;
          }
          case MsgType::Snapshot: {
            const auto req = decodeMsg<SnapshotMsg>(frame.payload);
            if (req.slot != cur)
                fatal("worker ", worker_index, " at slot ", cur,
                      " told to checkpoint slot ", req.slot);
            system->saveSnapshot(cur);
            SnapshotMsg done;
            done.slot = cur;
            conn.send(MsgType::SnapshotOk, encodeMsg(done));
            break;
          }
          case MsgType::ShardRequest: {
            system->finalizeShards();
            const std::size_t lo = system->chainLo();
            const std::size_t n = system->chainHi() - lo;
            for (std::size_t i = 0; i < n; ++i) {
                ShardMsg shard;
                shard.chain = lo + i;
                shard.blob = system->shardBlob(i);
                conn.send(MsgType::Shard, encodeMsg(std::move(shard)));
            }
            break;
          }
          case MsgType::Shutdown:
            conn.send(MsgType::Bye);
            return 0;
          default:
            fatal("worker ", worker_index,
                  " received unexpected ", msgTypeName(frame.type));
        }
    }
}

} // namespace

int
runWorkerLoop(int fd, const ScenarioConfig &cfg,
              std::size_t worker_index)
{
    WireConn conn(fd);
    try {
        return serve(conn, cfg, worker_index);
    } catch (const WireClosed &) {
        // Coordinator gone: nothing to report to, exit quietly.  The
        // snapshot directory keeps whatever progress was checkpointed.
        return 1;
    } catch (const FatalError &err) {
        warn("worker ", worker_index, ": ", err.what());
        return 2;
    }
}

} // namespace neofog::dist
