/**
 * @file
 * The distributed worker loop: one forked process simulating one
 * contiguous chain partition under coordinator control.
 *
 * A worker is a pure servant of the wire protocol (dist/wire.hh): it
 * introduces itself with HELLO (schema + scenario fingerprint), waits
 * for its ASSIGN (chain range, snapshot directory, resume flag),
 * builds or resumes a partition FogSystem, then serves STEP /
 * SNAPSHOT / SHARD_REQUEST / SHUTDOWN until told to exit.  It never
 * decides barriers or checkpoints itself — the coordinator owns the
 * schedule, so a respawned replacement re-walks the identical slot
 * grid from its latest checkpoint.
 */

#ifndef NEOFOG_DIST_WORKER_HH
#define NEOFOG_DIST_WORKER_HH

#include <cstddef>

#include "fog/scenario.hh"

namespace neofog::dist {

/**
 * Serve the coordinator on @p fd until SHUTDOWN (returns 0), the
 * coordinator vanishes (returns 1), or a fatal protocol/simulation
 * error (returns 2).  @p cfg is the scenario the worker process was
 * launched with; host-local knobs (threads, simdKernel, ...) apply
 * inside this worker.  The caller is a freshly forked child and must
 * `_Exit` with the returned code — never unwind into the parent's
 * atexit/destructor state.
 */
int runWorkerLoop(int fd, const ScenarioConfig &cfg,
                  std::size_t worker_index);

} // namespace neofog::dist

#endif // NEOFOG_DIST_WORKER_HH
