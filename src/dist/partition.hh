/**
 * @file
 * Chain partitioning for the distributed coordinator/worker runtime.
 *
 * Chains are mutually independent (results aggregate; see DESIGN.md,
 * "Threading and determinism model"), so the partition is the whole
 * distribution story: worker w owns the contiguous global chain range
 * [w*C/W, (w+1)*C/W) — the same static split parallelForChunked uses
 * for threads — and simulates it over the full horizon.  Contiguity
 * matters twice: each worker's snapshot sections form one dense chain
 * interval (resumable in isolation), and the coordinator can merge
 * shards in global chain order by walking workers left to right.
 */

#ifndef NEOFOG_DIST_PARTITION_HH
#define NEOFOG_DIST_PARTITION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fog/scenario.hh"

namespace neofog::dist {

/** One worker's contiguous global chain range [lo, hi). */
struct ChainRange
{
    std::size_t lo = 0;
    std::size_t hi = 0;

    std::size_t size() const { return hi - lo; }
    bool contains(std::size_t chain) const
    { return chain >= lo && chain < hi; }
};

/**
 * Split @p chains into @p workers contiguous ranges, worker w getting
 * [w*chains/workers, (w+1)*chains/workers).  Ranges cover every chain
 * exactly once and differ in size by at most one.  Workers beyond the
 * chain count get empty ranges.
 */
std::vector<ChainRange> partitionChains(std::size_t chains,
                                        std::size_t workers);

/**
 * Sanitize a requested worker count the way ThreadPool sanitizes
 * thread counts: 0 means one worker per hardware thread, negative
 * values warn and clamp to 1, absurd values warn and clamp to
 * max(256, 2 x hardware threads).  The result is further capped at
 * @p chains (an empty partition buys nothing but fork overhead) with
 * a floor of 1.  Results never depend on the worker count.
 */
std::size_t clampWorkers(long long requested, std::size_t chains);

/**
 * The FNV-1a digest of the NVD4Q clone-group rotations a partition
 * must hold *after* running slots [0, slot): for each chain in
 * [range.lo, range.hi), the chain index (LE64) followed by each
 * group's rotation (LE32).  Rotation is a pure function of the slot
 * grid (Algorithm 2 rotates every membership interval regardless of
 * energy state), so the coordinator computes the expectation from the
 * scenario alone and cross-checks every worker at every barrier —
 * the wire carries the inter-chain virtualization state, and this is
 * the proof it stayed in phase.
 */
std::uint64_t expectedRotationDigest(const ScenarioConfig &cfg,
                                     const ChainRange &range,
                                     std::int64_t slot);

/** Worker @p w's snapshot subdirectory under the coordinator's dir. */
std::string workerSnapshotDir(const std::string &base, std::size_t w);

} // namespace neofog::dist

#endif // NEOFOG_DIST_PARTITION_HH
