#include "dist/partition.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"
#include "snapshot/archive.hh"

namespace neofog::dist {

std::vector<ChainRange>
partitionChains(std::size_t chains, std::size_t workers)
{
    if (workers == 0)
        fatal("partitionChains: worker count must be >= 1");
    std::vector<ChainRange> ranges(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        ranges[w].lo = w * chains / workers;
        ranges[w].hi = (w + 1) * chains / workers;
    }
    return ranges;
}

std::size_t
clampWorkers(long long requested, std::size_t chains)
{
    const auto hw = static_cast<long long>(ThreadPool::hardwareThreads());
    const long long cap = std::max<long long>(256, 2 * hw);
    long long workers = requested;
    if (workers == 0) {
        workers = hw;
    } else if (workers < 0) {
        warn("--workers ", requested, " is negative; running 1 worker");
        workers = 1;
    } else if (workers > cap) {
        warn("--workers ", requested, " clamped to ", cap,
             " (results never depend on the worker count)");
        workers = cap;
    }
    // More workers than chains buys nothing but fork overhead.
    if (chains > 0 && workers > static_cast<long long>(chains))
        workers = static_cast<long long>(chains);
    return static_cast<std::size_t>(std::max<long long>(1, workers));
}

std::uint64_t
expectedRotationDigest(const ScenarioConfig &cfg, const ChainRange &range,
                       std::int64_t slot)
{
    // Mirror ChainEngine::updateMembership: slots 1..slot-1 rotate the
    // mux>1 groups whenever slot_index % every == 0, and
    // CloneGroup::rotateMembership is an unbounded increment.
    std::int64_t rotation = 0;
    if (cfg.membershipUpdateInterval > 0 && cfg.multiplexing > 1 &&
        slot > 0) {
        const std::int64_t every =
            cfg.membershipUpdateInterval / cfg.slotInterval;
        if (every > 0)
            rotation = (slot - 1) / every;
    }
    std::string bytes;
    for (std::size_t c = range.lo; c < range.hi; ++c) {
        snapshot::appendLe64(bytes, static_cast<std::uint64_t>(c));
        for (std::size_t l = 0; l < cfg.nodesPerChain; ++l)
            snapshot::appendLe32(
                bytes, static_cast<std::uint32_t>(rotation));
    }
    return snapshot::fnv1a(bytes);
}

std::string
workerSnapshotDir(const std::string &base, std::size_t w)
{
    return base + "/worker" + std::to_string(w);
}

} // namespace neofog::dist
