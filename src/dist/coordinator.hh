/**
 * @file
 * The distributed coordinator: forks N worker processes, partitions
 * the chains across them, drives the slot-barrier schedule over the
 * neofog-wire-v1 protocol, survives worker deaths by respawn+resume,
 * and merges the per-chain report shards in global chain order.
 *
 * Determinism contract: runDistributed() returns a SystemReport
 * bit-identical (registry operator==) to FogSystem::run() on the same
 * scenario, for any worker count, any per-worker thread count, and
 * across any number of worker kills — chain c always runs on its own
 * pre-forked RNG stream over the full horizon, and the coordinator
 * folds the per-chain shards left-to-right exactly as the
 * single-process merge loop does (double addition is non-associative,
 * so per-partition pre-merging would break bit-identity; per-chain
 * shards on the wire are what make the merge order worker-count
 * independent).
 */

#ifndef NEOFOG_DIST_COORDINATOR_HH
#define NEOFOG_DIST_COORDINATOR_HH

#include <cstdint>
#include <string>

#include "fog/scenario.hh"
#include "fog/system_report.hh"

namespace neofog::dist {

/** Host-side options of one distributed run. */
struct DistOptions
{
    /** Requested worker processes (clamped; see clampWorkers). */
    long long workersRequested = 1;

    /**
     * Checkpoint cadence in slots (the slot-barrier grid): every
     * worker snapshots its partition at each multiple.  0 disables
     * checkpointing — the run has a single barrier at the horizon.
     */
    std::int64_t snapshotEvery = 0;

    /**
     * Base snapshot directory; worker w checkpoints into
     * "<dir>/worker<w>" (see workerSnapshotDir).
     */
    std::string snapshotDir = ".";

    /**
     * Start workers in resume mode: each continues from the newest
     * valid snapshot in its directory (fresh start when none exists).
     * resumeDistributed() sets this; fresh runs leave it false.
     */
    bool resume = false;

    /**
     * Respawn budget across the whole run: a worker death beyond this
     * many respawns is fatal (a persistently crashing partition would
     * otherwise loop forever).
     */
    int maxRespawns = 8;
};

/** Outcome of a distributed run. */
struct DistResult
{
    SystemReport report;
    /** The scenario actually run (canonicalized balancer spec). */
    ScenarioConfig config;
    /** Worker processes used (after clamping). */
    std::size_t workers = 0;
    /** Worker deaths recovered by respawn + resume. */
    std::size_t respawns = 0;
};

/**
 * Run @p cfg to the horizon across forked worker processes.  The
 * calling process must be effectively single-threaded at the call
 * (fork duplicates only the calling thread); FogSystem thread pools
 * live only inside the workers.  Fatal on protocol corruption, config
 * mismatch, or an exhausted respawn budget.
 */
DistResult runDistributed(const ScenarioConfig &cfg,
                          const DistOptions &opt);

/**
 * Resume a distributed run from @p opt.snapshotDir (the base
 * directory of a previous runDistributed with checkpointing): the
 * scenario is rebuilt from worker 0's newest snapshot, the worker
 * count is rediscovered from the worker<k> subdirectories (and must
 * match opt.workersRequested unless that is 0), and each worker
 * continues from its own latest checkpoint.  @p host supplies the
 * host-local knobs (threads, batchSlotKernel, simdKernel,
 * pinThreads); everything else comes from the archived scenario.
 */
DistResult resumeDistributed(const ScenarioConfig &host,
                             const DistOptions &opt);

} // namespace neofog::dist

#endif // NEOFOG_DIST_COORDINATOR_HH
