#include "dist/wire.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace neofog::dist {

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello: return "HELLO";
      case MsgType::Assign: return "ASSIGN";
      case MsgType::AssignOk: return "ASSIGN_OK";
      case MsgType::Step: return "STEP";
      case MsgType::StepOk: return "STEP_OK";
      case MsgType::Snapshot: return "SNAPSHOT";
      case MsgType::SnapshotOk: return "SNAPSHOT_OK";
      case MsgType::ShardRequest: return "SHARD_REQUEST";
      case MsgType::Shard: return "SHARD";
      case MsgType::Shutdown: return "SHUTDOWN";
      case MsgType::Bye: return "BYE";
    }
    return "?";
}

namespace {

bool
validType(std::uint8_t raw)
{
    return raw >= static_cast<std::uint8_t>(MsgType::Hello) &&
           raw <= static_cast<std::uint8_t>(MsgType::Bye);
}

} // namespace

std::string
encodeFrame(MsgType type, std::string_view payload)
{
    if (payload.size() > kMaxPayloadBytes)
        fatal("wire frame payload of ", payload.size(),
              " bytes exceeds the ", kMaxPayloadBytes, "-byte cap");
    std::string out;
    out.reserve(kFrameHeaderBytes + payload.size());
    snapshot::appendLe32(out,
                         static_cast<std::uint32_t>(payload.size()));
    out.push_back(static_cast<char>(type));
    snapshot::appendLe64(out, snapshot::fnv1a(payload));
    out.append(payload);
    return out;
}

Frame
decodeFrame(std::string_view bytes, std::size_t &consumed)
{
    if (bytes.size() < kFrameHeaderBytes)
        fatal("wire frame truncated: ", bytes.size(),
              " bytes, need a ", kFrameHeaderBytes, "-byte header");
    const auto *p = reinterpret_cast<const unsigned char *>(bytes.data());
    const std::uint32_t len = snapshot::readLe32(p);
    const std::uint8_t raw = p[4];
    const std::uint64_t sum = snapshot::readLe64(p + 5);
    if (len > kMaxPayloadBytes)
        fatal("wire frame claims a ", len, "-byte payload (cap ",
              kMaxPayloadBytes, ") — corrupt or desynced stream");
    if (!validType(raw))
        fatal("wire frame has unknown message type ",
              static_cast<unsigned>(raw),
              " — corrupt or desynced stream");
    if (bytes.size() < kFrameHeaderBytes + len)
        fatal("wire frame truncated: ",
              msgTypeName(static_cast<MsgType>(raw)), " payload is ",
              len, " bytes but only ",
              bytes.size() - kFrameHeaderBytes, " arrived");
    Frame frame;
    frame.type = static_cast<MsgType>(raw);
    frame.payload.assign(bytes.substr(kFrameHeaderBytes, len));
    if (snapshot::fnv1a(frame.payload) != sum)
        fatal("wire frame checksum mismatch on ",
              msgTypeName(frame.type),
              " — payload corrupt, refusing to decode");
    consumed = kFrameHeaderBytes + len;
    return frame;
}

WireConn::~WireConn()
{
    if (_fd >= 0)
        ::close(_fd);
}

void
WireConn::send(MsgType type, std::string_view payload)
{
    const std::string bytes = encodeFrame(type, payload);
    std::size_t off = 0;
    while (off < bytes.size()) {
        // MSG_NOSIGNAL: a dead peer yields EPIPE instead of SIGPIPE,
        // so the coordinator survives a worker that was just killed.
        const ssize_t n = ::send(_fd, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET)
                throw WireClosed("wire peer gone while sending " +
                                 std::string(msgTypeName(type)));
            fatal("wire send(", msgTypeName(type),
                  ") failed: ", std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
}

namespace {

/**
 * Read exactly @p want bytes.  EOF before the first byte is a clean
 * close (returns false); EOF mid-read means the peer died inside a
 * frame and is reported the same way — the caller treats both as
 * WireClosed, never as a short frame to decode.
 */
bool
readExact(int fd, std::string &buf, std::size_t want)
{
    buf.resize(want);
    std::size_t off = 0;
    while (off < want) {
        const ssize_t n = ::recv(fd, buf.data() + off, want - off, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == ECONNRESET)
                return false;
            fatal("wire recv failed: ", std::strerror(errno));
        }
        if (n == 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

Frame
WireConn::recv()
{
    std::string header;
    if (!readExact(_fd, header, kFrameHeaderBytes))
        throw WireClosed("wire peer closed the connection");
    const auto *p =
        reinterpret_cast<const unsigned char *>(header.data());
    const std::uint32_t len = snapshot::readLe32(p);
    if (len > kMaxPayloadBytes)
        fatal("wire frame claims a ", len, "-byte payload (cap ",
              kMaxPayloadBytes, ") — corrupt or desynced stream");
    std::string payload;
    if (len > 0 && !readExact(_fd, payload, len))
        throw WireClosed("wire peer died mid-frame");
    std::size_t consumed = 0;
    return decodeFrame(header + payload, consumed);
}

Frame
WireConn::expect(MsgType type)
{
    Frame frame = recv();
    if (frame.type != type)
        fatal("wire protocol desync: expected ", msgTypeName(type),
              ", got ", msgTypeName(frame.type));
    return frame;
}

void
checkHello(const HelloMsg &hello, std::uint64_t fingerprint,
           std::uint64_t expected_worker)
{
    if (hello.schema != kWireSchema)
        fatal("worker ", hello.worker, " speaks wire schema '",
              hello.schema, "', coordinator speaks '", kWireSchema,
              "' — mixed builds?");
    if (hello.worker != expected_worker)
        fatal("worker on the fd for index ", expected_worker,
              " introduced itself as ", hello.worker);
    if (hello.fingerprint != fingerprint)
        fatal("worker ", hello.worker, " config fingerprint ",
              hello.fingerprint, " does not match coordinator's ",
              fingerprint, " — refusing to assign chains");
}

} // namespace neofog::dist
