#include "net/mac.hh"

namespace neofog {

Mac::Mac()
    : Mac(Config{})
{
}

Mac::Mac(const Config &cfg)
    : _cfg(cfg)
{
}

MacExchange
Mac::dataHop(const RfModule &tx_rf, const RfModule &rx_rf,
             std::size_t payload_bytes) const
{
    const std::size_t frame = payload_bytes + kFrameOverheadBytes;
    MacExchange ex;
    ex.sender = tx_rf.txCost(frame);
    // Receiver listens for the frame airtime plus guard.
    ex.receiver = rx_rf.rxCost(rx_rf.airtime(frame) + _cfg.rxGuard);
    return ex;
}

MacExchange
Mac::orphanScan(const RfModule &tx_rf, const RfModule &rx_rf) const
{
    MacExchange ex;
    // A broadcasts orphan_scan...
    ex.sender = tx_rf.txCost(_cfg.orphanScanBytes + kFrameOverheadBytes);
    // ...C hears it and unicasts scan_confirm...
    ex.receiver =
        rx_rf.txCost(_cfg.scanConfirmBytes + kFrameOverheadBytes);
    // ...A listens for the confirm, then both update their dev lists
    // (NV register write, negligible time at this scale).
    ex.sender += tx_rf.rxCost(
        tx_rf.airtime(_cfg.scanConfirmBytes + kFrameOverheadBytes) +
        _cfg.rxGuard);
    return ex;
}

MacExchange
Mac::rejoin(const RfModule &recovering_rf,
            const RfModule &neighbor_rf) const
{
    MacExchange ex;
    // Recovered node broadcasts; neighbour hears and confirms.
    ex.sender = recovering_rf.txCost(_cfg.orphanScanBytes +
                                     kFrameOverheadBytes);
    ex.receiver = neighbor_rf.rxCost(
        neighbor_rf.airtime(_cfg.orphanScanBytes + kFrameOverheadBytes) +
        _cfg.rxGuard);
    ex.receiver += neighbor_rf.txCost(_cfg.devListEntryBytes +
                                      kFrameOverheadBytes);
    ex.sender += recovering_rf.rxCost(
        recovering_rf.airtime(_cfg.devListEntryBytes +
                              kFrameOverheadBytes) +
        _cfg.rxGuard);
    return ex;
}

} // namespace neofog
