#include "net/packet.hh"

namespace neofog {

std::string
packetKindName(PacketKind kind)
{
    switch (kind) {
      case PacketKind::Data: return "data";
      case PacketKind::LbInfo: return "lb-info";
      case PacketKind::LbAssign: return "lb-assign";
      case PacketKind::LbTransfer: return "lb-transfer";
      case PacketKind::CloneSync: return "clone-sync";
      case PacketKind::OrphanScan: return "orphan-scan";
      case PacketKind::ScanConfirm: return "scan-confirm";
      case PacketKind::Beacon: return "beacon";
    }
    return "?";
}

} // namespace neofog
