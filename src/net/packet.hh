/**
 * @file
 * Packet model for the chain-mesh WSN.
 *
 * Packets carry a byte size (which determines airtime and energy via
 * the RF models) and a kind.  Every data packet carries an RSSI field
 * in the real Zigbee stack; the model exposes it as link distance so
 * NVD4Q can find the closest neighbour.
 */

#ifndef NEOFOG_NET_PACKET_HH
#define NEOFOG_NET_PACKET_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace neofog {

/** What a frame is for. */
enum class PacketKind
{
    Data,        ///< sensed / fog-processed payload toward the sink
    LbInfo,      ///< load-balance state share (energy, NVP config)
    LbAssign,    ///< load-balance task assignment
    LbTransfer,  ///< raw data shipped to the assigned node
    CloneSync,   ///< NVRF state cloning (NVD4Q)
    OrphanScan,  ///< Zigbee orphan_scan broadcast
    ScanConfirm, ///< unicast confirmation during rejoin
    Beacon,      ///< slot synchronization beacon
};

/** Display name of a packet kind. */
std::string packetKindName(PacketKind kind);

/** One frame in flight. */
struct Packet
{
    PacketKind kind = PacketKind::Data;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::size_t bytes = 0;
    Tick sentAt = 0;
    /** Number of fog-processed samples the payload represents. */
    std::uint32_t fogSamples = 0;
    /** Number of raw (cloud-bound) samples the payload represents. */
    std::uint32_t rawSamples = 0;
    /** Modeled RSSI: higher = closer (negative dBm scale). */
    double rssiDbm = -60.0;
};

/** Zigbee-ish frame overhead added to every payload. */
inline constexpr std::size_t kFrameOverheadBytes = 15;

} // namespace neofog

#endif // NEOFOG_NET_PACKET_HH
