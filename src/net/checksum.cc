#include "net/checksum.hh"

namespace neofog {

std::uint16_t
crc16(const std::uint8_t *data, std::size_t length)
{
    std::uint16_t crc = 0xFFFF;
    for (std::size_t i = 0; i < length; ++i) {
        crc ^= static_cast<std::uint16_t>(data[i]) << 8;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

std::uint16_t
crc16(const std::vector<std::uint8_t> &data)
{
    return crc16(data.data(), data.size());
}

void
appendCrc16(std::vector<std::uint8_t> &frame)
{
    const std::uint16_t crc = crc16(frame);
    frame.push_back(static_cast<std::uint8_t>(crc >> 8));
    frame.push_back(static_cast<std::uint8_t>(crc & 0xFF));
}

bool
checkAndStripCrc16(std::vector<std::uint8_t> &frame)
{
    if (frame.size() < 2)
        return false;
    const std::uint16_t stored = static_cast<std::uint16_t>(
        (frame[frame.size() - 2] << 8) | frame[frame.size() - 1]);
    const std::uint16_t computed =
        crc16(frame.data(), frame.size() - 2);
    if (stored != computed)
        return false;
    frame.resize(frame.size() - 2);
    return true;
}

} // namespace neofog
