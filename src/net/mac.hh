/**
 * @file
 * Slotted MAC helpers: transmission costing, orphan-scan rejoin.
 *
 * The RTC gives all nodes a common slot grid (§2.3); within a slot,
 * adjacent chain nodes exchange frames.  This module prices the MAC
 * behaviours the paper models in §4:
 *  - a data hop (TX at the sender, RX at the receiver);
 *  - the Zigbee orphan-scan bypass when the next-hop node is dead
 *    (A broadcasts orphan_scan, C confirms, AssociatedDevList updates,
 *    then A->C directly);
 *  - the rejoin when a dead node recovers.
 */

#ifndef NEOFOG_NET_MAC_HH
#define NEOFOG_NET_MAC_HH

#include "hw/rf.hh"
#include "net/packet.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/** Two-sided cost of a MAC exchange. */
struct MacExchange
{
    RfPhase sender;
    RfPhase receiver;
};

/**
 * MAC pricing on top of concrete RF modules.
 */
class Mac
{
  public:
    struct Config
    {
        /** Payload of an orphan_scan broadcast. */
        std::size_t orphanScanBytes = 12;
        /** Payload of a scan_confirm unicast. */
        std::size_t scanConfirmBytes = 16;
        /** Payload of an AssociatedDevList update entry. */
        std::size_t devListEntryBytes = 4;
        /** Guard listening time around each slot exchange. */
        Tick rxGuard = ticksFromMs(3.0);
    };

    Mac();
    explicit Mac(const Config &cfg);

    /**
     * Cost of one data hop of @p payload_bytes from @p tx_rf to
     * @p rx_rf, including frame overhead and RX guard time.
     */
    MacExchange dataHop(const RfModule &tx_rf, const RfModule &rx_rf,
                        std::size_t payload_bytes) const;

    /**
     * Cost of the orphan-scan bypass handshake when the regular next
     * hop is dead: broadcast + confirm + dev-list update, before the
     * actual data hop to the bypass target.
     */
    MacExchange orphanScan(const RfModule &tx_rf,
                           const RfModule &rx_rf) const;

    /**
     * Cost for a recovered node to rejoin: broadcast presence, both
     * neighbours update AssociatedDevList.
     */
    MacExchange rejoin(const RfModule &recovering_rf,
                       const RfModule &neighbor_rf) const;

    const Config &config() const { return _cfg; }

  private:
    Config _cfg;
};

} // namespace neofog

#endif // NEOFOG_NET_MAC_HH
