/**
 * @file
 * Frame integrity: CRC-16/CCITT-FALSE, the checksum IEEE 802.15.4
 * (Zigbee's PHY/MAC) uses for its frame check sequence.
 *
 * The system simulator models corruption statistically (LossModel);
 * this module provides the real algorithm for payload-level tooling
 * and for users replaying recorded frames.
 */

#ifndef NEOFOG_NET_CHECKSUM_HH
#define NEOFOG_NET_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace neofog {

/**
 * CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection).
 */
std::uint16_t crc16(const std::uint8_t *data, std::size_t length);

/** Convenience overload. */
std::uint16_t crc16(const std::vector<std::uint8_t> &data);

/**
 * Append a big-endian CRC to a frame.
 */
void appendCrc16(std::vector<std::uint8_t> &frame);

/**
 * Verify and strip a trailing CRC.
 * @return true if the CRC matched (frame is shortened by 2 bytes);
 *         false leaves the frame untouched.
 */
bool checkAndStripCrc16(std::vector<std::uint8_t> &frame);

} // namespace neofog

#endif // NEOFOG_NET_CHECKSUM_HH
