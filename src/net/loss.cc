#include "net/loss.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace neofog {

LossModel::LossModel()
    : LossModel(Config{})
{
}

LossModel::LossModel(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.successRate <= 0.0 || _cfg.successRate > 1.0)
        fatal("loss model success rate must be in (0,1]");
    if (_cfg.weatherFactor <= 0.0 || _cfg.weatherFactor > 1.0)
        fatal("weather factor must be in (0,1]");
    if (_cfg.maxRetries < 0)
        fatal("negative retry count");
}

double
LossModel::effectiveRate() const
{
    return _cfg.successRate * _cfg.weatherFactor;
}

bool
LossModel::attempt(Rng &rng) const
{
    ++_attempts;
    const bool ok = rng.chance(effectiveRate());
    if (!ok)
        ++_losses;
    return ok;
}

int
LossModel::deliver(Rng &rng) const
{
    for (int tries = 1; tries <= _cfg.maxRetries + 1; ++tries) {
        if (attempt(rng))
            return tries;
    }
    return 0;
}

} // namespace neofog
