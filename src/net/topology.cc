#include "net/topology.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace neofog {

double
distance(const NodePos &a, const NodePos &b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

double
rssiAtDistance(double d_meters)
{
    // Log-distance path loss: -40 dBm at 1 m, exponent 2.7.
    const double d = std::max(d_meters, 0.1);
    return -40.0 - 27.0 * std::log10(d);
}

ChainMesh::ChainMesh(std::vector<NodePos> positions)
    : _positions(std::move(positions))
{
    if (_positions.empty())
        fatal("chain mesh needs at least one node");
}

const NodePos &
ChainMesh::position(std::size_t i) const
{
    NEOFOG_ASSERT(i < _positions.size(), "node index out of range");
    return _positions[i];
}

std::size_t
ChainMesh::closestNeighbor(std::size_t i) const
{
    NEOFOG_ASSERT(_positions.size() >= 2, "no neighbours exist");
    std::size_t best = i == 0 ? 1 : 0;
    double best_d = distance(_positions[i], _positions[best]);
    for (std::size_t j = 0; j < _positions.size(); ++j) {
        if (j == i)
            continue;
        const double d = distance(_positions[i], _positions[j]);
        if (d < best_d) {
            best_d = d;
            best = j;
        }
    }
    return best;
}

std::vector<std::size_t>
ChainMesh::neighborsInRange(std::size_t i, double range) const
{
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < _positions.size(); ++j) {
        if (j != i && distance(_positions[i], _positions[j]) <= range)
            out.push_back(j);
    }
    std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
        return distance(_positions[i], _positions[a]) <
               distance(_positions[i], _positions[b]);
    });
    return out;
}

namespace {

bool
isAlive(const std::vector<bool> &alive, std::size_t idx)
{
    return alive.empty() || alive[idx];
}

} // namespace

std::vector<std::size_t>
ChainMesh::greedyRoute(std::size_t from, std::size_t to, double range,
                       const std::vector<bool> &alive) const
{
    NEOFOG_ASSERT(from < size() && to < size(), "route endpoints");
    std::vector<std::size_t> route{from};
    std::size_t cur = from;
    while (cur != to) {
        const double cur_to_dst = distance(_positions[cur],
                                           _positions[to]);
        // Candidates: alive, in range, strictly closer to destination.
        std::size_t best = size();
        double best_local = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < size(); ++j) {
            if (j == cur || !isAlive(alive, j))
                continue;
            const double hop = distance(_positions[cur], _positions[j]);
            if (hop > range)
                continue;
            if (distance(_positions[j], _positions[to]) >=
                cur_to_dst)
                continue;
            // Zigbee locality preference: the *shortest* such hop.
            if (hop < best_local) {
                best_local = hop;
                best = j;
            }
        }
        if (best == size())
            return {}; // unreachable
        route.push_back(best);
        cur = best;
    }
    return route;
}

std::vector<std::size_t>
ChainMesh::longestHopRoute(std::size_t from, std::size_t to, double range,
                           const std::vector<bool> &alive) const
{
    NEOFOG_ASSERT(from < size() && to < size(), "route endpoints");
    std::vector<std::size_t> route{from};
    std::size_t cur = from;
    while (cur != to) {
        const double cur_to_dst = distance(_positions[cur],
                                           _positions[to]);
        std::size_t best = size();
        double best_remaining = cur_to_dst;
        for (std::size_t j = 0; j < size(); ++j) {
            if (j == cur || !isAlive(alive, j))
                continue;
            if (distance(_positions[cur], _positions[j]) > range)
                continue;
            const double remaining =
                distance(_positions[j], _positions[to]);
            if (remaining < best_remaining) {
                best_remaining = remaining;
                best = j;
            }
        }
        if (best == size())
            return {};
        route.push_back(best);
        cur = best;
    }
    return route;
}

std::size_t
ChainMesh::hopCount(const std::vector<std::size_t> &route)
{
    return route.size() <= 1 ? 0 : route.size() - 1;
}

ChainMesh
ChainMesh::makeLinear(std::size_t n, double spacing_m)
{
    NEOFOG_ASSERT(n >= 1, "empty chain");
    std::vector<NodePos> pos(n);
    for (std::size_t i = 0; i < n; ++i)
        pos[i] = {static_cast<double>(i) * spacing_m, 0.0};
    return ChainMesh(std::move(pos));
}

ChainMesh
ChainMesh::makeDenseChain(std::size_t n_logical, int density,
                          double spacing_m, double scatter_m, Rng &rng)
{
    NEOFOG_ASSERT(n_logical >= 1 && density >= 1, "dense chain shape");
    std::vector<NodePos> pos;
    pos.reserve(n_logical * static_cast<std::size_t>(density));
    for (std::size_t i = 0; i < n_logical; ++i) {
        const double anchor_x = static_cast<double>(i) * spacing_m;
        for (int k = 0; k < density; ++k) {
            // The anchor node itself sits on the line; clones scatter.
            if (k == 0) {
                pos.push_back({anchor_x, 0.0});
            } else {
                pos.push_back({anchor_x + rng.uniform(-scatter_m,
                                                      scatter_m),
                               rng.uniform(-scatter_m, scatter_m)});
            }
        }
    }
    return ChainMesh(std::move(pos));
}

} // namespace neofog
