/**
 * @file
 * Chain-mesh topology: node placement, RSSI, and greedy Zigbee routing.
 *
 * §2.3 observes that bridge/rail deployments, though nominally mesh,
 * behave as *chain meshes* because the nodes lie along a line.  Fig 7
 * shows the failure mode NVD4Q repairs: with 10 nodes a packet crosses
 * the chain in 9 hops, but naively quadrupling node density makes the
 * locality-preferring Zigbee stack route through 25 short hops.  This
 * module reproduces both the placements and the greedy
 * nearest-neighbour-toward-destination routing that yields those hop
 * counts.
 */

#ifndef NEOFOG_NET_TOPOLOGY_HH
#define NEOFOG_NET_TOPOLOGY_HH

#include <cstddef>
#include <vector>

#include "sim/rng.hh"

namespace neofog {

/** A node position in meters. */
struct NodePos
{
    double x = 0.0;
    double y = 0.0;
};

/** Euclidean distance between two positions. */
double distance(const NodePos &a, const NodePos &b);

/** Log-distance path loss RSSI (dBm) at distance d meters. */
double rssiAtDistance(double d_meters);

/**
 * A set of placed nodes with chain-mesh routing.
 */
class ChainMesh
{
  public:
    explicit ChainMesh(std::vector<NodePos> positions);

    std::size_t size() const { return _positions.size(); }
    const NodePos &position(std::size_t i) const;
    const std::vector<NodePos> &positions() const { return _positions; }

    /** Index of the node closest to @p i (by RSSI), excluding itself. */
    std::size_t closestNeighbor(std::size_t i) const;

    /** Neighbors of @p i within @p range meters, nearest first. */
    std::vector<std::size_t> neighborsInRange(std::size_t i,
                                              double range) const;

    /**
     * Greedy Zigbee-style route from @p from to @p to: each hop picks
     * the *nearest* reachable neighbour that makes forward progress
     * toward the destination (locality preference, paper Fig 7).
     *
     * @param range Radio range in meters.
     * @param alive Optional per-node liveness; dead nodes are skipped
     *        (the orphan-scan bypass).  Empty = all alive.
     * @return Node indices including both endpoints; empty if
     *         unreachable.
     */
    std::vector<std::size_t>
    greedyRoute(std::size_t from, std::size_t to, double range,
                const std::vector<bool> &alive = {}) const;

    /**
     * Route that maximizes per-hop progress (what a hop-count-aware
     * stack would do); used to contrast with greedyRoute.
     */
    std::vector<std::size_t>
    longestHopRoute(std::size_t from, std::size_t to, double range,
                    const std::vector<bool> &alive = {}) const;

    /** Hop count of a route (route.size()-1; 0 if empty/unreachable). */
    static std::size_t hopCount(const std::vector<std::size_t> &route);

    /** Evenly spaced chain of @p n nodes along the x axis. */
    static ChainMesh makeLinear(std::size_t n, double spacing_m);

    /**
     * Densified chain (Fig 7): @p n_logical anchor sites spaced
     * @p spacing_m apart, each with @p density physical nodes scattered
     * within @p scatter_m of the anchor.  Node i*density+k belongs to
     * logical site i.
     */
    static ChainMesh makeDenseChain(std::size_t n_logical, int density,
                                    double spacing_m, double scatter_m,
                                    Rng &rng);

  private:
    std::vector<NodePos> _positions;
};

} // namespace neofog

#endif // NEOFOG_NET_TOPOLOGY_HH
