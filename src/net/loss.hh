/**
 * @file
 * Wireless loss model.
 *
 * §4: a 10-day 3-mote rooftop experiment (10-15 m hops) measured a
 * 0.75% packet loss rate, dominated by weather.  The model applies a
 * per-hop success probability (default 99.25%) with an optional
 * weather multiplier so the rain scenarios can degrade links, plus a
 * bounded retry scheme.
 */

#ifndef NEOFOG_NET_LOSS_HH
#define NEOFOG_NET_LOSS_HH

#include <cstdint>

#include "sim/rng.hh"

namespace neofog {

/**
 * Per-hop Bernoulli packet loss with retries.
 */
class LossModel
{
  public:
    struct Config
    {
        /** Per-attempt delivery probability between powered nodes. */
        double successRate = 0.9925;
        /** Additional multiplier on the success rate (weather). */
        double weatherFactor = 1.0;
        /** MAC-level retransmissions after a failed attempt.  The
         *  paper models end-to-end success at 99.25% with no retry,
         *  so the default is 0. */
        int maxRetries = 0;

        /** Snapshot support (see src/snapshot/). */
        template <class Archive>
        void
        serialize(Archive &ar)
        {
            ar.io("success_rate", successRate);
            ar.io("weather_factor", weatherFactor);
            ar.io("max_retries", maxRetries);
        }
    };

    LossModel();
    explicit LossModel(const Config &cfg);

    /** Single-attempt success draw. */
    bool attempt(Rng &rng) const;

    /**
     * Deliver with retries.
     * @return Number of attempts used (1..maxRetries+1), or 0 if all
     *         attempts failed.
     */
    int deliver(Rng &rng) const;

    /** Effective per-attempt success probability. */
    double effectiveRate() const;

    std::uint64_t attemptsTotal() const { return _attempts; }
    std::uint64_t lossesTotal() const { return _losses; }

    const Config &config() const { return _cfg; }

    /** Snapshot support: the accounting (config is rebuilt). */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("attempts", _attempts);
        ar.io("losses", _losses);
    }

  private:
    Config _cfg; // neofog-lint: allow(snapshot): construction-time configuration, rebuilt from the scenario on resume; only the attempt/loss accounting mutates
    mutable std::uint64_t _attempts = 0;
    mutable std::uint64_t _losses = 0;
};

} // namespace neofog

#endif // NEOFOG_NET_LOSS_HH
