/**
 * @file
 * RF transceiver models: software-initialized Zigbee vs NVRF.
 *
 * Constants are the paper's ML7266 measurements (§4):
 *  - software init: 531 ms with the host MCU at 1 MHz (the MCU feeds
 *    configuration over SPI; the RF module burns standby power the
 *    whole time);
 *  - an NVP host reading config directly from NVM cuts this to 33 ms;
 *  - the NVRF controller self-initializes from its NV register file in
 *    1.2 ms (the 27x speedup) after a one-time 28 ms configuration;
 *  - data transmission of N bytes: (255 + 1.44N + 0.032N) ms via the
 *    software path vs (1.74 + 0.156 + 0.216N + 0.032N) ms via NVRF;
 *  - TX/RX 89.1 mW average, idle 14.93 mW.
 *
 * The NVRF additionally supports state cloning (copying the NV register
 * file and NVM-held network state from a neighbour), which is the
 * hardware hook the NVD4Q virtualization algorithm relies on.
 */

#ifndef NEOFOG_HW_RF_HH
#define NEOFOG_HW_RF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/** Cost of one RF operation phase. */
struct RfPhase
{
    Tick duration = 0;
    Energy energy = Energy::zero();

    RfPhase operator+(const RfPhase &o) const
    { return {duration + o.duration, energy + o.energy}; }
    RfPhase &operator+=(const RfPhase &o)
    { duration += o.duration; energy += o.energy; return *this; }
};

/**
 * The network-facing state a transceiver holds: channel/PAN
 * configuration, route info, association list, and slot timing.  This
 * is what an NVRF keeps across power failures and what NVD4Q clones
 * between physical nodes.
 */
struct RfState
{
    int channel = 11;
    std::uint16_t panId = 0x2018;
    /** Version of routing info; bumped on network reconstruction. */
    std::uint64_t routeVersion = 0;
    /** Zigbee AssociatedDevList: ids of direct neighbours. */
    std::vector<std::uint32_t> associatedDevList;
    /** Slot phase offset within the wake-up rotation (NVD4Q). */
    int slotPhase = 0;
    /** Wake interval multiplier (NVD4Q clone count). */
    int wakeIntervalMultiplier = 1;

    bool operator==(const RfState &) const = default;

    /** Snapshot support: every field the NVRF retains. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("channel", channel);
        ar.io("pan_id", panId);
        ar.io("route_version", routeVersion);
        ar.io("associated_dev_list", associatedDevList);
        ar.io("slot_phase", slotPhase);
        ar.io("wake_interval_multiplier", wakeIntervalMultiplier);
    }
};

/**
 * Common transceiver interface.
 */
class RfModule
{
  public:
    struct Config
    {
        Power txPower = Power::fromMilliwatts(89.1);
        Power rxPower = Power::fromMilliwatts(72.0);
        Power idlePower = Power::fromMilliwatts(14.93);
        /** Draw during (software) initialization: standby + baseband. */
        Power initPower = Power::fromMilliwatts(24.93);
        double dataRateBps = 250000.0;
    };

    explicit RfModule(const Config &cfg);
    virtual ~RfModule() = default;

    /** Whether configuration/network state survives power-off. */
    virtual bool retainsState() const = 0;

    /**
     * Cost to make the transceiver ready to transmit after power-on.
     * For stateful modules this is the fast self-reinit path once the
     * one-time configuration has happened.
     */
    virtual RfPhase initCost() const = 0;

    /** Cost of transmitting @p bytes of payload. */
    virtual RfPhase txCost(std::size_t bytes) const = 0;

    /** Model name for reports. */
    virtual std::string name() const = 0;

    /** Cost of listening for @p duration. */
    RfPhase rxCost(Tick duration) const;

    /** Cost of idling (powered, not TX/RX) for @p duration. */
    RfPhase idleCost(Tick duration) const;

    /** Raw airtime of @p bytes at the configured data rate. */
    Tick airtime(std::size_t bytes) const;

    /** Mutable network state (valid while powered or if NV). */
    RfState &state() { return _state; }
    const RfState &state() const { return _state; }

    /** Model a power failure: volatile modules lose their state. */
    virtual void onPowerFailure();

    const Config &config() const { return _cfg; }

  protected:
    Config _cfg;
    RfState _state;
};

/**
 * Software-initialized volatile transceiver.  After every power
 * failure the host re-runs the full SPI configuration sequence.
 */
class SoftwareRf : public RfModule
{
  public:
    struct SwConfig
    {
        RfModule::Config base;
        /**
         * Full software (re)initialization latency.  531 ms with a VP
         * host reading from external flash; 33 ms when an NVP host
         * restores the config image straight from integrated NVM.
         */
        Tick initLatency = ticksFromMs(531.0);
        /** Fixed per-transmission protocol overhead. */
        Tick txFixed = ticksFromMs(255.0);
        /** Per-byte transmission cost (1.44 + 0.032 ms/byte). */
        double txPerByteMs = 1.472;
        /** Network (re)join after init: channel scan + association. */
        Tick rejoinLatency = ticksFromMs(200.0);
    };

    /** Construct with paper-default (VP host, 531 ms init) constants. */
    SoftwareRf();
    explicit SoftwareRf(const SwConfig &cfg);

    /** Config preset for an NVP host with NVM-direct initialization. */
    static SwConfig nvmDirectConfig();

    bool retainsState() const override { return false; }
    RfPhase initCost() const override;
    RfPhase txCost(std::size_t bytes) const override;
    std::string name() const override;
    void onPowerFailure() override;

    const SwConfig &swConfig() const { return _sw; }

  private:
    SwConfig _sw;
};

/**
 * Nonvolatile RF controller (NVRF): an FSM plus NV register file that
 * initializes the transceiver without host involvement (direct
 * nonvolatile memory access) and keeps all network state across power
 * failures.
 */
class NvRfController : public RfModule
{
  public:
    struct NvConfig
    {
        RfModule::Config base;
        /** One-time configuration by the host processor. */
        Tick configureLatency = ticksFromMs(28.0);
        /** Self-reinitialization from the NV register file (27x). */
        Tick selfInitLatency = ticksFromMs(1.2);
        /** NVRF start + sync per transmission (1.74 + 0.156 ms). */
        Tick txFixed = ticksFromMs(1.896);
        /** Per-byte transmission cost (0.216 + 0.032 ms/byte). */
        double txPerByteMs = 0.248;
    };

    /** Construct with paper-default ML7266+NVRF constants. */
    NvRfController();
    explicit NvRfController(const NvConfig &cfg);

    bool retainsState() const override { return true; }
    RfPhase initCost() const override;
    RfPhase txCost(std::size_t bytes) const override;
    std::string name() const override { return "NVRF"; }

    /** Whether the one-time host configuration has been performed. */
    bool configured() const { return _configured; }

    /** Cost of the one-time host configuration; marks configured. */
    RfPhase configure();

    /**
     * Clone another NVRF's state (NVD4Q step: "copy its states of NVFF
     * in NVRF controller and NVM").  Marks this controller configured.
     * @return Cost of the state transfer over the air.
     */
    RfPhase cloneFrom(const NvRfController &other);

    void onPowerFailure() override;

    const NvConfig &nvConfig() const { return _nv; }

    /** Snapshot support: the one-time-configuration latch (the
     *  network state itself lives in RfState::serialize). */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("configured", _configured);
    }

  private:
    NvConfig _nv; // neofog-lint: allow(snapshot): one-time NV configuration latch, rebuilt from the scenario on resume; the network state lives in RfState::serialize
    bool _configured = false;
};

} // namespace neofog

#endif // NEOFOG_HW_RF_HH
