#include "hw/rf.hh"

#include "sim/logging.hh"

namespace neofog {

RfModule::RfModule(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.dataRateBps <= 0.0)
        fatal("RF data rate must be positive");
}

RfPhase
RfModule::rxCost(Tick duration) const
{
    NEOFOG_ASSERT(duration >= 0, "negative RX duration");
    return {duration, _cfg.rxPower * duration};
}

RfPhase
RfModule::idleCost(Tick duration) const
{
    NEOFOG_ASSERT(duration >= 0, "negative idle duration");
    return {duration, _cfg.idlePower * duration};
}

Tick
RfModule::airtime(std::size_t bytes) const
{
    const double seconds =
        static_cast<double>(bytes) * 8.0 / _cfg.dataRateBps;
    return ticksFromSeconds(seconds);
}

void
RfModule::onPowerFailure()
{
    // Default: volatile behaviour handled by subclasses; base keeps
    // nothing extra.
}

SoftwareRf::SoftwareRf()
    : SoftwareRf(SwConfig{})
{
}

SoftwareRf::SoftwareRf(const SwConfig &cfg)
    : RfModule(cfg.base), _sw(cfg)
{
}

SoftwareRf::SwConfig
SoftwareRf::nvmDirectConfig()
{
    SwConfig cfg;
    // NVP host restores the RF configuration image straight from
    // integrated NVM: 33 ms instead of 531 ms (paper Fig 4).
    cfg.initLatency = ticksFromMs(33.0);
    cfg.rejoinLatency = ticksFromMs(50.0);
    return cfg;
}

RfPhase
SoftwareRf::initCost() const
{
    RfPhase init{_sw.initLatency, _cfg.initPower * _sw.initLatency};
    // Rejoining the network needs the receiver on.
    RfPhase rejoin{_sw.rejoinLatency, _cfg.rxPower * _sw.rejoinLatency};
    return init + rejoin;
}

RfPhase
SoftwareRf::txCost(std::size_t bytes) const
{
    const Tick t = _sw.txFixed +
                   ticksFromMs(_sw.txPerByteMs *
                               static_cast<double>(bytes));
    return {t, _cfg.txPower * t};
}

std::string
SoftwareRf::name() const
{
    return _sw.initLatency <= ticksFromMs(50.0) ? "SW-RF(NVM)" : "SW-RF";
}

void
SoftwareRf::onPowerFailure()
{
    // All transceiver state is lost; the network must be rebuilt.
    _state = RfState{};
}

NvRfController::NvRfController()
    : NvRfController(NvConfig{})
{
}

NvRfController::NvRfController(const NvConfig &cfg)
    : RfModule(cfg.base), _nv(cfg)
{
}

RfPhase
NvRfController::initCost() const
{
    const Tick t = _configured ? _nv.selfInitLatency
                               : _nv.configureLatency;
    return {t, _cfg.initPower * t};
}

RfPhase
NvRfController::txCost(std::size_t bytes) const
{
    const Tick t = _nv.txFixed +
                   ticksFromMs(_nv.txPerByteMs *
                               static_cast<double>(bytes));
    return {t, _cfg.txPower * t};
}

RfPhase
NvRfController::configure()
{
    _configured = true;
    return {_nv.configureLatency, _cfg.initPower * _nv.configureLatency};
}

RfPhase
NvRfController::cloneFrom(const NvRfController &other)
{
    if (!other.configured())
        fatal("cloning from an unconfigured NVRF");
    _state = other._state;
    _configured = true;
    // State transfer: the register file + association list fits in a
    // small frame; receiving it costs one short RX window plus the
    // self-init to latch it.
    const Tick rx_window =
        airtime(64 + 4 * other._state.associatedDevList.size()) +
        ticksFromMs(2.0);
    RfPhase cost{rx_window, _cfg.rxPower * rx_window};
    cost += RfPhase{_nv.selfInitLatency,
                    _cfg.initPower * _nv.selfInitLatency};
    return cost;
}

void
NvRfController::onPowerFailure()
{
    // Nonvolatile: configuration and network state survive.
}

} // namespace neofog
