#include "hw/processor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace neofog {

SpendthriftPolicy::SpendthriftPolicy()
    : SpendthriftPolicy(Config{})
{
}

SpendthriftPolicy::SpendthriftPolicy(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.lowIncome >= _cfg.highIncome)
        fatal("Spendthrift income corner points reversed");
    if (_cfg.maxBenefit < _cfg.minBenefit || _cfg.minBenefit < 1.0)
        fatal("Spendthrift benefits must satisfy max >= min >= 1");
}

double
SpendthriftPolicy::benefit(Power income) const
{
    if (income <= _cfg.lowIncome)
        return _cfg.maxBenefit;
    if (income >= _cfg.highIncome)
        return _cfg.minBenefit;
    const double t = (income.watts() - _cfg.lowIncome.watts()) /
                     (_cfg.highIncome.watts() - _cfg.lowIncome.watts());
    return _cfg.maxBenefit + t * (_cfg.minBenefit - _cfg.maxBenefit);
}

double
SpendthriftPolicy::frequencyScale(Power income) const
{
    // Scale frequency with income between 25% and 100%: a node seeing a
    // trickle clocks down so conversion losses shrink.
    if (income >= _cfg.highIncome)
        return 1.0;
    if (income <= _cfg.lowIncome)
        return 0.25;
    const double t = (income.watts() - _cfg.lowIncome.watts()) /
                     (_cfg.highIncome.watts() - _cfg.lowIncome.watts());
    return 0.25 + 0.75 * t;
}

Processor::Processor(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.frequencyHz <= 0.0)
        fatal("processor frequency must be positive");
    if (_cfg.cyclesPerInstruction <= 0.0)
        fatal("cyclesPerInstruction must be positive");
}

Tick
Processor::computeTime(std::uint64_t instructions) const
{
    const double seconds = static_cast<double>(instructions) *
                           _cfg.cyclesPerInstruction / _cfg.frequencyHz;
    return std::max<Tick>(ticksFromSeconds(seconds), 0);
}

Energy
Processor::computeEnergy(std::uint64_t instructions) const
{
    // Computed analytically (not via integer ticks) so the per-
    // instruction energy is exact at any clock frequency.
    const double seconds = static_cast<double>(instructions) *
                           _cfg.cyclesPerInstruction / _cfg.frequencyHz;
    return Energy::fromJoules(_cfg.activePower.watts() * seconds);
}

Energy
Processor::instructionEnergy() const
{
    return computeEnergy(1);
}

VolatileProcessor::VolatileProcessor()
    : VolatileProcessor(VpConfig{})
{
}

VolatileProcessor::VolatileProcessor(const VpConfig &cfg)
    : Processor(cfg.base), _vp(cfg)
{
}

Tick
VolatileProcessor::wakeLatency() const
{
    return _vp.restartLatency;
}

Energy
VolatileProcessor::wakeEnergy() const
{
    return _cfg.activePower * _vp.restartLatency + _vp.restartExtraEnergy;
}

NvProcessor::NvProcessor()
    : NvProcessor(NvpConfig{})
{
}

NvProcessor::NvProcessor(const NvpConfig &cfg)
    : Processor(cfg.base), _nvp(cfg), _policy(cfg.spendthrift)
{
}

NvProcessor::NvpConfig
NvProcessor::fiosConfig()
{
    NvpConfig cfg;
    cfg.restoreLatency = 7 * kUs;
    return cfg;
}

Tick
NvProcessor::wakeLatency() const
{
    return _nvp.restoreLatency;
}

Energy
NvProcessor::wakeEnergy() const
{
    return _cfg.activePower * _nvp.restoreLatency + _nvp.restoreEnergy;
}

Tick
NvProcessor::backupLatency() const
{
    return _nvp.backupLatency;
}

Energy
NvProcessor::backupEnergy() const
{
    return _nvp.backupEnergy;
}

Energy
NvProcessor::effectiveComputeEnergy(std::uint64_t instructions,
                                    Power income) const
{
    return computeEnergy(instructions) / _policy.benefit(income);
}

} // namespace neofog
