#include "hw/rtc.hh"

#include "sim/logging.hh"

namespace neofog {

Rtc::Rtc(const Config &cfg)
    : _cfg(cfg), _cap(cfg.cap)
{
    if (_cfg.interval <= 0)
        fatal("RTC interval must be positive");
    if (_cfg.chargePriority < 0.0 || _cfg.chargePriority > 1.0)
        fatal("RTC charge priority must be in [0,1]");
}

void
Rtc::advance(Tick duration, Energy income)
{
    NEOFOG_ASSERT(duration >= 0, "negative RTC advance");
    _cap.charge(income);
    _cap.leak(duration);
    const Energy need = _cfg.draw * duration;
    if (!_cap.tryDischarge(need)) {
        _cap.drain(need);
        if (_synchronized) {
            _synchronized = false;
            ++_desyncs;
        }
    }
}

Tick
alignedWakeAfter(Tick interval, Tick now, int phase_offset,
                 int interval_multiplier)
{
    NEOFOG_ASSERT(interval_multiplier >= 1, "interval multiplier >= 1");
    NEOFOG_ASSERT(phase_offset >= 0 && phase_offset < interval_multiplier,
                  "phase offset must be in [0, multiplier)");
    const Tick stride = interval * interval_multiplier;
    const Tick offset = interval * phase_offset;
    // Smallest k*stride + offset strictly greater than now.
    Tick k = (now - offset) / stride;
    Tick candidate = k * stride + offset;
    while (candidate <= now)
        candidate += stride;
    return candidate;
}

Tick
Rtc::nextWake(Tick now, int phase_offset, int interval_multiplier) const
{
    return alignedWakeAfter(_cfg.interval, now, phase_offset,
                            interval_multiplier);
}

// RtcView::advance replicates Rtc::advance above on the shard's
// column cells; see the CapacitorView notes in capacitor.cc for the
// bit-identity requirement.
void
RtcView::advance(Tick duration, Energy income)
{
    NEOFOG_ASSERT(duration >= 0, "negative RTC advance");
    _cap.charge(income);
    _cap.leak(duration);
    const Energy need = _cfg->draw * duration;
    if (!_cap.tryDischarge(need)) {
        _cap.drain(need);
        if (*_sync != 0.0) {
            *_sync = 0.0;
            *_desyncs += 1.0;
        }
    }
}

} // namespace neofog
