#include "hw/sensor.hh"

#include "sim/logging.hh"

namespace neofog {

namespace sensors {

SensorSpec
tmp101()
{
    // Measured in the paper: init 566 ms, one sample 0.283 ms.
    SensorSpec s;
    s.partName = "TMP101";
    s.initLatency = ticksFromMs(566.0);
    s.initPower = Power::fromMilliwatts(0.10);
    s.sampleLatency = ticksFromMs(0.283);
    s.samplePower = Power::fromMilliwatts(0.30);
    s.bytesPerSample = 2;
    return s;
}

SensorSpec
lis331dlh()
{
    SensorSpec s;
    s.partName = "LIS331DLH";
    s.initLatency = ticksFromMs(10.0);
    s.initPower = Power::fromMilliwatts(0.25);
    s.sampleLatency = ticksFromMs(1.0);
    s.samplePower = Power::fromMilliwatts(0.82);
    s.bytesPerSample = 6; // 3 axes x 16 bit
    return s;
}

SensorSpec
lupa1399()
{
    SensorSpec s;
    s.partName = "LUPA1399";
    s.initLatency = ticksFromMs(5.0);
    s.initPower = Power::fromMilliwatts(20.0);
    s.sampleLatency = ticksFromMs(8.0); // one row burst
    s.samplePower = Power::fromMilliwatts(115.0);
    s.bytesPerSample = 1280;
    return s;
}

SensorSpec
uvMeter()
{
    SensorSpec s;
    s.partName = "ML8511";
    s.initLatency = ticksFromMs(1.0);
    s.initPower = Power::fromMilliwatts(0.30);
    s.sampleLatency = ticksFromMs(0.3);
    s.samplePower = Power::fromMilliwatts(0.30);
    s.bytesPerSample = 2;
    return s;
}

SensorSpec
ecgAfe()
{
    SensorSpec s;
    s.partName = "ECG-AFE";
    s.initLatency = ticksFromMs(50.0);
    s.initPower = Power::fromMilliwatts(0.5);
    s.sampleLatency = ticksFromMs(4.0); // 250 Hz stream
    s.samplePower = Power::fromMilliwatts(0.35);
    s.bytesPerSample = 2;
    return s;
}

SensorSpec
piezoPickup()
{
    SensorSpec s;
    s.partName = "PIEZO";
    s.initLatency = ticksFromMs(2.0);
    s.initPower = Power::fromMilliwatts(0.05);
    s.sampleLatency = ticksFromMs(0.5);
    s.samplePower = Power::fromMilliwatts(0.20);
    s.bytesPerSample = 2;
    return s;
}

} // namespace sensors

Sensor::Sensor(const SensorSpec &spec)
    : _spec(spec)
{
    if (_spec.bytesPerSample == 0)
        fatal("sensor must produce at least one byte per sample");
}

Sensor::Cost
Sensor::initialize()
{
    if (_initialized)
        return {};
    _initialized = true;
    return {_spec.initLatency, _spec.initEnergy()};
}

Sensor::Cost
Sensor::sample(std::size_t count) const
{
    NEOFOG_ASSERT(_initialized,
                  "sampling an uninitialized sensor: ", _spec.partName);
    const auto n = static_cast<double>(count);
    return {static_cast<Tick>(n * static_cast<double>(_spec.sampleLatency)),
            _spec.sampleEnergy() * n};
}

std::size_t
Sensor::sampleBytes(std::size_t count) const
{
    return _spec.bytesPerSample * count;
}

} // namespace neofog
