/**
 * @file
 * Processor models: volatile MCU vs nonvolatile processor (NVP).
 *
 * Constants follow the paper's measured platform (§4): an 8051-class
 * core at 1 MHz drawing 0.209 mW.  The 8051 takes 12 clocks per machine
 * cycle, which yields 2.508 nJ per instruction — exactly the per-
 * instruction energy implied by Table 2 (e.g. bridge health: 545
 * instructions -> 1366.86 nJ).
 *
 * A volatile processor (VP) loses all state at power failure and pays a
 * full restart (~300 us) plus software re-initialization of peripherals.
 * An NVP checkpoints into NV flip-flops on power failure and restores in
 * 7 us (FIOS parallel-restore parts) to 32 us (NOS parts), making
 * intermittent execution reliable.  The Spendthrift policy [49] further
 * scales frequency/resources to the incoming power level.
 */

#ifndef NEOFOG_HW_PROCESSOR_HH
#define NEOFOG_HW_PROCESSOR_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/** Per-instruction energy implied by Table 2 (nJ). */
inline constexpr double kNvpInstructionEnergyNj = 2.508;

/** Spendthrift [49] frequency & resource scaling policy. */
class SpendthriftPolicy
{
  public:
    struct Config
    {
        /** Income power below which the policy is at max benefit. */
        Power lowIncome = Power::fromMilliwatts(0.5);
        /** Income power above which the policy adds no benefit. */
        Power highIncome = Power::fromMilliwatts(10.0);
        /** Energy-conversion benefit at/below lowIncome. */
        double maxBenefit = 1.6;
        /** Benefit at/above highIncome. */
        double minBenefit = 1.0;
    };

    /** Construct with paper-default corner points. */
    SpendthriftPolicy();
    explicit SpendthriftPolicy(const Config &cfg);

    /**
     * Multiplicative efficiency benefit for computing under the given
     * income power: the fraction of nominal compute energy actually
     * spent is 1/benefit.  Interpolates linearly between the config
     * corner points.
     */
    double benefit(Power income) const;

    /**
     * Frequency scaling factor chosen for the income level, in (0, 1]:
     * low income -> lower frequency (less static waste per op).
     */
    double frequencyScale(Power income) const;

    const Config &config() const { return _cfg; }

  private:
    Config _cfg;
};

/**
 * Common processor interface used by node models.
 */
class Processor
{
  public:
    struct Config
    {
        double frequencyHz = 1.0e6;
        Power activePower = Power::fromMilliwatts(0.209);
        /** Clocks per machine cycle / instruction (8051: 12). */
        double cyclesPerInstruction = 12.0;
    };

    explicit Processor(const Config &cfg);
    virtual ~Processor() = default;

    /** Whether state survives power failure. */
    virtual bool isNonvolatile() const = 0;

    /** Time to become operational after power is (re)applied. */
    virtual Tick wakeLatency() const = 0;

    /** Energy spent becoming operational. */
    virtual Energy wakeEnergy() const = 0;

    /** Time to checkpoint state at power failure (0 for VP). */
    virtual Tick backupLatency() const { return 0; }

    /** Energy to checkpoint state at power failure (0 for VP). */
    virtual Energy backupEnergy() const { return Energy::zero(); }

    /** Short model name for reports. */
    virtual std::string name() const = 0;

    /** Execution time of @p instructions at nominal frequency. */
    Tick computeTime(std::uint64_t instructions) const;

    /** Energy of executing @p instructions at nominal settings. */
    Energy computeEnergy(std::uint64_t instructions) const;

    /** Energy per instruction. */
    Energy instructionEnergy() const;

    const Config &config() const { return _cfg; }

  protected:
    Config _cfg;
};

/** A conventional volatile MCU operating in NOS style. */
class VolatileProcessor : public Processor
{
  public:
    struct VpConfig
    {
        Processor::Config base;
        /** Cold restart + software init time (paper: ~300 us). */
        Tick restartLatency = 300 * kUs;
        /**
         * Extra energy of the restart beyond active power draw: a VP
         * reloads its configuration image from external flash on every
         * boot (the NVP restores from integrated NV flip-flops
         * instead).
         */
        Energy restartExtraEnergy = Energy::fromMicrojoules(150.0);
    };

    /** Construct with paper-default constants. */
    VolatileProcessor();
    explicit VolatileProcessor(const VpConfig &cfg);

    bool isNonvolatile() const override { return false; }
    Tick wakeLatency() const override;
    Energy wakeEnergy() const override;
    std::string name() const override { return "VP"; }

  private:
    VpConfig _vp;
};

/** A nonvolatile processor with checkpoint/restore in NV flip-flops. */
class NvProcessor : public Processor
{
  public:
    struct NvpConfig
    {
        Processor::Config base;
        /**
         * Restore latency.  7 us with FIOS parallel restore, 32 us for
         * the NOS-mode deployments (paper Fig 4).
         */
        Tick restoreLatency = 32 * kUs;
        /** Backup latency on power failure. */
        Tick backupLatency = 10 * kUs;
        /** Energy of one distributed NV backup. */
        Energy backupEnergy = Energy::fromNanojoules(120.0);
        /** Energy of one restore. */
        Energy restoreEnergy = Energy::fromNanojoules(80.0);
        SpendthriftPolicy::Config spendthrift{};
    };

    /** Construct with paper-default (NOS, 32 us restore) constants. */
    NvProcessor();
    explicit NvProcessor(const NvpConfig &cfg);

    /** Paper-default NVP as used in FIOS NV-motes (7 us restore). */
    static NvpConfig fiosConfig();

    bool isNonvolatile() const override { return true; }
    Tick wakeLatency() const override;
    Energy wakeEnergy() const override;
    Tick backupLatency() const override;
    Energy backupEnergy() const override;
    std::string name() const override { return "NVP"; }

    /** The Spendthrift frequency/resource scaling policy. */
    const SpendthriftPolicy &spendthrift() const { return _policy; }

    /**
     * Effective energy of executing @p instructions while harvesting
     * @p income: nominal energy divided by the Spendthrift benefit.
     */
    Energy effectiveComputeEnergy(std::uint64_t instructions,
                                  Power income) const;

  private:
    NvpConfig _nvp;
    SpendthriftPolicy _policy;
};

} // namespace neofog

#endif // NEOFOG_HW_PROCESSOR_HH
