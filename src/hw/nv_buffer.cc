#include "hw/nv_buffer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace neofog {

NvBuffer::NvBuffer(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.capacityBytes == 0)
        fatal("NV buffer capacity must be positive");
    if (_cfg.interruptThreshold <= 0.0 || _cfg.interruptThreshold > 1.0)
        fatal("NV buffer interrupt threshold must be in (0,1]");
}

bool
NvBuffer::interruptPending() const
{
    return static_cast<double>(_size) >=
           _cfg.interruptThreshold *
               static_cast<double>(_cfg.capacityBytes);
}

std::size_t
NvBuffer::push(std::size_t bytes)
{
    const std::size_t stored = std::min(bytes, freeSpace());
    _size += stored;
    _accepted += stored;
    _dropped += bytes - stored;
    return stored;
}

std::size_t
NvBuffer::pop(std::size_t bytes)
{
    const std::size_t removed = std::min(bytes, _size);
    _size -= removed;
    return removed;
}

void
NvBuffer::discardAll()
{
    _dropped += _size;
    _size = 0;
}

Energy
NvBuffer::writeEnergy(std::size_t bytes) const
{
    return _cfg.writeEnergyPerByte * static_cast<double>(bytes);
}

Energy
NvBuffer::readEnergy(std::size_t bytes) const
{
    return _cfg.readEnergyPerByte * static_cast<double>(bytes);
}

} // namespace neofog
