/**
 * @file
 * Sensor models with the paper's measured timing/energy constants.
 *
 * §4 quotes TMP101 (init 566 ms, one sample 0.283 ms) and names the
 * other deployed sensors (LIS331DLH accelerometer, LUPA1399 image
 * sensor, UV photodiode, ECG front end); their constants are set from
 * datasheet-typical values.  Sensor configuration registers are
 * volatile: after a node power failure the sensor must be
 * re-initialized before sampling (one of the costs FIOS amortizes by
 * sampling in bursts into the NV buffer).
 */

#ifndef NEOFOG_HW_SENSOR_HH
#define NEOFOG_HW_SENSOR_HH

#include <cstddef>
#include <string>

#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/** Static description of a sensor part. */
struct SensorSpec
{
    std::string partName = "TMP101";
    Tick initLatency = ticksFromMs(566.0);
    Power initPower = Power::fromMilliwatts(0.10);
    Tick sampleLatency = ticksFromMs(0.283);
    Power samplePower = Power::fromMilliwatts(0.30);
    std::size_t bytesPerSample = 2;

    /** Snapshot support (see src/snapshot/). */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("part_name", partName);
        ar.io("init_latency", initLatency);
        ar.io("init_power", initPower);
        ar.io("sample_latency", sampleLatency);
        ar.io("sample_power", samplePower);
        std::uint64_t bytes = bytesPerSample;
        ar.io("bytes_per_sample", bytes);
        if constexpr (Archive::isLoading)
            bytesPerSample = static_cast<std::size_t>(bytes);
    }

    /** Energy of one initialization. */
    Energy initEnergy() const { return initPower * initLatency; }
    /** Energy of one sample. */
    Energy sampleEnergy() const { return samplePower * sampleLatency; }
};

/** Catalog of the deployed sensor parts from Table 1 / §4. */
namespace sensors {

/** TMP101 temperature sensor (measured in the paper). */
SensorSpec tmp101();
/** LIS331DLH 3-axis accelerometer. */
SensorSpec lis331dlh();
/** LUPA1399 image sensor (one row-burst per sample). */
SensorSpec lupa1399();
/** ML8511-class UV photodiode. */
SensorSpec uvMeter();
/** Single-lead ECG analog front end. */
SensorSpec ecgAfe();
/** Piezo vibration pickup (bridge cable). */
SensorSpec piezoPickup();

} // namespace sensors

/**
 * Runtime sensor with volatile configuration state.
 */
class Sensor
{
  public:
    explicit Sensor(const SensorSpec &spec);

    const SensorSpec &spec() const { return _spec; }

    /** Whether the configuration registers are currently valid. */
    bool initialized() const { return _initialized; }

    /**
     * Cost of making the sensor ready; zero-duration if already
     * initialized.  Marks the sensor initialized.
     */
    struct Cost
    {
        Tick duration = 0;
        Energy energy = Energy::zero();
    };

    Cost initialize();

    /**
     * Cost of taking @p count back-to-back samples.  Fatal if the
     * sensor has not been initialized since the last power failure.
     */
    Cost sample(std::size_t count = 1) const;

    /** Bytes produced by @p count samples. */
    std::size_t sampleBytes(std::size_t count = 1) const;

    /** Power failure: configuration registers are lost. */
    void onPowerFailure() { _initialized = false; }

    /** Snapshot support: the volatile configuration latch. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("initialized", _initialized);
    }

  private:
    SensorSpec _spec; // neofog-lint: allow(snapshot): construction-time sensor spec, rebuilt from the scenario on resume; only the volatile init latch mutates
    bool _initialized = false;
};

} // namespace neofog

#endif // NEOFOG_HW_SENSOR_HH
