/**
 * @file
 * Real-time clock with its own priority-charged super-capacitor.
 *
 * §2.3: the RTC coordinates the common notion of time so synchronized
 * senders and receivers are co-active; it wakes every predefined
 * interval.  It is powered by a dedicated small super-capacitor with
 * higher charging priority than the main one, because losing RTC power
 * desynchronizes the node from the network's logical slots and resyncing
 * costs far more than a normal state restore (a long listen window).
 *
 * Nodes that lack energy for a slot wake at a *multiple* of the RTC
 * interval (not whenever they happen to have energy), which keeps them
 * aligned to network slots.  NVD4Q extends this with a per-clone phase
 * offset and wake-interval multiplier.
 */

#ifndef NEOFOG_HW_RTC_HH
#define NEOFOG_HW_RTC_HH

#include "energy/capacitor.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/**
 * RTC model: slot bookkeeping plus its dedicated super-capacitor.
 */
class Rtc
{
  public:
    struct Config
    {
        /** Wake-up / communication slot interval. */
        Tick interval = 12 * kSec;
        /** Continuous RTC draw from its dedicated cap. */
        Power draw = Power::fromMicrowatts(1.0);
        /** Dedicated cap: small but enough for hours of timekeeping. */
        SuperCapacitor::Config cap{
            Energy::fromMillijoules(40.0),
            Energy::fromMillijoules(40.0),
            Power::fromMicrowatts(0.5),
        };
        /** Charge priority share of income routed to the RTC cap. */
        double chargePriority = 0.02;
        /** Listen window needed to resynchronize after RTC death. */
        Tick resyncListen = ticksFromMs(500.0);
        /** Energy to resynchronize (RX listening, handshake). */
        Energy resyncEnergy = Energy::fromMillijoules(36.0);

        /** Snapshot support (see src/snapshot/). */
        template <class Archive>
        void
        serialize(Archive &ar)
        {
            ar.io("interval", interval);
            ar.io("draw", draw);
            ar.io("cap", cap);
            ar.io("charge_priority", chargePriority);
            ar.io("resync_listen", resyncListen);
            ar.io("resync_energy", resyncEnergy);
        }
    };

    explicit Rtc(const Config &cfg);

    /** Whether the RTC still tracks network time. */
    bool synchronized() const { return _synchronized; }

    /** The slot interval. */
    Tick interval() const { return _cfg.interval; }

    /**
     * Advance wall-clock by @p duration: drains the RTC cap (plus
     * leakage) and desynchronizes if it empties.
     * @param income Energy routed to the RTC cap during the period
     *        (already scaled by the charge priority).
     */
    void advance(Tick duration, Energy income);

    /**
     * Next aligned wake tick strictly after @p now for a clone with the
     * given phase offset and interval multiplier (both 0/1 for
     * un-virtualized nodes).
     */
    Tick nextWake(Tick now, int phase_offset = 0,
                  int interval_multiplier = 1) const;

    /** Record a successful resynchronization. */
    void resynchronize() { _synchronized = true; }

    /** Dedicated capacitor (for inspection / tests). */
    const SuperCapacitor &cap() const { return _cap; }

    /** Times the RTC lost synchronization. */
    std::uint64_t desyncCount() const { return _desyncs; }

    const Config &config() const { return _cfg; }

    /** Snapshot support: the dedicated cap and sync bookkeeping. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("cap", _cap);
        ar.io("synchronized", _synchronized);
        ar.io("desyncs", _desyncs);
    }

  private:
    Config _cfg; // neofog-lint: allow(snapshot): construction-time configuration, rebuilt from the scenario on resume
    SuperCapacitor _cap;
    bool _synchronized = true;
    std::uint64_t _desyncs = 0;
};

} // namespace neofog

#endif // NEOFOG_HW_RTC_HH
