/**
 * @file
 * Real-time clock with its own priority-charged super-capacitor.
 *
 * §2.3: the RTC coordinates the common notion of time so synchronized
 * senders and receivers are co-active; it wakes every predefined
 * interval.  It is powered by a dedicated small super-capacitor with
 * higher charging priority than the main one, because losing RTC power
 * desynchronizes the node from the network's logical slots and resyncing
 * costs far more than a normal state restore (a long listen window).
 *
 * Nodes that lack energy for a slot wake at a *multiple* of the RTC
 * interval (not whenever they happen to have energy), which keeps them
 * aligned to network slots.  NVD4Q extends this with a per-clone phase
 * offset and wake-interval multiplier.
 */

#ifndef NEOFOG_HW_RTC_HH
#define NEOFOG_HW_RTC_HH

#include "energy/capacitor.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace neofog {

/**
 * Next aligned wake tick strictly after @p now on a slot grid of
 * @p interval, for a clone with the given phase offset and interval
 * multiplier (0/1 for un-virtualized nodes).  Shared by Rtc and
 * RtcView so both facades compute the identical grid.
 */
Tick alignedWakeAfter(Tick interval, Tick now, int phase_offset,
                      int interval_multiplier);

/**
 * RTC model: slot bookkeeping plus its dedicated super-capacitor.
 */
class Rtc
{
  public:
    struct Config
    {
        /** Wake-up / communication slot interval. */
        Tick interval = 12 * kSec;
        /** Continuous RTC draw from its dedicated cap. */
        Power draw = Power::fromMicrowatts(1.0);
        /** Dedicated cap: small but enough for hours of timekeeping. */
        SuperCapacitor::Config cap{
            Energy::fromMillijoules(40.0),
            Energy::fromMillijoules(40.0),
            Power::fromMicrowatts(0.5),
        };
        /** Charge priority share of income routed to the RTC cap. */
        double chargePriority = 0.02;
        /** Listen window needed to resynchronize after RTC death. */
        Tick resyncListen = ticksFromMs(500.0);
        /** Energy to resynchronize (RX listening, handshake). */
        Energy resyncEnergy = Energy::fromMillijoules(36.0);

        /** Snapshot support (see src/snapshot/). */
        template <class Archive>
        void
        serialize(Archive &ar)
        {
            ar.io("interval", interval);
            ar.io("draw", draw);
            ar.io("cap", cap);
            ar.io("charge_priority", chargePriority);
            ar.io("resync_listen", resyncListen);
            ar.io("resync_energy", resyncEnergy);
        }
    };

    explicit Rtc(const Config &cfg);

    /** Whether the RTC still tracks network time. */
    bool synchronized() const { return _synchronized; }

    /** The slot interval. */
    Tick interval() const { return _cfg.interval; }

    /**
     * Advance wall-clock by @p duration: drains the RTC cap (plus
     * leakage) and desynchronizes if it empties.
     * @param income Energy routed to the RTC cap during the period
     *        (already scaled by the charge priority).
     */
    void advance(Tick duration, Energy income);

    /**
     * Next aligned wake tick strictly after @p now for a clone with the
     * given phase offset and interval multiplier (both 0/1 for
     * un-virtualized nodes).
     */
    Tick nextWake(Tick now, int phase_offset = 0,
                  int interval_multiplier = 1) const;

    /** Record a successful resynchronization. */
    void resynchronize() { _synchronized = true; }

    /** Dedicated capacitor (for inspection / tests). */
    const SuperCapacitor &cap() const { return _cap; }

    /** Times the RTC lost synchronization. */
    std::uint64_t desyncCount() const { return _desyncs; }

    const Config &config() const { return _cfg; }

    /** Snapshot support: the dedicated cap and sync bookkeeping. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("cap", _cap);
        ar.io("synchronized", _synchronized);
        ar.io("desyncs", _desyncs);
    }

  private:
    Config _cfg; // neofog-lint: allow(snapshot): construction-time configuration, rebuilt from the scenario on resume
    SuperCapacitor _cap;
    bool _synchronized = true;
    std::uint64_t _desyncs = 0;
};

/**
 * Row view over a shard's RTC state columns.
 *
 * Mirrors Rtc's public API over one NodeShard row (node_soa.hh): the
 * dedicated cap is a CapacitorView over the rtc* columns, and the
 * sync flag / desync count live in double cells (1.0/0.0 and an exact
 * small integer — lossless in a double, and it keeps every kernel
 * column homogeneous).  advance() replicates Rtc::advance statement
 * for statement; the batched slot kernel runs the same program
 * column-wise, so all three paths stay bit-identical.
 */
class RtcView
{
  public:
    RtcView(const Rtc::Config &cfg, CapacitorView cap, double &sync,
            double &desyncs)
        : _cfg(&cfg), _cap(cap), _sync(&sync), _desyncs(&desyncs)
    {
    }

    /** Whether the RTC still tracks network time. */
    bool synchronized() const { return *_sync != 0.0; }

    /** The slot interval. */
    Tick interval() const { return _cfg->interval; }

    /**
     * Advance wall-clock by @p duration: drains the RTC cap (plus
     * leakage) and desynchronizes if it empties.
     * @param income Energy routed to the RTC cap during the period
     *        (already scaled by the charge priority).
     */
    void advance(Tick duration, Energy income);

    /** Next aligned wake tick strictly after @p now (see Rtc). */
    Tick
    nextWake(Tick now, int phase_offset = 0,
             int interval_multiplier = 1) const
    {
        return alignedWakeAfter(_cfg->interval, now, phase_offset,
                                interval_multiplier);
    }

    /** Record a successful resynchronization. */
    void resynchronize() { *_sync = 1.0; }

    /** Dedicated capacitor (for inspection / tests). */
    CapacitorView cap() const { return _cap; }

    /** Times the RTC lost synchronization. */
    std::uint64_t desyncCount() const
    { return static_cast<std::uint64_t>(*_desyncs); }

    const Rtc::Config &config() const { return *_cfg; }

    /** Snapshot support: Rtc's exact wire keys and types. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        ar.io("cap", _cap);
        bool sync = *_sync != 0.0;
        ar.io("synchronized", sync);
        *_sync = sync ? 1.0 : 0.0;
        auto desyncs = static_cast<std::uint64_t>(*_desyncs);
        ar.io("desyncs", desyncs);
        *_desyncs = static_cast<double>(desyncs);
    }

  private:
    const Rtc::Config *_cfg;
    CapacitorView _cap;
    double *_sync;
    double *_desyncs;
};

} // namespace neofog

#endif // NEOFOG_HW_RTC_HH
