/**
 * @file
 * Nonvolatile FIFO buffer (NVBuffer).
 *
 * Fig 2(b) of the paper inserts a 64 kB NV FIFO between the sensors and
 * the NVP to decouple asynchronous sampling from intermittent
 * computation, and a second instance inside the NVRF buffers outgoing
 * data.  The buffer also serves as the raw-data staging area for the
 * intra-chain load balancer.  When the buffer fills, an interrupt asks
 * the NVP to process the batch; if the node lacks energy, samples are
 * discarded (and counted).
 */

#ifndef NEOFOG_HW_NV_BUFFER_HH
#define NEOFOG_HW_NV_BUFFER_HH

#include <cstddef>
#include <cstdint>

#include "sim/units.hh"

namespace neofog {

/**
 * Byte-counting nonvolatile FIFO.  Contents survive power failure by
 * construction; the model tracks occupancy and loss accounting rather
 * than payload bytes (payload content lives in the workload layer).
 */
class NvBuffer
{
  public:
    struct Config
    {
        std::size_t capacityBytes = 64 * 1024;
        /** Occupancy fraction that raises the processing interrupt. */
        double interruptThreshold = 1.0;
        /** Energy per byte written (NV write cost). */
        Energy writeEnergyPerByte = Energy::fromNanojoules(1.1);
        /** Energy per byte read. */
        Energy readEnergyPerByte = Energy::fromNanojoules(0.3);

        /** Snapshot support (see src/snapshot/). */
        template <class Archive>
        void
        serialize(Archive &ar)
        {
            std::uint64_t capacity = capacityBytes;
            ar.io("capacity_bytes", capacity);
            if constexpr (Archive::isLoading)
                capacityBytes = static_cast<std::size_t>(capacity);
            ar.io("interrupt_threshold", interruptThreshold);
            ar.io("write_energy_per_byte", writeEnergyPerByte);
            ar.io("read_energy_per_byte", readEnergyPerByte);
        }
    };

    explicit NvBuffer(const Config &cfg);

    std::size_t capacity() const { return _cfg.capacityBytes; }
    std::size_t size() const { return _size; }
    std::size_t freeSpace() const { return _cfg.capacityBytes - _size; }
    bool empty() const { return _size == 0; }
    bool full() const { return _size >= _cfg.capacityBytes; }

    /** Whether occupancy has reached the interrupt threshold. */
    bool interruptPending() const;

    /**
     * Append up to @p bytes; excess beyond capacity is dropped and
     * counted.
     * @return Bytes actually stored.
     */
    std::size_t push(std::size_t bytes);

    /**
     * Remove up to @p bytes from the head.
     * @return Bytes actually removed.
     */
    std::size_t pop(std::size_t bytes);

    /** Discard the whole contents, counting them as dropped. */
    void discardAll();

    /** NV write energy of storing @p bytes. */
    Energy writeEnergy(std::size_t bytes) const;

    /** NV read energy of retrieving @p bytes. */
    Energy readEnergy(std::size_t bytes) const;

    /** Total bytes ever accepted. */
    std::uint64_t acceptedTotal() const { return _accepted; }
    /** Total bytes ever dropped (overflow + discard). */
    std::uint64_t droppedTotal() const { return _dropped; }

    const Config &config() const { return _cfg; }

    /** Snapshot support: occupancy and loss accounting. */
    template <class Archive>
    void
    serialize(Archive &ar)
    {
        std::uint64_t size = _size;
        ar.io("size", size);
        if constexpr (Archive::isLoading)
            _size = static_cast<std::size_t>(size);
        ar.io("accepted", _accepted);
        ar.io("dropped", _dropped);
    }

  private:
    Config _cfg; // neofog-lint: allow(snapshot): construction-time configuration, rebuilt from the scenario on resume
    std::size_t _size = 0;
    std::uint64_t _accepted = 0;
    std::uint64_t _dropped = 0;
};

} // namespace neofog

#endif // NEOFOG_HW_NV_BUFFER_HH
