/**
 * @file
 * Self-describing policy parameters and the balancer-spec grammar.
 *
 * A *policy spec* is the one-line textual form of a configured
 * balancer that flows from the CLI through ScenarioConfig into the
 * snapshot config fingerprint:
 *
 *     policy                      # all parameters at their defaults
 *     policy:key=val,key=val      # non-default parameters
 *
 * Keys and values carry no whitespace; duplicate keys are an error.
 * Each policy publishes its parameters as ParamSpec entries
 * (name/type/default/doc), and the registry resolves a parsed spec
 * against them: unknown keys and type mismatches fail loudly.
 *
 * The *canonical* form of a spec — name, then only the parameters
 * that differ from their defaults, in ParamSpec declaration order,
 * values printed by formatValue() — is what the fingerprint hashes.
 * Canonical strings round-trip exactly: parsing one and re-printing
 * it reproduces the same bytes, so two runs fingerprint equal iff
 * their balancer configurations are equal.
 */

#ifndef NEOFOG_BALANCE_POLICY_SPEC_HH
#define NEOFOG_BALANCE_POLICY_SPEC_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace neofog {

/** Value type of one policy parameter. */
enum class ParamType
{
    Int,    ///< 64-bit signed integer
    Double, ///< finite IEEE double
    Bool,   ///< "true" / "false" (also accepts "1" / "0" on parse)
};

/** Display name of a parameter type ("int", "double", "bool"). */
std::string paramTypeName(ParamType type);

/** One typed parameter value (tag + the matching member). */
struct ParamValue
{
    ParamType type = ParamType::Int;
    std::int64_t i = 0;
    double d = 0.0;
    bool b = false;

    static ParamValue ofInt(std::int64_t v);
    static ParamValue ofDouble(double v);
    static ParamValue ofBool(bool v);

    bool operator==(const ParamValue &other) const;
    bool operator!=(const ParamValue &other) const
    { return !(*this == other); }
};

/**
 * Self-description of one policy parameter: everything --list-balancers
 * prints and everything spec resolution needs.
 */
struct ParamSpec
{
    std::string name;        ///< spec key, snake_case
    ParamType type = ParamType::Int;
    ParamValue defaultValue; ///< value when the spec omits the key
    std::string doc;         ///< one-line description
};

/**
 * Parse @p text as a value of @p type.  Strict: the whole string must
 * be consumed, doubles must be finite, bools are true/false/1/0.
 * Fatal (FatalError) on violation, mentioning @p key.
 */
ParamValue parseValue(ParamType type, const std::string &text,
                      const std::string &key);

/**
 * Canonical text of a value: ints in decimal, bools as true/false,
 * doubles in shortest round-trip form (std::to_chars).  Guaranteed to
 * parseValue() back to a bitwise-equal ParamValue.
 */
std::string formatValue(const ParamValue &value);

/**
 * A parsed (but not yet resolved) balancer spec: the policy name plus
 * the key=value pairs in their textual order.  Resolution against the
 * policy's ParamSpec table happens in the registry.
 */
struct PolicySpec
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;
};

/**
 * Split `policy` / `policy:key=val,...` into a PolicySpec.  Fatal on
 * grammar violations: empty name, empty parameter section, a pair
 * without '=', an empty key, or a duplicate key.  Values are kept as
 * text — typing is the registry's job.
 */
PolicySpec parsePolicySpec(const std::string &spec);

} // namespace neofog

#endif // NEOFOG_BALANCE_POLICY_SPEC_HH
