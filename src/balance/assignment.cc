#include "balance/assignment.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "sim/logging.hh"

namespace neofog {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

} // namespace

AssignResult
assignTasks(const std::vector<std::int64_t> &left_costs,
            const std::vector<std::int64_t> &right_costs,
            std::int64_t max_time)
{
    const std::size_t n = left_costs.size();
    if (right_costs.size() != n)
        fatal("assignTasks: cost arrays differ in length");
    for (std::size_t k = 0; k < n; ++k) {
        if (left_costs[k] <= 0 || right_costs[k] <= 0)
            fatal("assignTasks: task costs must be positive");
    }
    if (max_time < 0)
        fatal("assignTasks: negative MAXTIME");

    AssignResult result;
    if (n == 0) {
        result.feasible = true;
        return result;
    }

    // The left budget axis only needs to reach min(sum(a), MAXTIME).
    const std::int64_t sum_a =
        std::accumulate(left_costs.begin(), left_costs.end(),
                        std::int64_t{0});
    const std::int64_t budget = std::min(sum_a, max_time);

    // dp[k][i] = min right-side time for the first k tasks with the
    // left side using at most i time units.  Keep all rows for the
    // traceback (n * budget entries; callers quantize time so this
    // stays small).
    const auto width = static_cast<std::size_t>(budget) + 1;
    std::vector<std::vector<std::int64_t>> dp(
        n + 1, std::vector<std::int64_t>(width, kInf));
    for (std::size_t i = 0; i < width; ++i)
        dp[0][i] = 0;

    for (std::size_t k = 1; k <= n; ++k) {
        const std::int64_t a = left_costs[k - 1];
        const std::int64_t b = right_costs[k - 1];
        for (std::size_t i = 0; i < width; ++i) {
            // Task k on the right: right time grows by b.
            std::int64_t best =
                dp[k - 1][i] >= kInf ? kInf : dp[k - 1][i] + b;
            // Task k on the left: needs budget a.
            if (static_cast<std::int64_t>(i) >= a) {
                const std::int64_t via_left =
                    dp[k - 1][i - static_cast<std::size_t>(a)];
                best = std::min(best, via_left);
            }
            dp[k][i] = best;
        }
    }

    // Find the budget i minimizing the makespan max(i_used, right).
    // dp is monotone nonincreasing in i, so the left time actually used
    // at budget i is found during traceback; for the makespan search we
    // use max(i, dp[n][i]) as the paper does.
    std::int64_t best_makespan = kInf;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < width; ++i) {
        if (dp[n][i] >= kInf)
            continue;
        const std::int64_t makespan =
            std::max<std::int64_t>(static_cast<std::int64_t>(i),
                                   dp[n][i]);
        if (makespan < best_makespan) {
            best_makespan = makespan;
            best_i = i;
        }
    }
    if (best_makespan >= kInf)
        return result; // infeasible (e.g. MAXTIME too small for any split)

    // Traceback.
    result.assignment.assign(n, Side::Right);
    std::size_t i = best_i;
    for (std::size_t k = n; k >= 1; --k) {
        const std::int64_t a = left_costs[k - 1];
        const std::int64_t b = right_costs[k - 1];
        const std::int64_t via_right =
            dp[k - 1][i] >= kInf ? kInf : dp[k - 1][i] + b;
        std::int64_t via_left = kInf;
        if (static_cast<std::int64_t>(i) >= a)
            via_left = dp[k - 1][i - static_cast<std::size_t>(a)];
        if (via_left <= via_right) {
            result.assignment[k - 1] = Side::Left;
            i -= static_cast<std::size_t>(a);
            result.leftTime += a;
        } else {
            result.assignment[k - 1] = Side::Right;
            result.rightTime += b;
        }
    }
    result.makespan = std::max(result.leftTime, result.rightTime);
    result.feasible = true;
    return result;
}

AssignResult
assignTasksPaperListing(const std::vector<std::int64_t> &left_costs,
                        const std::vector<std::int64_t> &right_costs,
                        std::int64_t max_time)
{
    // Line 1: n <- Sizeof(a)
    const std::size_t n = left_costs.size();
    if (right_costs.size() != n)
        fatal("assignTasksPaperListing: cost arrays differ in length");
    AssignResult result;
    if (n == 0) {
        result.feasible = true;
        return result;
    }
    const std::vector<std::int64_t> &a = left_costs;
    const std::vector<std::int64_t> &b = right_costs;

    // Line 2: p <- Zeros(MAXTIME, n).  The listing's row axis is the
    // left-side time budget i; it is bounded by both MAXTIME and
    // sum(a) (the loop "for i = 1 -> sa").
    std::int64_t sa_total = 0;
    for (std::int64_t v : a)
        sa_total += v;
    const std::int64_t rows = std::min(sa_total, max_time);
    // p[i][k]: minimum right-side time for the first k tasks with left
    // budget i.  Row 0 (budget 0) and column 0 (no tasks) are the base
    // cases the listing leaves implicit.
    std::vector<std::vector<std::int64_t>> p(
        static_cast<std::size_t>(rows) + 1,
        std::vector<std::int64_t>(n + 1, 0));

    // Lines 4-13: build the table.
    for (std::size_t k = 1; k <= n; ++k) {
        for (std::int64_t i = 0; i <= rows; ++i) {
            // p[i, k] = p[i, k-1] + b[k]  (task k on the right)
            auto &row = p[static_cast<std::size_t>(i)];
            row[k] = p[static_cast<std::size_t>(i)][k - 1] + b[k - 1];
            // Line 8: if i >= a[k], consider the left side.
            if (i >= a[k - 1]) {
                const std::int64_t via_left =
                    p[static_cast<std::size_t>(i - a[k - 1])][k - 1];
                // Lines 9-13: keep the smaller.
                if (via_left < row[k])
                    row[k] = via_left;
            }
        }
    }

    // Lines 15-25: find the minimum time (temp = max(i, p[i, n])).
    std::int64_t min_time = std::numeric_limits<std::int64_t>::max();
    std::int64_t a_time_final = 0;
    for (std::int64_t i = 0; i <= rows; ++i) {
        const std::int64_t here = p[static_cast<std::size_t>(i)][n];
        const std::int64_t temp = here >= i ? here : i;
        if (min_time > temp) {
            min_time = temp;
            a_time_final = i;
        }
    }

    // Lines 26-34: generate the assignment output.
    result.assignment.assign(n, Side::Right);
    std::int64_t i = a_time_final;
    for (std::size_t k = n; k >= 1; --k) {
        bool go_right = true;
        if (i >= a[k - 1]) {
            const std::int64_t via_right =
                p[static_cast<std::size_t>(i)][k - 1] + b[k - 1];
            const std::int64_t via_left =
                p[static_cast<std::size_t>(i - a[k - 1])][k - 1];
            // Line 28: right only if strictly cheaper than left.
            go_right = via_right < via_left;
        }
        if (go_right) {
            result.assignment[k - 1] = Side::Right;
            result.rightTime += b[k - 1];
        } else {
            result.assignment[k - 1] = Side::Left;
            result.leftTime += a[k - 1];
            i -= a[k - 1];
        }
    }
    result.makespan = std::max(result.leftTime, result.rightTime);
    result.feasible = true;
    return result;
}

AssignResult
assignTasksBruteForce(const std::vector<std::int64_t> &left_costs,
                      const std::vector<std::int64_t> &right_costs,
                      std::int64_t max_time)
{
    const std::size_t n = left_costs.size();
    if (right_costs.size() != n)
        fatal("assignTasksBruteForce: cost arrays differ in length");
    if (n > 24)
        fatal("assignTasksBruteForce: too many tasks (", n, ")");

    AssignResult best;
    std::int64_t best_makespan = kInf;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        std::int64_t left = 0, right = 0;
        for (std::size_t k = 0; k < n; ++k) {
            if (mask & (1u << k))
                left += left_costs[k];
            else
                right += right_costs[k];
        }
        if (left > max_time)
            continue;
        const std::int64_t makespan = std::max(left, right);
        if (makespan < best_makespan) {
            best_makespan = makespan;
            best.assignment.assign(n, Side::Right);
            for (std::size_t k = 0; k < n; ++k) {
                if (mask & (1u << k))
                    best.assignment[k] = Side::Left;
            }
            best.leftTime = left;
            best.rightTime = right;
            best.makespan = makespan;
            best.feasible = true;
        }
    }
    return best;
}

} // namespace neofog
