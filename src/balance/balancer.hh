/**
 * @file
 * Chain-level load balancers: none, baseline tree, NEOFog distributed.
 *
 * The system simulator describes each node's state at a balancing round
 * (alive, task queue, capacity, efficiency); a balancer returns task
 * moves.  Three policies reproduce the paper's comparison (Fig 6):
 *
 *  - NoBalancer: Fig 6(b), every node keeps its own load;
 *  - TreeBalancer: Fig 6(c), the conventional up-down multi-level
 *    binary scheme — a coordinator subtree fails entirely when its
 *    coordinator lacks energy;
 *  - DistributedBalancer: Fig 6(d) / Algorithm 1, bottom-up pairwise
 *    neighbour negotiation using the DP assignment core, tolerant of
 *    dead regions, preferring efficient nearby nodes.
 */

#ifndef NEOFOG_BALANCE_BALANCER_HH
#define NEOFOG_BALANCE_BALANCER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace neofog {

/** Load-balance-relevant state of one chain node at a round. */
struct LbNodeState
{
    /** Whether the node can participate at all this round. */
    bool alive = true;
    /** Tasks queued at this node (its own sampled batches). */
    int pendingTasks = 0;
    /**
     * Tasks this node could execute this round with its available
     * energy (fractional: 2.5 = two tasks plus half the energy of a
     * third).
     */
    double capacityTasks = 0.0;
    /**
     * Relative time/energy to run one task here (1.0 = nominal;
     * lower = more efficient, per the Spendthrift configuration the
     * node shared).
     */
    double taskCost = 1.0;
};

/** One task transfer decided by a balancer. */
struct TaskMove
{
    std::size_t from = 0;
    std::size_t to = 0;
    int tasks = 0;
};

/** Outcome of one balancing round. */
struct LbOutcome
{
    std::vector<TaskMove> moves;
    /** Info/assignment messages exchanged (for energy accounting). */
    int messagesExchanged = 0;
    /** Regions that failed to balance (coordinator dead, interrupt). */
    int failedRegions = 0;

    /** Clear counters and moves, keeping the moves' capacity. */
    void reset();

    /** Apply the moves to a pending-task vector. */
    std::vector<int> apply(const std::vector<int> &pending) const;
};

/**
 * Abstract balancing policy over one chain.
 */
class LoadBalancer
{
  public:
    virtual ~LoadBalancer() = default;

    /**
     * Decide task moves for one round, writing into caller-owned
     * storage: @p out is reset() first, so a per-slot caller reuses
     * its moves capacity instead of allocating a fresh outcome every
     * round (the fleet-scale hot path).
     * @param nodes Per-node shared state, in chain order.
     * @param rng Stream for stochastic behaviours (interrupts).
     * @param out Receives the round's outcome.
     */
    virtual void balanceInto(const std::vector<LbNodeState> &nodes,
                             Rng &rng, LbOutcome &out) = 0;

    /** Convenience wrapper returning a fresh outcome. */
    LbOutcome
    balance(const std::vector<LbNodeState> &nodes, Rng &rng)
    {
        LbOutcome out;
        balanceInto(nodes, rng, out);
        return out;
    }

    virtual std::string name() const = 0;
};

/** No balancing: every node keeps its own tasks. */
class NoBalancer : public LoadBalancer
{
  public:
    void balanceInto(const std::vector<LbNodeState> &nodes, Rng &rng,
                     LbOutcome &out) override;
    std::string name() const override { return "none"; }
};

/**
 * Baseline up-down multi-level binary tree balancer.  The node at the
 * middle of each region coordinates: it gathers load info up the tree
 * and pushes assignments down.  If a coordinator is dead or lacks the
 * energy to run the protocol, its whole region is left unbalanced
 * (the Fig 6(c) failure).
 */
class TreeBalancer : public LoadBalancer
{
  public:
    struct Config
    {
        /** Capacity a coordinator must have to run the protocol. */
        double coordinatorMinCapacity = 0.2;
        /** Smallest region the recursion still balances. */
        std::size_t minRegion = 2;
    };

    TreeBalancer();
    explicit TreeBalancer(const Config &cfg);

    void balanceInto(const std::vector<LbNodeState> &nodes, Rng &rng,
                     LbOutcome &out) override;
    std::string name() const override { return "baseline-tree"; }

  private:
    void balanceRegion(const std::vector<LbNodeState> &nodes,
                       std::vector<double> &load, std::size_t lo,
                       std::size_t hi, LbOutcome &out) const;

    Config _cfg;
};

/**
 * NEOFog's distributed bottom-up balancer (Algorithm 1).
 *
 * Each overloaded node exchanges state with progressively further
 * neighbours (node 4 learns about 3 and 5 before touching the energy-
 * hungry node 2), prices its surplus tasks on the best-efficiency
 * reachable node of each side, and splits them with the DP.  Nodes that
 * end up over-assigned trigger a second round.  If a participant dies
 * mid-protocol the region simply skips balancing this interval
 * (performance, not functionality, is affected).
 */
class DistributedBalancer : public LoadBalancer
{
  public:
    struct Config
    {
        /** How many neighbours each side is probed (first round). */
        int neighborWindow = 2;
        /** MAXTIME for the DP, in task-cost quanta. */
        std::int64_t maxTimeQuanta = 64;
        /** Cost quantization: quanta per unit taskCost. */
        double quantaPerUnit = 8.0;
        /** Probability the protocol is interrupted at a region. */
        double interruptChance = 0.02;
        /** Maximum redistribution rounds. */
        int maxRounds = 2;
    };

    DistributedBalancer();
    explicit DistributedBalancer(const Config &cfg);

    void balanceInto(const std::vector<LbNodeState> &nodes, Rng &rng,
                     LbOutcome &out) override;
    std::string name() const override { return "neofog-distributed"; }

    const Config &config() const { return _cfg; }

  private:
    Config _cfg;
};

/**
 * Cluster-head balancer — the classic LEACH-style scheme from the WSN
 * load-balancing literature the paper contrasts against (§6: "some
 * works use partitioned clusters for load balance").  The chain is cut
 * into fixed clusters; each cluster elects the member with the most
 * capacity as head; members report load to the head, which
 * redistributes *within the cluster only*.  Like the tree baseline it
 * concentrates responsibility: a cluster with no viable head does not
 * balance, and inter-cluster imbalance is never addressed.
 */
class ClusterBalancer : public LoadBalancer
{
  public:
    struct Config
    {
        /** Nodes per cluster. */
        std::size_t clusterSize = 4;
        /** Minimum capacity a node needs to serve as head. */
        double headMinCapacity = 0.5;
    };

    ClusterBalancer();
    explicit ClusterBalancer(const Config &cfg);

    void balanceInto(const std::vector<LbNodeState> &nodes, Rng &rng,
                     LbOutcome &out) override;
    std::string name() const override { return "cluster-head"; }

  private:
    Config _cfg;
};

/**
 * @deprecated Thin shim over PolicyRegistry::instance().make() so
 * out-of-tree callers of the old stringly factory keep compiling.
 * New code should use the registry (balance/policy_registry.hh),
 * which also documents the spec grammar (`policy:key=val,...`) this
 * shim now accepts.  Unknown names fail with a did-you-mean
 * suggestion listing the registered policies.
 */
std::unique_ptr<LoadBalancer> makeBalancer(const std::string &policy);

} // namespace neofog

#endif // NEOFOG_BALANCE_BALANCER_HH
