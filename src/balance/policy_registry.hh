/**
 * @file
 * PolicyRegistry: the self-describing factory for offloading policies.
 *
 * Replaces the stringly-typed makeBalancer(name) factory.  Each
 * policy registers once with a name, a one-line description, its
 * ParamSpec table, and a build function from resolved parameters; the
 * registry then:
 *
 *  - constructs a configured LoadBalancer from a spec string
 *    (`policy:key=val,...`, see policy_spec.hh), failing loudly with
 *    a did-you-mean suggestion on unknown policies or parameters and
 *    a type diagnosis on bad values;
 *  - canonicalizes specs (name + non-default params in declaration
 *    order), the exact form ScenarioConfig carries into the snapshot
 *    config fingerprint;
 *  - documents itself: names(), info(), and describe(ostream) power
 *    `neofog_cli --list-balancers`.
 *
 * The built-in policies (none, tree, cluster, distributed, greedy,
 * delay-energy, rf-aware) are registered on first use; out-of-tree
 * code may add() more before constructing scenarios.
 */

#ifndef NEOFOG_BALANCE_POLICY_REGISTRY_HH
#define NEOFOG_BALANCE_POLICY_REGISTRY_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "balance/balancer.hh"
#include "balance/policy_spec.hh"

namespace neofog {

/**
 * Parameter values resolved against a policy's ParamSpec table:
 * every declared parameter is present (spec value or default) with
 * its declared type.
 */
class ResolvedParams
{
  public:
    /** Typed getters; panic on a name/type mismatch (registry bug). */
    std::int64_t i(const std::string &name) const;
    double d(const std::string &name) const;
    bool b(const std::string &name) const;

    void set(const std::string &name, const ParamValue &value);

  private:
    const ParamValue &get(const std::string &name,
                          ParamType type) const;

    std::vector<std::pair<std::string, ParamValue>> _values;
};

/** One registered policy: identity, documentation, and factory. */
struct PolicyInfo
{
    /** Registry key, the spec's leading token (e.g. "distributed"). */
    std::string name;
    /** One-line description for --list-balancers. */
    std::string description;
    /** Declared parameters, in canonical (declaration) order. */
    std::vector<ParamSpec> params;
    /** Build a balancer from fully resolved parameters. */
    std::function<std::unique_ptr<LoadBalancer>(
        const ResolvedParams &)> build;
};

class PolicyRegistry
{
  public:
    /** The process-wide registry, built-ins registered. */
    static PolicyRegistry &instance();

    /** Register a policy; fatal on a duplicate or empty name. */
    void add(PolicyInfo info);

    /** Registered policy names, in registration order. */
    std::vector<std::string> names() const;

    /** Metadata of one policy; fatal with a suggestion if unknown. */
    const PolicyInfo &info(const std::string &name) const;

    /**
     * Parse @p spec, resolve it against the named policy's ParamSpec
     * table, and construct the configured balancer.  Fatal, with a
     * did-you-mean suggestion and the registered alternatives, on an
     * unknown policy or parameter; fatal with a type diagnosis on a
     * bad value.
     */
    std::unique_ptr<LoadBalancer> make(const std::string &spec) const;

    /**
     * Canonical form of @p spec: the policy name followed by only the
     * parameters that differ from their defaults, in declaration
     * order, values in formatValue() form.  Validates exactly like
     * make().  Canonical strings are fixed points:
     * canonical(canonical(s)) == canonical(s).
     */
    std::string canonicalSpec(const std::string &spec) const;

    /**
     * Registry-derived documentation: every policy's name,
     * description, and parameter table (name, type, default, doc).
     */
    void describe(std::ostream &os) const;

  private:
    PolicyRegistry() = default;

    const PolicyInfo *find(const std::string &name) const;
    /** Resolve spec params against @p info (shared by make/canonical). */
    ResolvedParams resolve(const PolicyInfo &info,
                           const PolicySpec &spec) const;

    std::vector<PolicyInfo> _policies;
};

} // namespace neofog

#endif // NEOFOG_BALANCE_POLICY_REGISTRY_HH
