/**
 * @file
 * Offloading policies beyond the paper's Fig 6 trio — the competing
 * points of the fog load-balancing design space the policy tournament
 * (bench/ablation_policies) ranks against Algorithm 1:
 *
 *  - GreedyNearestRichBalancer: each overloaded node ships to the
 *    closest node with spare capacity, probing outward symmetrically;
 *  - DelayEnergyBalancer: online drift-plus-penalty control in the
 *    Lyapunov style of delay-energy joint optimization for dynamic
 *    fog systems (Alenizi & Rana) — queue-backlog relief is traded
 *    against the energy bill of each candidate shipment through a
 *    tunable penalty weight V;
 *  - RfCostAwareBalancer: radio-front-end-aware offloading in the
 *    style of Kryszkiewicz et al. — the per-shipment transfer cost
 *    grows with distance (hop_cost * dist^alpha), so far receivers
 *    must beat their radio energy bill to win a task.
 *
 * All three are deterministic given the per-round node states: they
 * never draw from the RNG stream, so their thread-count bit-identity
 * follows directly from the ChainEngine determinism model.
 */

#ifndef NEOFOG_BALANCE_POLICIES_HH
#define NEOFOG_BALANCE_POLICIES_HH

#include "balance/balancer.hh"

namespace neofog {

/**
 * Greedy nearest-rich offloading: every overloaded node probes
 * neighbours at distance 1, 2, ... (left side first at equal
 * distance, toward the sink) and ships as much of its excess as the
 * first rich node found at each distance can absorb.
 */
class GreedyNearestRichBalancer : public LoadBalancer
{
  public:
    struct Config
    {
        /** Probe radius; 0 means the whole chain. */
        int maxHops = 0;
        /** Spare capacity a node needs to count as rich. */
        double minSpare = 1.0;
    };

    GreedyNearestRichBalancer();
    explicit GreedyNearestRichBalancer(const Config &cfg);

    void balanceInto(const std::vector<LbNodeState> &nodes, Rng &rng,
                     LbOutcome &out) override;
    std::string name() const override { return "greedy-nearest-rich"; }

    const Config &config() const { return _cfg; }

  private:
    Config _cfg;
};

/**
 * Delay-energy online balancer (Lyapunov drift-plus-penalty).  Each
 * surplus task at node i considers every receiver j within the
 * probe window and scores
 *
 *     score(i, j) = (q_i - q_j - 1)                       // -drift
 *                 - v * (hop_cost * dist(i,j) + cost_j)   // penalty
 *
 * where q_x = load_x - capacity_x is the *unserved* backlog: the
 * queue a node cannot fund from its own harvested energy this round.
 * (Raw queue lengths would freeze the policy in harvesting regimes
 * where every queue holds at most a task or two — a task at a dead
 * node and an empty-but-rich neighbor differ in q by the neighbor's
 * whole spare capacity, which is exactly the drift relief the move
 * buys.)  The drift relief is discounted by V times the energy bill
 * (shipment radio cost plus execution at j's efficiency).  Tasks move
 * one at a time to the current best positive-score receiver, so the
 * backlog terms stay current as the round progresses; V = 0 reduces
 * to pure backlog balancing, large V freezes all far shipments.
 */
class DelayEnergyBalancer : public LoadBalancer
{
  public:
    struct Config
    {
        /** Penalty weight V: energy cost per unit of drift relief. */
        double v = 0.5;
        /** Probe window on each side. */
        int window = 4;
        /** Radio energy per task per hop, in task-cost units. */
        double hopCost = 0.1;
    };

    DelayEnergyBalancer();
    explicit DelayEnergyBalancer(const Config &cfg);

    void balanceInto(const std::vector<LbNodeState> &nodes, Rng &rng,
                     LbOutcome &out) override;
    std::string name() const override { return "delay-energy"; }

    const Config &config() const { return _cfg; }

  private:
    Config _cfg;
};

/**
 * RF-cost-aware offloading: shipping a task over dist hops costs
 * hop_cost * dist^alpha in task-cost units on top of executing it at
 * the receiver's efficiency.  An overloaded node ships to the
 * receiver minimizing (cost_j + radio(dist)), and only while that
 * total stays within the energy budget — a distant receiver must be
 * efficient enough to beat its own radio bill, and when no receiver
 * fits the budget the tasks stay put.
 */
class RfCostAwareBalancer : public LoadBalancer
{
  public:
    struct Config
    {
        /** Path-loss exponent applied to the hop distance. */
        double alpha = 2.0;
        /** Radio energy for a one-hop shipment, in task-cost units. */
        double hopCost = 0.05;
        /** Max total (execution + radio) cost worth paying per task. */
        double budget = 2.0;
        /** Probe window on each side. */
        int window = 5;
    };

    RfCostAwareBalancer();
    explicit RfCostAwareBalancer(const Config &cfg);

    void balanceInto(const std::vector<LbNodeState> &nodes, Rng &rng,
                     LbOutcome &out) override;
    std::string name() const override { return "rf-cost-aware"; }

    const Config &config() const { return _cfg; }

  private:
    Config _cfg;
};

} // namespace neofog

#endif // NEOFOG_BALANCE_POLICIES_HH
