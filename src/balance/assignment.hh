/**
 * @file
 * Algorithm 1: the distributed load-balancing assignment core.
 *
 * Given n tasks where task k costs a[k] time on the best-efficiency
 * node(s) to the *left* and b[k] on the best node(s) to the *right*,
 * choose a side for every task minimizing the makespan
 * max(sum of chosen lefts, sum of chosen rights), subject to the left
 * side finishing within MAXTIME (the load-balance call interval).
 *
 * This is the paper's dynamic program (equations (1)-(3)):
 *   OPT(i, k) = min( OPT(i - a[k], k - 1),          // task k on left
 *                    OPT(i, k - 1) + b[k] )          // task k on right
 * where OPT(i, k) is the minimum right-side total time for the first k
 * tasks when the left side uses at most i time units.  Complexity
 * O(n * MAXTIME).
 */

#ifndef NEOFOG_BALANCE_ASSIGNMENT_HH
#define NEOFOG_BALANCE_ASSIGNMENT_HH

#include <cstdint>
#include <vector>

namespace neofog {

/** Which neighbour side a task is assigned to. */
enum class Side : std::uint8_t
{
    Left,
    Right,
};

/** Output of the assignment DP. */
struct AssignResult
{
    /** Per-task side choice. */
    std::vector<Side> assignment;
    /** Total time of tasks assigned left ("ATimeFinal"). */
    std::int64_t leftTime = 0;
    /** Total time of tasks assigned right ("BTimeFinal"). */
    std::int64_t rightTime = 0;
    /** max(leftTime, rightTime): the quantity minimized. */
    std::int64_t makespan = 0;
    /** Whether a feasible assignment within MAXTIME was found. */
    bool feasible = false;
};

/**
 * Run the Algorithm 1 dynamic program.
 *
 * @param left_costs Time cost of each task if run on the left (a[]).
 * @param right_costs Time cost of each task if run on the right (b[]).
 *        Must have the same length as @p left_costs; all costs > 0.
 * @param max_time MAXTIME: the load-balance call interval bounding the
 *        left side's total time (and the DP table height).
 */
AssignResult assignTasks(const std::vector<std::int64_t> &left_costs,
                         const std::vector<std::int64_t> &right_costs,
                         std::int64_t max_time);

/**
 * Exhaustive-search reference (O(2^n)); for testing optimality of the
 * DP on small inputs only.
 */
AssignResult assignTasksBruteForce(
    const std::vector<std::int64_t> &left_costs,
    const std::vector<std::int64_t> &right_costs,
    std::int64_t max_time);

/**
 * Transliteration of the paper's Algorithm 1 pseudocode (three steps:
 * build the table, find the minimum time, generate the assignment),
 * kept as close to the listing as a correct implementation allows.
 * It produces the same makespans as assignTasks(); the cleaned-up DP
 * above is the one production code uses.  Useful for readers checking
 * this code against the paper line by line.
 */
AssignResult assignTasksPaperListing(
    const std::vector<std::int64_t> &left_costs,
    const std::vector<std::int64_t> &right_costs,
    std::int64_t max_time);

} // namespace neofog

#endif // NEOFOG_BALANCE_ASSIGNMENT_HH
