#include "balance/policy_spec.hh"

#include <charconv>
#include <cmath>

#include "sim/logging.hh"

namespace neofog {

std::string
paramTypeName(ParamType type)
{
    switch (type) {
      case ParamType::Int:
        return "int";
      case ParamType::Double:
        return "double";
      case ParamType::Bool:
        return "bool";
    }
    NEOFOG_PANIC("unknown param type");
}

ParamValue
ParamValue::ofInt(std::int64_t v)
{
    ParamValue p;
    p.type = ParamType::Int;
    p.i = v;
    return p;
}

ParamValue
ParamValue::ofDouble(double v)
{
    ParamValue p;
    p.type = ParamType::Double;
    p.d = v;
    return p;
}

ParamValue
ParamValue::ofBool(bool v)
{
    ParamValue p;
    p.type = ParamType::Bool;
    p.b = v;
    return p;
}

bool
ParamValue::operator==(const ParamValue &other) const
{
    if (type != other.type)
        return false;
    switch (type) {
      case ParamType::Int:
        return i == other.i;
      case ParamType::Double:
        return d == other.d; // bitwise-equal semantics for the spec
      case ParamType::Bool:
        return b == other.b;
    }
    return false;
}

ParamValue
parseValue(ParamType type, const std::string &text,
           const std::string &key)
{
    if (text.empty())
        fatal("balancer spec: empty value for parameter '", key, "'");
    const char *first = text.data();
    const char *last = first + text.size();
    switch (type) {
      case ParamType::Int: {
        std::int64_t v = 0;
        const auto [ptr, ec] = std::from_chars(first, last, v);
        if (ec != std::errc{} || ptr != last)
            fatal("balancer spec: parameter '", key, "' expects an ",
                  "int, got '", text, "'");
        return ParamValue::ofInt(v);
      }
      case ParamType::Double: {
        double v = 0.0;
        const auto [ptr, ec] = std::from_chars(first, last, v);
        if (ec != std::errc{} || ptr != last || !std::isfinite(v))
            fatal("balancer spec: parameter '", key, "' expects a ",
                  "finite double, got '", text, "'");
        return ParamValue::ofDouble(v);
      }
      case ParamType::Bool: {
        if (text == "true" || text == "1")
            return ParamValue::ofBool(true);
        if (text == "false" || text == "0")
            return ParamValue::ofBool(false);
        fatal("balancer spec: parameter '", key, "' expects a bool ",
              "(true/false/1/0), got '", text, "'");
      }
    }
    NEOFOG_PANIC("unknown param type");
}

std::string
formatValue(const ParamValue &value)
{
    char buf[64];
    switch (value.type) {
      case ParamType::Int: {
        const auto [ptr, ec] =
            std::to_chars(buf, buf + sizeof(buf), value.i);
        NEOFOG_ASSERT(ec == std::errc{}, "int format");
        return std::string(buf, ptr);
      }
      case ParamType::Double: {
        // Shortest representation that parses back to the same bits.
        const auto [ptr, ec] =
            std::to_chars(buf, buf + sizeof(buf), value.d);
        NEOFOG_ASSERT(ec == std::errc{}, "double format");
        return std::string(buf, ptr);
      }
      case ParamType::Bool:
        return value.b ? "true" : "false";
    }
    NEOFOG_PANIC("unknown param type");
}

PolicySpec
parsePolicySpec(const std::string &spec)
{
    PolicySpec out;
    const std::size_t colon = spec.find(':');
    out.name = spec.substr(0, colon);
    if (out.name.empty())
        fatal("balancer spec: empty policy name in '", spec, "'");
    if (colon == std::string::npos)
        return out;

    const std::string tail = spec.substr(colon + 1);
    if (tail.empty())
        fatal("balancer spec: '", spec, "' has a ':' but no ",
              "parameters (drop the ':' or add key=value pairs)");

    std::size_t pos = 0;
    while (pos <= tail.size()) {
        const std::size_t comma = tail.find(',', pos);
        const std::string pair = tail.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            fatal("balancer spec: '", pair, "' in '", spec,
                  "' is not a key=value pair");
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (key.empty())
            fatal("balancer spec: empty key in '", spec, "'");
        for (const auto &[seen, _] : out.params) {
            if (seen == key)
                fatal("balancer spec: duplicate key '", key,
                      "' in '", spec, "'");
        }
        out.params.emplace_back(key, value);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace neofog
