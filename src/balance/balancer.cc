#include "balance/balancer.hh"

#include <algorithm>
#include <cmath>

#include "balance/assignment.hh"
#include "sim/logging.hh"

namespace neofog {

void
LbOutcome::reset()
{
    moves.clear();
    messagesExchanged = 0;
    failedRegions = 0;
}

std::vector<int>
LbOutcome::apply(const std::vector<int> &pending) const
{
    std::vector<int> out = pending;
    for (const TaskMove &m : moves) {
        NEOFOG_ASSERT(m.from < out.size() && m.to < out.size(),
                      "task move index out of range");
        NEOFOG_ASSERT(m.tasks >= 0, "negative task move");
        NEOFOG_ASSERT(out[m.from] >= m.tasks,
                      "task move exceeds pending at source");
        out[m.from] -= m.tasks;
        out[m.to] += m.tasks;
    }
    return out;
}

void
NoBalancer::balanceInto(const std::vector<LbNodeState> &nodes, Rng &rng,
                        LbOutcome &out)
{
    (void)nodes;
    (void)rng;
    out.reset();
}

TreeBalancer::TreeBalancer()
    : TreeBalancer(Config{})
{
}

TreeBalancer::TreeBalancer(const Config &cfg)
    : _cfg(cfg)
{
}

void
TreeBalancer::balanceRegion(const std::vector<LbNodeState> &nodes,
                            std::vector<double> &load, std::size_t lo,
                            std::size_t hi, LbOutcome &out) const
{
    if (hi - lo < std::max<std::size_t>(_cfg.minRegion, 2))
        return;

    const std::size_t mid = lo + (hi - lo) / 2;
    // Up-down scheme: the coordinator gathers the region's info and
    // pushes assignments.  Without it the whole region stays as-is.
    if (!nodes[mid].alive ||
        nodes[mid].capacityTasks < _cfg.coordinatorMinCapacity) {
        ++out.failedRegions;
        return;
    }
    out.messagesExchanged += static_cast<int>(hi - lo); // info gathering

    // Donors: load above capacity.  Receivers: spare capacity.  The
    // up-down scheme moves tasks across the mid boundary only (each
    // recursion level handles its own boundary).
    auto spare = [&](std::size_t i) {
        return nodes[i].alive
            ? std::max(0.0, nodes[i].capacityTasks - load[i]) : 0.0;
    };
    auto excess = [&](std::size_t i) {
        return nodes[i].alive
            ? std::max(0.0, load[i] - nodes[i].capacityTasks) : load[i];
    };

    // Transfer from the more-loaded half to the less-loaded half.
    for (int dir = 0; dir < 2; ++dir) {
        const std::size_t d_lo = dir == 0 ? lo : mid;
        const std::size_t d_hi = dir == 0 ? mid : hi;
        const std::size_t r_lo = dir == 0 ? mid : lo;
        const std::size_t r_hi = dir == 0 ? hi : mid;
        for (std::size_t i = d_lo; i < d_hi; ++i) {
            int avail = static_cast<int>(std::floor(excess(i)));
            if (avail <= 0 || !nodes[i].alive)
                continue;
            for (std::size_t j = r_lo; j < r_hi && avail > 0; ++j) {
                const int room =
                    static_cast<int>(std::floor(spare(j)));
                if (room <= 0)
                    continue;
                const int t = std::min(avail, room);
                load[i] -= t;
                load[j] += t;
                avail -= t;
                out.moves.push_back({i, j, t});
                out.messagesExchanged += 2; // assignment + transfer ack
            }
        }
    }

    balanceRegion(nodes, load, lo, mid, out);
    balanceRegion(nodes, load, mid, hi, out);
}

void
TreeBalancer::balanceInto(const std::vector<LbNodeState> &nodes,
                          Rng &rng, LbOutcome &out)
{
    (void)rng;
    out.reset();
    std::vector<double> load(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        load[i] = nodes[i].pendingTasks;
    balanceRegion(nodes, load, 0, nodes.size(), out);
}

DistributedBalancer::DistributedBalancer()
    : DistributedBalancer(Config{})
{
}

DistributedBalancer::DistributedBalancer(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.neighborWindow < 1)
        fatal("neighbor window must be >= 1");
    if (_cfg.quantaPerUnit <= 0.0)
        fatal("quantaPerUnit must be positive");
}

void
DistributedBalancer::balanceInto(const std::vector<LbNodeState> &nodes,
                                 Rng &rng, LbOutcome &out)
{
    out.reset();
    const std::size_t n = nodes.size();
    std::vector<double> load(n);
    std::vector<double> spare(n);
    for (std::size_t i = 0; i < n; ++i) {
        load[i] = nodes[i].pendingTasks;
        spare[i] = nodes[i].alive
            ? std::max(0.0, nodes[i].capacityTasks - load[i]) : 0.0;
    }

    auto quantize = [&](double cost) {
        return std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   std::llround(cost * _cfg.quantaPerUnit)));
    };

    for (int round = 0; round < _cfg.maxRounds; ++round) {
        bool moved_any = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (!nodes[i].alive)
                continue;
            const int excess = static_cast<int>(
                std::ceil(load[i] - nodes[i].capacityTasks));
            if (excess <= 0)
                continue;

            // The protocol itself can be interrupted by power failure;
            // the region then skips balancing this interval.
            if (rng.chance(_cfg.interruptChance)) {
                ++out.failedRegions;
                continue;
            }

            // Probe outward: nearest neighbours first (node 4 learns
            // about 3 and 5 before touching node 2).
            std::size_t best_left = n, best_right = n;
            for (int w = 1; w <= _cfg.neighborWindow; ++w) {
                if (best_left == n && i >= static_cast<std::size_t>(w)) {
                    const std::size_t j = i - static_cast<std::size_t>(w);
                    ++out.messagesExchanged;
                    if (nodes[j].alive && spare[j] >= 1.0)
                        best_left = j;
                }
                if (best_right == n &&
                    i + static_cast<std::size_t>(w) < n) {
                    const std::size_t j = i + static_cast<std::size_t>(w);
                    ++out.messagesExchanged;
                    if (nodes[j].alive && spare[j] >= 1.0)
                        best_right = j;
                }
            }
            if (best_left == n && best_right == n)
                continue;

            int to_left = 0, to_right = 0;
            if (best_left == n) {
                to_right = excess;
            } else if (best_right == n) {
                to_left = excess;
            } else {
                // Split with the Algorithm 1 DP: every surplus task
                // costs the target node's (efficiency-scaled) time.
                const std::vector<std::int64_t> a(
                    static_cast<std::size_t>(excess),
                    quantize(nodes[best_left].taskCost));
                const std::vector<std::int64_t> b(
                    static_cast<std::size_t>(excess),
                    quantize(nodes[best_right].taskCost));
                const AssignResult r =
                    assignTasks(a, b, _cfg.maxTimeQuanta);
                if (!r.feasible) {
                    ++out.failedRegions;
                    continue;
                }
                for (Side s : r.assignment) {
                    if (s == Side::Left)
                        ++to_left;
                    else
                        ++to_right;
                }
                out.messagesExchanged += 2; // assignment messages
            }

            auto transfer = [&](std::size_t target, int want) {
                if (target == n || want <= 0)
                    return;
                const int room = static_cast<int>(std::floor(
                    spare[target]));
                const int t = std::min({want, room,
                                        static_cast<int>(load[i])});
                if (t <= 0)
                    return;
                load[i] -= t;
                load[target] += t;
                spare[target] -= t;
                out.moves.push_back({i, target, t});
                ++out.messagesExchanged; // transfer header
                moved_any = true;
            };
            transfer(best_left, to_left);
            transfer(best_right, to_right);
        }
        if (!moved_any)
            break;
    }
}

ClusterBalancer::ClusterBalancer()
    : ClusterBalancer(Config{})
{
}

ClusterBalancer::ClusterBalancer(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.clusterSize < 2)
        fatal("cluster size must be >= 2");
}

void
ClusterBalancer::balanceInto(const std::vector<LbNodeState> &nodes,
                             Rng &rng, LbOutcome &out)
{
    (void)rng;
    out.reset();
    const std::size_t n = nodes.size();
    std::vector<double> load(n);
    for (std::size_t i = 0; i < n; ++i)
        load[i] = nodes[i].pendingTasks;

    for (std::size_t lo = 0; lo < n; lo += _cfg.clusterSize) {
        const std::size_t hi = std::min(n, lo + _cfg.clusterSize);
        // Head election: the alive member with the most capacity.
        std::size_t head = n;
        for (std::size_t i = lo; i < hi; ++i) {
            if (nodes[i].alive &&
                (head == n ||
                 nodes[i].capacityTasks > nodes[head].capacityTasks))
                head = i;
        }
        if (head == n ||
            nodes[head].capacityTasks < _cfg.headMinCapacity) {
            ++out.failedRegions;
            continue;
        }
        out.messagesExchanged += static_cast<int>(hi - lo); // reports

        // Donors hand excess to receivers, within the cluster only.
        for (std::size_t i = lo; i < hi; ++i) {
            if (!nodes[i].alive)
                continue;
            int avail = static_cast<int>(
                std::floor(load[i] - nodes[i].capacityTasks));
            if (avail <= 0)
                continue;
            for (std::size_t j = lo; j < hi && avail > 0; ++j) {
                if (j == i || !nodes[j].alive)
                    continue;
                const int room = static_cast<int>(std::floor(
                    std::max(0.0,
                             nodes[j].capacityTasks - load[j])));
                if (room <= 0)
                    continue;
                const int t = std::min(avail, room);
                load[i] -= t;
                load[j] += t;
                avail -= t;
                out.moves.push_back({i, j, t});
                out.messagesExchanged += 2; // head-mediated transfer
            }
        }
    }
}

// makeBalancer (the deprecated factory shim) lives with the registry
// in policy_registry.cc.

} // namespace neofog
