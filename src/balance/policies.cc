#include "balance/policies.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace neofog {

namespace {

/** Tasks node @p i cannot fund itself this round (>= 0). */
int
excessAt(const std::vector<double> &load,
         const std::vector<LbNodeState> &nodes, std::size_t i)
{
    if (!nodes[i].alive)
        return 0;
    return std::max(
        0, static_cast<int>(
               std::ceil(load[i] - nodes[i].capacityTasks)));
}

/**
 * Ship up to @p want tasks from @p i to @p j, recording the move and
 * maintaining the load/spare views.  Returns the tasks shipped.
 */
int
ship(std::size_t i, std::size_t j, int want, std::vector<double> &load,
     std::vector<double> &spare, LbOutcome &out)
{
    const int room = static_cast<int>(std::floor(spare[j]));
    const int t =
        std::min({want, room, static_cast<int>(load[i])});
    if (t <= 0)
        return 0;
    load[i] -= t;
    load[j] += t;
    spare[j] -= t;
    out.moves.push_back({i, j, t});
    ++out.messagesExchanged; // transfer header
    return t;
}

} // namespace

GreedyNearestRichBalancer::GreedyNearestRichBalancer()
    : GreedyNearestRichBalancer(Config{})
{
}

GreedyNearestRichBalancer::GreedyNearestRichBalancer(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.maxHops < 0)
        fatal("greedy balancer: max_hops must be >= 0");
    if (_cfg.minSpare <= 0.0)
        fatal("greedy balancer: min_spare must be positive");
}

void
GreedyNearestRichBalancer::balanceInto(
    const std::vector<LbNodeState> &nodes, Rng &rng, LbOutcome &out)
{
    (void)rng; // deterministic policy
    out.reset();
    const std::size_t n = nodes.size();
    std::vector<double> load(n), spare(n);
    for (std::size_t i = 0; i < n; ++i) {
        load[i] = nodes[i].pendingTasks;
        spare[i] = nodes[i].alive
            ? std::max(0.0, nodes[i].capacityTasks - load[i]) : 0.0;
    }

    const std::size_t limit = _cfg.maxHops > 0
        ? static_cast<std::size_t>(_cfg.maxHops) : n;
    for (std::size_t i = 0; i < n; ++i) {
        int excess = excessAt(load, nodes, i);
        if (excess <= 0)
            continue;
        // Ring outward: at each distance the left (sink-side)
        // candidate is tried first, so ties break toward the sink.
        for (std::size_t d = 1; d <= limit && excess > 0; ++d) {
            for (int side = 0; side < 2 && excess > 0; ++side) {
                const bool left = side == 0;
                if (left && i < d)
                    continue;
                if (!left && i + d >= n)
                    continue;
                const std::size_t j = left ? i - d : i + d;
                ++out.messagesExchanged; // state probe
                if (!nodes[j].alive || spare[j] < _cfg.minSpare)
                    continue;
                excess -= ship(i, j, excess, load, spare, out);
            }
        }
    }
}

DelayEnergyBalancer::DelayEnergyBalancer()
    : DelayEnergyBalancer(Config{})
{
}

DelayEnergyBalancer::DelayEnergyBalancer(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.v < 0.0)
        fatal("delay-energy balancer: v must be >= 0");
    if (_cfg.window < 1)
        fatal("delay-energy balancer: window must be >= 1");
    if (_cfg.hopCost < 0.0)
        fatal("delay-energy balancer: hop_cost must be >= 0");
}

void
DelayEnergyBalancer::balanceInto(const std::vector<LbNodeState> &nodes,
                                 Rng &rng, LbOutcome &out)
{
    (void)rng; // deterministic policy
    out.reset();
    const std::size_t n = nodes.size();
    std::vector<double> load(n), spare(n);
    for (std::size_t i = 0; i < n; ++i) {
        load[i] = nodes[i].pendingTasks;
        spare[i] = nodes[i].alive
            ? std::max(0.0, nodes[i].capacityTasks - load[i]) : 0.0;
    }

    const auto w = static_cast<std::size_t>(_cfg.window);
    for (std::size_t i = 0; i < n; ++i) {
        if (excessAt(load, nodes, i) <= 0)
            continue;
        // One round of state probes across the window, then tasks
        // move one at a time so every score sees current backlogs.
        for (std::size_t d = 1; d <= w; ++d) {
            if (i >= d)
                ++out.messagesExchanged;
            if (i + d < n)
                ++out.messagesExchanged;
        }
        while (excessAt(load, nodes, i) > 0) {
            std::size_t best = n;
            double best_score = 0.0;
            for (std::size_t d = 1; d <= w; ++d) {
                for (int side = 0; side < 2; ++side) {
                    const bool leftward = side == 0;
                    if (leftward && i < d)
                        continue;
                    if (!leftward && i + d >= n)
                        continue;
                    const std::size_t j = leftward ? i - d : i + d;
                    if (!nodes[j].alive || spare[j] < 1.0)
                        continue;
                    // Unserved backlogs: what each queue holds beyond
                    // what the node can fund itself this round.
                    const double qi =
                        load[i] - nodes[i].capacityTasks;
                    const double qj =
                        load[j] - nodes[j].capacityTasks;
                    const double drift = qi - qj - 1.0;
                    const double penalty =
                        _cfg.v * (_cfg.hopCost *
                                      static_cast<double>(d) +
                                  nodes[j].taskCost);
                    const double score = drift - penalty;
                    // Strict > keeps the near/left preference of the
                    // fixed probe order on exact ties.
                    if (best == n || score > best_score) {
                        best = j;
                        best_score = score;
                    }
                }
            }
            if (best == n || best_score <= 0.0)
                break;
            if (ship(i, best, 1, load, spare, out) == 0)
                break;
        }
    }
}

RfCostAwareBalancer::RfCostAwareBalancer()
    : RfCostAwareBalancer(Config{})
{
}

RfCostAwareBalancer::RfCostAwareBalancer(const Config &cfg)
    : _cfg(cfg)
{
    if (_cfg.alpha < 0.0)
        fatal("rf balancer: alpha must be >= 0");
    if (_cfg.hopCost < 0.0)
        fatal("rf balancer: hop_cost must be >= 0");
    if (_cfg.budget <= 0.0)
        fatal("rf balancer: budget must be positive");
    if (_cfg.window < 1)
        fatal("rf balancer: window must be >= 1");
}

void
RfCostAwareBalancer::balanceInto(const std::vector<LbNodeState> &nodes,
                                 Rng &rng, LbOutcome &out)
{
    (void)rng; // deterministic policy
    out.reset();
    const std::size_t n = nodes.size();
    std::vector<double> load(n), spare(n);
    for (std::size_t i = 0; i < n; ++i) {
        load[i] = nodes[i].pendingTasks;
        spare[i] = nodes[i].alive
            ? std::max(0.0, nodes[i].capacityTasks - load[i]) : 0.0;
    }

    const auto w = static_cast<std::size_t>(_cfg.window);
    const auto radio = [this](std::size_t dist) {
        return _cfg.hopCost *
               std::pow(static_cast<double>(dist), _cfg.alpha);
    };
    for (std::size_t i = 0; i < n; ++i) {
        int excess = excessAt(load, nodes, i);
        if (excess <= 0)
            continue;
        for (std::size_t d = 1; d <= w; ++d) {
            if (i >= d)
                ++out.messagesExchanged;
            if (i + d < n)
                ++out.messagesExchanged;
        }
        while (excess > 0) {
            // Cheapest delivered cost: execution at j plus the
            // distance-scaled radio bill; the budget caps both.
            std::size_t best = n;
            double best_cost = _cfg.budget;
            for (std::size_t d = 1; d <= w; ++d) {
                for (int side = 0; side < 2; ++side) {
                    const bool leftward = side == 0;
                    if (leftward && i < d)
                        continue;
                    if (!leftward && i + d >= n)
                        continue;
                    const std::size_t j = leftward ? i - d : i + d;
                    if (!nodes[j].alive || spare[j] < 1.0)
                        continue;
                    const double cost =
                        nodes[j].taskCost + radio(d);
                    if (best == n ? cost <= best_cost
                                  : cost < best_cost) {
                        best = j;
                        best_cost = cost;
                    }
                }
            }
            if (best == n)
                break;
            const int t = ship(i, best, excess, load, spare, out);
            if (t == 0)
                break;
            excess -= t;
        }
    }
}

} // namespace neofog
