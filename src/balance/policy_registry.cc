#include "balance/policy_registry.hh"

#include <algorithm>

#include "balance/policies.hh"
#include "sim/logging.hh"

namespace neofog {

namespace {

/** Levenshtein distance, for did-you-mean suggestions. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            row[j] = std::min(
                {row[j] + 1, row[j - 1] + 1,
                 diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

/**
 * " — did you mean 'x'?" when some candidate is within 3 edits of
 * @p got, else "".  Ties go to the earliest candidate.
 */
std::string
didYouMean(const std::string &got,
           const std::vector<std::string> &candidates)
{
    std::size_t best = 4; // suggest only within 3 edits
    const std::string *pick = nullptr;
    for (const std::string &c : candidates) {
        const std::size_t dist = editDistance(got, c);
        if (dist < best) {
            best = dist;
            pick = &c;
        }
    }
    return pick ? " — did you mean '" + *pick + "'?" : "";
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

void
registerBuiltins(PolicyRegistry &reg)
{
    reg.add({
        "none",
        "no balancing: every node keeps its own tasks (Fig 6(b))",
        {},
        [](const ResolvedParams &) {
            return std::make_unique<NoBalancer>();
        },
    });
    reg.add({
        "tree",
        "baseline up-down multi-level binary tree; a region fails "
        "when its coordinator lacks energy (Fig 6(c))",
        {
            {"coordinator_min_capacity", ParamType::Double,
             ParamValue::ofDouble(0.2),
             "capacity a coordinator needs to run the protocol"},
            {"min_region", ParamType::Int, ParamValue::ofInt(2),
             "smallest region the recursion still balances"},
        },
        [](const ResolvedParams &p) {
            TreeBalancer::Config cfg;
            cfg.coordinatorMinCapacity =
                p.d("coordinator_min_capacity");
            cfg.minRegion =
                static_cast<std::size_t>(p.i("min_region"));
            return std::make_unique<TreeBalancer>(cfg);
        },
    });
    reg.add({
        "cluster",
        "LEACH-style cluster heads redistributing within fixed "
        "clusters only (the partitioned-cluster WSN baseline)",
        {
            {"cluster_size", ParamType::Int, ParamValue::ofInt(4),
             "nodes per cluster"},
            {"head_min_capacity", ParamType::Double,
             ParamValue::ofDouble(0.5),
             "minimum capacity a node needs to serve as head"},
        },
        [](const ResolvedParams &p) {
            ClusterBalancer::Config cfg;
            cfg.clusterSize =
                static_cast<std::size_t>(p.i("cluster_size"));
            cfg.headMinCapacity = p.d("head_min_capacity");
            return std::make_unique<ClusterBalancer>(cfg);
        },
    });
    reg.add({
        "distributed",
        "NEOFog's bottom-up pairwise negotiation with the DP "
        "assignment core (Algorithm 1, Fig 6(d))",
        {
            {"neighbor_window", ParamType::Int, ParamValue::ofInt(2),
             "neighbours probed on each side in the first round"},
            {"max_time_quanta", ParamType::Int,
             ParamValue::ofInt(64),
             "MAXTIME for the DP, in task-cost quanta"},
            {"quanta_per_unit", ParamType::Double,
             ParamValue::ofDouble(8.0),
             "cost quantization: quanta per unit taskCost"},
            {"interrupt_chance", ParamType::Double,
             ParamValue::ofDouble(0.02),
             "probability the protocol is interrupted at a region"},
            {"max_rounds", ParamType::Int, ParamValue::ofInt(2),
             "maximum redistribution rounds"},
        },
        [](const ResolvedParams &p) {
            DistributedBalancer::Config cfg;
            cfg.neighborWindow =
                static_cast<int>(p.i("neighbor_window"));
            cfg.maxTimeQuanta = p.i("max_time_quanta");
            cfg.quantaPerUnit = p.d("quanta_per_unit");
            cfg.interruptChance = p.d("interrupt_chance");
            cfg.maxRounds = static_cast<int>(p.i("max_rounds"));
            return std::make_unique<DistributedBalancer>(cfg);
        },
    });
    reg.add({
        "greedy",
        "greedy nearest-rich: overloaded nodes ship to the closest "
        "node with spare capacity, probing outward",
        {
            {"max_hops", ParamType::Int, ParamValue::ofInt(0),
             "probe radius (0 = the whole chain)"},
            {"min_spare", ParamType::Double,
             ParamValue::ofDouble(1.0),
             "spare capacity a node needs to count as rich"},
        },
        [](const ResolvedParams &p) {
            GreedyNearestRichBalancer::Config cfg;
            cfg.maxHops = static_cast<int>(p.i("max_hops"));
            cfg.minSpare = p.d("min_spare");
            return std::make_unique<GreedyNearestRichBalancer>(cfg);
        },
    });
    reg.add({
        "delay-energy",
        "Lyapunov drift-plus-penalty online control: backlog relief "
        "vs shipment energy at penalty weight v (Alenizi & Rana)",
        {
            {"v", ParamType::Double, ParamValue::ofDouble(0.5),
             "penalty weight: energy cost per unit of drift relief"},
            {"window", ParamType::Int, ParamValue::ofInt(4),
             "probe window on each side"},
            {"hop_cost", ParamType::Double,
             ParamValue::ofDouble(0.1),
             "radio energy per task per hop, in task-cost units"},
        },
        [](const ResolvedParams &p) {
            DelayEnergyBalancer::Config cfg;
            cfg.v = p.d("v");
            cfg.window = static_cast<int>(p.i("window"));
            cfg.hopCost = p.d("hop_cost");
            return std::make_unique<DelayEnergyBalancer>(cfg);
        },
    });
    reg.add({
        "rf-aware",
        "radio-front-end-aware offloading: transfer cost scales as "
        "hop_cost*dist^alpha, far shipments must beat their radio "
        "bill (Kryszkiewicz et al.)",
        {
            {"alpha", ParamType::Double, ParamValue::ofDouble(2.0),
             "path-loss exponent applied to the hop distance"},
            {"hop_cost", ParamType::Double,
             ParamValue::ofDouble(0.05),
             "radio energy for a one-hop shipment, task-cost units"},
            {"budget", ParamType::Double, ParamValue::ofDouble(2.0),
             "max total (execution + radio) cost paid per task"},
            {"window", ParamType::Int, ParamValue::ofInt(5),
             "probe window on each side"},
        },
        [](const ResolvedParams &p) {
            RfCostAwareBalancer::Config cfg;
            cfg.alpha = p.d("alpha");
            cfg.hopCost = p.d("hop_cost");
            cfg.budget = p.d("budget");
            cfg.window = static_cast<int>(p.i("window"));
            return std::make_unique<RfCostAwareBalancer>(cfg);
        },
    });
}

} // namespace

std::int64_t
ResolvedParams::i(const std::string &name) const
{
    return get(name, ParamType::Int).i;
}

double
ResolvedParams::d(const std::string &name) const
{
    return get(name, ParamType::Double).d;
}

bool
ResolvedParams::b(const std::string &name) const
{
    return get(name, ParamType::Bool).b;
}

void
ResolvedParams::set(const std::string &name, const ParamValue &value)
{
    for (auto &[n, v] : _values) {
        if (n == name) {
            v = value;
            return;
        }
    }
    _values.emplace_back(name, value);
}

const ParamValue &
ResolvedParams::get(const std::string &name, ParamType type) const
{
    for (const auto &[n, v] : _values) {
        if (n == name) {
            NEOFOG_ASSERT(v.type == type,
                          "param type mismatch for ", name);
            return v;
        }
    }
    NEOFOG_PANIC("unresolved param ", name);
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry reg = [] {
        PolicyRegistry r;
        registerBuiltins(r);
        return r;
    }();
    return reg;
}

void
PolicyRegistry::add(PolicyInfo info)
{
    if (info.name.empty())
        fatal("policy registry: empty policy name");
    if (!info.build)
        fatal("policy registry: policy '", info.name,
              "' has no build function");
    if (find(info.name) != nullptr)
        fatal("policy registry: duplicate policy '", info.name, "'");
    _policies.push_back(std::move(info));
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(_policies.size());
    for (const PolicyInfo &p : _policies)
        out.push_back(p.name);
    return out;
}

const PolicyInfo *
PolicyRegistry::find(const std::string &name) const
{
    for (const PolicyInfo &p : _policies) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

const PolicyInfo &
PolicyRegistry::info(const std::string &name) const
{
    const PolicyInfo *p = find(name);
    if (p == nullptr) {
        fatal("unknown balancer policy '", name, "'",
              didYouMean(name, names()), " (registered: ",
              joinNames(names()), ")");
    }
    return *p;
}

ResolvedParams
PolicyRegistry::resolve(const PolicyInfo &info,
                        const PolicySpec &spec) const
{
    ResolvedParams out;
    for (const ParamSpec &p : info.params)
        out.set(p.name, p.defaultValue);
    for (const auto &[key, text] : spec.params) {
        const ParamSpec *match = nullptr;
        for (const ParamSpec &p : info.params) {
            if (p.name == key) {
                match = &p;
                break;
            }
        }
        if (match == nullptr) {
            std::vector<std::string> keys;
            keys.reserve(info.params.size());
            for (const ParamSpec &p : info.params)
                keys.push_back(p.name);
            fatal("balancer policy '", info.name,
                  "' has no parameter '", key, "'",
                  didYouMean(key, keys),
                  keys.empty() ? " (it takes no parameters)"
                               : " (parameters: " + joinNames(keys) +
                                     ")");
        }
        out.set(key, parseValue(match->type, text, key));
    }
    return out;
}

std::unique_ptr<LoadBalancer>
PolicyRegistry::make(const std::string &spec) const
{
    const PolicySpec parsed = parsePolicySpec(spec);
    const PolicyInfo &policy = info(parsed.name);
    return policy.build(resolve(policy, parsed));
}

std::string
PolicyRegistry::canonicalSpec(const std::string &spec) const
{
    const PolicySpec parsed = parsePolicySpec(spec);
    const PolicyInfo &policy = info(parsed.name);
    const ResolvedParams resolved = resolve(policy, parsed);

    std::string out = policy.name;
    bool first = true;
    for (const ParamSpec &p : policy.params) {
        ParamValue v = p.defaultValue;
        switch (p.type) {
          case ParamType::Int:
            v = ParamValue::ofInt(resolved.i(p.name));
            break;
          case ParamType::Double:
            v = ParamValue::ofDouble(resolved.d(p.name));
            break;
          case ParamType::Bool:
            v = ParamValue::ofBool(resolved.b(p.name));
            break;
        }
        if (v == p.defaultValue)
            continue;
        out += first ? ':' : ',';
        first = false;
        out += p.name + "=" + formatValue(v);
    }
    return out;
}

void
PolicyRegistry::describe(std::ostream &os) const
{
    for (const PolicyInfo &p : _policies) {
        os << p.name << "\n    " << p.description << "\n";
        if (p.params.empty()) {
            os << "    (no parameters)\n";
            continue;
        }
        for (const ParamSpec &s : p.params) {
            os << "    " << s.name << " (" << paramTypeName(s.type)
               << ", default " << formatValue(s.defaultValue)
               << ") — " << s.doc << "\n";
        }
    }
}

std::unique_ptr<LoadBalancer>
makeBalancer(const std::string &policy)
{
    // Deprecated shim (see balancer.hh): out-of-tree callers of the
    // old stringly factory land on the registry, spec grammar and
    // diagnostics included.
    return PolicyRegistry::instance().make(policy);
}

} // namespace neofog
