#include "workload/app_profile.hh"

#include <cmath>

#include "hw/processor.hh"
#include "sim/logging.hh"

namespace neofog {

Energy
AppProfile::naiveComputeEnergy() const
{
    return Energy::fromNanojoules(
        static_cast<double>(naiveInstructions) * kNvpInstructionEnergyNj);
}

Energy
AppProfile::naiveTxEnergy() const
{
    return Energy::fromNanojoules(
        static_cast<double>(bytesPerSample) * kTxEnergyPerByteNj);
}

double
AppProfile::naiveComputeRatio() const
{
    const double c = naiveComputeEnergy().nanojoules();
    const double t = naiveTxEnergy().nanojoules();
    return c / (c + t);
}

std::size_t
AppProfile::samplesPerBatch() const
{
    NEOFOG_ASSERT(bytesPerSample > 0, "bytesPerSample");
    return kBatchBytes / bytesPerSample;
}

Energy
AppProfile::bufferedComputeEnergy() const
{
    return Energy::fromNanojoules(
        bufferedInstPerByte * static_cast<double>(kBatchBytes) *
        kNvpInstructionEnergyNj);
}

Energy
AppProfile::bufferedTxEnergy() const
{
    return Energy::fromNanojoules(
        compressionRatio * static_cast<double>(kBatchBytes) *
        kTxEnergyPerByteNj);
}

double
AppProfile::bufferedComputeRatio() const
{
    const double c = bufferedComputeEnergy().nanojoules();
    const double t = bufferedTxEnergy().nanojoules();
    return c / (c + t);
}

double
AppProfile::energySavedRatio() const
{
    // Formulas (4)-(6) of the paper: the naive strategy repeats the
    // per-sample cost for every sample in 64 kB of data; the buffered
    // strategy processes the batch at once.
    const double per_sample = naiveComputeEnergy().nanojoules() +
                              naiveTxEnergy().nanojoules();
    const double e_naive =
        per_sample * static_cast<double>(samplesPerBatch());
    const double e_new = bufferedComputeEnergy().nanojoules() +
                         bufferedTxEnergy().nanojoules();
    return (e_new - e_naive) / e_naive;
}

std::uint64_t
AppProfile::bufferedInstructionsFor(std::size_t bytes) const
{
    return static_cast<std::uint64_t>(
        std::llround(bufferedInstPerByte * static_cast<double>(bytes)));
}

std::size_t
AppProfile::compressedSize(std::size_t bytes) const
{
    const auto out = static_cast<std::size_t>(
        std::llround(compressionRatio * static_cast<double>(bytes)));
    return bytes == 0 ? 0 : std::max<std::size_t>(out, 1);
}

AppProfile
appProfile(AppKind kind)
{
    AppProfile p;
    p.kind = kind;
    switch (kind) {
      case AppKind::BridgeHealth:
        p.name = "Bridge Health";
        p.naiveInstructions = 545;
        p.bytesPerSample = 8;
        // 81.7 mJ / (64 kB * 2.508 nJ) and 6.95 mJ / (64 kB * 2851.2 nJ)
        p.bufferedInstPerByte = 497.05;
        p.compressionRatio = 0.03720;
        p.sensor = sensors::lis331dlh();
        break;
      case AppKind::UvMeter:
        p.name = "UV Meter";
        p.naiveInstructions = 460;
        p.bytesPerSample = 2;
        p.bufferedInstPerByte = 658.90;
        p.compressionRatio = 0.03640;
        p.sensor = sensors::uvMeter();
        break;
      case AppKind::WsnTemp:
        p.name = "WSN-Temp.";
        p.naiveInstructions = 56;
        p.bytesPerSample = 2;
        p.bufferedInstPerByte = 456.29;
        p.compressionRatio = 0.03741;
        p.sensor = sensors::tmp101();
        break;
      case AppKind::WsnAccel:
        p.name = "WSN-Accel.";
        p.naiveInstructions = 477;
        p.bytesPerSample = 6;
        p.bufferedInstPerByte = 508.61;
        p.compressionRatio = 0.03527;
        p.sensor = sensors::lis331dlh();
        break;
      case AppKind::PatternMatching:
        p.name = "Pattern Matching";
        p.naiveInstructions = 1670;
        p.bytesPerSample = 1;
        p.bufferedInstPerByte = 2099.55;
        p.compressionRatio = 0.02885;
        p.sensor = sensors::ecgAfe();
        break;
    }
    return p;
}

std::vector<AppProfile>
allAppProfiles()
{
    std::vector<AppProfile> out;
    out.reserve(kAllApps.size());
    for (AppKind k : kAllApps)
        out.push_back(appProfile(k));
    return out;
}

std::string
appName(AppKind kind)
{
    return appProfile(kind).name;
}

std::string
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::NaiveSenseTransmit:
        return "naive sensing-computing-transmission";
      case Strategy::BufferedComputeCompress:
        return "sensing-buffering-computing-compression-transmission";
    }
    return "?";
}

} // namespace neofog
