/**
 * @file
 * Concrete in-fog tasks: real kernel pipelines behind each application.
 *
 * Where the system-level simulator uses the analytic Table 2 constants
 * (it must run millions of node-slots), examples, tests, and the Table 2
 * bench run these tasks for real: they synthesize a sensor batch, run
 * the full kernel pipeline (noise removal, FFT/AR/matching, strength
 * models, compression), and report actual operation counts and actual
 * compressed sizes.
 */

#ifndef NEOFOG_WORKLOAD_FOG_TASK_HH
#define NEOFOG_WORKLOAD_FOG_TASK_HH

#include <cstdint>
#include <memory>
#include <string>

#include "kernels/compress.hh"
#include "sim/rng.hh"
#include "workload/app_profile.hh"

namespace neofog {

/** Result of fog-processing one sensed batch. */
struct FogOutput
{
    /** Compressed result payload ready for transmission. */
    kernels::Bytes payload;
    /** Application-level scalar result (strength ratio, BPM, ...). */
    double metric = 0.0;
    /** Arithmetic operations the pipeline executed (for energy). */
    std::uint64_t opsExecuted = 0;
    /** Raw batch size that was processed. */
    std::size_t rawBytes = 0;

    /** Achieved compression ratio payload/raw. */
    double
    achievedRatio() const
    {
        return rawBytes == 0
            ? 0.0
            : static_cast<double>(payload.size()) /
              static_cast<double>(rawBytes);
    }
};

/**
 * An in-fog task: the computation offloaded from the cloud to the node.
 */
class FogTask
{
  public:
    virtual ~FogTask() = default;

    /**
     * Synthesize and process a raw batch of @p raw_bytes.
     * @param rng Stream for signal synthesis.
     */
    virtual FogOutput processBatch(std::size_t raw_bytes, Rng &rng) = 0;

    /** Task name for reports. */
    virtual std::string name() const = 0;
};

/** Build the kernel-backed task for an application. */
std::unique_ptr<FogTask> makeFogTask(AppKind kind);

/**
 * The forest-fire volumetric reconstruction task (paper §5.2.1), which
 * is a deployment scenario rather than a Table 2 application.
 */
std::unique_ptr<FogTask> makeVolumetricTask();

} // namespace neofog

#endif // NEOFOG_WORKLOAD_FOG_TASK_HH
