/**
 * @file
 * Application profiles: the five deployed workloads of Table 2.
 *
 * The constants reproduce the paper's measured Table 2 exactly:
 *  - per-instruction energy 2.508 nJ (0.209 mW 8051 @1 MHz, 12
 *    clocks/instruction);
 *  - per-byte transmission energy 2851.2 nJ (89.1 mW at 250 kbps,
 *    radio-on airtime);
 *  - per-sample instruction counts {545, 460, 56, 477, 1670};
 *  - per-sample payload bytes {8, 2, 2, 6, 1} (back-derived from the
 *    TX energy column: E_tx = bytes * 2851.2 nJ);
 *  - buffered-strategy compute/TX energies per 64 kB batch from the
 *    right half of the table.
 *
 * Energy computations for both strategies follow the paper's formulas
 * (4)-(6) so the Table 2 bench regenerates every cell.
 */

#ifndef NEOFOG_WORKLOAD_APP_PROFILE_HH
#define NEOFOG_WORKLOAD_APP_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/sensor.hh"
#include "sim/units.hh"

namespace neofog {

/** Per-byte radio-on TX energy implied by Table 2 (nJ). */
inline constexpr double kTxEnergyPerByteNj = 2851.2;

/** The five deployed applications of Table 2. */
enum class AppKind
{
    BridgeHealth,
    UvMeter,
    WsnTemp,
    WsnAccel,
    PatternMatching,
};

/** All application kinds, in Table 2 order. */
inline constexpr std::array<AppKind, 5> kAllApps = {
    AppKind::BridgeHealth, AppKind::UvMeter, AppKind::WsnTemp,
    AppKind::WsnAccel, AppKind::PatternMatching,
};

/** Data-processing strategy (Table 2 columns). */
enum class Strategy
{
    /** Naive sensing-computing-transmission: ship every sample. */
    NaiveSenseTransmit,
    /** Sensing-buffering-computing-compression-transmission (FIOS). */
    BufferedComputeCompress,
};

/**
 * Static workload description of one application.
 */
struct AppProfile
{
    AppKind kind = AppKind::BridgeHealth;
    std::string name = "Bridge Health";
    /** Instructions per sample, naive strategy (Table 2 col 2). */
    std::uint64_t naiveInstructions = 545;
    /** Payload bytes per sample. */
    std::size_t bytesPerSample = 8;
    /** Buffered strategy: instructions per buffered byte (fog task +
     *  compression over a 64 kB batch). */
    double bufferedInstPerByte = 497.0;
    /** Compressed output size as a fraction of the raw batch. */
    double compressionRatio = 0.0372;
    /** The sensor part this application samples. */
    SensorSpec sensor{};

    /** Per-sample naive compute energy (Table 2 col 3). */
    Energy naiveComputeEnergy() const;
    /** Per-sample naive TX energy (Table 2 col 4). */
    Energy naiveTxEnergy() const;
    /** Naive compute ratio (Table 2 col 5). */
    double naiveComputeRatio() const;

    /** Batch size of the buffered strategy (the 64 kB NV buffer). */
    static constexpr std::size_t kBatchBytes = 64 * 1024;

    /** Samples that fill one 64 kB batch. */
    std::size_t samplesPerBatch() const;
    /** Buffered compute energy for one full batch (Table 2 col 6). */
    Energy bufferedComputeEnergy() const;
    /** Buffered TX energy for one compressed batch (Table 2 col 7). */
    Energy bufferedTxEnergy() const;
    /** Buffered compute ratio (Table 2 col 8). */
    double bufferedComputeRatio() const;

    /**
     * Total-energy delta of the buffered strategy vs naive for the
     * same 64 kB of sensed data — the paper's formulas (4)-(6);
     * negative values are savings (Table 2 col 9).
     */
    double energySavedRatio() const;

    /** Instructions to fog-process + compress @p bytes of raw data. */
    std::uint64_t bufferedInstructionsFor(std::size_t bytes) const;
    /** Compressed size of @p bytes of raw data. */
    std::size_t compressedSize(std::size_t bytes) const;
};

/** Profile of one application (Table 2 constants). */
AppProfile appProfile(AppKind kind);

/** All five profiles in Table 2 order. */
std::vector<AppProfile> allAppProfiles();

/** Display name of an application. */
std::string appName(AppKind kind);

/** Display name of a strategy. */
std::string strategyName(Strategy s);

} // namespace neofog

#endif // NEOFOG_WORKLOAD_APP_PROFILE_HH
