#include "workload/fog_task.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "kernels/ar_model.hh"
#include "kernels/bridge_model.hh"
#include "kernels/fft.hh"
#include "kernels/filters.hh"
#include "kernels/pattern_match.hh"
#include "kernels/signal_gen.hh"
#include "kernels/volumetric.hh"
#include "sim/logging.hh"

namespace neofog {

namespace {

using kernels::Bytes;

/** Shared finish step: quantize a result series and compress it. */
FogOutput
finish(const std::vector<double> &result, double lo, double hi,
       double metric, std::uint64_t ops, std::size_t raw_bytes)
{
    FogOutput out;
    const Bytes quantized = kernels::quantize16(result, lo, hi);
    out.payload = kernels::compress(quantized);
    out.metric = metric;
    out.opsExecuted = ops + kernels::compressOpCount(quantized.size());
    out.rawBytes = raw_bytes;
    return out;
}

/** Bridge cable health: 3-axis combine, strength models, compensate. */
class BridgeStrengthTask : public FogTask
{
  public:
    FogOutput
    processBatch(std::size_t raw_bytes, Rng &rng) override
    {
        // 8 bytes per sample: 3 x 16-bit axes + 16-bit temperature.
        const std::size_t n = std::max<std::size_t>(raw_bytes / 8, 32);
        const std::array<double, 3> dir{0.12, 0.08, 0.99};
        const double rate_hz = 100.0;
        const double fundamental = rng.uniform(0.8, 1.6);
        auto axes = kernels::threeAxisVibration(rng, n, rate_hz,
                                                fundamental, dir, 0.15);
        const auto temps =
            kernels::temperatureSignal(rng, n, 22.0, 3.0, 0.05);
        const double mean_temp =
            std::accumulate(temps.begin(), temps.end(), 0.0) /
            static_cast<double>(n);

        kernels::CableSpec spec;
        const auto est = kernels::estimateStrength(
            axes[0], axes[1], axes[2], dir, rate_hz, spec, mean_temp);

        // Result series: the three model tensions + average, repeated
        // nothing — just the compact strength record per batch.
        std::vector<double> result = {
            est.fundamentalHz,
            est.modelTensionsN[0], est.modelTensionsN[1],
            est.modelTensionsN[2], est.tensionN, est.strengthRatio,
        };
        // Also ship the smoothed vibration envelope at 1/64 rate so the
        // cloud can audit (the paper ships strength data, which is
        // low-variance and compresses well).
        const auto combined =
            kernels::projectAxes(axes[0], axes[1], axes[2], dir);
        const auto smooth = kernels::movingAverage(combined, 8);
        for (std::size_t i = 0; i < smooth.size(); i += 64)
            result.push_back(smooth[i]);

        const std::uint64_t ops =
            kernels::strengthOpCount(n) +
            kernels::movingAverageOpCount(n, 8);
        return finish(result, -1.0e7, 1.0e7, est.strengthRatio, ops,
                      raw_bytes);
    }

    std::string name() const override { return "bridge-strength"; }
};

/** Wearable UV meter: smooth and integrate dose. */
class UvDoseTask : public FogTask
{
  public:
    FogOutput
    processBatch(std::size_t raw_bytes, Rng &rng) override
    {
        const std::size_t n = std::max<std::size_t>(raw_bytes / 2, 16);
        const auto uv = kernels::uvSignal(rng, n, 8.0);
        const auto smooth = kernels::movingAverage(uv, 4);
        // Dose = integral of UV index over the batch.
        double dose = 0.0;
        for (double v : smooth)
            dose += v;
        dose /= static_cast<double>(n);

        // Downsampled smoothed series + dose summary.
        std::vector<double> result = {dose};
        for (std::size_t i = 0; i < smooth.size(); i += 16)
            result.push_back(smooth[i]);

        const std::uint64_t ops =
            kernels::movingAverageOpCount(n, 4) + 2 * n;
        return finish(result, 0.0, 16.0, dose, ops, raw_bytes);
    }

    std::string name() const override { return "uv-dose"; }
};

/** Rail temperature: median filter + min/mean/max aggregation. */
class TempAggregateTask : public FogTask
{
  public:
    FogOutput
    processBatch(std::size_t raw_bytes, Rng &rng) override
    {
        const std::size_t n = std::max<std::size_t>(raw_bytes / 2, 16);
        const auto temps =
            kernels::temperatureSignal(rng, n, 24.0, 10.0, 0.2);
        const auto filtered = kernels::medianFilter(temps, 2);
        const double mn =
            *std::min_element(filtered.begin(), filtered.end());
        const double mx =
            *std::max_element(filtered.begin(), filtered.end());
        const double mean =
            std::accumulate(filtered.begin(), filtered.end(), 0.0) /
            static_cast<double>(n);

        std::vector<double> result = {mn, mean, mx};
        for (std::size_t i = 0; i < filtered.size(); i += 32)
            result.push_back(filtered[i]);

        const std::uint64_t ops = 16 * n; // median windows + scan
        return finish(result, -40.0, 85.0, mean, ops, raw_bytes);
    }

    std::string name() const override { return "temp-aggregate"; }
};

/** Machine-health acceleration: AR features + RMS. */
class AccelFeatureTask : public FogTask
{
  public:
    FogOutput
    processBatch(std::size_t raw_bytes, Rng &rng) override
    {
        const std::size_t n = std::max<std::size_t>(raw_bytes / 6, 64);
        const std::array<double, 3> dir{0.0, 0.0, 1.0};
        auto axes = kernels::threeAxisVibration(rng, n, 200.0, 30.0,
                                                dir, 0.2);
        const auto combined =
            kernels::projectAxes(axes[0], axes[1], axes[2], dir);
        const auto detrended = kernels::detrend(combined);
        const auto fit = kernels::fitAr(detrended, 6);
        const double signal_rms = kernels::rms(detrended);

        std::vector<double> result = fit.coefficients;
        result.push_back(fit.noiseVariance);
        result.push_back(signal_rms);
        const auto spectrum =
            kernels::dominantFrequencies(detrended, 200.0, 3);
        result.insert(result.end(), spectrum.begin(), spectrum.end());

        const std::uint64_t ops =
            kernels::arFitOpCount(n, 6) + kernels::fftOpCount(
                kernels::nextPowerOfTwo(n));
        return finish(result, -200.0, 200.0, signal_rms, ops, raw_bytes);
    }

    std::string name() const override { return "accel-features"; }
};

/** Heartbeat pattern matching: template correlation + BPM. */
class PatternMatchTask : public FogTask
{
  public:
    FogOutput
    processBatch(std::size_t raw_bytes, Rng &rng) override
    {
        const double rate_hz = 250.0;
        const std::size_t n = std::max<std::size_t>(raw_bytes, 512);
        const double true_bpm = rng.uniform(55.0, 95.0);
        const auto ecg =
            kernels::ecgSignal(rng, n, rate_hz, true_bpm, 0.03);
        const std::size_t beat_len = static_cast<std::size_t>(
            60.0 / true_bpm * rate_hz);
        const auto tmpl = kernels::ecgBeatTemplate(beat_len);
        const auto matches = kernels::findMatches(ecg, tmpl, 0.55);
        const double interval = kernels::meanMatchInterval(matches);
        const double bpm =
            interval > 0.0 ? 60.0 * rate_hz / interval : 0.0;

        // Ship beat positions + scores + BPM (tiny, very compressible).
        std::vector<double> result = {bpm,
                                      static_cast<double>(matches.size())};
        for (const auto &m : matches) {
            result.push_back(static_cast<double>(m.position));
            result.push_back(m.score);
        }

        const std::uint64_t ops =
            kernels::matchOpCount(n, tmpl.size());
        return finish(result, -10.0, 1.0e6, bpm, ops, raw_bytes);
    }

    std::string name() const override { return "pattern-match"; }
};

/** Forest fire: volumetric temperature map from point samples. */
class VolumetricTask : public FogTask
{
  public:
    FogOutput
    processBatch(std::size_t raw_bytes, Rng &rng) override
    {
        // Each point sample is 8 bytes (x, y, z, value quantized).
        const std::size_t m = std::max<std::size_t>(raw_bytes / 8, 8);
        std::vector<kernels::PointSample> samples(m);
        for (auto &s : samples) {
            s.x = rng.uniform();
            s.y = rng.uniform();
            s.z = rng.uniform();
            // Ambient temperature field + hotspot.
            const double dx = s.x - 0.7, dy = s.y - 0.3;
            s.value = 20.0 + 45.0 * std::exp(-8.0 * (dx * dx + dy * dy)) +
                      rng.normal(0.0, 0.5);
        }
        const std::size_t nx = 8, ny = 8, nz = 4;
        const auto grid =
            kernels::reconstructVolume(samples, nx, ny, nz);
        const double peak =
            *std::max_element(grid.values.begin(), grid.values.end());

        const std::uint64_t ops =
            kernels::volumetricOpCount(grid.values.size(), m);
        return finish(grid.values, -20.0, 120.0, peak, ops, raw_bytes);
    }

    std::string name() const override { return "volumetric-map"; }
};

} // namespace

std::unique_ptr<FogTask>
makeFogTask(AppKind kind)
{
    switch (kind) {
      case AppKind::BridgeHealth:
        return std::make_unique<BridgeStrengthTask>();
      case AppKind::UvMeter:
        return std::make_unique<UvDoseTask>();
      case AppKind::WsnTemp:
        return std::make_unique<TempAggregateTask>();
      case AppKind::WsnAccel:
        return std::make_unique<AccelFeatureTask>();
      case AppKind::PatternMatching:
        return std::make_unique<PatternMatchTask>();
    }
    NEOFOG_PANIC("unknown AppKind");
}

std::unique_ptr<FogTask>
makeVolumetricTask()
{
    return std::make_unique<VolumetricTask>();
}

} // namespace neofog
