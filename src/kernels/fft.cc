#include "kernels/fft.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace neofog::kernels {

std::size_t
nextPowerOfTwo(std::size_t n)
{
    if (n <= 1)
        return 1;
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fft(std::vector<std::complex<double>> &data, bool inverse)
{
    const std::size_t n = data.size();
    NEOFOG_ASSERT(isPowerOfTwo(n), "FFT size must be a power of two, got ",
                  n);
    if (n == 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    // Butterfly stages.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const auto u = data[i + k];
                const auto v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double inv_n = 1.0 / static_cast<double>(n);
        for (auto &x : data)
            x *= inv_n;
    }
}

std::vector<std::complex<double>>
realFft(const std::vector<double> &signal)
{
    const std::size_t n = nextPowerOfTwo(std::max<std::size_t>(
        signal.size(), 1));
    std::vector<std::complex<double>> data(n, {0.0, 0.0});
    for (std::size_t i = 0; i < signal.size(); ++i)
        data[i] = {signal[i], 0.0};
    fft(data);
    return data;
}

std::vector<double>
magnitudeSpectrum(const std::vector<double> &signal)
{
    const auto spec = realFft(signal);
    std::vector<double> mags(spec.size() / 2 + 1);
    for (std::size_t i = 0; i < mags.size(); ++i)
        mags[i] = std::abs(spec[i]);
    return mags;
}

std::vector<double>
dominantFrequencies(const std::vector<double> &signal,
                    double sample_rate_hz, std::size_t count)
{
    NEOFOG_ASSERT(sample_rate_hz > 0.0, "non-positive sample rate");
    const auto mags = magnitudeSpectrum(signal);
    const std::size_t n_fft = (mags.size() - 1) * 2;
    if (n_fft == 0)
        return {};
    const double bin_hz = sample_rate_hz / static_cast<double>(n_fft);

    // Local maxima, DC (bin 0) excluded.
    std::vector<std::pair<double, double>> peaks; // (magnitude, freq)
    for (std::size_t i = 1; i + 1 < mags.size(); ++i) {
        if (mags[i] > mags[i - 1] && mags[i] >= mags[i + 1])
            peaks.emplace_back(mags[i], static_cast<double>(i) * bin_hz);
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    std::vector<double> out;
    for (std::size_t i = 0; i < peaks.size() && i < count; ++i)
        out.push_back(peaks[i].second);
    return out;
}

std::size_t
fftOpCount(std::size_t n)
{
    if (n <= 1)
        return 1;
    std::size_t log2n = 0;
    for (std::size_t p = 1; p < n; p <<= 1)
        ++log2n;
    return 5 * n * log2n;
}

} // namespace neofog::kernels
