/**
 * @file
 * Goertzel single-bin spectral detector.
 *
 * A full FFT is overkill when the mote only needs the magnitude at one
 * known frequency — e.g. tracking a bridge cable's fundamental once it
 * has been identified, or detecting a pilot tone.  The Goertzel
 * algorithm computes one DFT bin in O(n) with two state variables,
 * which is why 8051-class motes actually use it.
 */

#ifndef NEOFOG_KERNELS_GOERTZEL_HH
#define NEOFOG_KERNELS_GOERTZEL_HH

#include <cstddef>
#include <vector>

namespace neofog::kernels {

/**
 * Magnitude of the DFT of @p signal at @p target_hz (sampled at
 * @p sample_rate_hz), computed with the Goertzel recurrence.
 */
double goertzelMagnitude(const std::vector<double> &signal,
                         double target_hz, double sample_rate_hz);

/**
 * Power ratio of the target frequency vs the total signal power, in
 * [0, 1]; a cheap tone-presence detector.
 */
double goertzelPowerRatio(const std::vector<double> &signal,
                          double target_hz, double sample_rate_hz);

/**
 * Track a frequency near @p guess_hz: evaluate Goertzel on a small
 * grid of candidates within +-`half_band_hz` and return the strongest.
 */
double goertzelRefine(const std::vector<double> &signal,
                      double guess_hz, double half_band_hz,
                      double sample_rate_hz, int grid_points = 17);

/** Op count: ~4n per evaluated bin. */
std::size_t goertzelOpCount(std::size_t n, int bins = 1);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_GOERTZEL_HH
