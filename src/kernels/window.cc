#include "kernels/window.hh"

#include <cmath>

#include "sim/logging.hh"

namespace neofog::kernels {

double
windowCoefficient(WindowKind kind, std::size_t i, std::size_t n)
{
    NEOFOG_ASSERT(i < n, "window index out of range");
    if (n == 1)
        return 1.0;
    const double x = 2.0 * M_PI * static_cast<double>(i) /
                     static_cast<double>(n - 1);
    switch (kind) {
      case WindowKind::Rectangular:
        return 1.0;
      case WindowKind::Hann:
        return 0.5 - 0.5 * std::cos(x);
      case WindowKind::Hamming:
        return 0.54 - 0.46 * std::cos(x);
      case WindowKind::Blackman:
        return 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
    }
    NEOFOG_PANIC("unknown window kind");
}

std::vector<double>
makeWindow(WindowKind kind, std::size_t n)
{
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i)
        w[i] = windowCoefficient(kind, i, n);
    return w;
}

std::vector<double>
applyWindow(const std::vector<double> &signal, WindowKind kind)
{
    std::vector<double> out(signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i)
        out[i] = signal[i] *
                 windowCoefficient(kind, i, signal.size());
    return out;
}

double
coherentGain(WindowKind kind, std::size_t n)
{
    if (n == 0)
        return 1.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        sum += windowCoefficient(kind, i, n);
    return sum / static_cast<double>(n);
}

} // namespace neofog::kernels
