#include "kernels/ar_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace neofog::kernels {

std::vector<double>
autocorrelation(const std::vector<double> &x, std::size_t max_lag)
{
    const std::size_t n = x.size();
    NEOFOG_ASSERT(max_lag < n, "autocorrelation lag >= signal length");
    std::vector<double> r(max_lag + 1, 0.0);
    for (std::size_t lag = 0; lag <= max_lag; ++lag) {
        double sum = 0.0;
        for (std::size_t i = lag; i < n; ++i)
            sum += x[i] * x[i - lag];
        r[lag] = sum / static_cast<double>(n);
    }
    return r;
}

ArFit
fitAr(const std::vector<double> &x, std::size_t order)
{
    NEOFOG_ASSERT(order >= 1, "AR order must be >= 1");
    if (x.size() <= order)
        fatal("AR fit needs more samples (", x.size(), ") than order (",
              order, ")");

    const auto r = autocorrelation(x, order);
    if (r[0] <= 0.0) {
        // Degenerate (all-zero) signal: return a zero model.
        ArFit fit;
        fit.coefficients.assign(order, 0.0);
        fit.noiseVariance = 0.0;
        return fit;
    }

    // Levinson-Durbin recursion.
    std::vector<double> a(order + 1, 0.0); // a[0] unused
    double e = r[0];
    for (std::size_t k = 1; k <= order; ++k) {
        double acc = r[k];
        for (std::size_t j = 1; j < k; ++j)
            acc -= a[j] * r[k - j];
        const double reflection = acc / e;
        std::vector<double> a_new = a;
        a_new[k] = reflection;
        for (std::size_t j = 1; j < k; ++j)
            a_new[j] = a[j] - reflection * a[k - j];
        a = a_new;
        e *= (1.0 - reflection * reflection);
        if (e <= 0.0) {
            e = 1e-12; // numerically singular; keep going defensively
        }
    }

    ArFit fit;
    fit.coefficients.assign(a.begin() + 1, a.end());
    fit.noiseVariance = e;
    return fit;
}

double
arDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    NEOFOG_ASSERT(a.size() == b.size(), "AR coefficient length mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

double
damageIndicator(const std::vector<double> &healthy,
                const std::vector<double> &current, std::size_t order)
{
    const ArFit base = fitAr(healthy, order);
    const ArFit cur = fitAr(current, order);
    double base_norm = 0.0;
    for (double c : base.coefficients)
        base_norm += c * c;
    base_norm = std::sqrt(base_norm);
    if (base_norm <= 1e-12)
        return arDistance(base.coefficients, cur.coefficients);
    return arDistance(base.coefficients, cur.coefficients) / base_norm;
}

std::vector<double>
arPredict(const std::vector<double> &x, const ArFit &fit)
{
    const std::size_t p = fit.coefficients.size();
    std::vector<double> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (i < p) {
            out[i] = x[i];
            continue;
        }
        double pred = 0.0;
        for (std::size_t k = 0; k < p; ++k)
            pred += fit.coefficients[k] * x[i - 1 - k];
        out[i] = pred;
    }
    return out;
}

std::size_t
arFitOpCount(std::size_t n, std::size_t order)
{
    // Autocorrelation: ~2*n per lag; Levinson-Durbin: ~4*order^2.
    return 2 * n * (order + 1) + 4 * order * order;
}

} // namespace neofog::kernels
