/**
 * @file
 * Synthetic sensor-signal generators.
 *
 * The paper's workloads sample real sensors (bridge cable accelerometers,
 * wearable UV meters, rail temperature probes, ECG electrodes, RF-powered
 * cameras).  We have no field data, so these generators produce signals
 * with the statistical structure that matters downstream: modal
 * vibration harmonics for the FFT/strength pipeline, PQRST beats for the
 * pattern matcher, slow ramps for temperature, and highly repetitive
 * byte content so the compressor reaches the paper's 3-14.5% ratios.
 */

#ifndef NEOFOG_KERNELS_SIGNAL_GEN_HH
#define NEOFOG_KERNELS_SIGNAL_GEN_HH

#include <array>
#include <cstddef>
#include <vector>

#include "sim/rng.hh"

namespace neofog::kernels {

/**
 * Bridge-cable vibration: sum of modal sinusoids (fundamental + two
 * harmonics) with Gaussian measurement noise.
 *
 * @param rng Noise stream.
 * @param n Sample count.
 * @param sample_rate_hz Sampling rate.
 * @param fundamental_hz Cable fundamental frequency.
 * @param noise_sigma Gaussian noise standard deviation.
 */
std::vector<double> bridgeVibration(Rng &rng, std::size_t n,
                                    double sample_rate_hz,
                                    double fundamental_hz,
                                    double noise_sigma = 0.1);

/**
 * Three-axis accelerometer capture of a bridge vibration: the true
 * motion along @p direction projected back onto x/y/z with independent
 * per-axis noise.  Returns {ax, ay, az}.
 */
std::array<std::vector<double>, 3>
threeAxisVibration(Rng &rng, std::size_t n, double sample_rate_hz,
                   double fundamental_hz,
                   const std::array<double, 3> &direction,
                   double noise_sigma = 0.1);

/**
 * Synthetic ECG: repeated PQRST-like beats at @p heart_rate_bpm with
 * timing jitter and baseline wander.
 */
std::vector<double> ecgSignal(Rng &rng, std::size_t n,
                              double sample_rate_hz,
                              double heart_rate_bpm,
                              double noise_sigma = 0.02);

/** A single clean PQRST beat template of @p n samples. */
std::vector<double> ecgBeatTemplate(std::size_t n);

/**
 * Rail/ambient temperature: slow diurnal ramp plus small noise, in
 * degrees Celsius.
 */
std::vector<double> temperatureSignal(Rng &rng, std::size_t n,
                                      double base_c = 20.0,
                                      double swing_c = 8.0,
                                      double noise_sigma = 0.05);

/** UV index over a day fragment: smooth hump with cloud dips. */
std::vector<double> uvSignal(Rng &rng, std::size_t n,
                             double peak_index = 8.0);

/**
 * One row of an RF-camera image: smooth gradient + texture noise,
 * quantized structure that compresses like real image content.
 */
std::vector<double> imageRow(Rng &rng, std::size_t n);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_SIGNAL_GEN_HH
