/**
 * @file
 * Autoregressive (AR) modeling for structural damage detection.
 *
 * The dependent-power experiment (paper §5.2.2) offloads the structural
 * health monitoring algorithms of Yao & Pakzad [84] to the fog: fit an
 * AR(p) model to each vibration batch and use the distance between the
 * current AR coefficient vector and a healthy baseline as a damage
 * indicator.  Implemented via Yule-Walker equations solved with
 * Levinson-Durbin recursion.
 */

#ifndef NEOFOG_KERNELS_AR_MODEL_HH
#define NEOFOG_KERNELS_AR_MODEL_HH

#include <cstddef>
#include <vector>

namespace neofog::kernels {

/** Result of fitting an AR(p) model. */
struct ArFit
{
    /** AR coefficients a1..ap (prediction: x[t] = sum a_k x[t-k] + e). */
    std::vector<double> coefficients;
    /** Innovation (residual) variance. */
    double noiseVariance = 0.0;
};

/**
 * Biased autocorrelation r[0..max_lag] of a signal.
 */
std::vector<double> autocorrelation(const std::vector<double> &x,
                                    std::size_t max_lag);

/**
 * Fit an AR(p) model with the Yule-Walker method (Levinson-Durbin).
 * @param x Input signal; length must exceed @p order.
 * @param order Model order p (>= 1).
 */
ArFit fitAr(const std::vector<double> &x, std::size_t order);

/**
 * Euclidean distance between two AR coefficient vectors; the classic
 * AR-distance damage feature.  Vectors must have equal length.
 */
double arDistance(const std::vector<double> &a,
                  const std::vector<double> &b);

/**
 * Convenience damage indicator: fit AR(order) to @p healthy and
 * @p current and return their coefficient distance normalized by the
 * healthy coefficient norm.  Values near 0 mean undamaged.
 */
double damageIndicator(const std::vector<double> &healthy,
                       const std::vector<double> &current,
                       std::size_t order);

/**
 * One-step-ahead predictions of an AR model over a signal (first
 * `order` outputs repeat the inputs).  Useful for residual analysis.
 */
std::vector<double> arPredict(const std::vector<double> &x,
                              const ArFit &fit);

/** Approximate op count of fitting AR(order) to n samples. */
std::size_t arFitOpCount(std::size_t n, std::size_t order);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_AR_MODEL_HH
