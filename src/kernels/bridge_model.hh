/**
 * @file
 * Bridge cable strength estimation — the flagship in-fog pipeline.
 *
 * Paper §3.1 describes the fog-offloaded bridge-health task: combine
 * 3-axis acceleration into the cable-vertical direction, remove noise,
 * FFT, estimate strength in three structure-specialized models, apply
 * temperature/humidity compensation, average, and compress.  This module
 * implements that pipeline end to end on top of the other kernels, using
 * taut-string theory for cable tension: T = 4 * m * L^2 * (f1/n)^2 for
 * the n-th harmonic at frequency f_n.
 */

#ifndef NEOFOG_KERNELS_BRIDGE_MODEL_HH
#define NEOFOG_KERNELS_BRIDGE_MODEL_HH

#include <array>
#include <cstddef>
#include <vector>

namespace neofog::kernels {

/** Physical parameters of one bridge cable. */
struct CableSpec
{
    double lengthM = 100.0;       ///< free cable length (m)
    double massPerMeterKg = 60.0; ///< linear density (kg/m)
    double nominalTensionN = 4.0e6; ///< design tension (N)
};

/** Output of the strength pipeline for one batch. */
struct StrengthEstimate
{
    double fundamentalHz = 0.0;  ///< detected fundamental frequency
    double tensionN = 0.0;       ///< averaged tension estimate
    double strengthRatio = 0.0;  ///< tension / nominal (1.0 = healthy)
    /** Per-model tension estimates (three structure models). */
    std::array<double, 3> modelTensionsN{};
};

/**
 * Cable tension from the n-th harmonic frequency via taut-string
 * theory: f_n = (n / (2 L)) * sqrt(T / m)  =>  T = 4 m L^2 (f_n / n)^2.
 */
double tensionFromHarmonic(double freq_hz, int harmonic,
                           const CableSpec &spec);

/**
 * Run the full strength pipeline on a 3-axis acceleration batch.
 *
 * Steps: project axes onto @p direction, detrend, moving-average noise
 * removal, FFT peak extraction, tension from the first three harmonics
 * (the "three structure-specialized models"), temperature compensation
 * (steel cables lengthen/slacken when hot), and averaging.
 *
 * @param ax,ay,az 3-axis acceleration batch.
 * @param direction Cable-vertical unit direction.
 * @param sample_rate_hz Accelerometer sampling rate.
 * @param spec Cable physical parameters.
 * @param temperature_c Batch-average ambient temperature.
 */
StrengthEstimate estimateStrength(const std::vector<double> &ax,
                                  const std::vector<double> &ay,
                                  const std::vector<double> &az,
                                  const std::array<double, 3> &direction,
                                  double sample_rate_hz,
                                  const CableSpec &spec,
                                  double temperature_c = 20.0);

/** Approximate op count of one strength pipeline run on n samples. */
std::size_t strengthOpCount(std::size_t n);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_BRIDGE_MODEL_HH
