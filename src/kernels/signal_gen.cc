#include "kernels/signal_gen.hh"

#include <cmath>

#include "sim/logging.hh"

namespace neofog::kernels {

std::vector<double>
bridgeVibration(Rng &rng, std::size_t n, double sample_rate_hz,
                double fundamental_hz, double noise_sigma)
{
    NEOFOG_ASSERT(sample_rate_hz > 0.0, "sample rate");
    std::vector<double> out(n);
    const double w = 2.0 * M_PI * fundamental_hz;
    const double phase1 = rng.uniform(0.0, 2.0 * M_PI);
    const double phase2 = rng.uniform(0.0, 2.0 * M_PI);
    const double phase3 = rng.uniform(0.0, 2.0 * M_PI);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / sample_rate_hz;
        out[i] = 1.00 * std::sin(w * t + phase1) +
                 0.45 * std::sin(2.0 * w * t + phase2) +
                 0.20 * std::sin(3.0 * w * t + phase3) +
                 noise_sigma * rng.normal();
    }
    return out;
}

std::array<std::vector<double>, 3>
threeAxisVibration(Rng &rng, std::size_t n, double sample_rate_hz,
                   double fundamental_hz,
                   const std::array<double, 3> &direction,
                   double noise_sigma)
{
    const auto motion =
        bridgeVibration(rng, n, sample_rate_hz, fundamental_hz, 0.0);
    const double norm = std::sqrt(direction[0] * direction[0] +
                                  direction[1] * direction[1] +
                                  direction[2] * direction[2]);
    NEOFOG_ASSERT(norm > 0.0, "zero direction");
    std::array<std::vector<double>, 3> axes;
    for (auto &a : axes)
        a.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (int d = 0; d < 3; ++d) {
            axes[static_cast<std::size_t>(d)][i] =
                motion[i] * direction[static_cast<std::size_t>(d)] / norm +
                noise_sigma * rng.normal();
        }
    }
    return axes;
}

std::vector<double>
ecgBeatTemplate(std::size_t n)
{
    // Gaussian bumps approximating P, Q, R, S, T waves over one beat.
    struct Wave { double center, width, amp; };
    static constexpr Wave kWaves[] = {
        {0.18, 0.035, 0.15},  // P
        {0.36, 0.012, -0.12}, // Q
        {0.40, 0.016, 1.00},  // R
        {0.44, 0.012, -0.25}, // S
        {0.68, 0.060, 0.30},  // T
    };
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double u = static_cast<double>(i) / static_cast<double>(n);
        for (const Wave &w : kWaves) {
            const double d = (u - w.center) / w.width;
            out[i] += w.amp * std::exp(-0.5 * d * d);
        }
    }
    return out;
}

std::vector<double>
ecgSignal(Rng &rng, std::size_t n, double sample_rate_hz,
          double heart_rate_bpm, double noise_sigma)
{
    NEOFOG_ASSERT(heart_rate_bpm > 0.0, "heart rate");
    const double beat_s = 60.0 / heart_rate_bpm;
    const auto beat_len =
        static_cast<std::size_t>(beat_s * sample_rate_hz);
    NEOFOG_ASSERT(beat_len >= 8, "sample rate too low for ECG beats");
    const auto tmpl = ecgBeatTemplate(beat_len);

    std::vector<double> out(n, 0.0);
    std::size_t pos = 0;
    while (pos < n) {
        // +-4% beat-to-beat jitter.
        const double jitter = 1.0 + 0.04 * rng.normal();
        const auto this_len = static_cast<std::size_t>(
            std::max(8.0, static_cast<double>(beat_len) * jitter));
        for (std::size_t i = 0; i < this_len && pos + i < n; ++i) {
            const double u = static_cast<double>(i) /
                             static_cast<double>(this_len);
            const auto src = static_cast<std::size_t>(
                u * static_cast<double>(beat_len - 1));
            out[pos + i] = tmpl[src];
        }
        pos += this_len;
    }
    // Baseline wander + noise.
    const double wander_phase = rng.uniform(0.0, 2.0 * M_PI);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / sample_rate_hz;
        out[i] += 0.05 * std::sin(2.0 * M_PI * 0.25 * t + wander_phase) +
                  noise_sigma * rng.normal();
    }
    return out;
}

std::vector<double>
temperatureSignal(Rng &rng, std::size_t n, double base_c, double swing_c,
                  double noise_sigma)
{
    std::vector<double> out(n);
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    for (std::size_t i = 0; i < n; ++i) {
        const double u = static_cast<double>(i) /
                         std::max<double>(1.0, static_cast<double>(n));
        out[i] = base_c + swing_c * std::sin(2.0 * M_PI * u * 0.5 + phase) +
                 noise_sigma * rng.normal();
    }
    return out;
}

std::vector<double>
uvSignal(Rng &rng, std::size_t n, double peak_index)
{
    std::vector<double> out(n);
    double cloud = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double u = static_cast<double>(i) /
                         std::max<double>(1.0, static_cast<double>(n));
        // Slow random-walk cloud attenuation in [0.3, 1].
        cloud += 0.02 * rng.normal();
        cloud = std::min(1.0, std::max(0.3, cloud));
        const double hump = std::sin(M_PI * u);
        out[i] = std::max(0.0, peak_index * hump * hump * cloud);
    }
    return out;
}

std::vector<double>
imageRow(Rng &rng, std::size_t n)
{
    std::vector<double> out(n);
    const double grad0 = rng.uniform(0.0, 128.0);
    const double grad1 = rng.uniform(64.0, 255.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double u = static_cast<double>(i) /
                         std::max<double>(1.0, static_cast<double>(n));
        double v = grad0 + (grad1 - grad0) * u;
        // Blocky texture: quantize to 8 levels + sparse speckle.
        v = std::floor(v / 32.0) * 32.0;
        if (rng.chance(0.02))
            v += rng.uniform(-16.0, 16.0);
        out[i] = std::min(255.0, std::max(0.0, v));
    }
    return out;
}

} // namespace neofog::kernels
