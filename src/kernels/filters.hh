/**
 * @file
 * Noise-removal and preprocessing filters used by the in-fog tasks.
 *
 * The bridge-health pipeline (paper §3.1) starts with combining 3-axis
 * acceleration into one cable-vertical component, then noise removal.
 * These filters also serve the temperature/humidity compensation steps.
 */

#ifndef NEOFOG_KERNELS_FILTERS_HH
#define NEOFOG_KERNELS_FILTERS_HH

#include <array>
#include <cstddef>
#include <vector>

namespace neofog::kernels {

/**
 * Centered moving-average smoother with window 2*half+1 (edges use the
 * available samples).
 */
std::vector<double> movingAverage(const std::vector<double> &x,
                                  std::size_t half_window);

/**
 * Sliding median filter with window 2*half+1; robust against impulsive
 * sensor glitches.
 */
std::vector<double> medianFilter(const std::vector<double> &x,
                                 std::size_t half_window);

/** Subtract the mean. */
std::vector<double> removeMean(const std::vector<double> &x);

/** Remove a least-squares linear trend. */
std::vector<double> detrend(const std::vector<double> &x);

/**
 * Single-pole IIR low-pass: y[i] = a*x[i] + (1-a)*y[i-1].
 * @param alpha Smoothing factor in (0, 1]; smaller = smoother.
 */
std::vector<double> lowPassIir(const std::vector<double> &x, double alpha);

/**
 * Project 3-axis acceleration samples onto a unit direction vector,
 * producing the single "cable-vertical" component the bridge model uses.
 * All three axis vectors must have the same length.
 */
std::vector<double> projectAxes(const std::vector<double> &ax,
                                const std::vector<double> &ay,
                                const std::vector<double> &az,
                                const std::array<double, 3> &direction);

/**
 * Linear sensor compensation: out = x - gain * (ref - ref_nominal).
 * Used for temperature/humidity compensation of strength estimates.
 */
std::vector<double> compensate(const std::vector<double> &x,
                               const std::vector<double> &reference,
                               double gain, double ref_nominal);

/** Root-mean-square of a signal. */
double rms(const std::vector<double> &x);

/** Signal-to-noise ratio in dB of signal vs (signal - reference). */
double snrDb(const std::vector<double> &clean,
             const std::vector<double> &noisy);

/** Approximate op count of a moving average pass. */
std::size_t movingAverageOpCount(std::size_t n, std::size_t half_window);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_FILTERS_HH
