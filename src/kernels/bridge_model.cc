#include "kernels/bridge_model.hh"

#include <cmath>

#include "kernels/fft.hh"
#include "kernels/filters.hh"
#include "kernels/window.hh"
#include "sim/logging.hh"

namespace neofog::kernels {

double
tensionFromHarmonic(double freq_hz, int harmonic, const CableSpec &spec)
{
    NEOFOG_ASSERT(harmonic >= 1, "harmonic index");
    NEOFOG_ASSERT(freq_hz > 0.0, "non-positive frequency");
    const double f1 = freq_hz / static_cast<double>(harmonic);
    return 4.0 * spec.massPerMeterKg * spec.lengthM * spec.lengthM *
           f1 * f1;
}

StrengthEstimate
estimateStrength(const std::vector<double> &ax,
                 const std::vector<double> &ay,
                 const std::vector<double> &az,
                 const std::array<double, 3> &direction,
                 double sample_rate_hz, const CableSpec &spec,
                 double temperature_c)
{
    // 1. Combine axes into the cable-vertical component.
    auto combined = projectAxes(ax, ay, az, direction);
    // 2. Noise removal: detrend then light smoothing.
    combined = detrend(combined);
    combined = movingAverage(combined, 1);
    // 3. Spectral peaks, with a Hann window against leakage.
    const auto windowed = applyWindow(combined, WindowKind::Hann);
    const auto peaks = dominantFrequencies(windowed, sample_rate_hz, 3);

    StrengthEstimate est;
    if (peaks.empty())
        return est;

    // The strongest peak is the fundamental for a taut cable; guard
    // against the 2nd harmonic dominating by preferring the lowest of
    // the top peaks within a plausible band.
    double fundamental = peaks.front();
    for (double p : peaks) {
        if (p > 0.05 && p < fundamental)
            fundamental = p;
    }
    est.fundamentalHz = fundamental;

    // 4. Three structure-specialized models: tension inferred
    //    independently from harmonics 1..3 (each harmonic is matched to
    //    the spectral peak nearest its expected multiple).
    for (int h = 1; h <= 3; ++h) {
        const double expect = fundamental * h;
        double best = expect;
        double best_err = 1e18;
        for (double p : peaks) {
            const double err = std::abs(p - expect);
            if (err < best_err) {
                best_err = err;
                best = p;
            }
        }
        est.modelTensionsN[static_cast<std::size_t>(h - 1)] =
            tensionFromHarmonic(best, h, spec);
    }

    // 5. Temperature compensation: thermal expansion slackens the cable
    //    ~0.4% tension per 10C above nominal 20C (steel, typical span).
    const double comp = 1.0 + 0.0004 * (temperature_c - 20.0) * 10.0;

    // 6. Average the three models.
    double sum = 0.0;
    for (double t : est.modelTensionsN)
        sum += t;
    est.tensionN = comp * sum / 3.0;
    est.strengthRatio = est.tensionN / spec.nominalTensionN;
    return est;
}

std::size_t
strengthOpCount(std::size_t n)
{
    const std::size_t n_fft = nextPowerOfTwo(n);
    return 3 * n                     // axis projection
           + 8 * n                   // detrend + smoothing
           + fftOpCount(n_fft)       // spectrum
           + 64;                     // peaks, models, compensation
}

} // namespace neofog::kernels
