/**
 * @file
 * Lossless compression pipeline for sensed data.
 *
 * The buffered FIOS strategy compresses the 64 kB NV buffer before
 * transmission (paper §5.1: output is 3%-14.5% of the input because
 * sensed data is highly repetitive).  We implement a real pipeline —
 * zig-zag delta coding, run-length coding, and greedy LZ77 with varint
 * token encoding — plus the matching decompressor, so tests can verify
 * losslessness and benches can measure actual ratios on realistic
 * synthetic sensor batches.
 */

#ifndef NEOFOG_KERNELS_COMPRESS_HH
#define NEOFOG_KERNELS_COMPRESS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace neofog::kernels {

using Bytes = std::vector<std::uint8_t>;

/** Append an unsigned LEB128 varint to a buffer. */
void putVarint(Bytes &out, std::uint64_t value);

/**
 * Read a varint starting at @p pos (advanced past the value).
 * Fatal on truncated input.
 */
std::uint64_t getVarint(const Bytes &in, std::size_t &pos);

/** Zig-zag map signed -> unsigned (0,-1,1,-2,... -> 0,1,2,3,...). */
std::uint64_t zigzagEncode(std::int64_t v);
/** Inverse of zigzagEncode. */
std::int64_t zigzagDecode(std::uint64_t v);

/** Byte-wise delta coding: out[0]=in[0], out[i]=in[i]-in[i-1] (mod 256). */
Bytes deltaEncode(const Bytes &in);
/** Inverse of deltaEncode. */
Bytes deltaDecode(const Bytes &in);

/**
 * Lagged delta coding: out[i] = in[i] - in[i-lag] (mod 256); the first
 * lag bytes pass through.  lag=2 aligns deltas to 16-bit little-endian
 * samples, the on-wire format of sensed batches.
 */
Bytes deltaEncodeLag(const Bytes &in, std::size_t lag);
/** Inverse of deltaEncodeLag. */
Bytes deltaDecodeLag(const Bytes &in, std::size_t lag);

/**
 * Run-length encode: pairs of (count varint, byte) for runs >= 4, raw
 * literal blocks otherwise.
 */
Bytes rleEncode(const Bytes &in);
/** Inverse of rleEncode. */
Bytes rleDecode(const Bytes &in);

/**
 * Greedy LZ77 with a 64 kB window and 3-byte minimum match, emitting
 * varint-coded (literal-run, match-offset, match-length) token groups.
 */
Bytes lz77Encode(const Bytes &in);
/** Inverse of lz77Encode. */
Bytes lz77Decode(const Bytes &in);

/**
 * Full sensor pipeline: delta + LZ77 (+RLE fallback if smaller), with a
 * 1-byte method header so decompression is self-describing.  If no
 * method shrinks the data, stores it raw.
 */
Bytes compress(const Bytes &in);
/** Inverse of compress. */
Bytes decompress(const Bytes &in);

/** compressed size / original size for the full pipeline (0 if empty). */
double compressionRatio(const Bytes &in);

/**
 * Quantize a double signal into 16-bit little-endian samples spanning
 * [lo, hi]; the on-wire representation of sensed batches.
 */
Bytes quantize16(const std::vector<double> &signal, double lo, double hi);

/** Inverse of quantize16 (returns midpoints of quantization cells). */
std::vector<double> dequantize16(const Bytes &data, double lo, double hi);

/** Approximate op count for compressing n bytes. */
std::size_t compressOpCount(std::size_t n);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_COMPRESS_HH
