#include "kernels/volumetric.hh"

#include <cmath>

#include "sim/logging.hh"

namespace neofog::kernels {

VolumeGrid
reconstructVolume(const std::vector<PointSample> &samples, std::size_t nx,
                  std::size_t ny, std::size_t nz, double power)
{
    NEOFOG_ASSERT(nx > 0 && ny > 0 && nz > 0, "empty volume grid");
    VolumeGrid grid;
    grid.nx = nx;
    grid.ny = ny;
    grid.nz = nz;
    grid.values.assign(nx * ny * nz, 0.0);
    if (samples.empty())
        return grid;

    constexpr double kEps = 1e-9;
    for (std::size_t ix = 0; ix < nx; ++ix) {
        const double cx = (static_cast<double>(ix) + 0.5) /
                          static_cast<double>(nx);
        for (std::size_t iy = 0; iy < ny; ++iy) {
            const double cy = (static_cast<double>(iy) + 0.5) /
                              static_cast<double>(ny);
            for (std::size_t iz = 0; iz < nz; ++iz) {
                const double cz = (static_cast<double>(iz) + 0.5) /
                                  static_cast<double>(nz);
                double wsum = 0.0;
                double vsum = 0.0;
                for (const PointSample &s : samples) {
                    const double dx = cx - s.x;
                    const double dy = cy - s.y;
                    const double dz = cz - s.z;
                    const double d = std::sqrt(dx * dx + dy * dy +
                                               dz * dz);
                    const double w =
                        1.0 / (std::pow(d, power) + kEps);
                    wsum += w;
                    vsum += w * s.value;
                }
                grid.at(ix, iy, iz) = vsum / wsum;
            }
        }
    }
    return grid;
}

double
gridError(const VolumeGrid &grid,
          double (*reference)(double x, double y, double z))
{
    NEOFOG_ASSERT(reference, "null reference field");
    if (grid.values.empty())
        return 0.0;
    double err = 0.0;
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
        const double cx = (static_cast<double>(ix) + 0.5) /
                          static_cast<double>(grid.nx);
        for (std::size_t iy = 0; iy < grid.ny; ++iy) {
            const double cy = (static_cast<double>(iy) + 0.5) /
                              static_cast<double>(grid.ny);
            for (std::size_t iz = 0; iz < grid.nz; ++iz) {
                const double cz = (static_cast<double>(iz) + 0.5) /
                                  static_cast<double>(grid.nz);
                err += std::abs(grid.at(ix, iy, iz) -
                                reference(cx, cy, cz));
            }
        }
    }
    return err / static_cast<double>(grid.values.size());
}

std::size_t
volumetricOpCount(std::size_t cells, std::size_t samples)
{
    return 12 * cells * samples + 1;
}

} // namespace neofog::kernels
