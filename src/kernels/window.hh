/**
 * @file
 * Spectral window functions.
 *
 * The bridge pipeline's FFT operates on finite vibration batches;
 * windowing suppresses the spectral leakage that would otherwise smear
 * a cable's fundamental across bins and bias the tension estimate.
 */

#ifndef NEOFOG_KERNELS_WINDOW_HH
#define NEOFOG_KERNELS_WINDOW_HH

#include <cstddef>
#include <vector>

namespace neofog::kernels {

/** Supported window shapes. */
enum class WindowKind
{
    Rectangular,
    Hann,
    Hamming,
    Blackman,
};

/** The window's coefficient at index i of n. */
double windowCoefficient(WindowKind kind, std::size_t i, std::size_t n);

/** Generate the full n-point window. */
std::vector<double> makeWindow(WindowKind kind, std::size_t n);

/** Apply a window to a signal (returns the windowed copy). */
std::vector<double> applyWindow(const std::vector<double> &signal,
                                WindowKind kind);

/**
 * Coherent gain of the window (mean coefficient); divide windowed
 * magnitudes by this to recover amplitude estimates.
 */
double coherentGain(WindowKind kind, std::size_t n);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_WINDOW_HH
