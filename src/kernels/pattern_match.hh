/**
 * @file
 * Template pattern matching for heartbeat-signal classification.
 *
 * Table 2's "Pattern Matching" application matches sampled heartbeat
 * (ECG) batches against a beat template on-node — the most
 * compute-intensive of the five deployed workloads (59.5% compute share
 * even in the naive strategy).  Implemented as normalized
 * cross-correlation with peak extraction.
 */

#ifndef NEOFOG_KERNELS_PATTERN_MATCH_HH
#define NEOFOG_KERNELS_PATTERN_MATCH_HH

#include <cstddef>
#include <vector>

namespace neofog::kernels {

/** One detected template match. */
struct Match
{
    std::size_t position; ///< start index in the signal
    double score;         ///< normalized correlation in [-1, 1]
};

/**
 * Normalized cross-correlation of @p signal against @p tmpl at every
 * admissible offset.
 * @return Scores of length signal.size() - tmpl.size() + 1 (empty if the
 *         template is longer than the signal).
 */
std::vector<double>
normalizedCrossCorrelation(const std::vector<double> &signal,
                           const std::vector<double> &tmpl);

/**
 * Find non-overlapping template matches scoring at least @p threshold,
 * greedily by descending score.
 */
std::vector<Match> findMatches(const std::vector<double> &signal,
                               const std::vector<double> &tmpl,
                               double threshold);

/**
 * Mean interval (in samples) between successive match positions; the
 * heart-rate estimate when matching ECG beats.  Returns 0 with fewer
 * than two matches.
 */
double meanMatchInterval(const std::vector<Match> &matches);

/** Approximate op count of matching an m-template over n samples. */
std::size_t matchOpCount(std::size_t n, std::size_t m);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_PATTERN_MATCH_HH
