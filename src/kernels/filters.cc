#include "kernels/filters.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.hh"

namespace neofog::kernels {

std::vector<double>
movingAverage(const std::vector<double> &x, std::size_t half_window)
{
    const std::size_t n = x.size();
    std::vector<double> out(n);
    if (n == 0)
        return out;
    // Prefix sums let each output sample cost O(1).
    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        prefix[i + 1] = prefix[i] + x[i];
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t lo = i >= half_window ? i - half_window : 0;
        const std::size_t hi = std::min(n - 1, i + half_window);
        out[i] = (prefix[hi + 1] - prefix[lo]) /
                 static_cast<double>(hi - lo + 1);
    }
    return out;
}

std::vector<double>
medianFilter(const std::vector<double> &x, std::size_t half_window)
{
    const std::size_t n = x.size();
    std::vector<double> out(n);
    std::vector<double> window;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t lo = i >= half_window ? i - half_window : 0;
        const std::size_t hi = std::min(n == 0 ? 0 : n - 1,
                                        i + half_window);
        window.assign(x.begin() + static_cast<std::ptrdiff_t>(lo),
                      x.begin() + static_cast<std::ptrdiff_t>(hi + 1));
        auto mid = window.begin() +
                   static_cast<std::ptrdiff_t>(window.size() / 2);
        std::nth_element(window.begin(), mid, window.end());
        double median = *mid;
        if (window.size() % 2 == 0) {
            const double lower =
                *std::max_element(window.begin(), mid);
            median = 0.5 * (median + lower);
        }
        out[i] = median;
    }
    return out;
}

std::vector<double>
removeMean(const std::vector<double> &x)
{
    if (x.empty())
        return {};
    const double mean =
        std::accumulate(x.begin(), x.end(), 0.0) /
        static_cast<double>(x.size());
    std::vector<double> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] - mean;
    return out;
}

std::vector<double>
detrend(const std::vector<double> &x)
{
    const std::size_t n = x.size();
    if (n < 2)
        return removeMean(x);
    // Least-squares line fit over index i.
    double sum_i = 0.0, sum_ii = 0.0, sum_x = 0.0, sum_ix = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double fi = static_cast<double>(i);
        sum_i += fi;
        sum_ii += fi * fi;
        sum_x += x[i];
        sum_ix += fi * x[i];
    }
    const double fn = static_cast<double>(n);
    const double denom = fn * sum_ii - sum_i * sum_i;
    const double slope =
        denom != 0.0 ? (fn * sum_ix - sum_i * sum_x) / denom : 0.0;
    const double intercept = (sum_x - slope * sum_i) / fn;
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = x[i] - (intercept + slope * static_cast<double>(i));
    return out;
}

std::vector<double>
lowPassIir(const std::vector<double> &x, double alpha)
{
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("IIR alpha out of (0,1]: ", alpha);
    std::vector<double> out(x.size());
    double y = x.empty() ? 0.0 : x[0];
    for (std::size_t i = 0; i < x.size(); ++i) {
        y = alpha * x[i] + (1.0 - alpha) * y;
        out[i] = y;
    }
    return out;
}

std::vector<double>
projectAxes(const std::vector<double> &ax, const std::vector<double> &ay,
            const std::vector<double> &az,
            const std::array<double, 3> &direction)
{
    NEOFOG_ASSERT(ax.size() == ay.size() && ay.size() == az.size(),
                  "axis length mismatch");
    const double norm = std::sqrt(direction[0] * direction[0] +
                                  direction[1] * direction[1] +
                                  direction[2] * direction[2]);
    NEOFOG_ASSERT(norm > 0.0, "zero projection direction");
    const double dx = direction[0] / norm;
    const double dy = direction[1] / norm;
    const double dz = direction[2] / norm;
    std::vector<double> out(ax.size());
    for (std::size_t i = 0; i < ax.size(); ++i)
        out[i] = ax[i] * dx + ay[i] * dy + az[i] * dz;
    return out;
}

std::vector<double>
compensate(const std::vector<double> &x,
           const std::vector<double> &reference, double gain,
           double ref_nominal)
{
    NEOFOG_ASSERT(x.size() == reference.size(),
                  "compensation reference length mismatch");
    std::vector<double> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] - gain * (reference[i] - ref_nominal);
    return out;
}

double
rms(const std::vector<double> &x)
{
    if (x.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : x)
        sum += v * v;
    return std::sqrt(sum / static_cast<double>(x.size()));
}

double
snrDb(const std::vector<double> &clean, const std::vector<double> &noisy)
{
    NEOFOG_ASSERT(clean.size() == noisy.size(), "SNR length mismatch");
    double sig = 0.0, noise = 0.0;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        sig += clean[i] * clean[i];
        const double d = noisy[i] - clean[i];
        noise += d * d;
    }
    if (noise <= 0.0)
        return 300.0; // effectively infinite
    return 10.0 * std::log10(sig / noise);
}

std::size_t
movingAverageOpCount(std::size_t n, std::size_t half_window)
{
    (void)half_window; // prefix-sum implementation is O(n)
    return 6 * n;
}

} // namespace neofog::kernels
