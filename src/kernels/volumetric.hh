/**
 * @file
 * Volumetric map reconstruction from point samples.
 *
 * The independent-power experiment (paper §5.2.1, forest fire
 * monitoring) offloads "a reconstruction kernel for a volumetric map
 * based on point samples" to the fog.  This implements inverse-distance
 * weighted (IDW) gridding of scattered (x, y, z, value) samples onto a
 * regular 3-D grid — the standard cheap scattered-data interpolant an
 * 8051-class node could actually run on a small neighbourhood.
 */

#ifndef NEOFOG_KERNELS_VOLUMETRIC_HH
#define NEOFOG_KERNELS_VOLUMETRIC_HH

#include <cstddef>
#include <vector>

namespace neofog::kernels {

/** One scattered sample in normalized [0,1]^3 space. */
struct PointSample
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
    double value = 0.0;
};

/** A dense nx*ny*nz scalar field in row-major (z fastest) order. */
struct VolumeGrid
{
    std::size_t nx = 0;
    std::size_t ny = 0;
    std::size_t nz = 0;
    std::vector<double> values;

    double &
    at(std::size_t ix, std::size_t iy, std::size_t iz)
    {
        return values[(ix * ny + iy) * nz + iz];
    }

    double
    at(std::size_t ix, std::size_t iy, std::size_t iz) const
    {
        return values[(ix * ny + iy) * nz + iz];
    }
};

/**
 * IDW reconstruction: each grid cell takes the weight-averaged value of
 * all samples with weight 1/(d^power + eps).
 *
 * @param samples Scattered samples in [0,1]^3.
 * @param nx,ny,nz Grid resolution.
 * @param power IDW exponent (2 = classic inverse-square).
 */
VolumeGrid reconstructVolume(const std::vector<PointSample> &samples,
                             std::size_t nx, std::size_t ny,
                             std::size_t nz, double power = 2.0);

/** Mean absolute error of a grid against a reference field functor. */
double gridError(const VolumeGrid &grid,
                 double (*reference)(double x, double y, double z));

/** Approximate op count of reconstructing an nx*ny*nz grid from m samples. */
std::size_t volumetricOpCount(std::size_t cells, std::size_t samples);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_VOLUMETRIC_HH
