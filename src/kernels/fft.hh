/**
 * @file
 * Radix-2 FFT and spectrum helpers.
 *
 * The bridge-health fog task (paper §3.1) performs noise removal and FFT
 * on acceleration batches to extract cable harmonics.  This is a real
 * implementation — examples and tests run it on synthetic vibration
 * signals — and its operation count feeds the workload energy model.
 */

#ifndef NEOFOG_KERNELS_FFT_HH
#define NEOFOG_KERNELS_FFT_HH

#include <complex>
#include <cstddef>
#include <vector>

namespace neofog::kernels {

/** True if n is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Smallest power of two >= n. */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * In-place iterative radix-2 Cooley-Tukey FFT.
 * @param data Complex samples; size must be a power of two.
 * @param inverse If true computes the inverse transform (scaled by 1/N).
 */
void fft(std::vector<std::complex<double>> &data, bool inverse = false);

/**
 * Forward FFT of a real signal, zero-padded to the next power of two.
 * @return Complex spectrum of length nextPowerOfTwo(signal.size()).
 */
std::vector<std::complex<double>>
realFft(const std::vector<double> &signal);

/**
 * Magnitude spectrum (first half, DC..Nyquist) of a real signal.
 */
std::vector<double> magnitudeSpectrum(const std::vector<double> &signal);

/**
 * Frequencies (Hz) of the @p count strongest spectral peaks of a real
 * signal sampled at @p sample_rate_hz, strongest first.  A peak is a
 * local maximum of the magnitude spectrum, DC excluded.
 */
std::vector<double> dominantFrequencies(const std::vector<double> &signal,
                                        double sample_rate_hz,
                                        std::size_t count);

/**
 * Approximate operation count of an N-point FFT (5 N log2 N flops),
 * used to map kernel work onto the NVP energy model.
 */
std::size_t fftOpCount(std::size_t n);

} // namespace neofog::kernels

#endif // NEOFOG_KERNELS_FFT_HH
