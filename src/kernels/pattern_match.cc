#include "kernels/pattern_match.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.hh"

namespace neofog::kernels {

std::vector<double>
normalizedCrossCorrelation(const std::vector<double> &signal,
                           const std::vector<double> &tmpl)
{
    const std::size_t n = signal.size();
    const std::size_t m = tmpl.size();
    if (m == 0 || m > n)
        return {};

    // Precompute template statistics.
    const double t_mean =
        std::accumulate(tmpl.begin(), tmpl.end(), 0.0) /
        static_cast<double>(m);
    double t_var = 0.0;
    for (double v : tmpl) {
        const double d = v - t_mean;
        t_var += d * d;
    }
    const double t_norm = std::sqrt(t_var);

    // Sliding window sums for the signal via prefix sums.
    std::vector<double> prefix(n + 1, 0.0), prefix2(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        prefix[i + 1] = prefix[i] + signal[i];
        prefix2[i + 1] = prefix2[i] + signal[i] * signal[i];
    }

    std::vector<double> scores(n - m + 1, 0.0);
    for (std::size_t off = 0; off + m <= n; ++off) {
        const double s_sum = prefix[off + m] - prefix[off];
        const double s_sum2 = prefix2[off + m] - prefix2[off];
        const double s_mean = s_sum / static_cast<double>(m);
        const double s_var =
            s_sum2 - 2.0 * s_mean * s_sum +
            static_cast<double>(m) * s_mean * s_mean;
        const double s_norm = std::sqrt(std::max(s_var, 0.0));

        double dot = 0.0;
        for (std::size_t k = 0; k < m; ++k)
            dot += (signal[off + k] - s_mean) * (tmpl[k] - t_mean);

        const double denom = s_norm * t_norm;
        scores[off] = denom > 1e-12 ? dot / denom : 0.0;
    }
    return scores;
}

std::vector<Match>
findMatches(const std::vector<double> &signal,
            const std::vector<double> &tmpl, double threshold)
{
    const auto scores = normalizedCrossCorrelation(signal, tmpl);
    const std::size_t m = tmpl.size();

    // Candidates above threshold, sorted by descending score.
    std::vector<Match> candidates;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] >= threshold)
            candidates.push_back({i, scores[i]});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Match &a, const Match &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.position < b.position;
              });

    // Greedy non-overlap selection.
    std::vector<Match> selected;
    for (const Match &c : candidates) {
        const bool overlaps = std::any_of(
            selected.begin(), selected.end(), [&](const Match &s) {
                const std::size_t a_lo = c.position;
                const std::size_t a_hi = c.position + m;
                const std::size_t b_lo = s.position;
                const std::size_t b_hi = s.position + m;
                return a_lo < b_hi && b_lo < a_hi;
            });
        if (!overlaps)
            selected.push_back(c);
    }
    std::sort(selected.begin(), selected.end(),
              [](const Match &a, const Match &b) {
                  return a.position < b.position;
              });
    return selected;
}

double
meanMatchInterval(const std::vector<Match> &matches)
{
    if (matches.size() < 2)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 1; i < matches.size(); ++i)
        sum += static_cast<double>(matches[i].position -
                                   matches[i - 1].position);
    return sum / static_cast<double>(matches.size() - 1);
}

std::size_t
matchOpCount(std::size_t n, std::size_t m)
{
    if (m == 0 || m > n)
        return 1;
    return 3 * (n - m + 1) * m;
}

} // namespace neofog::kernels
