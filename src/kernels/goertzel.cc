#include "kernels/goertzel.hh"

#include <cmath>

#include "sim/logging.hh"

namespace neofog::kernels {

double
goertzelMagnitude(const std::vector<double> &signal, double target_hz,
                  double sample_rate_hz)
{
    if (sample_rate_hz <= 0.0)
        fatal("goertzel: non-positive sample rate");
    if (target_hz < 0.0 || target_hz > sample_rate_hz / 2.0)
        fatal("goertzel: target outside [0, Nyquist]");
    const std::size_t n = signal.size();
    if (n == 0)
        return 0.0;

    const double omega = 2.0 * M_PI * target_hz / sample_rate_hz;
    const double coeff = 2.0 * std::cos(omega);
    double s_prev = 0.0, s_prev2 = 0.0;
    for (double x : signal) {
        const double s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    const double power = s_prev * s_prev + s_prev2 * s_prev2 -
                         coeff * s_prev * s_prev2;
    return std::sqrt(std::max(power, 0.0));
}

double
goertzelPowerRatio(const std::vector<double> &signal, double target_hz,
                   double sample_rate_hz)
{
    const std::size_t n = signal.size();
    if (n == 0)
        return 0.0;
    double total = 0.0;
    for (double x : signal)
        total += x * x;
    if (total <= 0.0)
        return 0.0;
    const double mag =
        goertzelMagnitude(signal, target_hz, sample_rate_hz);
    // |X(k)|^2 carries N/2 x the per-sample power of that component.
    const double component = 2.0 * mag * mag / static_cast<double>(n);
    return std::min(1.0, component / total);
}

double
goertzelRefine(const std::vector<double> &signal, double guess_hz,
               double half_band_hz, double sample_rate_hz,
               int grid_points)
{
    if (grid_points < 3)
        fatal("goertzelRefine: need at least 3 grid points");
    double best_hz = guess_hz;
    double best_mag = -1.0;
    for (int i = 0; i < grid_points; ++i) {
        const double frac = static_cast<double>(i) /
                            static_cast<double>(grid_points - 1);
        double hz = guess_hz - half_band_hz + 2.0 * half_band_hz * frac;
        hz = std::max(0.0, std::min(hz, sample_rate_hz / 2.0));
        const double mag =
            goertzelMagnitude(signal, hz, sample_rate_hz);
        if (mag > best_mag) {
            best_mag = mag;
            best_hz = hz;
        }
    }
    return best_hz;
}

std::size_t
goertzelOpCount(std::size_t n, int bins)
{
    return 4 * n * static_cast<std::size_t>(bins) + 8;
}

} // namespace neofog::kernels
