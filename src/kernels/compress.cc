#include "kernels/compress.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "sim/logging.hh"

namespace neofog::kernels {

namespace {

/** Method byte prepended by compress(). */
enum Method : std::uint8_t
{
    kRaw = 0,
    kDeltaLz = 1,
    kDeltaRle = 2,
    kDelta16Lz = 3,
    kDelta16Rle = 4,
};

} // namespace

void
putVarint(Bytes &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t
getVarint(const Bytes &in, std::size_t &pos)
{
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
        if (pos >= in.size())
            fatal("truncated varint");
        const std::uint8_t byte = in[pos++];
        value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if (!(byte & 0x80))
            break;
        shift += 7;
        if (shift >= 64)
            fatal("varint overflow");
    }
    return value;
}

std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

Bytes
deltaEncode(const Bytes &in)
{
    Bytes out(in.size());
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = static_cast<std::uint8_t>(in[i] - prev);
        prev = in[i];
    }
    return out;
}

Bytes
deltaDecode(const Bytes &in)
{
    Bytes out(in.size());
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        prev = static_cast<std::uint8_t>(prev + in[i]);
        out[i] = prev;
    }
    return out;
}

Bytes
deltaEncodeLag(const Bytes &in, std::size_t lag)
{
    NEOFOG_ASSERT(lag >= 1, "delta lag must be >= 1");
    Bytes out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const std::uint8_t prev = i >= lag ? in[i - lag] : 0;
        out[i] = static_cast<std::uint8_t>(in[i] - prev);
    }
    return out;
}

Bytes
deltaDecodeLag(const Bytes &in, std::size_t lag)
{
    NEOFOG_ASSERT(lag >= 1, "delta lag must be >= 1");
    Bytes out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const std::uint8_t prev = i >= lag ? out[i - lag] : 0;
        out[i] = static_cast<std::uint8_t>(in[i] + prev);
    }
    return out;
}

Bytes
rleEncode(const Bytes &in)
{
    // Token stream: (literal-length varint, literal bytes,
    //                run-length varint, run byte if run > 0) repeated.
    Bytes out;
    std::size_t i = 0;
    while (i < in.size()) {
        // Scan literals until a run of >= 4 identical bytes starts.
        const std::size_t lit_start = i;
        std::size_t run_start = in.size();
        while (i < in.size()) {
            std::size_t j = i;
            while (j < in.size() && in[j] == in[i])
                ++j;
            if (j - i >= 4) {
                run_start = i;
                break;
            }
            i = j;
        }
        const std::size_t lit_len =
            (run_start == in.size() ? in.size() : run_start) - lit_start;
        putVarint(out, lit_len);
        out.insert(out.end(),
                   in.begin() + static_cast<std::ptrdiff_t>(lit_start),
                   in.begin() +
                       static_cast<std::ptrdiff_t>(lit_start + lit_len));
        if (run_start == in.size()) {
            putVarint(out, 0);
            break;
        }
        std::size_t j = run_start;
        while (j < in.size() && in[j] == in[run_start])
            ++j;
        putVarint(out, j - run_start);
        out.push_back(in[run_start]);
        i = j;
    }
    if (in.empty())
        putVarint(out, 0), putVarint(out, 0);
    return out;
}

Bytes
rleDecode(const Bytes &in)
{
    Bytes out;
    std::size_t pos = 0;
    while (pos < in.size()) {
        const std::uint64_t lit_len = getVarint(in, pos);
        if (pos + lit_len > in.size())
            fatal("truncated RLE literals");
        out.insert(out.end(),
                   in.begin() + static_cast<std::ptrdiff_t>(pos),
                   in.begin() + static_cast<std::ptrdiff_t>(pos + lit_len));
        pos += lit_len;
        if (pos >= in.size())
            break;
        const std::uint64_t run_len = getVarint(in, pos);
        if (run_len == 0)
            break;
        if (pos >= in.size())
            fatal("truncated RLE run byte");
        out.insert(out.end(), run_len, in[pos++]);
    }
    return out;
}

Bytes
lz77Encode(const Bytes &in)
{
    constexpr std::size_t kWindow = 64 * 1024;
    constexpr std::size_t kMinMatch = 3;
    constexpr std::size_t kMaxMatch = 1 << 16;

    // Hash chains over 3-byte prefixes.
    auto hash3 = [&](std::size_t i) {
        return (static_cast<std::uint32_t>(in[i]) * 506832829u) ^
               (static_cast<std::uint32_t>(in[i + 1]) * 2654435761u) ^
               (static_cast<std::uint32_t>(in[i + 2]) * 2246822519u);
    };
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> chains;

    Bytes out;
    std::size_t i = 0;
    std::size_t lit_start = 0;

    auto flush = [&](std::size_t lit_end, std::size_t offset,
                     std::size_t length) {
        putVarint(out, lit_end - lit_start);
        out.insert(out.end(),
                   in.begin() + static_cast<std::ptrdiff_t>(lit_start),
                   in.begin() + static_cast<std::ptrdiff_t>(lit_end));
        putVarint(out, offset);
        putVarint(out, length);
    };

    while (i < in.size()) {
        std::size_t best_len = 0;
        std::size_t best_off = 0;
        if (i + kMinMatch <= in.size()) {
            const auto h = hash3(i);
            auto it = chains.find(h);
            if (it != chains.end()) {
                // Search most recent candidates first; cap the effort.
                int tries = 16;
                for (auto rit = it->second.rbegin();
                     rit != it->second.rend() && tries > 0; ++rit) {
                    const std::size_t cand = *rit;
                    if (i - cand > kWindow)
                        break;
                    --tries;
                    std::size_t len = 0;
                    const std::size_t max_len =
                        std::min(in.size() - i, kMaxMatch);
                    while (len < max_len && in[cand + len] == in[i + len])
                        ++len;
                    if (len >= kMinMatch && len > best_len) {
                        best_len = len;
                        best_off = i - cand;
                    }
                }
            }
        }

        if (best_len >= kMinMatch) {
            flush(i, best_off, best_len);
            // Index the skipped region (sparsely, every other byte, to
            // bound cost) then continue past the match.
            const std::size_t end = i + best_len;
            for (std::size_t k = i; k + kMinMatch <= in.size() && k < end;
                 k += 2)
                chains[hash3(k)].push_back(k);
            i = end;
            lit_start = i;
        } else {
            if (i + kMinMatch <= in.size())
                chains[hash3(i)].push_back(i);
            ++i;
        }
    }
    // Trailing literals with a zero match.
    putVarint(out, i - lit_start);
    out.insert(out.end(),
               in.begin() + static_cast<std::ptrdiff_t>(lit_start),
               in.begin() + static_cast<std::ptrdiff_t>(i));
    putVarint(out, 0);
    putVarint(out, 0);
    return out;
}

Bytes
lz77Decode(const Bytes &in)
{
    Bytes out;
    std::size_t pos = 0;
    while (pos < in.size()) {
        const std::uint64_t lit_len = getVarint(in, pos);
        if (pos + lit_len > in.size())
            fatal("truncated LZ77 literals");
        out.insert(out.end(),
                   in.begin() + static_cast<std::ptrdiff_t>(pos),
                   in.begin() + static_cast<std::ptrdiff_t>(pos + lit_len));
        pos += lit_len;
        if (pos >= in.size())
            break;
        const std::uint64_t offset = getVarint(in, pos);
        const std::uint64_t length = getVarint(in, pos);
        if (offset == 0 && length == 0)
            break;
        if (offset == 0 || offset > out.size())
            fatal("corrupt LZ77 offset");
        // Byte-by-byte copy supports overlapping matches.
        std::size_t src = out.size() - offset;
        for (std::uint64_t k = 0; k < length; ++k)
            out.push_back(out[src + k]);
    }
    return out;
}

Bytes
compress(const Bytes &in)
{
    const Bytes delta1 = deltaEncode(in);
    const Bytes delta2 = deltaEncodeLag(in, 2);

    struct Candidate
    {
        Method method;
        Bytes encoded;
    };
    Candidate candidates[] = {
        {kDeltaLz, lz77Encode(delta1)},
        {kDeltaRle, rleEncode(delta1)},
        {kDelta16Lz, lz77Encode(delta2)},
        {kDelta16Rle, rleEncode(delta2)},
    };

    const Candidate *best = nullptr;
    for (const Candidate &c : candidates) {
        if (c.encoded.size() < in.size() &&
            (!best || c.encoded.size() < best->encoded.size()))
            best = &c;
    }

    Bytes out;
    if (best) {
        out.reserve(best->encoded.size() + 1);
        out.push_back(best->method);
        out.insert(out.end(), best->encoded.begin(),
                   best->encoded.end());
    } else {
        out.reserve(in.size() + 1);
        out.push_back(kRaw);
        out.insert(out.end(), in.begin(), in.end());
    }
    return out;
}

Bytes
decompress(const Bytes &in)
{
    if (in.empty())
        fatal("decompress: empty input");
    const Bytes body(in.begin() + 1, in.end());
    switch (in[0]) {
      case kRaw:
        return body;
      case kDeltaLz:
        return deltaDecode(lz77Decode(body));
      case kDeltaRle:
        return deltaDecode(rleDecode(body));
      case kDelta16Lz:
        return deltaDecodeLag(lz77Decode(body), 2);
      case kDelta16Rle:
        return deltaDecodeLag(rleDecode(body), 2);
      default:
        fatal("decompress: unknown method byte ", int{in[0]});
    }
}

double
compressionRatio(const Bytes &in)
{
    if (in.empty())
        return 0.0;
    return static_cast<double>(compress(in).size()) /
           static_cast<double>(in.size());
}

Bytes
quantize16(const std::vector<double> &signal, double lo, double hi)
{
    NEOFOG_ASSERT(hi > lo, "quantize16 bounds");
    Bytes out;
    out.reserve(signal.size() * 2);
    const double scale = 65535.0 / (hi - lo);
    for (double v : signal) {
        const double clamped = std::clamp(v, lo, hi);
        const auto q =
            static_cast<std::uint16_t>(std::lround((clamped - lo) * scale));
        out.push_back(static_cast<std::uint8_t>(q & 0xFF));
        out.push_back(static_cast<std::uint8_t>(q >> 8));
    }
    return out;
}

std::vector<double>
dequantize16(const Bytes &data, double lo, double hi)
{
    NEOFOG_ASSERT(data.size() % 2 == 0, "dequantize16 odd byte count");
    std::vector<double> out(data.size() / 2);
    const double scale = (hi - lo) / 65535.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::uint16_t q = static_cast<std::uint16_t>(
            data[2 * i] | (data[2 * i + 1] << 8));
        out[i] = lo + static_cast<double>(q) * scale;
    }
    return out;
}

std::size_t
compressOpCount(std::size_t n)
{
    // Delta pass + hash-chain LZ with capped probes: ~40 ops/byte.
    return 40 * n + 1;
}

} // namespace neofog::kernels
