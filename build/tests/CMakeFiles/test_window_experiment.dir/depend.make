# Empty dependencies file for test_window_experiment.
# This may be replaced when dependencies are built.
