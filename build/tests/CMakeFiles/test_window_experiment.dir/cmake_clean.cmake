file(REMOVE_RECURSE
  "CMakeFiles/test_window_experiment.dir/test_window_experiment.cpp.o"
  "CMakeFiles/test_window_experiment.dir/test_window_experiment.cpp.o.d"
  "test_window_experiment"
  "test_window_experiment.pdb"
  "test_window_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
