file(REMOVE_RECURSE
  "CMakeFiles/test_hw_parts.dir/test_hw_parts.cpp.o"
  "CMakeFiles/test_hw_parts.dir/test_hw_parts.cpp.o.d"
  "test_hw_parts"
  "test_hw_parts.pdb"
  "test_hw_parts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
