# Empty compiler generated dependencies file for test_hw_parts.
# This may be replaced when dependencies are built.
