# Empty dependencies file for test_nvd4q.
# This may be replaced when dependencies are built.
