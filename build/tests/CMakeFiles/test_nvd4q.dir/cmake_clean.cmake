file(REMOVE_RECURSE
  "CMakeFiles/test_nvd4q.dir/test_nvd4q.cpp.o"
  "CMakeFiles/test_nvd4q.dir/test_nvd4q.cpp.o.d"
  "test_nvd4q"
  "test_nvd4q.pdb"
  "test_nvd4q[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvd4q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
