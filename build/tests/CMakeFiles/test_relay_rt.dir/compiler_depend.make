# Empty compiler generated dependencies file for test_relay_rt.
# This may be replaced when dependencies are built.
