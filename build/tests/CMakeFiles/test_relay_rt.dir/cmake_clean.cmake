file(REMOVE_RECURSE
  "CMakeFiles/test_relay_rt.dir/test_relay_rt.cpp.o"
  "CMakeFiles/test_relay_rt.dir/test_relay_rt.cpp.o.d"
  "test_relay_rt"
  "test_relay_rt.pdb"
  "test_relay_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relay_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
