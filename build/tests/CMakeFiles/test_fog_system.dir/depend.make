# Empty dependencies file for test_fog_system.
# This may be replaced when dependencies are built.
