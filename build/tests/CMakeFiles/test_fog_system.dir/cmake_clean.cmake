file(REMOVE_RECURSE
  "CMakeFiles/test_fog_system.dir/test_fog_system.cpp.o"
  "CMakeFiles/test_fog_system.dir/test_fog_system.cpp.o.d"
  "test_fog_system"
  "test_fog_system.pdb"
  "test_fog_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fog_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
