# Empty compiler generated dependencies file for test_healing.
# This may be replaced when dependencies are built.
