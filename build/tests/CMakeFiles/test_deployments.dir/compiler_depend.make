# Empty compiler generated dependencies file for test_deployments.
# This may be replaced when dependencies are built.
