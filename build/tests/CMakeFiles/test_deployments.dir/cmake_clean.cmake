file(REMOVE_RECURSE
  "CMakeFiles/test_deployments.dir/test_deployments.cpp.o"
  "CMakeFiles/test_deployments.dir/test_deployments.cpp.o.d"
  "test_deployments"
  "test_deployments.pdb"
  "test_deployments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deployments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
