file(REMOVE_RECURSE
  "CMakeFiles/test_intermittent.dir/test_intermittent.cpp.o"
  "CMakeFiles/test_intermittent.dir/test_intermittent.cpp.o.d"
  "test_intermittent"
  "test_intermittent.pdb"
  "test_intermittent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intermittent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
