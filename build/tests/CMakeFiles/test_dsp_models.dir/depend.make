# Empty dependencies file for test_dsp_models.
# This may be replaced when dependencies are built.
