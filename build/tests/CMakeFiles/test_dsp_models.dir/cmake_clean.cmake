file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_models.dir/test_dsp_models.cpp.o"
  "CMakeFiles/test_dsp_models.dir/test_dsp_models.cpp.o.d"
  "test_dsp_models"
  "test_dsp_models.pdb"
  "test_dsp_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
