
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_processor.cpp" "tests/CMakeFiles/test_processor.dir/test_processor.cpp.o" "gcc" "tests/CMakeFiles/test_processor.dir/test_processor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fog/CMakeFiles/neofog_fog.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/neofog_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/neofog_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/balance/CMakeFiles/neofog_balance.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/neofog_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/neofog_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/neofog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/neofog_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/neofog_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neofog_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
