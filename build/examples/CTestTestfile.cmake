# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bridge_monitor "/root/repo/build/examples/bridge_monitor")
set_tests_properties(example_bridge_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_forest_fire "/root/repo/build/examples/forest_fire")
set_tests_properties(example_forest_fire PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mountain_slide "/root/repo/build/examples/mountain_slide")
set_tests_properties(example_mountain_slide PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wearable_health "/root/repo/build/examples/wearable_health")
set_tests_properties(example_wearable_health PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_neofog_cli "/root/repo/build/examples/neofog_cli")
set_tests_properties(example_neofog_cli PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deployment_survey "/root/repo/build/examples/deployment_survey")
set_tests_properties(example_deployment_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_node_timeline "/root/repo/build/examples/node_timeline")
set_tests_properties(example_node_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
