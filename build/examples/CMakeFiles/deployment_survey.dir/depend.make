# Empty dependencies file for deployment_survey.
# This may be replaced when dependencies are built.
