file(REMOVE_RECURSE
  "CMakeFiles/deployment_survey.dir/deployment_survey.cpp.o"
  "CMakeFiles/deployment_survey.dir/deployment_survey.cpp.o.d"
  "deployment_survey"
  "deployment_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
