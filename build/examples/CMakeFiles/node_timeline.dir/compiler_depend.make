# Empty compiler generated dependencies file for node_timeline.
# This may be replaced when dependencies are built.
