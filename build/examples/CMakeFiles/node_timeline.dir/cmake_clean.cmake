file(REMOVE_RECURSE
  "CMakeFiles/node_timeline.dir/node_timeline.cpp.o"
  "CMakeFiles/node_timeline.dir/node_timeline.cpp.o.d"
  "node_timeline"
  "node_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
