# Empty dependencies file for mountain_slide.
# This may be replaced when dependencies are built.
