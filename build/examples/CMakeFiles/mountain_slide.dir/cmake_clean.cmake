file(REMOVE_RECURSE
  "CMakeFiles/mountain_slide.dir/mountain_slide.cpp.o"
  "CMakeFiles/mountain_slide.dir/mountain_slide.cpp.o.d"
  "mountain_slide"
  "mountain_slide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mountain_slide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
