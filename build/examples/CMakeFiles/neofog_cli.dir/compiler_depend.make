# Empty compiler generated dependencies file for neofog_cli.
# This may be replaced when dependencies are built.
