file(REMOVE_RECURSE
  "CMakeFiles/neofog_cli.dir/neofog_cli.cpp.o"
  "CMakeFiles/neofog_cli.dir/neofog_cli.cpp.o.d"
  "neofog_cli"
  "neofog_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
