file(REMOVE_RECURSE
  "CMakeFiles/fig7_density_hops.dir/fig7_density_hops.cpp.o"
  "CMakeFiles/fig7_density_hops.dir/fig7_density_hops.cpp.o.d"
  "fig7_density_hops"
  "fig7_density_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_density_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
