# Empty dependencies file for fig7_density_hops.
# This may be replaced when dependencies are built.
