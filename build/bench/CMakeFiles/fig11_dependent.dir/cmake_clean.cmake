file(REMOVE_RECURSE
  "CMakeFiles/fig11_dependent.dir/fig11_dependent.cpp.o"
  "CMakeFiles/fig11_dependent.dir/fig11_dependent.cpp.o.d"
  "fig11_dependent"
  "fig11_dependent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_dependent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
