# Empty compiler generated dependencies file for fig11_dependent.
# This may be replaced when dependencies are built.
