file(REMOVE_RECURSE
  "CMakeFiles/confidence.dir/confidence.cpp.o"
  "CMakeFiles/confidence.dir/confidence.cpp.o.d"
  "confidence"
  "confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
