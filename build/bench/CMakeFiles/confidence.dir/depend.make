# Empty dependencies file for confidence.
# This may be replaced when dependencies are built.
