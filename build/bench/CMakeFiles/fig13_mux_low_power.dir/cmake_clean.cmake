file(REMOVE_RECURSE
  "CMakeFiles/fig13_mux_low_power.dir/fig13_mux_low_power.cpp.o"
  "CMakeFiles/fig13_mux_low_power.dir/fig13_mux_low_power.cpp.o.d"
  "fig13_mux_low_power"
  "fig13_mux_low_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mux_low_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
