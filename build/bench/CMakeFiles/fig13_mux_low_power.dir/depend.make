# Empty dependencies file for fig13_mux_low_power.
# This may be replaced when dependencies are built.
