# Empty compiler generated dependencies file for fig12_mux_high_power.
# This may be replaced when dependencies are built.
