file(REMOVE_RECURSE
  "CMakeFiles/fig12_mux_high_power.dir/fig12_mux_high_power.cpp.o"
  "CMakeFiles/fig12_mux_high_power.dir/fig12_mux_high_power.cpp.o.d"
  "fig12_mux_high_power"
  "fig12_mux_high_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mux_high_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
