file(REMOVE_RECURSE
  "CMakeFiles/ablation_income_sweep.dir/ablation_income_sweep.cpp.o"
  "CMakeFiles/ablation_income_sweep.dir/ablation_income_sweep.cpp.o.d"
  "ablation_income_sweep"
  "ablation_income_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_income_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
