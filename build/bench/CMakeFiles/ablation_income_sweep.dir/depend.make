# Empty dependencies file for ablation_income_sweep.
# This may be replaced when dependencies are built.
