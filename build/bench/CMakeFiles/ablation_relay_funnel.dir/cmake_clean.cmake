file(REMOVE_RECURSE
  "CMakeFiles/ablation_relay_funnel.dir/ablation_relay_funnel.cpp.o"
  "CMakeFiles/ablation_relay_funnel.dir/ablation_relay_funnel.cpp.o.d"
  "ablation_relay_funnel"
  "ablation_relay_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relay_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
