# Empty compiler generated dependencies file for ablation_relay_funnel.
# This may be replaced when dependencies are built.
