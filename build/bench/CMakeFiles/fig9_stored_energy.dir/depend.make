# Empty dependencies file for fig9_stored_energy.
# This may be replaced when dependencies are built.
