# Empty compiler generated dependencies file for fig8_wake_pattern.
# This may be replaced when dependencies are built.
