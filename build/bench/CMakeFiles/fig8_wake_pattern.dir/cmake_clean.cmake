file(REMOVE_RECURSE
  "CMakeFiles/fig8_wake_pattern.dir/fig8_wake_pattern.cpp.o"
  "CMakeFiles/fig8_wake_pattern.dir/fig8_wake_pattern.cpp.o.d"
  "fig8_wake_pattern"
  "fig8_wake_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_wake_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
