file(REMOVE_RECURSE
  "CMakeFiles/fig10_independent.dir/fig10_independent.cpp.o"
  "CMakeFiles/fig10_independent.dir/fig10_independent.cpp.o.d"
  "fig10_independent"
  "fig10_independent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_independent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
