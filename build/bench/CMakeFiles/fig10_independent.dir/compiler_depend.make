# Empty compiler generated dependencies file for fig10_independent.
# This may be replaced when dependencies are built.
