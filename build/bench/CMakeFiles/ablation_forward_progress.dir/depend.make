# Empty dependencies file for ablation_forward_progress.
# This may be replaced when dependencies are built.
