file(REMOVE_RECURSE
  "CMakeFiles/ablation_forward_progress.dir/ablation_forward_progress.cpp.o"
  "CMakeFiles/ablation_forward_progress.dir/ablation_forward_progress.cpp.o.d"
  "ablation_forward_progress"
  "ablation_forward_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forward_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
