# Empty compiler generated dependencies file for ablation_incidental.
# This may be replaced when dependencies are built.
