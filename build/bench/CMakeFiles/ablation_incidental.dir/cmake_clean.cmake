file(REMOVE_RECURSE
  "CMakeFiles/ablation_incidental.dir/ablation_incidental.cpp.o"
  "CMakeFiles/ablation_incidental.dir/ablation_incidental.cpp.o.d"
  "ablation_incidental"
  "ablation_incidental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incidental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
