file(REMOVE_RECURSE
  "CMakeFiles/ablation_design_knobs.dir/ablation_design_knobs.cpp.o"
  "CMakeFiles/ablation_design_knobs.dir/ablation_design_knobs.cpp.o.d"
  "ablation_design_knobs"
  "ablation_design_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
