# Empty dependencies file for ablation_design_knobs.
# This may be replaced when dependencies are built.
