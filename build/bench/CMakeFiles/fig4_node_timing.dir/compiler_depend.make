# Empty compiler generated dependencies file for fig4_node_timing.
# This may be replaced when dependencies are built.
