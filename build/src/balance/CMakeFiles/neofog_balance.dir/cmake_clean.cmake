file(REMOVE_RECURSE
  "CMakeFiles/neofog_balance.dir/assignment.cc.o"
  "CMakeFiles/neofog_balance.dir/assignment.cc.o.d"
  "CMakeFiles/neofog_balance.dir/balancer.cc.o"
  "CMakeFiles/neofog_balance.dir/balancer.cc.o.d"
  "libneofog_balance.a"
  "libneofog_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
