# Empty dependencies file for neofog_balance.
# This may be replaced when dependencies are built.
