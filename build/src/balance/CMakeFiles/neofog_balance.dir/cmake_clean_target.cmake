file(REMOVE_RECURSE
  "libneofog_balance.a"
)
