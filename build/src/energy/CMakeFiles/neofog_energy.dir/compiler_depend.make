# Empty compiler generated dependencies file for neofog_energy.
# This may be replaced when dependencies are built.
