file(REMOVE_RECURSE
  "libneofog_energy.a"
)
