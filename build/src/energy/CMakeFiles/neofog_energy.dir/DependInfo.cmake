
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/capacitor.cc" "src/energy/CMakeFiles/neofog_energy.dir/capacitor.cc.o" "gcc" "src/energy/CMakeFiles/neofog_energy.dir/capacitor.cc.o.d"
  "/root/repo/src/energy/frontend.cc" "src/energy/CMakeFiles/neofog_energy.dir/frontend.cc.o" "gcc" "src/energy/CMakeFiles/neofog_energy.dir/frontend.cc.o.d"
  "/root/repo/src/energy/power_trace.cc" "src/energy/CMakeFiles/neofog_energy.dir/power_trace.cc.o" "gcc" "src/energy/CMakeFiles/neofog_energy.dir/power_trace.cc.o.d"
  "/root/repo/src/energy/trace_io.cc" "src/energy/CMakeFiles/neofog_energy.dir/trace_io.cc.o" "gcc" "src/energy/CMakeFiles/neofog_energy.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/neofog_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
