file(REMOVE_RECURSE
  "CMakeFiles/neofog_energy.dir/capacitor.cc.o"
  "CMakeFiles/neofog_energy.dir/capacitor.cc.o.d"
  "CMakeFiles/neofog_energy.dir/frontend.cc.o"
  "CMakeFiles/neofog_energy.dir/frontend.cc.o.d"
  "CMakeFiles/neofog_energy.dir/power_trace.cc.o"
  "CMakeFiles/neofog_energy.dir/power_trace.cc.o.d"
  "CMakeFiles/neofog_energy.dir/trace_io.cc.o"
  "CMakeFiles/neofog_energy.dir/trace_io.cc.o.d"
  "libneofog_energy.a"
  "libneofog_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
