file(REMOVE_RECURSE
  "CMakeFiles/neofog_kernels.dir/ar_model.cc.o"
  "CMakeFiles/neofog_kernels.dir/ar_model.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/bridge_model.cc.o"
  "CMakeFiles/neofog_kernels.dir/bridge_model.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/compress.cc.o"
  "CMakeFiles/neofog_kernels.dir/compress.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/fft.cc.o"
  "CMakeFiles/neofog_kernels.dir/fft.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/filters.cc.o"
  "CMakeFiles/neofog_kernels.dir/filters.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/goertzel.cc.o"
  "CMakeFiles/neofog_kernels.dir/goertzel.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/pattern_match.cc.o"
  "CMakeFiles/neofog_kernels.dir/pattern_match.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/signal_gen.cc.o"
  "CMakeFiles/neofog_kernels.dir/signal_gen.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/volumetric.cc.o"
  "CMakeFiles/neofog_kernels.dir/volumetric.cc.o.d"
  "CMakeFiles/neofog_kernels.dir/window.cc.o"
  "CMakeFiles/neofog_kernels.dir/window.cc.o.d"
  "libneofog_kernels.a"
  "libneofog_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
