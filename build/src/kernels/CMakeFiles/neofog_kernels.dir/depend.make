# Empty dependencies file for neofog_kernels.
# This may be replaced when dependencies are built.
