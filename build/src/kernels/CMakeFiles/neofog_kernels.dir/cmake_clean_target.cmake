file(REMOVE_RECURSE
  "libneofog_kernels.a"
)
