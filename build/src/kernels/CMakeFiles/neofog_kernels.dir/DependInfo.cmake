
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/ar_model.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/ar_model.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/ar_model.cc.o.d"
  "/root/repo/src/kernels/bridge_model.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/bridge_model.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/bridge_model.cc.o.d"
  "/root/repo/src/kernels/compress.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/compress.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/compress.cc.o.d"
  "/root/repo/src/kernels/fft.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/fft.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/fft.cc.o.d"
  "/root/repo/src/kernels/filters.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/filters.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/filters.cc.o.d"
  "/root/repo/src/kernels/goertzel.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/goertzel.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/goertzel.cc.o.d"
  "/root/repo/src/kernels/pattern_match.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/pattern_match.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/pattern_match.cc.o.d"
  "/root/repo/src/kernels/signal_gen.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/signal_gen.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/signal_gen.cc.o.d"
  "/root/repo/src/kernels/volumetric.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/volumetric.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/volumetric.cc.o.d"
  "/root/repo/src/kernels/window.cc" "src/kernels/CMakeFiles/neofog_kernels.dir/window.cc.o" "gcc" "src/kernels/CMakeFiles/neofog_kernels.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/neofog_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
