file(REMOVE_RECURSE
  "libneofog_workload.a"
)
