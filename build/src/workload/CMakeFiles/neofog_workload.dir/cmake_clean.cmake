file(REMOVE_RECURSE
  "CMakeFiles/neofog_workload.dir/app_profile.cc.o"
  "CMakeFiles/neofog_workload.dir/app_profile.cc.o.d"
  "CMakeFiles/neofog_workload.dir/fog_task.cc.o"
  "CMakeFiles/neofog_workload.dir/fog_task.cc.o.d"
  "libneofog_workload.a"
  "libneofog_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
