
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_profile.cc" "src/workload/CMakeFiles/neofog_workload.dir/app_profile.cc.o" "gcc" "src/workload/CMakeFiles/neofog_workload.dir/app_profile.cc.o.d"
  "/root/repo/src/workload/fog_task.cc" "src/workload/CMakeFiles/neofog_workload.dir/fog_task.cc.o" "gcc" "src/workload/CMakeFiles/neofog_workload.dir/fog_task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/neofog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/neofog_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/neofog_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/neofog_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
