# Empty compiler generated dependencies file for neofog_workload.
# This may be replaced when dependencies are built.
