# Empty compiler generated dependencies file for neofog_sim.
# This may be replaced when dependencies are built.
