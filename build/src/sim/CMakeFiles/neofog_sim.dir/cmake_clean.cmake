file(REMOVE_RECURSE
  "CMakeFiles/neofog_sim.dir/event_queue.cc.o"
  "CMakeFiles/neofog_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/neofog_sim.dir/logging.cc.o"
  "CMakeFiles/neofog_sim.dir/logging.cc.o.d"
  "CMakeFiles/neofog_sim.dir/rng.cc.o"
  "CMakeFiles/neofog_sim.dir/rng.cc.o.d"
  "CMakeFiles/neofog_sim.dir/stats.cc.o"
  "CMakeFiles/neofog_sim.dir/stats.cc.o.d"
  "libneofog_sim.a"
  "libneofog_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
