file(REMOVE_RECURSE
  "libneofog_sim.a"
)
