file(REMOVE_RECURSE
  "libneofog_hw.a"
)
