file(REMOVE_RECURSE
  "CMakeFiles/neofog_hw.dir/nv_buffer.cc.o"
  "CMakeFiles/neofog_hw.dir/nv_buffer.cc.o.d"
  "CMakeFiles/neofog_hw.dir/processor.cc.o"
  "CMakeFiles/neofog_hw.dir/processor.cc.o.d"
  "CMakeFiles/neofog_hw.dir/rf.cc.o"
  "CMakeFiles/neofog_hw.dir/rf.cc.o.d"
  "CMakeFiles/neofog_hw.dir/rtc.cc.o"
  "CMakeFiles/neofog_hw.dir/rtc.cc.o.d"
  "CMakeFiles/neofog_hw.dir/sensor.cc.o"
  "CMakeFiles/neofog_hw.dir/sensor.cc.o.d"
  "libneofog_hw.a"
  "libneofog_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
