
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/nv_buffer.cc" "src/hw/CMakeFiles/neofog_hw.dir/nv_buffer.cc.o" "gcc" "src/hw/CMakeFiles/neofog_hw.dir/nv_buffer.cc.o.d"
  "/root/repo/src/hw/processor.cc" "src/hw/CMakeFiles/neofog_hw.dir/processor.cc.o" "gcc" "src/hw/CMakeFiles/neofog_hw.dir/processor.cc.o.d"
  "/root/repo/src/hw/rf.cc" "src/hw/CMakeFiles/neofog_hw.dir/rf.cc.o" "gcc" "src/hw/CMakeFiles/neofog_hw.dir/rf.cc.o.d"
  "/root/repo/src/hw/rtc.cc" "src/hw/CMakeFiles/neofog_hw.dir/rtc.cc.o" "gcc" "src/hw/CMakeFiles/neofog_hw.dir/rtc.cc.o.d"
  "/root/repo/src/hw/sensor.cc" "src/hw/CMakeFiles/neofog_hw.dir/sensor.cc.o" "gcc" "src/hw/CMakeFiles/neofog_hw.dir/sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/neofog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/neofog_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
