# Empty dependencies file for neofog_hw.
# This may be replaced when dependencies are built.
