# Empty dependencies file for neofog_fog.
# This may be replaced when dependencies are built.
