file(REMOVE_RECURSE
  "libneofog_fog.a"
)
