file(REMOVE_RECURSE
  "CMakeFiles/neofog_fog.dir/deployments.cc.o"
  "CMakeFiles/neofog_fog.dir/deployments.cc.o.d"
  "CMakeFiles/neofog_fog.dir/experiment.cc.o"
  "CMakeFiles/neofog_fog.dir/experiment.cc.o.d"
  "CMakeFiles/neofog_fog.dir/fog_system.cc.o"
  "CMakeFiles/neofog_fog.dir/fog_system.cc.o.d"
  "CMakeFiles/neofog_fog.dir/presets.cc.o"
  "CMakeFiles/neofog_fog.dir/presets.cc.o.d"
  "CMakeFiles/neofog_fog.dir/scenario.cc.o"
  "CMakeFiles/neofog_fog.dir/scenario.cc.o.d"
  "libneofog_fog.a"
  "libneofog_fog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_fog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
