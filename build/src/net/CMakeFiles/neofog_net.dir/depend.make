# Empty dependencies file for neofog_net.
# This may be replaced when dependencies are built.
