file(REMOVE_RECURSE
  "libneofog_net.a"
)
