file(REMOVE_RECURSE
  "CMakeFiles/neofog_net.dir/checksum.cc.o"
  "CMakeFiles/neofog_net.dir/checksum.cc.o.d"
  "CMakeFiles/neofog_net.dir/loss.cc.o"
  "CMakeFiles/neofog_net.dir/loss.cc.o.d"
  "CMakeFiles/neofog_net.dir/mac.cc.o"
  "CMakeFiles/neofog_net.dir/mac.cc.o.d"
  "CMakeFiles/neofog_net.dir/packet.cc.o"
  "CMakeFiles/neofog_net.dir/packet.cc.o.d"
  "CMakeFiles/neofog_net.dir/topology.cc.o"
  "CMakeFiles/neofog_net.dir/topology.cc.o.d"
  "libneofog_net.a"
  "libneofog_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
