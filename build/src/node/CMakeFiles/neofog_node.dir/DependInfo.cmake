
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/intermittent.cc" "src/node/CMakeFiles/neofog_node.dir/intermittent.cc.o" "gcc" "src/node/CMakeFiles/neofog_node.dir/intermittent.cc.o.d"
  "/root/repo/src/node/node.cc" "src/node/CMakeFiles/neofog_node.dir/node.cc.o" "gcc" "src/node/CMakeFiles/neofog_node.dir/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/neofog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/neofog_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/neofog_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/neofog_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
