file(REMOVE_RECURSE
  "CMakeFiles/neofog_node.dir/intermittent.cc.o"
  "CMakeFiles/neofog_node.dir/intermittent.cc.o.d"
  "CMakeFiles/neofog_node.dir/node.cc.o"
  "CMakeFiles/neofog_node.dir/node.cc.o.d"
  "libneofog_node.a"
  "libneofog_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
