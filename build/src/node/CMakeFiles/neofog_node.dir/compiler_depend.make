# Empty compiler generated dependencies file for neofog_node.
# This may be replaced when dependencies are built.
