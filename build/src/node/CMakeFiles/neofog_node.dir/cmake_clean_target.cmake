file(REMOVE_RECURSE
  "libneofog_node.a"
)
