file(REMOVE_RECURSE
  "libneofog_virt.a"
)
