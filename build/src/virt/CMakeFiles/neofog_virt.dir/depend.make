# Empty dependencies file for neofog_virt.
# This may be replaced when dependencies are built.
