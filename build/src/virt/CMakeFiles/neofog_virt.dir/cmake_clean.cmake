file(REMOVE_RECURSE
  "CMakeFiles/neofog_virt.dir/nvd4q.cc.o"
  "CMakeFiles/neofog_virt.dir/nvd4q.cc.o.d"
  "libneofog_virt.a"
  "libneofog_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neofog_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
