#!/usr/bin/env bash
# Crash-resume contract check for the snapshot subsystem.
#
# Single-process mode (workers absent or 0) runs a fig-13-style
# scenario three ways:
#   1. uninterrupted reference run               -> reference.json
#   2. snapshotting run, SIGKILLed mid-flight
#   3. resume from the newest valid snapshot     -> resumed.json
# and requires reference.json and resumed.json to be byte-identical
# (md5).  If the snapshotting run finishes before the kill lands (fast
# machine), the test still validates resume-from-latest against the
# reference, which is the actual contract.
#
# Worker-kill mode (workers > 0) checks the distributed runtime's two
# recovery paths against a --threads reference instead:
#   2a. --workers run with one worker process SIGKILLed mid-flight;
#       the coordinator must respawn + resume it and still finish
#       with the reference bytes, in the SAME run.
#   2b. --workers run with the COORDINATOR SIGKILLed; a --resume of
#       the partitioned snapshot directory must finish with the
#       reference bytes.
# Kills are best-effort: on a machine fast enough that a run completes
# first, each path degrades to the md5 contract it ends with.
#
# usage: snapshot-kill-resume.sh <neofog_cli> [threads] [workers]
set -euo pipefail

cli=$1
threads=${2:-1}
workers=${3:-0}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

scenario=(--trace rain --mode fios --balancer distributed
          --nodes 10 --chains 4 --hours 2 --income-mw 0.9 --seed 13
          --threads "$threads" --format json)

# Poll until a checkpoint matching $1 exists or pid $2 exits.
wait_for_snapshot() {
    local glob=$1 pid=$2
    for _ in $(seq 200); do
        if compgen -G "$glob" > /dev/null; then
            return 0
        fi
        if ! kill -0 "$pid" 2> /dev/null; then
            return 0
        fi
        sleep 0.05
    done
}

if [ "$workers" -gt 0 ]; then
    # Worker-kill mode runs a heavier deployment (more chains, longer
    # horizon) so the run outlives the kill on fast machines.
    scenario=(--trace rain --mode fios --balancer distributed
              --nodes 10 --chains 100 --hours 24 --income-mw 0.9
              --seed 13 --threads "$threads" --format json)
fi

# 1. Uninterrupted reference.
"$cli" "${scenario[@]}" --out "$workdir/reference.json"
ref_md5=$(md5sum "$workdir/reference.json" | cut -d' ' -f1)

require_match() {
    local label=$1 file=$2
    local got_md5
    got_md5=$(md5sum "$file" | cut -d' ' -f1)
    if [ "$ref_md5" != "$got_md5" ]; then
        echo "FAIL: $label report differs from the reference" >&2
        echo "  reference: $ref_md5" >&2
        echo "  $label:   $got_md5" >&2
        diff "$workdir/reference.json" "$file" >&2 || true
        exit 1
    fi
}

if [ "$workers" -gt 0 ]; then
    # ---- 2a. SIGKILL one worker: the coordinator respawns it. ----
    "$cli" "${scenario[@]}" --workers "$workers" --snapshot-every 600 \
           --snapshot-dir "$workdir/snaps" \
           --out "$workdir/survived.json" &
    coord=$!
    wait_for_snapshot "$workdir/snaps/worker0/snap-*.nfsnap" "$coord"
    victim=$(pgrep -P "$coord" | head -n 1 || true)
    if [ -n "$victim" ]; then
        kill -9 "$victim" 2> /dev/null || true
        echo "killed worker process $victim"
    else
        echo "note: run finished before a worker could be killed"
    fi
    wait "$coord"
    require_match survived "$workdir/survived.json"

    # ---- 2b. SIGKILL the coordinator: resume the directory. ----
    rm -rf "$workdir/snaps"
    "$cli" "${scenario[@]}" --workers "$workers" --snapshot-every 600 \
           --snapshot-dir "$workdir/snaps" \
           --out "$workdir/interrupted.json" &
    coord=$!
    wait_for_snapshot "$workdir/snaps/worker0/snap-*.nfsnap" "$coord"
    kill -9 "$coord" 2> /dev/null || true
    # Reap any orphaned workers (reparented once the coordinator died).
    pkill -9 -P "$coord" 2> /dev/null || true
    wait "$coord" 2> /dev/null || true

    if ! compgen -G "$workdir/snaps/worker0/snap-*.nfsnap" > /dev/null
    then
        echo "FAIL: no worker snapshot was written before the kill" >&2
        exit 1
    fi

    "$cli" --resume "$workdir/snaps" --workers "$workers" \
           --threads "$threads" --format json \
           --out "$workdir/resumed.json"
    require_match resumed "$workdir/resumed.json"

    echo "OK: worker-kill and coordinator-kill runs identical to" \
         "reference ($ref_md5)"
    exit 0
fi

# 2. Snapshotting run; kill it once the first checkpoint is on disk.
"$cli" "${scenario[@]}" --snapshot-every 40 \
       --snapshot-dir "$workdir/snaps" \
       --out "$workdir/interrupted.json" &
victim=$!
wait_for_snapshot "$workdir/snaps/snap-*.nfsnap" "$victim"

kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true

if ! compgen -G "$workdir/snaps/snap-*.nfsnap" > /dev/null; then
    echo "FAIL: no snapshot was written before the kill" >&2
    exit 1
fi

# 3. Resume from the newest valid snapshot in the directory.
"$cli" --resume "$workdir/snaps" --threads "$threads" --format json \
       --out "$workdir/resumed.json"
require_match resumed "$workdir/resumed.json"

echo "OK: resumed report identical to reference ($ref_md5)"
