#!/usr/bin/env bash
# Crash-resume contract check for the snapshot subsystem.
#
# Runs a fig-13-style scenario three ways:
#   1. uninterrupted reference run               -> reference.json
#   2. snapshotting run, SIGKILLed mid-flight
#   3. resume from the newest valid snapshot     -> resumed.json
# and requires reference.json and resumed.json to be byte-identical
# (md5).  If the snapshotting run finishes before the kill lands (fast
# machine), the test still validates resume-from-latest against the
# reference, which is the actual contract.
#
# usage: snapshot-kill-resume.sh <neofog_cli> [threads]
set -euo pipefail

cli=$1
threads=${2:-1}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

scenario=(--trace rain --mode fios --balancer distributed
          --nodes 10 --chains 4 --hours 2 --income-mw 0.9 --seed 13
          --threads "$threads" --format json)

# 1. Uninterrupted reference.
"$cli" "${scenario[@]}" --out "$workdir/reference.json"

# 2. Snapshotting run; kill it once the first checkpoint is on disk.
"$cli" "${scenario[@]}" --snapshot-every 40 \
       --snapshot-dir "$workdir/snaps" \
       --out "$workdir/interrupted.json" &
victim=$!

for _ in $(seq 200); do
    if compgen -G "$workdir/snaps/snap-*.nfsnap" > /dev/null; then
        break
    fi
    if ! kill -0 "$victim" 2> /dev/null; then
        break
    fi
    sleep 0.05
done

kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true

if ! compgen -G "$workdir/snaps/snap-*.nfsnap" > /dev/null; then
    echo "FAIL: no snapshot was written before the kill" >&2
    exit 1
fi

# 3. Resume from the newest valid snapshot in the directory.
"$cli" --resume "$workdir/snaps" --threads "$threads" --format json \
       --out "$workdir/resumed.json"

ref_md5=$(md5sum "$workdir/reference.json" | cut -d' ' -f1)
res_md5=$(md5sum "$workdir/resumed.json" | cut -d' ' -f1)

if [ "$ref_md5" != "$res_md5" ]; then
    echo "FAIL: resumed report differs from the reference" >&2
    echo "  reference: $ref_md5" >&2
    echo "  resumed:   $res_md5" >&2
    diff "$workdir/reference.json" "$workdir/resumed.json" >&2 || true
    exit 1
fi

echo "OK: resumed report identical to reference ($ref_md5)"
