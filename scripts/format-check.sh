#!/bin/sh
# Check-only formatting gate: report every tracked C++ file that
# drifts from .clang-format, without rewriting anything.  Not enforced
# in CI yet — run it locally before sending a PR:
#
#   scripts/format-check.sh            # whole tree
#   scripts/format-check.sh src/fog    # one subtree
#
# Exit codes: 0 clean, 1 drift found, 127 clang-format missing.
set -u

root=$(git -C "$(dirname "$0")/.." rev-parse --show-toplevel) || exit 1
cd "$root" || exit 1

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format-check: clang-format not found on PATH" >&2
    exit 127
fi

scope="${*:-src bench examples tools tests}"
# shellcheck disable=SC2086
files=$(git ls-files $scope | grep -E '\.(cc|cpp|hh|hpp|h)$')
if [ -z "$files" ]; then
    echo "format-check: no C++ files under: $scope" >&2
    exit 0
fi

status=0
for f in $files; do
    if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
        echo "needs formatting: $f"
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "format-check: all files match .clang-format"
fi
exit "$status"
