/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

namespace neofog {
namespace {

TEST(Counter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.increment(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(ScalarStat, BasicMoments)
{
    ScalarStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Sample variance of this classic data set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(ScalarStat, SingleSample)
{
    ScalarStat s;
    s.sample(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(ScalarStat, WelfordMatchesNaiveOnLargeValues)
{
    // Welford stays accurate with a large offset.
    ScalarStat s;
    const double offset = 1e9;
    for (double v : {1.0, 2.0, 3.0})
        s.sample(offset + v);
    EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
    EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Histogram, BucketsAndBounds)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(5.5);
    h.sample(9.999);
    h.sample(10.0);
    h.sample(42.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, PercentileMidpoint)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.percentile(0.0), 0.5, 1.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(TimeSeries, RecordsPoints)
{
    TimeSeries t;
    EXPECT_TRUE(t.empty());
    t.record(10, 1.0);
    t.record(20, 2.0);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t.lastValue(), 2.0);
    EXPECT_EQ(t.points()[0].when, 10);
}

TEST(TimeSeries, LastValueFallback)
{
    TimeSeries t;
    EXPECT_DOUBLE_EQ(t.lastValue(-7.0), -7.0);
}

TEST(TimeSeries, DownsampleKeepsEnds)
{
    TimeSeries t;
    for (Tick i = 0; i < 1000; ++i)
        t.record(i, static_cast<double>(i));
    const auto down = t.downsampled(10);
    EXPECT_LE(down.size(), 12u);
    EXPECT_EQ(down.front().when, 0);
    EXPECT_EQ(down.back().when, 999);
}

TEST(TimeSeries, DownsampleNoopWhenSmall)
{
    TimeSeries t;
    t.record(1, 1.0);
    t.record(2, 2.0);
    EXPECT_EQ(t.downsampled(10).size(), 2u);
}

TEST(StatRegistry, RegisterAndFind)
{
    StatRegistry reg;
    Counter c;
    ScalarStat s;
    TimeSeries t;
    reg.registerCounter("node0.wakeups", &c);
    reg.registerScalar("node0.income", &s);
    reg.registerSeries("node0.energy", &t);
    EXPECT_EQ(reg.findCounter("node0.wakeups"), &c);
    EXPECT_EQ(reg.findScalar("node0.income"), &s);
    EXPECT_EQ(reg.findSeries("node0.energy"), &t);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
}

TEST(StatRegistry, DumpContainsNames)
{
    StatRegistry reg;
    Counter c;
    c.increment(3);
    reg.registerCounter("x.count", &c);
    std::ostringstream oss;
    reg.dump(oss);
    EXPECT_NE(oss.str().find("x.count 3"), std::string::npos);
}

} // namespace
} // namespace neofog
