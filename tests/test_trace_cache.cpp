/**
 * @file
 * Property tests for the prefix-sum energy-trace cache and the
 * intermittent-execution analytic fast-forward (ctest label: perf).
 *
 * The numerical contract under test (see DESIGN.md):
 *  - CumulativeTrace prefix cells are bit-identical to the canonical
 *    stepped integrator run from 0;
 *  - grid-aligned windows are exact prefix differences;
 *  - windows inside a single grid cell are bit-identical to the
 *    stepped integrator (same single trapezoid);
 *  - all other windows agree with the stepped reference to <= 1e-12
 *    relative;
 *  - the intermittent fast-forward reproduces the stepped reference's
 *    step counts exactly and its energy tallies to summation-rounding.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "energy/power_trace.hh"
#include "energy/trace_cache.hh"
#include "hw/processor.hh"
#include "node/intermittent.hh"
#include "sim/rng.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

/** Relative (or tiny-absolute near zero) agreement check. */
void
expectRelNear(double got, double want, double rel, const char *what)
{
    const double tol = std::max(std::abs(want) * rel, 1e-18);
    EXPECT_NEAR(got, want, tol) << what;
}

/**
 * The trace set the cache must serve: flat, stepped, interpolated, and
 * the deployment-wide rain stream (spells x diurnal envelope).
 */
std::vector<std::shared_ptr<const PowerTrace>>
cacheTraceSet(Tick span)
{
    std::vector<std::shared_ptr<const PowerTrace>> set;
    set.push_back(std::make_shared<ConstantTrace>(2.6_mW));
    Rng rng(42);
    std::vector<PiecewiseTrace::Segment> segs;
    Tick at = 0;
    while (at < span + kMin) {
        segs.push_back({at, Power::fromMilliwatts(rng.uniform(0.0, 8.0))});
        at += ticksFromSeconds(rng.uniform(3.0, 90.0));
    }
    set.push_back(std::make_shared<PiecewiseTrace>(segs));
    std::vector<InterpolatedTrace::Knot> knots;
    at = 0;
    while (at < span + kMin) {
        knots.push_back(
            {at, Power::fromMilliwatts(rng.uniform(0.0, 5.0))});
        at += ticksFromSeconds(rng.uniform(20.0, 120.0));
    }
    set.push_back(std::make_shared<InterpolatedTrace>(knots));
    set.push_back(std::shared_ptr<const PowerTrace>(
        traces::makeRainUnitStream(7, span + kMin)));
    return set;
}

/**
 * Prefix table built independently of CumulativeTrace: each cell is
 * one aligned-window stepped integral, accumulated left to right —
 * the definition the cache's table must match bit for bit.
 */
std::vector<double>
referencePrefix(const PowerTrace &trace, Tick span, Tick grid)
{
    const auto cells = static_cast<std::size_t>((span + grid - 1) / grid);
    std::vector<double> prefix(cells + 1, 0.0);
    Energy acc = Energy::zero();
    for (std::size_t k = 1; k <= cells; ++k) {
        acc += trace.integrateStepped(static_cast<Tick>(k - 1) * grid,
                                      static_cast<Tick>(k) * grid, grid);
        prefix[k] = acc.joules();
    }
    return prefix;
}

TEST(CumulativeTrace, TenThousandRandomWindowsPerTraceType)
{
    const Tick span = 30 * kMin;
    Rng rng(99);
    for (const auto &base : cacheTraceSet(span)) {
        const CumulativeTrace cache(base, span);
        ASSERT_EQ(cache.grid(), kSec);
        const std::vector<double> prefix =
            referencePrefix(*base, span, cache.grid());
        ASSERT_EQ(cache.cells() + 1, prefix.size());

        for (int i = 0; i < 10'000; ++i) {
            Tick from;
            Tick to;
            if (i % 4 == 0) {
                // Grid-aligned window: exact prefix difference.
                const auto a = static_cast<Tick>(rng.uniform() *
                                                 (span / kSec));
                const auto b = static_cast<Tick>(rng.uniform() *
                                                 (span / kSec));
                from = std::min(a, b) * kSec;
                to = std::max(a, b) * kSec;
                EXPECT_EQ(cache.integrate(from, to).joules(),
                          prefix[to / kSec] - prefix[from / kSec])
                    << base->describe() << " [" << from << ", " << to
                    << ")";
                continue;
            }
            // Unaligned window (length-capped so 10k windows stay
            // cheap against the stepped reference).
            from = static_cast<Tick>(rng.uniform() * (span - 600 * kSec));
            to = from + static_cast<Tick>(rng.uniform() * (600.0 * kSec));
            const double got = cache.integrate(from, to).joules();
            const double want =
                base->integrateStepped(from, to).joules();
            if (from / kSec == (to - (to > from ? 1 : 0)) / kSec) {
                // Same grid cell: identical single trapezoid.
                EXPECT_EQ(got, want) << base->describe();
            } else {
                expectRelNear(got, want, 1e-12, base->describe().c_str());
            }
        }

        // Full-span and degenerate windows.
        EXPECT_EQ(cache.integrate(0, span).joules(),
                  prefix[span / kSec]);
        EXPECT_EQ(cache.integrate(span / 2, span / 2).joules(), 0.0);
    }
}

TEST(CumulativeTrace, OutOfRangeWindowsFallBackToReference)
{
    const Tick span = 10 * kMin;
    const auto base = std::make_shared<ConstantTrace>(3.0_mW);
    const CumulativeTrace cache(base, span);
    // Tail past the table still integrates correctly.
    expectRelNear(cache.integrate(span - kSec, span + 5 * kSec).joules(),
                  base->integrateStepped(span - kSec, span + 5 * kSec)
                      .joules(),
                  1e-12, "tail window");
    expectRelNear(cache.integrate(0, span + kMin).joules(),
                  base->integrateStepped(0, span + kMin).joules(), 1e-12,
                  "overhang window");
}

TEST(CumulativeTrace, SharedAcrossScaledClones)
{
    // One table, many per-node views — the deployment sharing pattern.
    const Tick span = 20 * kMin;
    const auto stream = std::shared_ptr<const PowerTrace>(
        traces::makeRainUnitStream(11, span));
    const auto cache = std::make_shared<CumulativeTrace>(stream, span);
    Rng rng(5);
    for (int node = 0; node < 16; ++node) {
        const double gain = traces::rainNodeGain(rng);
        const ScaledTrace view(gain, cache);
        const Tick from = 3 * kSec + node * kSec;
        const Tick to = from + 137 * kSec + node;
        EXPECT_EQ(view.integrate(from, to).joules(),
                  cache->integrate(from, to).joules() * gain);
        EXPECT_TRUE(view.hasFastIntegrate());
    }
}

TEST(TraceCursor, StreamingWindowsMatchStepped)
{
    const Tick span = 15 * kMin;
    for (const auto &base : cacheTraceSet(span)) {
        TraceCursor cursor(*base, 0);
        Energy streamed = Energy::zero();
        Tick at = 0;
        Rng rng(3);
        while (at < span) {
            const Tick to = std::min<Tick>(
                at + ticksFromSeconds(rng.uniform(0.5, 40.0)), span);
            const Energy window = cursor.advance(to);
            // Adjacent windows reuse the boundary sample, yet every
            // window equals the from-scratch stepped integral.
            EXPECT_EQ(window.joules(),
                      base->integrateStepped(at, to).joules())
                << base->describe();
            streamed += window;
            at = to;
        }
        EXPECT_EQ(cursor.position(), span);
        // The window totals associate differently than one continuous
        // accumulation, so the grand total is near, not bit-equal:
        // ~n * eps * sum|cell| over ~1e3 cells.
        expectRelNear(streamed.joules(),
                      base->integrateStepped(0, span).joules(), 1e-10,
                      base->describe().c_str());
    }
}

TEST(ConstantLevelUntil, ReportsFlatSpans)
{
    const ConstantTrace flat(1.0_mW);
    EXPECT_EQ(flat.constantLevelUntil(123), kTickNever);

    const PiecewiseTrace steps(
        {{0, 1.0_mW}, {10 * kSec, 1.0_mW}, {20 * kSec, 2.0_mW}});
    EXPECT_EQ(steps.constantLevelUntil(0), 10 * kSec);
    EXPECT_EQ(steps.constantLevelUntil(15 * kSec), 20 * kSec);
    EXPECT_EQ(steps.constantLevelUntil(25 * kSec), kTickNever);

    const PiecewiseTrace late({{5 * kSec, 1.0_mW}});
    // Zero before the first segment is itself a constant span.
    EXPECT_EQ(late.constantLevelUntil(kSec), 5 * kSec);

    const InterpolatedTrace ramp(
        {{0, 1.0_mW}, {10 * kSec, 3.0_mW}, {20 * kSec, 3.0_mW}});
    EXPECT_EQ(ramp.constantLevelUntil(5 * kSec), 5 * kSec); // sloped
    EXPECT_EQ(ramp.constantLevelUntil(12 * kSec), 20 * kSec); // flat
    EXPECT_EQ(ramp.constantLevelUntil(30 * kSec), kTickNever); // hold
}

/**
 * The fast-forward equivalence matrix: every trace type x NVP-FIOS
 * and VP-NOS.  Step-count results must match the stepped reference
 * exactly; energy tallies to summation-rounding (n*x vs x+...+x).
 */
TEST(IntermittentFastForward, MatchesSteppedReference)
{
    const Tick horizon = 10 * kMin;
    std::vector<std::shared_ptr<const PowerTrace>> set =
        cacheTraceSet(horizon);
    Rng rng(21);
    set.push_back(std::shared_ptr<const PowerTrace>(
        traces::makePiezoTrace(rng, horizon, 5.0_mW, 12.0)));
    set.push_back(std::shared_ptr<const PowerTrace>(
        traces::makeRfTrace(rng, horizon, 0.4_mW)));
    // Down-scale the unit-mean rain stream to mote-level income.
    set.push_back(std::make_shared<ScaledTrace>(
        0.0026, std::shared_ptr<const PowerTrace>(
                    traces::makeRainUnitStream(13, horizon))));

    const NvProcessor nvp{NvProcessor::fiosConfig()};
    const VolatileProcessor vp;
    IntermittentExecution::Config nv_cfg;
    nv_cfg.frontend = FrontEnd::makeFios().config();
    IntermittentExecution::Config vp_cfg;
    vp_cfg.frontend = FrontEnd::makeNos().config();

    int total_cycles = 0;
    for (const auto &trace : set) {
        for (const auto *cfg : {&nv_cfg, &vp_cfg}) {
            const Processor &cpu =
                cfg == &nv_cfg ? static_cast<const Processor &>(nvp)
                               : static_cast<const Processor &>(vp);
            IntermittentExecution::Config fast = *cfg;
            fast.fastForward = true;
            IntermittentExecution::Config stepped = *cfg;
            stepped.fastForward = false;
            const auto f =
                IntermittentExecution::run(cpu, *trace, horizon, fast);
            const auto s = IntermittentExecution::run(cpu, *trace,
                                                      horizon, stepped);
            const std::string what = trace->describe();
            EXPECT_EQ(f.powerCycles, s.powerCycles) << what;
            EXPECT_EQ(f.instructionsCompleted, s.instructionsCompleted)
                << what;
            EXPECT_EQ(f.instructionsWasted, s.instructionsWasted)
                << what;
            EXPECT_EQ(f.activeTime, s.activeTime) << what;
            EXPECT_EQ(f.overheadTime, s.overheadTime) << what;
            expectRelNear(f.harvested.joules(), s.harvested.joules(),
                          1e-9, what.c_str());
            expectRelNear(f.spent.joules(), s.spent.joules(), 1e-9,
                          what.c_str());
            total_cycles += s.powerCycles;
        }
    }
    // The matrix must actually exercise power cycling somewhere,
    // or the brown-out/wake boundary handling went untested.
    EXPECT_GT(total_cycles, 0);
}

TEST(IntermittentFastForward, PartialFinalStepMatches)
{
    // A horizon that is not a whole number of steps forces the
    // partial-trapezoid final step through the exact path.
    const ConstantTrace trace(2.0_mW);
    const NvProcessor nvp{NvProcessor::fiosConfig()};
    IntermittentExecution::Config cfg;
    cfg.frontend = FrontEnd::makeFios().config();
    const Tick horizon = 90 * kSec + 257;
    IntermittentExecution::Config stepped = cfg;
    stepped.fastForward = false;
    const auto f = IntermittentExecution::run(nvp, trace, horizon, cfg);
    const auto s =
        IntermittentExecution::run(nvp, trace, horizon, stepped);
    EXPECT_EQ(f.powerCycles, s.powerCycles);
    EXPECT_EQ(f.instructionsCompleted, s.instructionsCompleted);
    EXPECT_EQ(f.activeTime, s.activeTime);
    EXPECT_EQ(f.overheadTime, s.overheadTime);
    expectRelNear(f.harvested.joules(), s.harvested.joules(), 1e-9,
                  "harvested");
}

} // namespace
} // namespace neofog
