/**
 * @file
 * Odds-and-ends coverage: logging levels, trace descriptions, report
 * printing, scenario helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "energy/power_trace.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

TEST(Logging, LevelGateHoldsAndRestores)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    // These must not crash (and are suppressed).
    inform("suppressed ", 42);
    warn("suppressed ", 3.14);
    debugLog("suppressed");
    setLogLevel(before);
}

TEST(Logging, FatalCarriesMessage)
{
    try {
        fatal("bad thing: ", 7, " units");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "bad thing: 7 units");
    }
}

TEST(Traces, DescribeStringsInformative)
{
    ConstantTrace c(2.0_mW);
    EXPECT_NE(c.describe().find("constant"), std::string::npos);

    PiecewiseTrace p({{0, 1.0_mW}});
    EXPECT_NE(p.describe().find("piecewise"), std::string::npos);

    DiurnalSolarTrace d(DiurnalSolarTrace::Config{});
    EXPECT_NE(d.describe().find("diurnal"), std::string::npos);

    Rng rng(1);
    EXPECT_NE(traces::makeForestTrace(rng, kHour, 1.0_mW)
                  ->describe()
                  .find("forest"),
              std::string::npos);
    EXPECT_NE(traces::makeBridgeTrace(2, rng, kHour, 1.0_mW)
                  ->describe()
                  .find("profile 2"),
              std::string::npos);
    EXPECT_NE(traces::makeRainTrace(7, rng, kHour, 1.0_mW)
                  ->describe()
                  .find("dependent"),
              std::string::npos);
}

TEST(Report, PrintMentionsEveryHeadlineField)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.horizon = 20 * kMin;
    FogSystem sys(cfg);
    const SystemReport r = sys.run();
    std::ostringstream oss;
    r.print(oss, "check");
    const std::string out = oss.str();
    for (const char *field :
         {"wakeups", "fog processed", "incidental", "balanced tasks",
          "orphan scans", "rt requests", "relay", "cap overflow",
          "energy: compute"})
        EXPECT_NE(out.find(field), std::string::npos) << field;
}

TEST(Presets, SystemsUnderTestDistinct)
{
    EXPECT_NE(presets::nosVp().label, presets::nosNvpBaseline().label);
    EXPECT_EQ(presets::fiosNeofog().mode, OperatingMode::FiosNvMote);
    EXPECT_EQ(presets::fiosNeofog().balancerPolicy, "distributed");
}

TEST(Presets, FigureScenariosDiffer)
{
    const auto sut = presets::fiosNeofog();
    EXPECT_EQ(presets::fig10(sut, 0).traceKind,
              TraceKind::ForestIndependent);
    EXPECT_EQ(presets::fig11(sut, 0).traceKind,
              TraceKind::BridgeDependent);
    EXPECT_EQ(presets::fig12(sut, 2).multiplexing, 2);
    EXPECT_LT(presets::fig13(sut, 1).meanIncome.watts(),
              presets::fig12(sut, 1).meanIncome.watts());
    EXPECT_EQ(presets::fig9(sut).horizon, 300 * kMin);
}

TEST(Presets, ProfilesChangeSeeds)
{
    const auto sut = presets::fiosNeofog();
    EXPECT_NE(presets::fig10(sut, 0).seed, presets::fig10(sut, 1).seed);
    EXPECT_NE(presets::fig11(sut, 3).seed, presets::fig11(sut, 4).seed);
}

} // namespace
} // namespace neofog
