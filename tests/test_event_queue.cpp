/**
 * @file
 * Tests for the discrete-event queue and simulator context.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulator.hh"

namespace neofog {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventTick(), kTickNever);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTickUsesPriority)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, 1);
    q.schedule(5, [&] { order.push_back(1); }, 0);
    q.schedule(5, [&] { order.push_back(3); }, 2);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickSamePriorityIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = -1;
    q.schedule(100, [&] {});
    q.runAll();
    q.scheduleIn(50, [&] { seen = q.now(); });
    q.runAll();
    EXPECT_EQ(seen, 150);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(10, [&] { ran = true; });
    q.cancel(id);
    q.runAll();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.liveCount(), 0u);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire)
{
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    q.runAll();
    q.cancel(id);      // already fired
    q.cancel(kNoEvent); // no-op
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<Tick> fired;
    for (Tick t = 10; t <= 100; t += 10)
        q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
    const auto ran = q.runUntil(50);
    EXPECT_EQ(ran, 5u);
    EXPECT_EQ(q.now(), 50);
    EXPECT_EQ(q.liveCount(), 5u);
    q.runAll();
    EXPECT_EQ(fired.size(), 10u);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue q;
    q.runUntil(1234);
    EXPECT_EQ(q.now(), 1234);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            q.scheduleIn(10, chain);
    };
    q.schedule(0, chain);
    q.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 40);
}

TEST(EventQueue, ExecutedCountAccumulates)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(i, [] {});
    q.runAll();
    EXPECT_EQ(q.executedCount(), 7u);
}

TEST(EventQueue, NextEventTickSkipsCancelled)
{
    EventQueue q;
    const EventId a = q.schedule(5, [] {});
    q.schedule(9, [] {});
    q.cancel(a);
    EXPECT_EQ(q.nextEventTick(), 9);
}

TEST(Simulator, ForkedRngsDeterministic)
{
    Simulator s1(77), s2(77);
    Rng a = s1.forkRng();
    Rng b = s2.forkRng();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Simulator, ScheduleAndRun)
{
    Simulator sim(1);
    int count = 0;
    sim.schedule(10, [&] { ++count; });
    sim.scheduleIn(20, [&] { ++count; });
    sim.runUntil(15);
    EXPECT_EQ(count, 1);
    sim.runAll();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.now(), 20);
}

TEST(Simulator, CancelThroughContext)
{
    Simulator sim(1);
    bool ran = false;
    const EventId id = sim.schedule(5, [&] { ran = true; });
    sim.cancel(id);
    sim.runAll();
    EXPECT_FALSE(ran);
}

} // namespace
} // namespace neofog
