/**
 * @file
 * neofog_lint engine tests: every fixture under tests/lint_fixtures/
 * must be classified with the right rule ids and exit code, the
 * suppression-trailer grammar must be enforced (justification
 * required, unused trailers flagged), and the token passes must
 * ignore comments and string literals.
 *
 * Fixtures are linted under their path *relative to the fixture
 * root*, so a file stored at lint_fixtures/src/sim/foo.cc is judged
 * exactly as src/sim/foo.cc would be; the fixtures are never
 * compiled.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint.hh"

using neofog::lint::Finding;
using neofog::lint::Result;
using neofog::lint::Rule;

namespace {

/** Lint one fixture file under its logical repo-relative path. */
Result
lintFixture(const std::string &rel_path)
{
    const std::string full =
        std::string(NEOFOG_LINT_FIXTURE_DIR) + "/" + rel_path;
    std::ifstream is(full);
    EXPECT_TRUE(is.good()) << "missing fixture " << full;
    std::ostringstream ss;
    ss << is.rdbuf();
    Result result;
    neofog::lint::lintFile(rel_path, ss.str(), result);
    return result;
}

int
countRule(const Result &r, Rule rule)
{
    return static_cast<int>(std::count_if(
        r.findings.begin(), r.findings.end(),
        [rule](const Finding &f) { return f.rule == rule; }));
}

bool
hasFindingAtLine(const Result &r, Rule rule, int line)
{
    return std::any_of(r.findings.begin(), r.findings.end(),
                       [rule, line](const Finding &f) {
                           return f.rule == rule && f.line == line;
                       });
}

} // namespace

TEST(LintRules, IdsAndNamesRoundTrip)
{
    EXPECT_STREQ(ruleId(Rule::Determinism), "R1.determinism");
    EXPECT_STREQ(ruleId(Rule::Layering), "R2.layering");
    EXPECT_STREQ(ruleId(Rule::Observability), "R3.observability");
    EXPECT_STREQ(ruleId(Rule::Hygiene), "R4.hygiene");
    for (Rule rule : {Rule::Determinism, Rule::Layering,
                      Rule::Observability, Rule::Hygiene}) {
        Rule parsed = Rule::Hygiene;
        EXPECT_TRUE(
            neofog::lint::ruleFromName(ruleName(rule), parsed));
        EXPECT_EQ(parsed, rule);
    }
    Rule dummy;
    EXPECT_FALSE(neofog::lint::ruleFromName("notarule", dummy));
}

TEST(LintRules, LintableFileExtensions)
{
    EXPECT_TRUE(neofog::lint::lintableFile("src/sim/rng.cc"));
    EXPECT_TRUE(neofog::lint::lintableFile("bench/scale_test.cpp"));
    EXPECT_TRUE(neofog::lint::lintableFile("src/sim/rng.hh"));
    EXPECT_FALSE(neofog::lint::lintableFile("README.md"));
    EXPECT_FALSE(neofog::lint::lintableFile("src/CMakeLists.txt"));
}

TEST(LintFixtures, R1DeterminismFlagsEveryAmbientSource)
{
    const Result r = lintFixture("src/sim/r1_determinism.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    // random_device, time(), system_clock, rand(), stray Rng seeding.
    EXPECT_GE(countRule(r, Rule::Determinism), 5);
    EXPECT_EQ(countRule(r, Rule::Layering), 0);
    EXPECT_EQ(countRule(r, Rule::Observability), 0);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 15));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 16));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 18));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 19));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 20));
}

TEST(LintFixtures, R2LayeringFlagsUpwardIncludesOnly)
{
    const Result r = lintFixture("src/energy/r2_layering.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Layering), 2);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Layering, 4)); // fog/
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Layering, 5)); // node/
    // Own-layer and sim/ includes stay clean.
    EXPECT_FALSE(hasFindingAtLine(r, Rule::Layering, 3));
    EXPECT_FALSE(hasFindingAtLine(r, Rule::Layering, 6));
}

TEST(LintFixtures, R3ObservabilityFlagsDirectStreams)
{
    const Result r = lintFixture("src/node/r3_observability.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Observability), 3);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Observability, 11));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Observability, 12));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Observability, 13));
}

TEST(LintFixtures, R4HygieneFlagsGuardAndNamespaceLeak)
{
    const Result r = lintFixture("src/net/r4_hygiene.hh");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Hygiene), 2);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Hygiene, 1)); // no guard
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Hygiene, 6)); // using ns
}

TEST(LintFixtures, ValidSuppressionIsHonoredAndCounted)
{
    const Result r = lintFixture("src/virt/r5_suppressed.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 0);
    EXPECT_TRUE(r.findings.empty());
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, Rule::Determinism);
    EXPECT_EQ(r.suppressions[0].line, 12);
    EXPECT_FALSE(r.suppressions[0].justification.empty());
}

TEST(LintFixtures, MalformedAndUnusedTrailersAreViolations)
{
    const Result r = lintFixture("src/virt/r6_bad_suppression.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    // Justification-less trailer: the R1 hit survives AND the trailer
    // itself is a hygiene violation.
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 12));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Hygiene, 12));
    // Well-formed trailer with nothing to suppress: flagged unused.
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Hygiene, 13));
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintFixtures, CleanHeaderPassesAndDecoysAreIgnored)
{
    const Result r = lintFixture("src/sim/clean.hh");
    EXPECT_EQ(neofog::lint::exitCode(r), 0)
        << (r.findings.empty() ? "" : r.findings[0].message);
    EXPECT_TRUE(r.findings.empty());
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintScopes, ExamplesMayPrintButHeadersStayGuarded)
{
    Result r;
    neofog::lint::lintFile("examples/demo.cpp",
                           "#include <cstdio>\n"
                           "int main() { std::printf(\"hi\\n\"); }\n",
                           r);
    EXPECT_TRUE(r.findings.empty()); // R3 does not apply to examples
    Result h;
    neofog::lint::lintFile("examples/demo_util.hh",
                           "using namespace std;\n", h);
    EXPECT_EQ(countRule(h, Rule::Hygiene), 2); // guard + namespace
}

TEST(LintScopes, BenchIsDeterminismAndObservabilityChecked)
{
    Result r;
    neofog::lint::lintFile(
        "bench/fake_bench.cpp",
        "#include <cstdio>\n"
        "int main() { std::printf(\"%d\\n\", std::rand()); }\n", r);
    EXPECT_EQ(countRule(r, Rule::Determinism), 1);
    EXPECT_EQ(countRule(r, Rule::Observability), 1);
    // steady_clock is the sanctioned way to time a bench.
    Result ok;
    neofog::lint::lintFile(
        "bench/timer.cpp",
        "auto t = std::chrono::steady_clock::now();\n", ok);
    EXPECT_TRUE(ok.findings.empty());
}

TEST(LintScopes, SinkFilesAreExemptFromObservability)
{
    Result r;
    neofog::lint::lintFile("src/sim/logging.cc",
                           "void f() { std::fprintf(stderr, "
                           "\"[warn]\\n\"); }\n",
                           r);
    EXPECT_EQ(countRule(r, Rule::Observability), 0);
    Result b;
    neofog::lint::lintFile("bench/bench_util.hh",
                           "#ifndef NEOFOG_BENCH_BENCH_UTIL_HH\n"
                           "#define NEOFOG_BENCH_BENCH_UTIL_HH\n"
                           "inline void out() { std::vfprintf(stdout,"
                           " 0, 0); }\n"
                           "#endif\n",
                           b);
    EXPECT_TRUE(b.findings.empty());
}

TEST(LintScopes, SanctionedSeedPointsMaySeed)
{
    Result r;
    neofog::lint::lintFile("src/fog/fog_system.cc",
                           "Rng root(cfg.seed ^ 0xF06F06ULL);\n", r);
    EXPECT_EQ(countRule(r, Rule::Determinism), 0);
    Result bad;
    neofog::lint::lintFile("src/fog/chain_engine.cc",
                           "Rng root(cfg.seed ^ 0xF06F06ULL);\n",
                           bad);
    EXPECT_EQ(countRule(bad, Rule::Determinism), 1);
}

TEST(LintRules, GuardMustFollowNeofogConvention)
{
    Result r;
    neofog::lint::lintFile("src/net/odd_guard.hh",
                           "#ifndef SOME_OTHER_GUARD_H\n"
                           "#define SOME_OTHER_GUARD_H\n"
                           "#endif\n",
                           r);
    EXPECT_EQ(countRule(r, Rule::Hygiene), 1);
    Result p;
    neofog::lint::lintFile("src/net/pragma.hh", "#pragma once\n", p);
    EXPECT_TRUE(p.findings.empty());
}

TEST(LintScan, DigitSeparatorsDoNotSwallowCode)
{
    // A single separator must not open a char literal that hides the
    // rest of the line from the token passes.
    Result r;
    neofog::lint::lintFile("src/sim/sep.cc",
                           "void f() { g(1'000, time(nullptr)); }\n",
                           r);
    EXPECT_EQ(countRule(r, Rule::Determinism), 1);
}
