/**
 * @file
 * neofog_lint engine tests: every fixture under tests/lint_fixtures/
 * must be classified with the right rule ids and exit code, the
 * suppression-trailer grammar must be enforced (justification
 * required, unused trailers flagged), and the token passes must
 * ignore comments and string literals.
 *
 * Fixtures are linted under their path *relative to the fixture
 * root*, so a file stored at lint_fixtures/src/sim/foo.cc is judged
 * exactly as src/sim/foo.cc would be; the fixtures are never
 * compiled.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint.hh"
#include "model.hh"

using neofog::lint::Finding;
using neofog::lint::Model;
using neofog::lint::Result;
using neofog::lint::Rule;

namespace {

/** Read a fixture file's text, failing the test if it is missing. */
std::string
fixtureText(const std::string &rel_path)
{
    const std::string full =
        std::string(NEOFOG_LINT_FIXTURE_DIR) + "/" + rel_path;
    std::ifstream is(full);
    EXPECT_TRUE(is.good()) << "missing fixture " << full;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** Lint one fixture file under its logical repo-relative path. */
Result
lintFixture(const std::string &rel_path)
{
    Result result;
    neofog::lint::lintFile(rel_path, fixtureText(rel_path), result);
    return result;
}

/** Run the semantic passes (R5-R8) over one or more fixtures. */
Result
lintSemanticFixtures(std::initializer_list<std::string> rel_paths)
{
    Model model;
    Result result;
    for (const std::string &rel : rel_paths)
        neofog::lint::collectFile(rel, fixtureText(rel), model);
    neofog::lint::lintModel(model, result);
    return result;
}

/** First finding message for a rule, "" when none. */
std::string
messageOf(const Result &r, Rule rule)
{
    for (const Finding &f : r.findings)
        if (f.rule == rule)
            return f.message;
    return {};
}

int
countRule(const Result &r, Rule rule)
{
    return static_cast<int>(std::count_if(
        r.findings.begin(), r.findings.end(),
        [rule](const Finding &f) { return f.rule == rule; }));
}

bool
hasFindingAtLine(const Result &r, Rule rule, int line)
{
    return std::any_of(r.findings.begin(), r.findings.end(),
                       [rule, line](const Finding &f) {
                           return f.rule == rule && f.line == line;
                       });
}

} // namespace

TEST(LintRules, IdsAndNamesRoundTrip)
{
    EXPECT_STREQ(ruleId(Rule::Determinism), "R1.determinism");
    EXPECT_STREQ(ruleId(Rule::Layering), "R2.layering");
    EXPECT_STREQ(ruleId(Rule::Observability), "R3.observability");
    EXPECT_STREQ(ruleId(Rule::Hygiene), "R4.hygiene");
    EXPECT_STREQ(ruleId(Rule::Snapshot), "R5.snapshot");
    EXPECT_STREQ(ruleId(Rule::Metric), "R6.metric");
    EXPECT_STREQ(ruleId(Rule::Registry), "R7.registry");
    EXPECT_STREQ(ruleId(Rule::Global), "R8.global");
    for (Rule rule : {Rule::Determinism, Rule::Layering,
                      Rule::Observability, Rule::Hygiene,
                      Rule::Snapshot, Rule::Metric, Rule::Registry,
                      Rule::Global}) {
        Rule parsed = Rule::Hygiene;
        EXPECT_TRUE(
            neofog::lint::ruleFromName(ruleName(rule), parsed));
        EXPECT_EQ(parsed, rule);
    }
    Rule dummy;
    EXPECT_FALSE(neofog::lint::ruleFromName("notarule", dummy));
}

TEST(LintRules, LintableFileExtensions)
{
    EXPECT_TRUE(neofog::lint::lintableFile("src/sim/rng.cc"));
    EXPECT_TRUE(neofog::lint::lintableFile("bench/scale_test.cpp"));
    EXPECT_TRUE(neofog::lint::lintableFile("src/sim/rng.hh"));
    EXPECT_FALSE(neofog::lint::lintableFile("README.md"));
    EXPECT_FALSE(neofog::lint::lintableFile("src/CMakeLists.txt"));
}

TEST(LintFixtures, R1DeterminismFlagsEveryAmbientSource)
{
    const Result r = lintFixture("src/sim/r1_determinism.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    // random_device, time(), system_clock, rand(), stray Rng seeding.
    EXPECT_GE(countRule(r, Rule::Determinism), 5);
    EXPECT_EQ(countRule(r, Rule::Layering), 0);
    EXPECT_EQ(countRule(r, Rule::Observability), 0);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 15));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 16));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 18));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 19));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 20));
}

TEST(LintFixtures, R2LayeringFlagsUpwardIncludesOnly)
{
    const Result r = lintFixture("src/energy/r2_layering.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Layering), 2);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Layering, 4)); // fog/
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Layering, 5)); // node/
    // Own-layer and sim/ includes stay clean.
    EXPECT_FALSE(hasFindingAtLine(r, Rule::Layering, 3));
    EXPECT_FALSE(hasFindingAtLine(r, Rule::Layering, 6));
}

TEST(LintFixtures, R3ObservabilityFlagsDirectStreams)
{
    const Result r = lintFixture("src/node/r3_observability.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Observability), 3);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Observability, 11));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Observability, 12));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Observability, 13));
}

TEST(LintFixtures, R4HygieneFlagsGuardAndNamespaceLeak)
{
    const Result r = lintFixture("src/net/r4_hygiene.hh");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Hygiene), 2);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Hygiene, 1)); // no guard
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Hygiene, 6)); // using ns
}

TEST(LintFixtures, ValidSuppressionIsHonoredAndCounted)
{
    const Result r = lintFixture("src/virt/suppression_valid.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 0);
    EXPECT_TRUE(r.findings.empty());
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, Rule::Determinism);
    EXPECT_EQ(r.suppressions[0].line, 12);
    EXPECT_FALSE(r.suppressions[0].justification.empty());
}

TEST(LintFixtures, MalformedAndUnusedTrailersAreViolations)
{
    const Result r = lintFixture("src/virt/suppression_bad.cc");
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    // Justification-less trailer: the R1 hit survives AND the trailer
    // itself is a hygiene violation.
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Determinism, 12));
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Hygiene, 12));
    // Well-formed trailer with nothing to suppress: flagged unused.
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Hygiene, 13));
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintFixtures, CleanHeaderPassesAndDecoysAreIgnored)
{
    const Result r = lintFixture("src/sim/clean.hh");
    EXPECT_EQ(neofog::lint::exitCode(r), 0)
        << (r.findings.empty() ? "" : r.findings[0].message);
    EXPECT_TRUE(r.findings.empty());
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintScopes, ExamplesMayPrintButHeadersStayGuarded)
{
    Result r;
    neofog::lint::lintFile("examples/demo.cpp",
                           "#include <cstdio>\n"
                           "int main() { std::printf(\"hi\\n\"); }\n",
                           r);
    EXPECT_TRUE(r.findings.empty()); // R3 does not apply to examples
    Result h;
    neofog::lint::lintFile("examples/demo_util.hh",
                           "using namespace std;\n", h);
    EXPECT_EQ(countRule(h, Rule::Hygiene), 2); // guard + namespace
}

TEST(LintScopes, BenchIsDeterminismAndObservabilityChecked)
{
    Result r;
    neofog::lint::lintFile(
        "bench/fake_bench.cpp",
        "#include <cstdio>\n"
        "int main() { std::printf(\"%d\\n\", std::rand()); }\n", r);
    EXPECT_EQ(countRule(r, Rule::Determinism), 1);
    EXPECT_EQ(countRule(r, Rule::Observability), 1);
    // steady_clock is the sanctioned way to time a bench.
    Result ok;
    neofog::lint::lintFile(
        "bench/timer.cpp",
        "auto t = std::chrono::steady_clock::now();\n", ok);
    EXPECT_TRUE(ok.findings.empty());
}

TEST(LintScopes, SinkFilesAreExemptFromObservability)
{
    Result r;
    neofog::lint::lintFile("src/sim/logging.cc",
                           "void f() { std::fprintf(stderr, "
                           "\"[warn]\\n\"); }\n",
                           r);
    EXPECT_EQ(countRule(r, Rule::Observability), 0);
    Result b;
    neofog::lint::lintFile("bench/bench_util.hh",
                           "#ifndef NEOFOG_BENCH_BENCH_UTIL_HH\n"
                           "#define NEOFOG_BENCH_BENCH_UTIL_HH\n"
                           "inline void out() { std::vfprintf(stdout,"
                           " 0, 0); }\n"
                           "#endif\n",
                           b);
    EXPECT_TRUE(b.findings.empty());
}

TEST(LintScopes, SanctionedSeedPointsMaySeed)
{
    Result r;
    neofog::lint::lintFile("src/fog/fog_system.cc",
                           "Rng root(cfg.seed ^ 0xF06F06ULL);\n", r);
    EXPECT_EQ(countRule(r, Rule::Determinism), 0);
    Result bad;
    neofog::lint::lintFile("src/fog/chain_engine.cc",
                           "Rng root(cfg.seed ^ 0xF06F06ULL);\n",
                           bad);
    EXPECT_EQ(countRule(bad, Rule::Determinism), 1);
}

TEST(LintRules, GuardMustFollowNeofogConvention)
{
    Result r;
    neofog::lint::lintFile("src/net/odd_guard.hh",
                           "#ifndef SOME_OTHER_GUARD_H\n"
                           "#define SOME_OTHER_GUARD_H\n"
                           "#endif\n",
                           r);
    EXPECT_EQ(countRule(r, Rule::Hygiene), 1);
    Result p;
    neofog::lint::lintFile("src/net/pragma.hh", "#pragma once\n", p);
    EXPECT_TRUE(p.findings.empty());
}

TEST(LintScan, DigitSeparatorsDoNotSwallowCode)
{
    // A single separator must not open a char literal that hides the
    // rest of the line from the token passes.
    Result r;
    neofog::lint::lintFile("src/sim/sep.cc",
                           "void f() { g(1'000, time(nullptr)); }\n",
                           r);
    EXPECT_EQ(countRule(r, Rule::Determinism), 1);
}

// ------------------------------------------------- semantic passes

TEST(LintSemantic, R5SnapshotNamesTheUnserializedMember)
{
    const Result r = lintSemanticFixtures({"src/hw/r5_snapshot.hh"});
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Snapshot), 1);
    // The seeded mutation is reported with rule id, member name, and
    // file:line — not a bare sizeof mismatch.
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Snapshot, 24));
    const std::string msg = messageOf(r, Rule::Snapshot);
    EXPECT_NE(msg.find("_driftScratch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("DriftModel"), std::string::npos) << msg;
}

TEST(LintSemantic, R5ExemptsConstSuppressedAndRegistryWalked)
{
    const Result r =
        lintSemanticFixtures({"src/hw/r5_snapshot_ok.hh"});
    EXPECT_EQ(neofog::lint::exitCode(r), 0)
        << (r.findings.empty() ? "" : r.findings[0].message);
    // The allow(snapshot) on _memo is honored and counted.
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, Rule::Snapshot);
    EXPECT_FALSE(r.suppressions[0].justification.empty());
}

TEST(LintSemantic, R6MetricNamesTheUnregisteredReportMember)
{
    const Result r = lintSemanticFixtures({"src/fog/r6_metric.cc"});
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Metric), 1);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Metric, 13));
    const std::string msg = messageOf(r, Rule::Metric);
    EXPECT_NE(msg.find("stranded"), std::string::npos) << msg;
    EXPECT_NE(msg.find("MiniReport"), std::string::npos) << msg;
}

TEST(LintSemantic, R6ResolvesAliasesAcrossFiles)
{
    // The report struct lives in a header, the registry declaration
    // (with a `using R = ...` alias) in a .cc — the model joins them.
    Model m;
    Result r;
    neofog::lint::collectFile(
        "src/fog/rep.hh",
        "#ifndef NEOFOG_FOG_REP_HH\n#define NEOFOG_FOG_REP_HH\n"
        "struct Rep { unsigned a = 0; unsigned b = 0; };\n"
        "#endif\n",
        m);
    neofog::lint::collectFile(
        "src/fog/rep.cc",
        "#include \"fog/rep.hh\"\n"
        "using R = Rep;\n"
        "static const MetricRegistry<Rep> regy{{{\"a\", &R::a}}};\n",
        m);
    neofog::lint::lintModel(m, r);
    EXPECT_EQ(countRule(r, Rule::Metric), 1);
    const std::string msg = messageOf(r, Rule::Metric);
    EXPECT_NE(msg.find("'b'"), std::string::npos) << msg;
    EXPECT_EQ(r.findings[0].file, "src/fog/rep.hh");
}

TEST(LintSemantic, R6IgnoresTemplateParameterRegistries)
{
    // MetricRegistry<Report> where Report is a template parameter
    // (the registry's own header) must not create a report struct.
    Model m;
    Result r;
    neofog::lint::collectFile(
        "src/sim/metrics_like.hh",
        "#ifndef NEOFOG_SIM_METRICS_LIKE_HH\n"
        "#define NEOFOG_SIM_METRICS_LIKE_HH\n"
        "template <class Report> class MetricRegistry {};\n"
        "template <class Report>\n"
        "const MetricRegistry<Report> &get();\n"
        "struct Report { int x = 0; };\n"
        "#endif\n",
        m);
    neofog::lint::lintModel(m, r);
    EXPECT_EQ(countRule(r, Rule::Metric), 0)
        << messageOf(r, Rule::Metric);
}

TEST(LintSemantic, R7FlagsUnreadAndUndocumentedParams)
{
    const Result r =
        lintSemanticFixtures({"src/balance/r7_registry.cc"});
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Registry), 2);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Registry, 16)); // unread
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Registry, 18)); // no docs
    const std::string msg = messageOf(r, Rule::Registry);
    EXPECT_NE(msg.find("ghost_knob"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'fixture'"), std::string::npos) << msg;
}

TEST(LintSemantic, R8FlagsEveryMutableGlobalKind)
{
    const Result r = lintSemanticFixtures({"src/sim/r8_global.cc"});
    EXPECT_EQ(neofog::lint::exitCode(r), 1);
    EXPECT_EQ(countRule(r, Rule::Global), 4);
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Global, 8));  // ns-scope
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Global, 9));  // static ns
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Global, 15)); // class-static
    EXPECT_TRUE(hasFindingAtLine(r, Rule::Global, 22)); // static local
    // const/constexpr declarations stay clean; the justified
    // allow(global) is honored and counted.
    EXPECT_FALSE(hasFindingAtLine(r, Rule::Global, 10));
    EXPECT_FALSE(hasFindingAtLine(r, Rule::Global, 11));
    EXPECT_FALSE(hasFindingAtLine(r, Rule::Global, 23));
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, Rule::Global);
    EXPECT_EQ(r.suppressions[0].line, 29);
}

TEST(LintSemantic, UnusedProjectRuleTrailerIsFlaggedByModelOnly)
{
    // A stray allow(snapshot) with nothing to suppress: lintFile must
    // leave it alone (the model owns R5-R8 accounting) and lintModel
    // must flag it unused.
    const std::string text =
        "void f();"
        " // neofog-lint: allow(snapshot): nothing here needs it\n";
    Result file;
    neofog::lint::lintFile("src/sim/stray.cc", text, file);
    EXPECT_EQ(countRule(file, Rule::Hygiene), 0);
    Model m;
    Result sem;
    neofog::lint::collectFile("src/sim/stray.cc", text, m);
    neofog::lint::lintModel(m, sem);
    EXPECT_EQ(countRule(sem, Rule::Hygiene), 1);
    EXPECT_TRUE(hasFindingAtLine(sem, Rule::Hygiene, 1));
}

TEST(LintSemantic, DeclarationsOutsideSrcAreNotModeled)
{
    // bench/ and examples/ declarations never enter the model (the
    // semantic rules are src/-only), but their trailers still settle.
    Model m;
    Result r;
    neofog::lint::collectFile(
        "bench/scratch.cc", "int mutable_bench_counter = 0;\n", m);
    neofog::lint::lintModel(m, r);
    EXPECT_EQ(countRule(r, Rule::Global), 0);
}

// ----------------------------------------------------- output formats

TEST(LintOutput, JsonFormatCarriesSchemaFindingsAndSuppressions)
{
    Result r;
    r.filesScanned = 3;
    r.findings.push_back({"src/hw/rtc.hh", 12, Rule::Snapshot,
                          "unserialized member '_x' of \"Y\""});
    r.suppressions.push_back(
        {"src/sim/logging.cc", 10, Rule::Global, "latch"});
    std::ostringstream os;
    neofog::lint::printJson(r, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"schema\": \"neofog-lint-v1\""),
              std::string::npos);
    EXPECT_NE(out.find("\"files_scanned\": 3"), std::string::npos);
    EXPECT_NE(out.find("\"rule\": \"R5.snapshot\""),
              std::string::npos);
    EXPECT_NE(out.find("\"line\": 12"), std::string::npos);
    // The embedded quotes are escaped, keeping the document valid.
    EXPECT_NE(out.find("\\\"Y\\\""), std::string::npos);
    EXPECT_NE(out.find("\"rule\": \"R8.global\""), std::string::npos);
}

TEST(LintOutput, JsonFormatEmitsEmptyArraysWhenClean)
{
    Result r;
    r.filesScanned = 1;
    std::ostringstream os;
    neofog::lint::printJson(r, os);
    EXPECT_NE(os.str().find("\"findings\": []"), std::string::npos);
    EXPECT_NE(os.str().find("\"suppressions\": []"),
              std::string::npos);
}

TEST(LintOutput, GithubFormatEmitsEscapedErrorAnnotations)
{
    Result r;
    r.filesScanned = 1;
    r.findings.push_back({"src/net/loss.hh", 7, Rule::Metric,
                          "50% drop\nsecond line"});
    std::ostringstream os;
    neofog::lint::printGithub(r, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("::error file=src/net/loss.hh,line=7,"
                       "title=R6.metric::"),
              std::string::npos)
        << out;
    // % and newlines use the workflow-command escapes.
    EXPECT_NE(out.find("50%25 drop%0Asecond line"),
              std::string::npos)
        << out;
}
