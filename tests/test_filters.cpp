/**
 * @file
 * Tests for the noise-removal and preprocessing filters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/filters.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace neofog::kernels {
namespace {

TEST(MovingAverage, ConstantIsFixedPoint)
{
    const std::vector<double> x(50, 3.0);
    const auto y = movingAverage(x, 4);
    for (double v : y)
        EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(MovingAverage, ZeroWindowIsIdentity)
{
    const std::vector<double> x{1.0, 5.0, -2.0};
    EXPECT_EQ(movingAverage(x, 0), x);
}

TEST(MovingAverage, ReducesNoiseVariance)
{
    Rng rng(1);
    std::vector<double> x(2000);
    for (auto &v : x)
        v = rng.normal();
    const auto y = movingAverage(x, 4);
    EXPECT_LT(rms(y), rms(x) * 0.5);
}

TEST(MovingAverage, InteriorMatchesNaive)
{
    const std::vector<double> x{1, 2, 3, 4, 5, 6, 7};
    const auto y = movingAverage(x, 1);
    EXPECT_NEAR(y[3], (3.0 + 4.0 + 5.0) / 3.0, 1e-12);
    // Edges use available samples.
    EXPECT_NEAR(y[0], (1.0 + 2.0) / 2.0, 1e-12);
}

TEST(MedianFilter, RemovesImpulse)
{
    std::vector<double> x(21, 1.0);
    x[10] = 100.0; // glitch
    const auto y = medianFilter(x, 2);
    EXPECT_NEAR(y[10], 1.0, 1e-12);
}

TEST(MedianFilter, PreservesStep)
{
    std::vector<double> x(20, 0.0);
    for (std::size_t i = 10; i < 20; ++i)
        x[i] = 1.0;
    const auto y = medianFilter(x, 2);
    EXPECT_NEAR(y[5], 0.0, 1e-12);
    EXPECT_NEAR(y[15], 1.0, 1e-12);
}

TEST(RemoveMean, ZeroMeanResult)
{
    const std::vector<double> x{1.0, 2.0, 3.0, 10.0};
    const auto y = removeMean(x);
    double sum = 0.0;
    for (double v : y)
        sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(Detrend, RemovesLine)
{
    std::vector<double> x(100);
    for (std::size_t i = 0; i < 100; ++i)
        x[i] = 5.0 + 0.25 * static_cast<double>(i);
    const auto y = detrend(x);
    EXPECT_LT(rms(y), 1e-9);
}

TEST(Detrend, PreservesSinusoidShape)
{
    std::vector<double> x(256);
    for (std::size_t i = 0; i < 256; ++i)
        x[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 32.0) +
               0.1 * static_cast<double>(i);
    const auto y = detrend(x);
    // Trend is gone but the oscillation's RMS (~0.707) remains.
    EXPECT_NEAR(rms(y), std::sqrt(0.5), 0.05);
}

TEST(LowPassIir, AlphaOneIsIdentity)
{
    const std::vector<double> x{3.0, -1.0, 2.0};
    EXPECT_EQ(lowPassIir(x, 1.0), x);
}

TEST(LowPassIir, SmoothsTowardMean)
{
    Rng rng(2);
    std::vector<double> x(1000);
    for (auto &v : x)
        v = rng.normal();
    const auto y = lowPassIir(x, 0.1);
    EXPECT_LT(rms(y), rms(x));
}

TEST(LowPassIir, RejectsBadAlpha)
{
    EXPECT_THROW(lowPassIir({1.0}, 0.0), FatalError);
}

TEST(ProjectAxes, UnitAxisSelectsComponent)
{
    const std::vector<double> ax{1.0, 2.0};
    const std::vector<double> ay{10.0, 20.0};
    const std::vector<double> az{100.0, 200.0};
    const auto y = projectAxes(ax, ay, az, {0.0, 1.0, 0.0});
    EXPECT_NEAR(y[0], 10.0, 1e-12);
    EXPECT_NEAR(y[1], 20.0, 1e-12);
}

TEST(ProjectAxes, NormalizesDirection)
{
    const std::vector<double> ax{3.0};
    const std::vector<double> ay{0.0};
    const std::vector<double> az{4.0};
    // direction (3,0,4)/5: projection = (9 + 16)/5 = 5.
    const auto y = projectAxes(ax, ay, az, {3.0, 0.0, 4.0});
    EXPECT_NEAR(y[0], 5.0, 1e-12);
}

TEST(Compensate, LinearCorrection)
{
    const std::vector<double> x{10.0, 10.0};
    const std::vector<double> ref{25.0, 15.0};
    const auto y = compensate(x, ref, 0.5, 20.0);
    EXPECT_NEAR(y[0], 10.0 - 0.5 * 5.0, 1e-12);
    EXPECT_NEAR(y[1], 10.0 + 0.5 * 5.0, 1e-12);
}

TEST(Rms, KnownValues)
{
    EXPECT_DOUBLE_EQ(rms({}), 0.0);
    EXPECT_DOUBLE_EQ(rms({3.0, 4.0, 0.0, 0.0}), 2.5);
}

TEST(SnrDb, PerfectIsHuge)
{
    const std::vector<double> sig{1.0, 2.0, 3.0};
    EXPECT_GE(snrDb(sig, sig), 200.0);
}

TEST(SnrDb, KnownRatio)
{
    // Signal power 1, noise power 0.01 -> 20 dB.
    std::vector<double> clean(1000), noisy(1000);
    Rng rng(3);
    for (std::size_t i = 0; i < clean.size(); ++i) {
        clean[i] = std::sqrt(2.0) *
                   std::sin(2.0 * M_PI * static_cast<double>(i) / 50.0);
        noisy[i] = clean[i] + 0.1 * rng.normal();
    }
    EXPECT_NEAR(snrDb(clean, noisy), 20.0, 1.0);
}

} // namespace
} // namespace neofog::kernels
