/**
 * @file
 * Tests for the balancer-spec grammar and the PolicyRegistry:
 * parsing (valid/invalid/duplicate-key/type-mismatch), canonical
 * round-trips, did-you-mean diagnostics, and registry-based
 * construction including the deprecated makeBalancer shim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "balance/policies.hh"
#include "balance/policy_registry.hh"
#include "balance/policy_spec.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

/** Run @p fn and return the FatalError message it must throw. */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &err) {
        return err.what();
    }
    ADD_FAILURE() << "expected FatalError";
    return {};
}

TEST(PolicySpecParser, NameOnly)
{
    const PolicySpec spec = parsePolicySpec("distributed");
    EXPECT_EQ(spec.name, "distributed");
    EXPECT_TRUE(spec.params.empty());
}

TEST(PolicySpecParser, NameWithParams)
{
    const PolicySpec spec =
        parsePolicySpec("rf-aware:alpha=1.5,window=3");
    EXPECT_EQ(spec.name, "rf-aware");
    ASSERT_EQ(spec.params.size(), 2u);
    EXPECT_EQ(spec.params[0].first, "alpha");
    EXPECT_EQ(spec.params[0].second, "1.5");
    EXPECT_EQ(spec.params[1].first, "window");
    EXPECT_EQ(spec.params[1].second, "3");
}

TEST(PolicySpecParser, RejectsEmptyName)
{
    EXPECT_THROW(parsePolicySpec(""), FatalError);
    EXPECT_THROW(parsePolicySpec(":a=1"), FatalError);
}

TEST(PolicySpecParser, RejectsEmptyParamSection)
{
    EXPECT_THROW(parsePolicySpec("tree:"), FatalError);
}

TEST(PolicySpecParser, RejectsPairWithoutEquals)
{
    EXPECT_THROW(parsePolicySpec("tree:min_region"), FatalError);
    EXPECT_THROW(parsePolicySpec("tree:a=1,b"), FatalError);
}

TEST(PolicySpecParser, RejectsEmptyKey)
{
    EXPECT_THROW(parsePolicySpec("tree:=1"), FatalError);
}

TEST(PolicySpecParser, RejectsDuplicateKey)
{
    const std::string msg = fatalMessage(
        [] { parsePolicySpec("tree:min_region=2,min_region=3"); });
    EXPECT_NE(msg.find("duplicate key 'min_region'"),
              std::string::npos);
}

TEST(PolicyValues, IntParsingIsStrict)
{
    EXPECT_EQ(parseValue(ParamType::Int, "42", "k").i, 42);
    EXPECT_EQ(parseValue(ParamType::Int, "-7", "k").i, -7);
    EXPECT_THROW(parseValue(ParamType::Int, "4.5", "k"), FatalError);
    EXPECT_THROW(parseValue(ParamType::Int, "4x", "k"), FatalError);
    EXPECT_THROW(parseValue(ParamType::Int, "", "k"), FatalError);
}

TEST(PolicyValues, DoubleParsingIsStrictAndFinite)
{
    EXPECT_DOUBLE_EQ(parseValue(ParamType::Double, "0.25", "k").d,
                     0.25);
    EXPECT_THROW(parseValue(ParamType::Double, "1.0.2", "k"),
                 FatalError);
    EXPECT_THROW(parseValue(ParamType::Double, "inf", "k"),
                 FatalError);
    EXPECT_THROW(parseValue(ParamType::Double, "nan", "k"),
                 FatalError);
}

TEST(PolicyValues, BoolSpellings)
{
    EXPECT_TRUE(parseValue(ParamType::Bool, "true", "k").b);
    EXPECT_TRUE(parseValue(ParamType::Bool, "1", "k").b);
    EXPECT_FALSE(parseValue(ParamType::Bool, "false", "k").b);
    EXPECT_FALSE(parseValue(ParamType::Bool, "0", "k").b);
    EXPECT_THROW(parseValue(ParamType::Bool, "yes", "k"), FatalError);
}

TEST(PolicyValues, FormatRoundTrips)
{
    for (const double v : {0.02, 1.0, 8.0, 1.0 / 3.0, -2.5e-7}) {
        const ParamValue p = ParamValue::ofDouble(v);
        EXPECT_EQ(parseValue(ParamType::Double, formatValue(p), "k"),
                  p);
    }
    EXPECT_EQ(formatValue(ParamValue::ofInt(64)), "64");
    EXPECT_EQ(formatValue(ParamValue::ofBool(true)), "true");
}

TEST(PolicyRegistry, RegistersAtLeastSevenPolicies)
{
    const auto names = PolicyRegistry::instance().names();
    EXPECT_GE(names.size(), 7u);
    for (const char *expected :
         {"none", "tree", "cluster", "distributed", "greedy",
          "delay-energy", "rf-aware"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
}

TEST(PolicyRegistry, MakeAppliesParams)
{
    const auto bal = PolicyRegistry::instance().make(
        "distributed:interrupt_chance=0.5,neighbor_window=3");
    const auto *dist =
        dynamic_cast<const DistributedBalancer *>(bal.get());
    ASSERT_NE(dist, nullptr);
    EXPECT_DOUBLE_EQ(dist->config().interruptChance, 0.5);
    EXPECT_EQ(dist->config().neighborWindow, 3);
    // Untouched params keep their defaults.
    EXPECT_DOUBLE_EQ(dist->config().quantaPerUnit, 8.0);
}

TEST(PolicyRegistry, MakeConstructsNewPolicies)
{
    auto &reg = PolicyRegistry::instance();
    EXPECT_EQ(reg.make("greedy")->name(), "greedy-nearest-rich");
    EXPECT_EQ(reg.make("delay-energy:v=0")->name(), "delay-energy");
    EXPECT_EQ(reg.make("rf-aware:alpha=1")->name(), "rf-cost-aware");
}

TEST(PolicyRegistry, UnknownPolicySuggests)
{
    const std::string msg = fatalMessage([] {
        PolicyRegistry::instance().make("distrbuted");
    });
    EXPECT_NE(msg.find("did you mean 'distributed'"),
              std::string::npos);
    // The alternatives are listed for names too far for a guess.
    EXPECT_NE(msg.find("registered:"), std::string::npos);
    EXPECT_NE(msg.find("rf-aware"), std::string::npos);
}

TEST(PolicyRegistry, UnknownParamSuggests)
{
    const std::string msg = fatalMessage([] {
        PolicyRegistry::instance().make("greedy:max_hop=2");
    });
    EXPECT_NE(msg.find("did you mean 'max_hops'"),
              std::string::npos);
    EXPECT_NE(msg.find("min_spare"), std::string::npos);
}

TEST(PolicyRegistry, TypeMismatchDiagnosis)
{
    const std::string msg = fatalMessage([] {
        PolicyRegistry::instance().make("greedy:max_hops=2.5");
    });
    EXPECT_NE(msg.find("expects an int"), std::string::npos);
}

TEST(PolicyRegistry, CanonicalDropsDefaults)
{
    auto &reg = PolicyRegistry::instance();
    EXPECT_EQ(reg.canonicalSpec("distributed"), "distributed");
    EXPECT_EQ(reg.canonicalSpec("distributed:quanta_per_unit=8.0"),
              "distributed");
    EXPECT_EQ(reg.canonicalSpec(
                  "distributed:max_rounds=2,interrupt_chance=0.5"),
              "distributed:interrupt_chance=0.5");
}

TEST(PolicyRegistry, CanonicalOrdersByDeclaration)
{
    // Spec order is user-chosen; canonical order is ParamSpec order.
    EXPECT_EQ(PolicyRegistry::instance().canonicalSpec(
                  "rf-aware:window=3,alpha=1.5"),
              "rf-aware:alpha=1.5,window=3");
}

TEST(PolicyRegistry, CanonicalIsAFixedPoint)
{
    auto &reg = PolicyRegistry::instance();
    for (const std::string spec :
         {"none", "tree:coordinator_min_capacity=0.3",
          "cluster:cluster_size=5,head_min_capacity=0.25",
          "distributed:interrupt_chance=0.125",
          "greedy:max_hops=3,min_spare=1.5",
          "delay-energy:v=0.75,window=2,hop_cost=0.2",
          "rf-aware:alpha=1.5,hop_cost=0.1,budget=3,window=2"}) {
        const std::string canonical = reg.canonicalSpec(spec);
        EXPECT_EQ(reg.canonicalSpec(canonical), canonical) << spec;
    }
}

TEST(PolicyRegistry, RejectsDuplicateRegistration)
{
    PolicyInfo dup;
    dup.name = "distributed";
    dup.build = [](const ResolvedParams &) {
        return std::make_unique<NoBalancer>();
    };
    EXPECT_THROW(PolicyRegistry::instance().add(std::move(dup)),
                 FatalError);
}

TEST(PolicyRegistry, DescribeCoversEveryPolicyAndParam)
{
    std::ostringstream os;
    auto &reg = PolicyRegistry::instance();
    reg.describe(os);
    const std::string doc = os.str();
    for (const std::string &name : reg.names()) {
        EXPECT_NE(doc.find(name), std::string::npos) << name;
        for (const ParamSpec &p : reg.info(name).params) {
            EXPECT_NE(doc.find(p.name), std::string::npos) << p.name;
            EXPECT_NE(doc.find("default " +
                               formatValue(p.defaultValue)),
                      std::string::npos)
                << name << ":" << p.name;
        }
    }
}

TEST(MakeBalancerShim, ForwardsToRegistry)
{
    // The deprecated stringly factory keeps working, spec grammar
    // included, so out-of-tree callers survive the redesign.
    EXPECT_EQ(makeBalancer("none")->name(), "none");
    EXPECT_EQ(makeBalancer("tree")->name(), "baseline-tree");
    EXPECT_EQ(makeBalancer("cluster:cluster_size=3")->name(),
              "cluster-head");
    EXPECT_THROW(makeBalancer("bogus"), FatalError);
}

} // namespace
} // namespace neofog
