/**
 * @file
 * Tests for the intermittent-execution simulator.
 */

#include <gtest/gtest.h>

#include "energy/power_trace.hh"
#include "node/intermittent.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

using namespace neofog::literals;

TEST(Intermittent, RejectsBadConfig)
{
    NvProcessor nvp;
    ConstantTrace trace(1.0_mW);
    IntermittentExecution::Config cfg;
    cfg.onThreshold = 10.0_uJ;
    cfg.offThreshold = 20.0_uJ;
    EXPECT_THROW(
        IntermittentExecution::run(nvp, trace, kSec, cfg), FatalError);

    IntermittentExecution::Config cfg2;
    cfg2.step = 0;
    EXPECT_THROW(
        IntermittentExecution::run(nvp, trace, kSec, cfg2), FatalError);
}

TEST(Intermittent, NoPowerNoProgress)
{
    NvProcessor nvp;
    ConstantTrace dark(Power::zero());
    const auto r = IntermittentExecution::run(nvp, dark, 10 * kSec);
    EXPECT_EQ(r.instructionsCompleted, 0u);
    EXPECT_EQ(r.powerCycles, 0);
    EXPECT_DOUBLE_EQ(r.harvested.joules(), 0.0);
}

TEST(Intermittent, AmplePowerRunsContinuously)
{
    NvProcessor nvp;
    ConstantTrace bright(10.0_mW);
    const auto r = IntermittentExecution::run(nvp, bright, 10 * kSec);
    // ~83333 instructions/s at 1 MHz / 12 cpi, minus the charge-up lag.
    EXPECT_GT(r.instructionsCompleted, 700'000u);
    EXPECT_LE(r.powerCycles, 1);
    EXPECT_EQ(r.instructionsWasted, 0u);
}

TEST(Intermittent, StarvedPowerCyclesRepeatedly)
{
    NvProcessor nvp;
    // Income below the processor draw: classic charge-run-die cycling.
    ConstantTrace trickle(Power::fromMicrowatts(60.0));
    const auto r = IntermittentExecution::run(nvp, trickle, 5 * kMin);
    EXPECT_GT(r.powerCycles, 5);
    EXPECT_GT(r.instructionsCompleted, 0u);
}

TEST(Intermittent, NvpNeverWastesInstructions)
{
    NvProcessor nvp;
    ConstantTrace trickle(Power::fromMicrowatts(80.0));
    const auto r = IntermittentExecution::run(nvp, trickle, 5 * kMin);
    EXPECT_EQ(r.instructionsWasted, 0u);
}

TEST(Intermittent, VpWastesUncommittedWork)
{
    VolatileProcessor vp;
    ConstantTrace trickle(Power::fromMicrowatts(80.0));
    IntermittentExecution::Config cfg;
    cfg.taskSegmentInstructions = 1'000'000; // huge segments
    const auto r =
        IntermittentExecution::run(vp, trickle, 5 * kMin, cfg);
    // Segments never complete within one on-period: everything wasted.
    EXPECT_EQ(r.instructionsCompleted, 0u);
    EXPECT_GT(r.instructionsWasted, 0u);
}

TEST(Intermittent, SmallerSegmentsWasteLess)
{
    VolatileProcessor vp;
    ConstantTrace trickle(Power::fromMicrowatts(80.0));
    IntermittentExecution::Config small;
    small.taskSegmentInstructions = 1'000;
    IntermittentExecution::Config large;
    large.taskSegmentInstructions = 200'000;
    const auto rs =
        IntermittentExecution::run(vp, trickle, 5 * kMin, small);
    const auto rl =
        IntermittentExecution::run(vp, trickle, 5 * kMin, large);
    EXPECT_GE(rs.instructionsCompleted, rl.instructionsCompleted);
}

TEST(Intermittent, ProgressRatioInPaperBandUnderHarvesting)
{
    Rng rng(17);
    auto trace = traces::makeForestTrace(rng, 10 * kMin,
                                         Power::fromMilliwatts(0.1));
    const double ratio =
        IntermittentExecution::progressRatio(*trace, 10 * kMin);
    EXPECT_GE(ratio, 1.8);
    EXPECT_LE(ratio, 6.0);
}

TEST(Intermittent, AdvantageShrinksWithAmplePower)
{
    Rng rng(17);
    auto weak = traces::makeForestTrace(rng, 10 * kMin,
                                        Power::fromMilliwatts(0.1));
    Rng rng2(17);
    auto strong = traces::makeForestTrace(rng2, 10 * kMin,
                                          Power::fromMilliwatts(2.0));
    const double weak_ratio =
        IntermittentExecution::progressRatio(*weak, 10 * kMin);
    const double strong_ratio =
        IntermittentExecution::progressRatio(*strong, 10 * kMin);
    EXPECT_GT(weak_ratio, strong_ratio);
    EXPECT_LT(strong_ratio, 1.8);
}

TEST(Intermittent, EnergyConservation)
{
    NvProcessor nvp;
    ConstantTrace trace(0.5_mW);
    const auto r = IntermittentExecution::run(nvp, trace, kMin);
    // Spend cannot exceed harvest (both measured at their own sides;
    // conversion losses only shrink the usable amount).
    EXPECT_LE(r.spent.joules(), r.harvested.joules() + 1e-9);
    EXPECT_NEAR(r.harvested.millijoules(), 0.5 * 60.0, 0.01);
}

TEST(Intermittent, ProgressRateHelper)
{
    IntermittentExecution::Result r;
    r.instructionsCompleted = 50'000;
    EXPECT_DOUBLE_EQ(r.progressRate(10 * kSec), 5'000.0);
}

} // namespace
} // namespace neofog
