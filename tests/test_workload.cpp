/**
 * @file
 * Tests for application profiles (Table 2 exactness) and the
 * kernel-backed fog tasks.
 */

#include <gtest/gtest.h>

#include "workload/app_profile.hh"
#include "workload/fog_task.hh"

namespace neofog {
namespace {

struct Table2Row
{
    AppKind kind;
    std::uint64_t inst;
    double computeNj;
    double txNj;
    double naiveRatio;
    double computeMj;
    double txMj;
    double bufferedRatio;
    double saved;
};

// Values as printed in the paper's Table 2.
const Table2Row kPaperRows[] = {
    {AppKind::BridgeHealth, 545, 1366.86, 22809.6, 0.0565, 81.7, 6.95,
     0.922, -0.552},
    {AppKind::UvMeter, 460, 1153.68, 5702.4, 0.168, 108.3, 6.8, 0.941,
     -0.488},
    {AppKind::WsnTemp, 56, 140.448, 5702.4, 0.024, 75.0, 6.99, 0.915,
     -0.571},
    {AppKind::WsnAccel, 477, 1196.316, 17107.2, 0.0653, 83.6, 6.59,
     0.927, -0.549},
    {AppKind::PatternMatching, 1670, 4188.36, 2851.2, 0.595, 345.1,
     5.39, 0.985, -0.241},
};

class Table2Test : public ::testing::TestWithParam<Table2Row>
{
};

TEST_P(Table2Test, NaiveColumnsMatchPaper)
{
    const Table2Row &row = GetParam();
    const AppProfile p = appProfile(row.kind);
    EXPECT_EQ(p.naiveInstructions, row.inst);
    EXPECT_NEAR(p.naiveComputeEnergy().nanojoules(), row.computeNj, 0.01);
    EXPECT_NEAR(p.naiveTxEnergy().nanojoules(), row.txNj, 0.1);
    EXPECT_NEAR(p.naiveComputeRatio(), row.naiveRatio, 0.001);
}

TEST_P(Table2Test, BufferedColumnsMatchPaper)
{
    const Table2Row &row = GetParam();
    const AppProfile p = appProfile(row.kind);
    EXPECT_NEAR(p.bufferedComputeEnergy().millijoules(), row.computeMj,
                0.1);
    EXPECT_NEAR(p.bufferedTxEnergy().millijoules(), row.txMj, 0.05);
    EXPECT_NEAR(p.bufferedComputeRatio(), row.bufferedRatio, 0.002);
}

TEST_P(Table2Test, EnergySavedMatchesPaper)
{
    const Table2Row &row = GetParam();
    const AppProfile p = appProfile(row.kind);
    EXPECT_NEAR(p.energySavedRatio(), row.saved, 0.004);
}

TEST_P(Table2Test, CompressionRatioInPaperWindow)
{
    const AppProfile p = appProfile(GetParam().kind);
    EXPECT_GE(p.compressionRatio, 0.02);
    EXPECT_LE(p.compressionRatio, 0.145);
}

INSTANTIATE_TEST_SUITE_P(AllApps, Table2Test,
                         ::testing::ValuesIn(kPaperRows));

TEST(AppProfile, SamplesPerBatch)
{
    EXPECT_EQ(appProfile(AppKind::BridgeHealth).samplesPerBatch(),
              64u * 1024u / 8u);
    EXPECT_EQ(appProfile(AppKind::PatternMatching).samplesPerBatch(),
              64u * 1024u);
}

TEST(AppProfile, BufferedInstructionsScale)
{
    const AppProfile p = appProfile(AppKind::WsnTemp);
    const auto half = p.bufferedInstructionsFor(32 * 1024);
    const auto full = p.bufferedInstructionsFor(64 * 1024);
    EXPECT_NEAR(static_cast<double>(full),
                2.0 * static_cast<double>(half), 2.0);
}

TEST(AppProfile, CompressedSizeNeverZeroForNonEmpty)
{
    const AppProfile p = appProfile(AppKind::PatternMatching);
    EXPECT_EQ(p.compressedSize(0), 0u);
    EXPECT_GE(p.compressedSize(1), 1u);
}

TEST(AppProfile, AllProfilesEnumerated)
{
    const auto all = allAppProfiles();
    EXPECT_EQ(all.size(), 5u);
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].kind, kAllApps[i]);
}

TEST(AppProfile, NamesNonEmpty)
{
    for (AppKind k : kAllApps)
        EXPECT_FALSE(appName(k).empty());
    EXPECT_NE(strategyName(Strategy::NaiveSenseTransmit),
              strategyName(Strategy::BufferedComputeCompress));
}

class FogTaskTest : public ::testing::TestWithParam<AppKind>
{
};

TEST_P(FogTaskTest, ProducesOutput)
{
    Rng rng(123);
    auto task = makeFogTask(GetParam());
    const FogOutput out = task->processBatch(8 * 1024, rng);
    EXPECT_FALSE(out.payload.empty());
    EXPECT_GT(out.opsExecuted, 0u);
    EXPECT_EQ(out.rawBytes, 8u * 1024u);
    EXPECT_FALSE(task->name().empty());
}

TEST_P(FogTaskTest, CompressesWellBelowRaw)
{
    Rng rng(77);
    auto task = makeFogTask(GetParam());
    const FogOutput out = task->processBatch(16 * 1024, rng);
    // Fog processing reduces the batch to a small result payload —
    // well under the paper's 14.5% upper bound.
    EXPECT_LT(out.achievedRatio(), 0.145);
}

TEST_P(FogTaskTest, DeterministicForSeed)
{
    auto task1 = makeFogTask(GetParam());
    auto task2 = makeFogTask(GetParam());
    Rng r1(5), r2(5);
    const FogOutput a = task1->processBatch(4096, r1);
    const FogOutput b = task2->processBatch(4096, r2);
    EXPECT_EQ(a.payload, b.payload);
    EXPECT_DOUBLE_EQ(a.metric, b.metric);
    EXPECT_EQ(a.opsExecuted, b.opsExecuted);
}

INSTANTIATE_TEST_SUITE_P(AllApps, FogTaskTest,
                         ::testing::ValuesIn(kAllApps));

TEST(FogTask, VolumetricTaskWorks)
{
    Rng rng(9);
    auto task = makeVolumetricTask();
    const FogOutput out = task->processBatch(2048, rng);
    EXPECT_FALSE(out.payload.empty());
    // Metric is the reconstructed peak temperature; the synthetic
    // field has a hotspot around 65 C.
    EXPECT_GT(out.metric, 30.0);
    EXPECT_LT(out.metric, 80.0);
}

TEST(FogTask, PatternMatchRecoversPlausibleBpm)
{
    Rng rng(11);
    auto task = makeFogTask(AppKind::PatternMatching);
    const FogOutput out = task->processBatch(8 * 1024, rng);
    EXPECT_GT(out.metric, 35.0);
    EXPECT_LT(out.metric, 130.0);
}

} // namespace
} // namespace neofog
