/**
 * @file
 * Tests for the RF transceiver models: software RF vs NVRF, with the
 * paper's measured timing equations.
 */

#include <gtest/gtest.h>

#include "hw/rf.hh"
#include "sim/logging.hh"

namespace neofog {
namespace {

TEST(SoftwareRf, VpInitIs531Ms)
{
    SoftwareRf rf;
    // Init (531 ms at init power) + network rejoin (RX).
    const RfPhase init = rf.initCost();
    EXPECT_GE(init.duration, ticksFromMs(531.0));
    EXPECT_GT(init.energy.millijoules(), 10.0);
}

TEST(SoftwareRf, NvmDirectInitIs33Ms)
{
    SoftwareRf rf{SoftwareRf::nvmDirectConfig()};
    EXPECT_EQ(rf.swConfig().initLatency, ticksFromMs(33.0));
    EXPECT_LT(rf.initCost().duration, ticksFromMs(100.0));
}

TEST(SoftwareRf, TxTimeMatchesPaperEquation)
{
    // Paper: data transmission of N bytes costs (255 + 1.44N + 0.032N) ms.
    SoftwareRf rf;
    const std::size_t n = 100;
    const Tick expect = ticksFromMs(255.0 + 1.472 * 100.0);
    EXPECT_EQ(rf.txCost(n).duration, expect);
}

TEST(SoftwareRf, TxEnergyUsesTxPower)
{
    SoftwareRf rf;
    const RfPhase tx = rf.txCost(0);
    // 255 ms at 89.1 mW = 22.72 mJ.
    EXPECT_NEAR(tx.energy.millijoules(), 255.0 * 0.0891, 0.05);
}

TEST(SoftwareRf, LosesStateOnPowerFailure)
{
    SoftwareRf rf;
    rf.state().channel = 20;
    rf.state().associatedDevList = {1, 2, 3};
    rf.onPowerFailure();
    EXPECT_EQ(rf.state().channel, RfState{}.channel);
    EXPECT_TRUE(rf.state().associatedDevList.empty());
}

TEST(NvRf, SelfInitAfterConfigure)
{
    NvRfController rf;
    EXPECT_FALSE(rf.configured());
    // Before configuration, init is the one-time 28 ms host setup.
    EXPECT_EQ(rf.initCost().duration, ticksFromMs(28.0));
    rf.configure();
    EXPECT_TRUE(rf.configured());
    // After, self-reinit in 1.2 ms.
    EXPECT_EQ(rf.initCost().duration, ticksFromMs(1.2));
}

TEST(NvRf, TxTimeMatchesPaperEquation)
{
    // Paper: (1.74 (start) + 0.156 + 0.216N + 0.032N) ms for N bytes.
    NvRfController rf;
    const std::size_t n = 50;
    const Tick expect = ticksFromMs(1.74 + 0.156 + 0.248 * 50.0);
    EXPECT_EQ(rf.txCost(n).duration, expect);
}

TEST(NvRf, InitSpeedupIs27x)
{
    SoftwareRf nvm{SoftwareRf::nvmDirectConfig()};
    NvRfController nvrf;
    nvrf.configure();
    const double speedup =
        static_cast<double>(nvm.swConfig().initLatency) /
        static_cast<double>(nvrf.nvConfig().selfInitLatency);
    EXPECT_NEAR(speedup, 27.5, 1.0); // paper: 27x
}

TEST(NvRf, ThroughputAdvantageAtLargePayloads)
{
    // The paper's 6.2x throughput advantage holds for multi-kB
    // transfers where per-byte costs dominate the crossover.
    SoftwareRf sw;
    NvRfController nv;
    nv.configure();
    const std::size_t n = 3700;
    const double ratio =
        static_cast<double>(sw.txCost(n).duration) /
        static_cast<double>(nv.txCost(n).duration);
    EXPECT_NEAR(ratio, 6.2, 0.6);
}

TEST(NvRf, RetainsStateAcrossPowerFailure)
{
    NvRfController rf;
    rf.configure();
    rf.state().channel = 15;
    rf.state().associatedDevList = {7, 8};
    rf.onPowerFailure();
    EXPECT_EQ(rf.state().channel, 15);
    EXPECT_EQ(rf.state().associatedDevList.size(), 2u);
    EXPECT_TRUE(rf.configured());
}

TEST(NvRf, CloneCopiesState)
{
    NvRfController source;
    source.configure();
    source.state().channel = 19;
    source.state().routeVersion = 42;
    source.state().associatedDevList = {3, 4, 5};

    NvRfController joiner;
    const RfPhase cost = joiner.cloneFrom(source);
    EXPECT_TRUE(joiner.configured());
    EXPECT_EQ(joiner.state(), source.state());
    EXPECT_GT(cost.duration, 0);
    EXPECT_GT(cost.energy.joules(), 0.0);
}

TEST(NvRf, CloneFromUnconfiguredFails)
{
    NvRfController source, joiner;
    EXPECT_THROW(joiner.cloneFrom(source), FatalError);
}

TEST(RfModule, AirtimeMatchesDataRate)
{
    SoftwareRf rf;
    // 250 kbps: one byte = 32 us.
    EXPECT_EQ(rf.airtime(1), 32);
    EXPECT_EQ(rf.airtime(1000), 32000);
}

TEST(RfModule, RxAndIdleCosts)
{
    SoftwareRf rf;
    const RfPhase rx = rf.rxCost(kSec);
    EXPECT_NEAR(rx.energy.millijoules(), 72.0, 1e-9);
    const RfPhase idle = rf.idleCost(kSec);
    EXPECT_NEAR(idle.energy.millijoules(), 14.93, 1e-9);
}

TEST(RfModule, TxEnergyPerByteMatchesTable2)
{
    // Raw airtime energy per byte: 32 us x 89.1 mW = 2851.2 nJ, the
    // per-byte constant behind Table 2's TX column.
    SoftwareRf rf;
    const Energy per_byte =
        rf.config().txPower * rf.airtime(1);
    EXPECT_NEAR(per_byte.nanojoules(), 2851.2, 1e-6);
}

} // namespace
} // namespace neofog
