/**
 * @file
 * Snapshot subsystem tests: archive round-trips, container
 * validation, corruption rejection, replay diffing, and the resume
 * bit-identity contract (`ctest -L snapshot`).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "fog/chain_engine.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "fog/scenario.hh"
#include "fog/snapshot_io.hh"
#include "fog/system_report.hh"
#include "net/loss.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"
#include "snapshot/archive.hh"
#include "snapshot/replay.hh"
#include "snapshot/snapshot.hh"
#include "virt/nvd4q.hh"

namespace neofog {
namespace {

namespace fs = std::filesystem;
using snapshot::DiffResult;
using snapshot::InArchive;
using snapshot::OutArchive;
using snapshot::Record;
using snapshot::RecordReader;
using snapshot::Snapshot;

/** Self-deleting scratch directory for file-format tests. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : _path(fs::temp_directory_path() /
                ("neofog_snapshot_test_" + tag))
    {
        fs::remove_all(_path);
        fs::create_directories(_path);
    }
    ~ScratchDir() { fs::remove_all(_path); }

    std::string file(const std::string &name) const
    {
        return (_path / name).string();
    }
    std::string path() const { return _path.string(); }

  private:
    fs::path _path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << path;
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------
// Archive encoding
// ---------------------------------------------------------------------

struct Inner
{
    std::int64_t ticks = 0;
    double level = 0.0;

    template <class Archive>
    void serialize(Archive &ar)
    {
        ar.io("ticks", ticks);
        ar.io("level", level);
    }
};

struct Outer
{
    bool flag = false;
    std::uint32_t count = 0;
    std::string label;
    std::vector<double> samples;
    Inner inner;

    template <class Archive>
    void serialize(Archive &ar)
    {
        ar.io("flag", flag);
        ar.io("count", count);
        ar.io("label", label);
        ar.io("samples", samples);
        ar.io("inner", inner);
    }
};

TEST(Archive, ScalarRoundTripIsExact)
{
    bool b = true;
    std::int32_t i32 = -123456;
    std::uint16_t u16 = 65535;
    std::uint32_t u32 = 0xDEADBEEFU;
    std::int64_t i64 = -(1LL << 60);
    std::uint64_t u64 = ~0ULL;
    double nan = std::nan("0x42");
    double negzero = -0.0;
    std::string str = "with\0byte and \n newline";

    OutArchive out;
    out.io("b", b);
    out.io("i32", i32);
    out.io("u16", u16);
    out.io("u32", u32);
    out.io("i64", i64);
    out.io("u64", u64);
    out.io("nan", nan);
    out.io("negzero", negzero);
    out.io("str", str);
    const std::string blob = out.take();

    bool b2 = false;
    std::int32_t i32_2 = 0;
    std::uint16_t u16_2 = 0;
    std::uint32_t u32_2 = 0;
    std::int64_t i64_2 = 0;
    std::uint64_t u64_2 = 0;
    double nan2 = 0, negzero2 = 0;
    std::string str2;

    InArchive in{std::string_view(blob)};
    in.io("b", b2);
    in.io("i32", i32_2);
    in.io("u16", u16_2);
    in.io("u32", u32_2);
    in.io("i64", i64_2);
    in.io("u64", u64_2);
    in.io("nan", nan2);
    in.io("negzero", negzero2);
    in.io("str", str2);
    EXPECT_TRUE(in.atEnd());

    EXPECT_EQ(b2, b);
    EXPECT_EQ(i32_2, i32);
    EXPECT_EQ(u16_2, u16);
    EXPECT_EQ(u32_2, u32);
    EXPECT_EQ(i64_2, i64);
    EXPECT_EQ(u64_2, u64);
    EXPECT_EQ(str2, str);
    // Doubles travel as bit patterns: NaN payload and the sign of
    // zero survive (resume bit-identity depends on this).
    EXPECT_EQ(snapshot::doubleBits(nan2), snapshot::doubleBits(nan));
    EXPECT_TRUE(std::signbit(negzero2));
}

TEST(Archive, NestedComponentRoundTrip)
{
    Outer a;
    a.flag = true;
    a.count = 9;
    a.label = "chain0";
    a.samples = {1.5, -2.25, 0.0};
    a.inner = {42, 0.125};

    OutArchive out;
    out.io("outer", a);
    const std::string blob = out.take();

    Outer b;
    InArchive in{std::string_view(blob)};
    in.io("outer", b);
    EXPECT_TRUE(in.atEnd());

    EXPECT_EQ(b.flag, a.flag);
    EXPECT_EQ(b.count, a.count);
    EXPECT_EQ(b.label, a.label);
    EXPECT_EQ(b.samples, a.samples);
    EXPECT_EQ(b.inner.ticks, a.inner.ticks);
    EXPECT_EQ(b.inner.level, a.inner.level);
}

TEST(Archive, RecordPathsAreFullyQualified)
{
    Outer a;
    OutArchive out;
    out.io("outer", a);
    const std::string blob = out.take();

    std::vector<std::string> paths;
    RecordReader reader{std::string_view(blob)};
    Record rec;
    while (reader.next(rec))
        paths.emplace_back(rec.path);
    const std::vector<std::string> expect = {
        "outer.flag", "outer.count", "outer.label", "outer.samples",
        "outer.inner.ticks", "outer.inner.level"};
    EXPECT_EQ(paths, expect);
}

TEST(Archive, LoadRejectsPathAndTypeMismatch)
{
    OutArchive out;
    std::int32_t v = 7;
    out.io("alpha", v);
    const std::string blob = out.take();

    {
        // Wrong field name.
        InArchive in{std::string_view(blob)};
        std::int32_t got = 0;
        EXPECT_THROW(in.io("beta", got), FatalError);
    }
    {
        // Right name, wrong wire type.
        InArchive in{std::string_view(blob)};
        double got = 0;
        EXPECT_THROW(in.io("alpha", got), FatalError);
    }
    {
        // Reading past the end of the stream.
        InArchive in{std::string_view(blob)};
        std::int32_t got = 0;
        in.io("alpha", got);
        EXPECT_THROW(in.io("alpha", got), FatalError);
    }
    {
        // Truncated record payload.
        const std::string cut = blob.substr(0, blob.size() - 2);
        InArchive in{std::string_view(cut)};
        std::int32_t got = 0;
        EXPECT_THROW(in.io("alpha", got), FatalError);
    }
}

TEST(Archive, RngStreamPositionRoundTrips)
{
    Rng rng(1234);
    for (int i = 0; i < 17; ++i)
        rng.normal(); // leaves a Box-Muller spare half the time

    OutArchive out;
    out.io("rng", rng);
    const std::string blob = out.take();

    Rng restored(999); // deliberately different seed
    InArchive in{std::string_view(blob)};
    in.io("rng", restored);

    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(restored.next(), rng.next());
        EXPECT_EQ(restored.normal(), rng.normal());
    }
}

// ---------------------------------------------------------------------
// Serialized-footprint pins (the sizeof(SystemReport) trick): adding
// a data member to a snapshotted struct without extending serialize()
// would silently corrupt resumes.  The first line of defense is now
// R5.snapshot in tools/neofog_lint, which names the forgotten member
// by field and line; these pins stay as the layout backstop for what
// a token-level pass can't see (padding, type-size changes, members
// smuggled in through a base class).  If one trips, update the
// struct's serialize() AND the pin.
// ---------------------------------------------------------------------

TEST(SnapshotFootprint, PinsEverySnapshottedStruct)
{
    EXPECT_EQ(sizeof(Rng), 48u);
    EXPECT_EQ(sizeof(Counter), 8u);
    EXPECT_EQ(sizeof(TimeSeries), 24u);
    EXPECT_EQ(sizeof(RingSeries), 48u);
    EXPECT_EQ(sizeof(ProbeConfig), 24u);
    EXPECT_EQ(sizeof(SuperCapacitor), 64u);
    EXPECT_EQ(sizeof(Rtc), 144u);
    EXPECT_EQ(sizeof(NvBuffer), 56u);
    EXPECT_EQ(sizeof(Sensor), 80u);
    EXPECT_EQ(sizeof(SensorSpec), 72u);
    EXPECT_EQ(sizeof(RfState), 48u);
    EXPECT_EQ(sizeof(LossModel), 40u);
    EXPECT_EQ(sizeof(CloneGroup), 40u);
    EXPECT_EQ(sizeof(ChainProbe), 192u);
    EXPECT_EQ(sizeof(NodeStats), 168u);
    EXPECT_EQ(sizeof(Node), 480u);
    EXPECT_EQ(sizeof(SystemReport), 216u);
    EXPECT_EQ(sizeof(Node::Config), 272u);
    EXPECT_EQ(sizeof(ScenarioConfig), 512u);
}

// ---------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------

Snapshot
sampleSnapshot()
{
    Snapshot snap;
    snap.slot = 42;
    snap.seed = 7;
    snap.chains = 2;
    snap.sections.push_back({"config", "fingerprint-bytes"});
    snap.sections.push_back({"chain0", "alpha"});
    snap.sections.push_back({"chain1", "beta"});
    return snap;
}

TEST(SnapshotFile, WriteReadRoundTrip)
{
    const ScratchDir dir("roundtrip");
    const std::string path =
        dir.file(snapshot::snapshotFileName(42));
    EXPECT_EQ(path.substr(path.size() - 22), "snap-0000000042.nfsnap");

    snapshot::writeSnapshot(path, sampleSnapshot());
    const Snapshot back = snapshot::readSnapshot(path);

    EXPECT_EQ(back.slot, 42);
    EXPECT_EQ(back.seed, 7u);
    EXPECT_EQ(back.chains, 2u);
    ASSERT_EQ(back.sections.size(), 3u);
    EXPECT_EQ(back.sections[1].name, "chain0");
    EXPECT_EQ(back.sections[1].data, "alpha");
    ASSERT_NE(back.find("config"), nullptr);
    EXPECT_EQ(back.configHash,
              snapshot::fnv1a(back.find("config")->data));
    EXPECT_EQ(back.find("nope"), nullptr);
    // No .tmp residue after the atomic publish.
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(SnapshotFile, LatestSkipsCorruptAndResolvesDirectories)
{
    const ScratchDir dir("latest");
    const std::string older =
        dir.file(snapshot::snapshotFileName(10));
    const std::string newer =
        dir.file(snapshot::snapshotFileName(20));
    Snapshot snap = sampleSnapshot();
    snap.slot = 10;
    snapshot::writeSnapshot(older, snap);
    snap.slot = 20;
    snapshot::writeSnapshot(newer, snap);

    EXPECT_EQ(snapshot::latestSnapshot(dir.path()), newer);
    EXPECT_EQ(snapshot::resolveSnapshotPath(dir.path()), newer);
    // A file path passes through untouched.
    EXPECT_EQ(snapshot::resolveSnapshotPath(older), older);

    // Corrupt the newest: resume-from-latest must fall back to the
    // newest VALID checkpoint, exactly the crash-mid-write case.
    std::string bytes = slurp(newer);
    bytes[bytes.size() - 1] ^= 0x01;
    spit(newer, bytes);
    EXPECT_EQ(snapshot::latestSnapshot(dir.path()), older);

    const ScratchDir empty("empty");
    EXPECT_THROW(snapshot::resolveSnapshotPath(empty.path()),
                 FatalError);
}

TEST(SnapshotFile, CorruptionIsRejectedLoudly)
{
    const ScratchDir dir("corrupt");
    const std::string good = dir.file("good.nfsnap");
    snapshot::writeSnapshot(good, sampleSnapshot());
    const std::string pristine = slurp(good);

    const auto rejects = [&](const std::string &bytes,
                             const std::string &needle) {
        const std::string path = dir.file("mutant.nfsnap");
        spit(path, bytes);
        try {
            snapshot::readSnapshot(path);
            FAIL() << "expected rejection containing '" << needle
                   << "'";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find(needle),
                      std::string::npos)
                << err.what();
        }
    };

    // Truncations: below the fixed preamble, inside the header, and
    // inside a section body.
    rejects(pristine.substr(0, 10), "truncated");
    rejects(pristine.substr(0, 20), "truncated");
    rejects(pristine.substr(0, pristine.size() - 3),
            "outside the file");

    // Flipped magic byte.
    std::string bad = pristine;
    bad[3] ^= 0xFF;
    rejects(bad, "bad magic");

    // Byte-swapped endianness marker: a big-endian writer's output.
    bad = pristine;
    std::swap(bad[8], bad[11]);
    std::swap(bad[9], bad[10]);
    rejects(bad, "big-endian");

    // Garbage endianness marker.
    bad = pristine;
    bad[8] ^= 0x55;
    rejects(bad, "endianness marker");

    // Flipped byte inside a section payload: checksum failure.
    bad = pristine;
    bad[bad.size() - 2] ^= 0x10;
    rejects(bad, "checksum");

    // Header/config-hash mismatch: flip one hex digit of the header's
    // config_hash while every section checksum stays valid.
    bad = pristine;
    const std::string tag = "\"config_hash\":\"";
    const std::size_t key = bad.find(tag);
    ASSERT_NE(key, std::string::npos);
    char &digit = bad[key + tag.size()];
    digit = (digit == '0') ? '1' : '0';
    rejects(bad, "header/config mismatch");
}

// ---------------------------------------------------------------------
// Scenario fingerprint
// ---------------------------------------------------------------------

TEST(ScenarioFingerprint, BlobRoundTripsAndHostKnobsAreExcluded)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.chains = 2;
    const std::string blob = serializeScenarioBlob(cfg);
    const ScenarioConfig back = deserializeScenarioBlob(blob);
    EXPECT_EQ(serializeScenarioBlob(back), blob);
    EXPECT_EQ(scenarioFingerprint(back), scenarioFingerprint(cfg));

    // Host-local knobs never enter the fingerprint: a resume may
    // change thread count or checkpoint cadence freely.
    ScenarioConfig tweaked = cfg;
    tweaked.threads = 8;
    tweaked.snapshot.everySlots = 5;
    tweaked.snapshot.dir = "/elsewhere";
    EXPECT_EQ(scenarioFingerprint(tweaked), scenarioFingerprint(cfg));

    // Result-relevant fields do.
    ScenarioConfig reseeded = cfg;
    reseeded.seed = cfg.seed + 1;
    EXPECT_NE(scenarioFingerprint(reseeded), scenarioFingerprint(cfg));
    ScenarioConfig remoded = cfg;
    remoded.mode = OperatingMode::NosVp;
    EXPECT_NE(scenarioFingerprint(remoded), scenarioFingerprint(cfg));
}

// ---------------------------------------------------------------------
// Replay diffing
// ---------------------------------------------------------------------

TEST(Replay, ReportsFirstDivergingField)
{
    Outer a;
    a.count = 3;
    a.samples = {1.0, 2.0, 3.0};
    Outer b = a;

    const auto encode = [](Outer &o) {
        OutArchive out;
        out.io("outer", o);
        return out.take();
    };

    // Identical streams do not diverge.
    DiffResult same =
        snapshot::diffSections("chain0", encode(a), encode(b));
    EXPECT_FALSE(same.diverged);

    // A scalar difference names the full field path and both values.
    b.count = 4;
    DiffResult scalar =
        snapshot::diffSections("chain0", encode(a), encode(b));
    EXPECT_TRUE(scalar.diverged);
    EXPECT_EQ(scalar.where, "chain0");
    EXPECT_EQ(scalar.path, "outer.count");
    EXPECT_NE(scalar.detail.find("3"), std::string::npos);
    EXPECT_NE(scalar.detail.find("4"), std::string::npos);

    // A vector difference names the first differing element.
    b = a;
    b.samples[1] = 2.5;
    DiffResult vec =
        snapshot::diffSections("chain0", encode(a), encode(b));
    EXPECT_TRUE(vec.diverged);
    EXPECT_EQ(vec.path, "outer.samples");
    EXPECT_NE(vec.detail.find("element 1"), std::string::npos)
        << vec.detail;

    // Only the FIRST divergence is reported.
    b = a;
    b.flag = true;
    b.count = 9;
    DiffResult first =
        snapshot::diffSections("chain0", encode(a), encode(b));
    EXPECT_EQ(first.path, "outer.flag");
}

TEST(Replay, HeaderAndSectionDivergence)
{
    // Sections must hold real record streams for a full-snapshot diff.
    const auto makeSnapshot = [](std::uint32_t count) {
        Outer payload;
        payload.count = count;
        OutArchive out;
        out.io("outer", payload);
        Snapshot snap;
        snap.slot = 42;
        snap.seed = 7;
        snap.chains = 1;
        snap.sections.push_back({"chain0", out.take()});
        return snap;
    };

    Snapshot a = makeSnapshot(3);
    Snapshot b = makeSnapshot(3);
    EXPECT_FALSE(snapshot::diffSnapshots(a, b).diverged);

    b.slot = 43;
    DiffResult slot = snapshot::diffSnapshots(a, b);
    EXPECT_TRUE(slot.diverged);
    EXPECT_EQ(slot.where, "header");

    b = makeSnapshot(4);
    DiffResult body = snapshot::diffSnapshots(a, b);
    EXPECT_TRUE(body.diverged);
    EXPECT_EQ(body.where, "chain0");
    EXPECT_EQ(body.path, "outer.count");

    b = makeSnapshot(3);
    b.sections.pop_back();
    EXPECT_TRUE(snapshot::diffSnapshots(a, b).diverged);
}

// ---------------------------------------------------------------------
// Resume
// ---------------------------------------------------------------------

ScenarioConfig
resumeScenario(unsigned threads)
{
    // A shrunk fig-13 (rain trace, fios + distributed balancing,
    // multiplexing 3) so one run stays test-sized while still
    // exercising clone rotation, loss, and balancing.
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.chains = 3;
    cfg.horizon = kHour;
    cfg.seed = 77;
    cfg.threads = threads;
    return cfg;
}

TEST(Resume, RejectsCorruptOrMissingSnapshots)
{
    const ScratchDir dir("resume_reject");
    EXPECT_THROW(FogSystem::resume(dir.path()), FatalError);

    const std::string bogus = dir.file("bogus.nfsnap");
    spit(bogus, "NOT A SNAPSHOT AT ALL........");
    EXPECT_THROW(FogSystem::resume(bogus), FatalError);

    // A snapshot without a config section cannot seed a resume.
    Snapshot snap;
    snap.slot = 1;
    snap.sections.push_back({"chain0", "x"});
    const std::string configless = dir.file("configless.nfsnap");
    snapshot::writeSnapshot(configless, snap);
    EXPECT_THROW(FogSystem::resume(configless), FatalError);
}

// The tentpole contract, enforced here rather than by convention:
// for random split slots s and any thread count, run(0..H) and
// run(0..s); resume; run(s..H) produce operator==-equal reports.
TEST(Resume, BitIdentityAcrossSplitSlotsAndThreadCounts)
{
    const ScratchDir dir("resume_identity");

    const SystemReport reference =
        FogSystem(resumeScenario(1)).run();

    // A snapshotting run (under a different thread count, even) must
    // not perturb a single report bit.
    constexpr std::int64_t kEvery = 7;
    ScenarioConfig snapping = resumeScenario(2);
    snapping.snapshot.everySlots = kEvery;
    snapping.snapshot.dir = dir.path();
    EXPECT_EQ(FogSystem(snapping).run(), reference);

    const std::int64_t slots = snapping.slotCount();
    ASSERT_EQ(slots, 300);

    // >= 3 random split slots from the checkpoint grid.
    std::minstd_rand pick(20260806);
    std::vector<std::int64_t> splits;
    while (splits.size() < 3) {
        const std::int64_t s =
            (1 + static_cast<std::int64_t>(pick() %
                                           ((slots - 1) / kEvery))) *
            kEvery;
        if (std::find(splits.begin(), splits.end(), s) ==
            splits.end())
            splits.push_back(s);
    }

    for (const std::int64_t split : splits) {
        const std::string path =
            dir.file(snapshot::snapshotFileName(split));
        ASSERT_TRUE(fs::exists(path)) << path;
        for (const unsigned threads : {1u, 2u, 4u}) {
            auto resumed = FogSystem::resume(path, threads);
            EXPECT_EQ(resumed->resumeSlot(), split);
            EXPECT_EQ(resumed->config().seed, snapping.seed);
            EXPECT_EQ(resumed->run(), reference)
                << "split " << split << ", threads " << threads;
        }
    }
}

// Resuming may itself snapshot; a second-generation resume must
// still land on the reference bits (crash during the resumed run).
TEST(Resume, ChainedResumeStaysBitIdentical)
{
    const ScratchDir first("resume_chain_a");
    const ScratchDir second("resume_chain_b");

    const SystemReport reference =
        FogSystem(resumeScenario(2)).run();

    ScenarioConfig snapping = resumeScenario(1);
    snapping.snapshot.everySlots = 60;
    snapping.snapshot.dir = first.path();
    FogSystem(snapping).run();

    ScenarioConfig::SnapshotConfig resnap;
    resnap.everySlots = 90;
    resnap.dir = second.path();
    auto once = FogSystem::resume(
        first.file(snapshot::snapshotFileName(60)), 4, resnap);
    EXPECT_EQ(once->run(), reference);

    // The resumed run checkpointed at slots 90/180/270; resume again
    // from its latest shard set, as the CI kill lane does.
    auto twice = FogSystem::resume(second.path(), 2);
    EXPECT_EQ(twice->resumeSlot(), 270);
    EXPECT_EQ(twice->run(), reference);
}

} // namespace
} // namespace neofog
