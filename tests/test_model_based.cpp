/**
 * @file
 * Model-based stress tests: the event queue against a naive reference
 * implementation under random operation sequences, and the node state
 * machine under randomized slot drives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "energy/power_trace.hh"
#include "node/node.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace neofog {
namespace {

/**
 * Reference model: a sorted multimap of (when, priority, seq) -> id,
 * with eager deletion on cancel.
 */
class ReferenceQueue
{
  public:
    std::uint64_t
    schedule(Tick when, int priority)
    {
        const std::uint64_t id = _next_id++;
        _entries.push_back({when, priority, _next_seq++, id});
        return id;
    }

    void
    cancel(std::uint64_t id)
    {
        _entries.erase(
            std::remove_if(_entries.begin(), _entries.end(),
                           [&](const Entry &e) { return e.id == id; }),
            _entries.end());
    }

    /** Pop the earliest (time, priority, fifo) entry, if any. */
    bool
    pop(std::uint64_t &id_out)
    {
        if (_entries.empty())
            return false;
        auto it = std::min_element(
            _entries.begin(), _entries.end(),
            [](const Entry &a, const Entry &b) {
                if (a.when != b.when)
                    return a.when < b.when;
                if (a.priority != b.priority)
                    return a.priority < b.priority;
                return a.seq < b.seq;
            });
        id_out = it->id;
        _entries.erase(it);
        return true;
    }

    std::size_t size() const { return _entries.size(); }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t id;
    };
    std::vector<Entry> _entries;
    std::uint64_t _next_id = 1;
    std::uint64_t _next_seq = 0;
};

class EventQueueModelTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EventQueueModelTest, MatchesReferenceUnderRandomOps)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    EventQueue queue;
    ReferenceQueue model;

    std::vector<std::uint64_t> fired; // ids in execution order
    // Maps our queue's EventId to the model's id (they advance in
    // lockstep since both hand out sequential ids).
    std::vector<EventId> live_ids;

    Tick max_scheduled = 0;
    for (int op = 0; op < 2000; ++op) {
        const double dice = rng.uniform();
        if (dice < 0.6) {
            // Schedule at or after "now".
            const Tick when =
                queue.now() + rng.uniformInt(0, 10'000);
            const int priority = static_cast<int>(rng.uniformInt(0, 3));
            const EventId qid = queue.schedule(
                when,
                [&fired, qid_capture = model.schedule(when, priority)] {
                    fired.push_back(qid_capture);
                },
                priority);
            live_ids.push_back(qid);
            max_scheduled = std::max(max_scheduled, when);
        } else if (dice < 0.75 && !live_ids.empty()) {
            // Cancel a random id (may already have fired; both sides
            // must treat that as a no-op).
            const std::size_t pick = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(
                                   live_ids.size() - 1)));
            // Model ids equal queue ids by construction.
            model.cancel(live_ids[pick]);
            queue.cancel(live_ids[pick]);
        } else {
            // Step a few events.
            for (int k = 0; k < 3; ++k) {
                std::uint64_t expect;
                const bool model_has = model.pop(expect);
                const bool queue_has = queue.step();
                ASSERT_EQ(queue_has, model_has);
                if (queue_has) {
                    ASSERT_FALSE(fired.empty());
                    EXPECT_EQ(fired.back(), expect);
                }
            }
        }
        ASSERT_EQ(queue.liveCount(), model.size());
    }

    // Drain both and compare the tail ordering.
    while (true) {
        std::uint64_t expect;
        const bool model_has = model.pop(expect);
        const bool queue_has = queue.step();
        ASSERT_EQ(queue_has, model_has);
        if (!queue_has)
            break;
        EXPECT_EQ(fired.back(), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class NodeFuzzTest : public ::testing::TestWithParam<int>
{
};

TEST_P(NodeFuzzTest, RandomDrivesNeverBreakInvariants)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 5);
    Node::Config cfg;
    cfg.mode = static_cast<OperatingMode>(rng.uniformInt(0, 2));
    cfg.processorMhz = rng.uniform(1.0, 120.0);
    cfg.rawPackageBytes = static_cast<std::size_t>(
        rng.uniformInt(16, 1024));
    cfg.compressedPackageBytes = static_cast<std::size_t>(
        rng.uniformInt(4, 64));
    cfg.samplesPerPackage = static_cast<std::size_t>(
        rng.uniformInt(1, 256));
    cfg.fogInstructionsPerPackage = static_cast<std::uint64_t>(
        rng.uniformInt(10'000, 40'000'000));
    cfg.packageDeadlineSlots = static_cast<int>(rng.uniformInt(1, 4));
    cfg.enableIncidentalComputing = rng.chance(0.5);
    cfg.cap.initial = Energy::fromMillijoules(rng.uniform(0.0, 200.0));

    Rng trace_rng = rng.fork();
    auto trace = traces::makeForestTrace(
        trace_rng, 2 * kHour,
        Power::fromMilliwatts(rng.uniform(0.05, 8.0)));
    Node node(cfg, std::move(trace), rng.fork());

    const Tick slot = 12 * kSec;
    Tick t = 0;
    for (int s = 0; s < 200; ++s) {
        // Random slot gaps (multiplexing-like sleeps).
        t += slot * rng.uniformInt(1, 3);
        node.beginSlot(t, slot);
        EXPECT_GE(node.stored().joules(), -1e-12);
        EXPECT_LE(node.stored().joules(),
                  node.capacitor().capacity().joules() + 1e-12);

        if (!node.tryWake())
            continue;
        if (rng.chance(0.9))
            node.samplePackage();
        if (rng.chance(0.3))
            node.payControlMessage(8);
        if (rng.chance(0.5))
            node.executeTasks(static_cast<int>(rng.uniformInt(1, 3)));
        if (rng.chance(0.3))
            node.executeIncidentalTasks(1);
        if (rng.chance(0.5))
            node.payTransmit(cfg.compressedPackageBytes);
        if (rng.chance(0.2))
            node.payReceive(cfg.rawPackageBytes);
        if (rng.chance(0.1))
            node.discardPendingPackages();
        EXPECT_GE(node.pendingPackages(), 0);
        EXPECT_GE(node.spareTaskCapacity(), 0.0);
    }

    // Accounting stayed consistent.
    const NodeStats &st = node.stats();
    EXPECT_LE(st.packagesInFog.value() + st.tasksExecuted.value(),
              st.packagesSampled.value() + st.tasksReceived.value() +
                  st.tasksExecuted.value());
    const double spent =
        st.spentCompute.joules() + st.spentTx.joules() +
        st.spentRx.joules() + st.spentSample.joules() +
        st.spentWake.joules();
    EXPECT_LE(spent, st.harvestedTotal.joules() +
                         cfg.cap.initial.joules() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeFuzzTest,
                         ::testing::Range(1, 13));

} // namespace
} // namespace neofog
