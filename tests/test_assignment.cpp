/**
 * @file
 * Tests for the Algorithm 1 dynamic program, including a property
 * sweep checking optimality against exhaustive search.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "balance/assignment.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace neofog {
namespace {

std::int64_t
sideSum(const AssignResult &r, const std::vector<std::int64_t> &a,
        const std::vector<std::int64_t> &b, Side side)
{
    std::int64_t sum = 0;
    for (std::size_t k = 0; k < r.assignment.size(); ++k) {
        if (r.assignment[k] == side)
            sum += side == Side::Left ? a[k] : b[k];
    }
    return sum;
}

TEST(Assignment, EmptyInput)
{
    const AssignResult r = assignTasks({}, {}, 100);
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(r.assignment.empty());
    EXPECT_EQ(r.makespan, 0);
}

TEST(Assignment, SingleTaskPicksCheaperSide)
{
    const AssignResult r = assignTasks({5}, {3}, 100);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.assignment[0], Side::Right);
    EXPECT_EQ(r.makespan, 3);

    const AssignResult r2 = assignTasks({2}, {9}, 100);
    EXPECT_EQ(r2.assignment[0], Side::Left);
    EXPECT_EQ(r2.makespan, 2);
}

TEST(Assignment, BalancesEqualCosts)
{
    // 4 tasks costing 3 on either side: optimal split is 2/2, makespan 6.
    const std::vector<std::int64_t> c(4, 3);
    const AssignResult r = assignTasks(c, c, 100);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.makespan, 6);
}

TEST(Assignment, PaperExampleSplit)
{
    // Fig 6(d): node 4 sends two tasks left and two right.  With
    // symmetric unit costs and 4 surplus tasks the DP splits evenly.
    const std::vector<std::int64_t> a(4, 1), b(4, 1);
    const AssignResult r = assignTasks(a, b, 64);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(sideSum(r, a, b, Side::Left), 2);
    EXPECT_EQ(sideSum(r, a, b, Side::Right), 2);
}

TEST(Assignment, MaxTimeBindsLeftSide)
{
    // Left is fast but MAXTIME only allows one task there.
    const std::vector<std::int64_t> a(5, 2);
    const std::vector<std::int64_t> b(5, 10);
    const AssignResult r = assignTasks(a, b, 2);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(sideSum(r, a, b, Side::Left), 2);
    EXPECT_EQ(sideSum(r, a, b, Side::Right), 40);
}

TEST(Assignment, ZeroMaxTimeForcesAllRight)
{
    const std::vector<std::int64_t> a(3, 1), b(3, 7);
    const AssignResult r = assignTasks(a, b, 0);
    ASSERT_TRUE(r.feasible);
    for (Side s : r.assignment)
        EXPECT_EQ(s, Side::Right);
    EXPECT_EQ(r.makespan, 21);
}

TEST(Assignment, ResultTimesConsistentWithAssignment)
{
    Rng rng(3);
    std::vector<std::int64_t> a(10), b(10);
    for (std::size_t i = 0; i < 10; ++i) {
        a[i] = rng.uniformInt(1, 9);
        b[i] = rng.uniformInt(1, 9);
    }
    const AssignResult r = assignTasks(a, b, 50);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.leftTime, sideSum(r, a, b, Side::Left));
    EXPECT_EQ(r.rightTime, sideSum(r, a, b, Side::Right));
    EXPECT_EQ(r.makespan, std::max(r.leftTime, r.rightTime));
}

TEST(Assignment, MismatchedArraysFatal)
{
    EXPECT_THROW(assignTasks({1, 2}, {1}, 10), FatalError);
}

TEST(Assignment, NonPositiveCostFatal)
{
    EXPECT_THROW(assignTasks({0}, {1}, 10), FatalError);
    EXPECT_THROW(assignTasks({1}, {-2}, 10), FatalError);
}

TEST(Assignment, BruteForceGuardsAgainstHugeInputs)
{
    std::vector<std::int64_t> big(30, 1);
    EXPECT_THROW(assignTasksBruteForce(big, big, 100), FatalError);
}

// ---------------------------------------------------------------------
// Property sweep: DP makespan equals exhaustive optimum.
// ---------------------------------------------------------------------

class AssignmentOptimality
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(AssignmentOptimality, MatchesBruteForce)
{
    const auto [n, max_cost, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 1000 +
            static_cast<std::uint64_t>(n));
    std::vector<std::int64_t> a(static_cast<std::size_t>(n));
    std::vector<std::int64_t> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        a[static_cast<std::size_t>(i)] = rng.uniformInt(1, max_cost);
        b[static_cast<std::size_t>(i)] = rng.uniformInt(1, max_cost);
    }
    const std::int64_t max_time =
        rng.uniformInt(0, static_cast<std::int64_t>(n) * max_cost);

    const AssignResult dp = assignTasks(a, b, max_time);
    const AssignResult bf = assignTasksBruteForce(a, b, max_time);

    ASSERT_EQ(dp.feasible, bf.feasible);
    if (dp.feasible) {
        EXPECT_EQ(dp.makespan, bf.makespan)
            << "n=" << n << " max_time=" << max_time;
        // The DP's own assignment achieves its claimed makespan and
        // respects MAXTIME.
        EXPECT_LE(dp.leftTime, max_time);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AssignmentOptimality,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 12),
                       ::testing::Values(1, 4, 13),
                       ::testing::Values(1, 2, 3, 4)));

TEST_P(AssignmentOptimality, PaperListingMatchesDp)
{
    const auto [n, max_cost, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 +
            static_cast<std::uint64_t>(n));
    std::vector<std::int64_t> a(static_cast<std::size_t>(n));
    std::vector<std::int64_t> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        a[static_cast<std::size_t>(i)] = rng.uniformInt(1, max_cost);
        b[static_cast<std::size_t>(i)] = rng.uniformInt(1, max_cost);
    }
    const std::int64_t max_time =
        rng.uniformInt(0, static_cast<std::int64_t>(n) * max_cost);

    const AssignResult dp = assignTasks(a, b, max_time);
    const AssignResult paper =
        assignTasksPaperListing(a, b, max_time);
    ASSERT_TRUE(paper.feasible);
    if (dp.feasible) {
        EXPECT_EQ(paper.makespan, dp.makespan);
        EXPECT_LE(paper.leftTime, max_time);
        EXPECT_EQ(paper.makespan,
                  std::max(paper.leftTime, paper.rightTime));
    }
}

TEST(Assignment, PaperListingHandlesEmptyAndSingle)
{
    EXPECT_TRUE(assignTasksPaperListing({}, {}, 10).feasible);
    const AssignResult r = assignTasksPaperListing({5}, {3}, 100);
    EXPECT_EQ(r.makespan, 3);
}

TEST(Assignment, LargeInstanceRunsQuickly)
{
    // O(n * MAXTIME): 512 tasks, MAXTIME 4096 is ~2M table cells.
    Rng rng(9);
    std::vector<std::int64_t> a(512), b(512);
    for (std::size_t i = 0; i < 512; ++i) {
        a[i] = rng.uniformInt(1, 10);
        b[i] = rng.uniformInt(1, 10);
    }
    const AssignResult r = assignTasks(a, b, 4096);
    EXPECT_TRUE(r.feasible);
    EXPECT_GT(r.makespan, 0);
}

} // namespace
} // namespace neofog
