/**
 * @file
 * Tests for the ThreadPool and the parallel execution model: same
 * seed must yield a byte-identical SystemReport no matter how many
 * threads run the chains, and the multi-seed experiment runner must
 * aggregate identically serial vs parallel.  Registered under the
 * "parallel" ctest label so the suite can run under TSan
 * (-DNEOFOG_SANITIZE=thread; ctest -L parallel) to prove the
 * ChainEngine boundary is race-free.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "fog/experiment.hh"
#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "sim/thread_pool.hh"

namespace neofog {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOneRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    const auto caller = std::this_thread::get_id();
    pool.parallelFor(8, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, ZeroMeansHardwareThreads)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
}

TEST(ThreadPool, EmptyLoopIsANoOp)
{
    ThreadPool pool(3);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, SurvivesBackToBackLoops)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(17, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, PropagatesBodyException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](std::size_t i) {
                             if (i == 13)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool stays usable after a throwing loop.
    std::atomic<int> ok{0};
    pool.parallelFor(8, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, FreeHelperFallsBackToSerial)
{
    std::vector<int> order;
    parallelFor(nullptr, 5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    // Serial fallback preserves index order.
    std::vector<int> expect(5);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

ScenarioConfig
multiChainScenario(unsigned threads)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.chains = 6;
    cfg.horizon = kHour;
    cfg.balancerPolicy = "distributed";
    cfg.realTimeRequestChance = 0.01;
    cfg.seed = 42;
    cfg.threads = threads;
    return cfg;
}

TEST(ParallelDeterminism, ReportIdenticalAcrossThreadCounts)
{
    const SystemReport serial =
        FogSystem(multiChainScenario(1)).run();
    for (unsigned threads : {2u, 4u, 0u}) {
        const SystemReport parallel =
            FogSystem(multiChainScenario(threads)).run();
        // operator== compares every field, including the
        // order-sensitive floating-point energy sums.
        EXPECT_EQ(serial, parallel)
            << "report diverged at threads=" << threads;
    }
}

TEST(ParallelDeterminism, PerNodeStateIdenticalAcrossThreadCounts)
{
    FogSystem a(multiChainScenario(1));
    FogSystem b(multiChainScenario(4));
    a.run();
    b.run();
    for (std::size_t c = 0; c < 6; ++c) {
        for (std::size_t i = 0; i < a.physicalPerChain(); ++i) {
            const NodeStats &sa = a.node(c, i).stats();
            const NodeStats &sb = b.node(c, i).stats();
            ASSERT_EQ(sa.wakeups.value(), sb.wakeups.value());
            ASSERT_EQ(sa.packagesSampled.value(),
                      sb.packagesSampled.value());
            ASSERT_EQ(sa.tasksShipped.value(),
                      sb.tasksShipped.value());
            ASSERT_DOUBLE_EQ(sa.harvestedTotal.millijoules(),
                             sb.harvestedTotal.millijoules());
        }
    }
}

TEST(ParallelDeterminism, MultiplexedRelayScenarioIdentical)
{
    // Exercise the clone-rotation + hop-by-hop relay paths too.
    auto mk = [](unsigned threads) {
        ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
        cfg.chains = 5;
        cfg.horizon = kHour;
        cfg.hopByHopRelay = true;
        cfg.membershipUpdateInterval = 10 * kMin;
        cfg.seed = 7;
        cfg.threads = threads;
        return cfg;
    };
    EXPECT_EQ(FogSystem(mk(1)).run(), FogSystem(mk(4)).run());
}

TEST(ParallelDeterminism, RunSeedsSerialVsParallelIdentical)
{
    ScenarioConfig cfg = presets::fig10(presets::fiosNeofog(), 0);
    cfg.chains = 2;
    cfg.horizon = 30 * kMin;
    const AggregateReport serial = ExperimentRunner::runSeeds(
        cfg, {.runs = 6, .baseSeed = 100, .seedThreads = 1});
    const AggregateReport parallel = ExperimentRunner::runSeeds(
        cfg, {.runs = 6, .baseSeed = 100, .seedThreads = 4});
    ASSERT_EQ(serial.reports.size(), parallel.reports.size());
    for (std::size_t i = 0; i < serial.reports.size(); ++i)
        EXPECT_EQ(serial.reports[i], parallel.reports[i])
            << "seed slot " << i;
    EXPECT_DOUBLE_EQ(serial.stat("total_processed").mean(),
                     parallel.stat("total_processed").mean());
    EXPECT_DOUBLE_EQ(serial.stat("total_processed").stddev(),
                     parallel.stat("total_processed").stddev());
    EXPECT_DOUBLE_EQ(serial.stat("yield").mean(),
                     parallel.stat("yield").mean());
}

TEST(ParallelDeterminism, ThreadsKnobDoesNotChangeSeedSemantics)
{
    // threads is a pure execution knob: two configs differing only in
    // threads are the *same* experiment.
    ScenarioConfig one = multiChainScenario(1);
    ScenarioConfig other = multiChainScenario(3);
    other.seed = one.seed;
    EXPECT_EQ(FogSystem(one).run(), FogSystem(other).run());

    // ...while a different seed is a different experiment.
    other.seed = 4242;
    EXPECT_NE(FogSystem(one).run().totalProcessed(),
              FogSystem(other).run().totalProcessed());
}

} // namespace
} // namespace neofog
