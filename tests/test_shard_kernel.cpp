/**
 * @file
 * Property tests for the vectorized shard slot kernel
 * (ShardSlotKernel): running the banking arithmetic column-wise must
 * be bit-identical to the scalar Node::beginSlotWithIncome path on the
 * fig-13 preset, on constant income, and on randomized scenarios, at
 * every thread count; snapshots taken with the kernel on must resume
 * onto the same bits; and the simdKernel / pinThreads knobs must stay
 * outside the scenario fingerprint (host-local tuning, not simulated
 * state).  Registered under the "perf" ctest label next to the SoA
 * batch suite — these are the correctness guardrails of the
 * vectorization work.
 *
 * Under -DNEOFOG_SIMD=OFF the dispatch compiles the kernel out, so
 * the equality assertions hold trivially; the suite still runs to
 * keep the fallback build green.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>

#include "fog/fog_system.hh"
#include "fog/presets.hh"
#include "fog/snapshot_io.hh"
#include "snapshot/snapshot.hh"

namespace neofog {
namespace {

namespace fs = std::filesystem;

/** Self-deleting scratch directory (mirrors test_snapshot's). */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : _path(fs::temp_directory_path() /
                ("neofog_shard_kernel_test_" + tag))
    {
        fs::remove_all(_path);
        fs::create_directories(_path);
    }
    ~ScratchDir() { fs::remove_all(_path); }

    std::string file(const std::string &name) const
    {
        return (_path / name).string();
    }
    std::string path() const { return _path.string(); }

  private:
    fs::path _path;
};

SystemReport
runWith(ScenarioConfig cfg, bool simd_kernel, unsigned threads)
{
    cfg.simdKernel = simd_kernel;
    cfg.threads = threads;
    return FogSystem(cfg).run();
}

// The fig-13 preset is the shape the kernel targets (every node a
// scaled view of one shared rain stream, uniform node template):
// vectorized and scalar banking must agree on every report bit at
// every thread count, and both must agree with the fully per-node
// path (batchSlotKernel off).
TEST(ShardKernel, Fig13BitIdenticalToScalarBanking)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.chains = 4;
    cfg.horizon = kHour;
    cfg.seed = 77;

    const SystemReport scalar = runWith(cfg, false, 1);
    for (const unsigned threads : {1u, 2u, 4u}) {
        EXPECT_EQ(runWith(cfg, true, threads), scalar)
            << "shard kernel diverged at threads=" << threads;
    }

    ScenarioConfig per_node = cfg;
    per_node.batchSlotKernel = false;
    EXPECT_EQ(FogSystem(per_node).run(), scalar)
        << "scalar banking diverged from the per-node path";
}

// Constant income takes the other hoist arm (one pure integral shared
// by every node) and drives different select outcomes in the flush /
// overflow lanes.
TEST(ShardKernel, ConstantTraceBitIdenticalToScalarBanking)
{
    ScenarioConfig cfg;
    cfg.chains = 3;
    cfg.nodesPerChain = 8;
    cfg.mode = OperatingMode::FiosNvMote;
    cfg.traceKind = TraceKind::Constant;
    cfg.meanIncome = Power::fromMilliwatts(2.2);
    cfg.balancerPolicy = "distributed";
    cfg.horizon = kHour;
    cfg.seed = 8;

    const SystemReport scalar = runWith(cfg, false, 1);
    for (const unsigned threads : {1u, 2u, 4u}) {
        EXPECT_EQ(runWith(cfg, true, threads), scalar)
            << "shard kernel diverged at threads=" << threads;
    }
}

// Randomized scenario sweep: whatever the trace family, mode,
// balancer, and multiplexing, flipping simdKernel must never move a
// single bit.  Non-FIOS modes exercise the no-direct-channel arm;
// independent traces exercise the no-hoist fallback (kernel skipped).
TEST(ShardKernel, RandomScenariosBitIdentical)
{
    std::minstd_rand pick(20260808);
    const TraceKind kinds[] = {TraceKind::ForestIndependent,
                               TraceKind::BridgeDependent,
                               TraceKind::RainLow, TraceKind::Constant};
    const OperatingMode modes[] = {OperatingMode::NosVp,
                                   OperatingMode::NosNvp,
                                   OperatingMode::FiosNvMote};
    const char *balancers[] = {"none", "tree", "distributed",
                               "cluster"};

    for (int round = 0; round < 6; ++round) {
        ScenarioConfig cfg;
        cfg.traceKind = kinds[pick() % 4];
        cfg.mode = modes[pick() % 3];
        cfg.balancerPolicy = balancers[pick() % 4];
        cfg.chains = 1 + pick() % 3;
        cfg.nodesPerChain = 4 + pick() % 7;
        cfg.multiplexing = 1 + pick() % 3;
        cfg.hopByHopRelay = pick() % 2 == 0;
        cfg.realTimeRequestChance = pick() % 2 == 0 ? 0.0 : 0.01;
        cfg.horizon = (20 + static_cast<Tick>(pick() % 20)) * kMin;
        cfg.seed = 1 + pick() % 1000;

        const SystemReport scalar = runWith(cfg, false, 1);
        for (const unsigned threads : {1u, 2u, 4u}) {
            EXPECT_EQ(runWith(cfg, true, threads), scalar)
                << "round " << round << ", threads " << threads
                << ", trace " << traceKindName(cfg.traceKind)
                << ", mode " << operatingModeName(cfg.mode)
                << ", balancer " << cfg.balancerPolicy;
        }
    }
}

// Snapshot/resume with the kernel on: a mid-horizon checkpoint must
// resume onto the uninterrupted run's exact report, whether the
// resuming host keeps the kernel on, turns it off, or changes the
// thread count — the knob is host-local tuning, not simulated state.
TEST(ShardKernel, SnapshotResumeStaysBitIdentical)
{
    const ScratchDir dir("resume");

    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.chains = 3;
    cfg.horizon = kHour;
    cfg.seed = 41;

    const SystemReport reference = FogSystem(cfg).run();

    constexpr std::int64_t kEvery = 9;
    ScenarioConfig snapping = cfg;
    snapping.snapshot.everySlots = kEvery;
    snapping.snapshot.dir = dir.path();
    EXPECT_EQ(FogSystem(snapping).run(), reference);

    const std::int64_t split = kEvery * 2;
    const std::string path = dir.file(snapshot::snapshotFileName(split));
    ASSERT_TRUE(fs::exists(path)) << path;
    for (const bool simd : {true, false}) {
        for (const unsigned threads : {1u, 4u}) {
            auto resumed = FogSystem::resume(path, threads, {}, simd);
            EXPECT_EQ(resumed->resumeSlot(), split);
            EXPECT_EQ(resumed->run(), reference)
                << "resume diverged at simd=" << simd
                << ", threads=" << threads;
        }
    }
}

// simdKernel and pinThreads are host-local: two configs differing
// only in those knobs must serialize to the same blob and fingerprint,
// so a resume may flip them freely.
TEST(ShardKernel, SimdKernelExcludedFromFingerprint)
{
    ScenarioConfig cfg = presets::fig13(presets::fiosNeofog(), 3);
    cfg.chains = 2;

    ScenarioConfig tweaked = cfg;
    tweaked.simdKernel = !cfg.simdKernel;
    tweaked.pinThreads = !cfg.pinThreads;
    EXPECT_EQ(serializeScenarioBlob(tweaked), serializeScenarioBlob(cfg));
    EXPECT_EQ(scenarioFingerprint(tweaked), scenarioFingerprint(cfg));
}

} // namespace
} // namespace neofog
